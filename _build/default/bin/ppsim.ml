(* ppsim: simulate a population protocol under the uniform random
   scheduler.

     ppsim --protocol flock-succinct-3 --input 20 --runs 5 --seed 7
     ppsim --file my_protocol.pp --input 10,3 *)

let load ~name ~file =
  match (name, file) with
  | Some n, None ->
    (match Catalog.build n with
     | Some e -> Ok (e.Catalog.build ())
     | None ->
       Error (Printf.sprintf "unknown protocol %S (expected: %s)" n Catalog.names_help))
  | None, Some f -> Protocol_syntax.parse_file f
  | _ -> Error "exactly one of --protocol and --file is required"

let parse_input p s =
  let parts = String.split_on_char ',' s in
  match List.map int_of_string_opt parts with
  | ints when List.for_all Option.is_some ints ->
    let v = Array.of_list (List.map Option.get ints) in
    if Array.length v = Array.length p.Population.input_vars then Ok v
    else
      Error
        (Printf.sprintf "protocol expects %d input variables"
           (Array.length p.Population.input_vars))
  | _ -> Error "inputs must be comma-separated integers"

let run name file input runs seed max_steps quiet verbose =
  match load ~name ~file with
  | Error e ->
    prerr_endline e;
    1
  | Ok p ->
    (match parse_input p input with
     | Error e ->
       prerr_endline e;
       1
     | Ok v ->
       if verbose then Format.printf "%a@." Population.pp p;
       let rng = Splitmix64.create seed in
       let population = Mset.size (Population.initial_config p v) in
       let results =
         List.init runs (fun _ ->
             Simulator.run ~max_steps ~quiet_window:quiet ~rng p
               (Population.initial_config p v))
       in
       List.iteri
         (fun i r ->
           Format.printf "run %d: output=%s steps=%d parallel-time=%.2f %s@." i
             (match r.Simulator.output with
              | Some b -> string_of_int (Bool.to_int b)
              | None -> "undefined")
             r.Simulator.steps
             (Simulator.parallel_time r ~population)
             (if r.Simulator.converged then "" else "(step budget exhausted)"))
         results;
       let times =
         List.filter_map
           (fun r ->
             if r.Simulator.converged then
               Some (Simulator.parallel_time r ~population)
             else None)
           results
       in
       Format.printf "parallel time: %s@." (Stats.summary times);
       0)

open Cmdliner

let name_arg =
  Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"NAME"
         ~doc:("Catalog protocol name: " ^ Catalog.names_help))

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Protocol description file (see Protocol_syntax).")

let input_arg =
  Arg.(value & opt string "10" & info [ "i"; "input" ] ~docv:"INTS"
         ~doc:"Comma-separated input counts, one per input variable.")

let runs_arg = Arg.(value & opt int 3 & info [ "r"; "runs" ] ~doc:"Independent runs.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let steps_arg =
  Arg.(value & opt int 50_000_000 & info [ "max-steps" ] ~doc:"Interaction budget.")

let quiet_arg =
  Arg.(value & opt float 64.0 & info [ "quiet-window" ]
         ~doc:"Parallel time without an output change before declaring convergence.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the protocol.")

let cmd =
  Cmd.v
    (Cmd.info "ppsim" ~doc:"Simulate a population protocol")
    Term.(
      const run $ name_arg $ file_arg $ input_arg $ runs_arg $ seed_arg
      $ steps_arg $ quiet_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
