examples/chemical_reactions.ml: Array Downset Fair_semantics Format List Population Simulator Splitmix64 Stable_sets Stats
