examples/chemical_reactions.mli:
