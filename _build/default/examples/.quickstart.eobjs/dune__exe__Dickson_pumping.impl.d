examples/dickson_pumping.ml: Array Bad_sequences Dickson Flock Format List Mset Population Printf Pumping Stable_sets String
