examples/dickson_pumping.mli:
