examples/flock_of_birds.ml: Array Bool Eta_search Fair_semantics Flock Format List Population Predicate Simulator Splitmix64 State_complexity Stats
