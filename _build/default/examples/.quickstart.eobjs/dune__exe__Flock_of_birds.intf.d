examples/flock_of_birds.mli:
