examples/presburger_compiler.ml: Array Compile Configgraph Fair_semantics Format Fun List Option Population Predicate String Threshold
