examples/presburger_compiler.mli:
