examples/quickstart.ml: Array Fair_semantics Format List Majority Population Predicate Protocol_syntax Simulator Splitmix64
