examples/quickstart.mli:
