examples/state_complexity_audit.ml: Bignat Certificate Downset Eta_search Factorial_bounds Format List Magnitude Mset Population Potential Pumping Saturation Stable_sets State_complexity Threshold
