examples/state_complexity_audit.mli:
