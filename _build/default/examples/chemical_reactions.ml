(* Population protocols as chemical reaction networks (the paper's
   introduction: agents are molecules, interactions are collisions).

   We model a well-mixed solution in which a substrate S is converted
   into product P by collisions with a catalyst molecule C, and ask the
   "chemical" question: does the solution eventually signal that the
   substrate concentration passed a threshold?

   Species:
     S  substrate          C  catalyst
     P  product            F  fluorescent marker (the signal)

   Reactions (pairwise collisions):
     S + C  -> P + C       catalysis
     P + P  -> D2 + W      product dimerises (two P make a dimer D2,
     D2 + D2 -> D4 + W      dimers pair up to D4 — binary counting!)
     D4 + X -> F + F        once a D4 exists, everything it touches
                            fluoresces, and fluorescence spreads.

   This is exactly a succinct threshold protocol in disguise: the dimer
   cascade counts product molecules in binary, so ~log2(threshold)
   species suffice — the chemical reading of the paper's state
   complexity question (the number of states is the number of species
   one must synthesise).

     dune exec examples/chemical_reactions.exe *)

let solution_protocol () =
  (* species indices *)
  let s = 0 and c = 1 and p = 2 and d2 = 3 and d4 = 4 and w = 5 and f = 6 in
  let states = [| "S"; "C"; "P"; "D2"; "D4"; "W"; "F" |] in
  let transitions =
    [
      (s, c, p, c);     (* catalysis *)
      (p, p, d2, w);    (* dimerisation *)
      (d2, d2, d4, w);  (* tetramerisation *)
      (* fluorescence spreads from any D4 *)
      (d4, s, f, f); (d4, c, f, f); (d4, p, f, f); (d4, d2, f, f);
      (d4, d4, f, f); (d4, w, f, f);
      (f, s, f, f); (f, c, f, f); (f, p, f, f); (f, d2, f, f);
      (f, d4, f, f); (f, w, f, f);
    ]
  in
  let output = Array.map (fun n -> n = "F") states in
  Population.complete
    (Population.make ~name:"substrate-sensor" ~states ~transitions
       ~inputs:[ ("substrate", s); ("catalyst", c) ]
       ~output ())

let () =
  let p = solution_protocol () in
  Format.printf "%a@." Population.pp p;

  (* With one catalyst molecule, the solution fluoresces iff at least
     four substrate molecules are present (4 P -> 2 D2 -> 1 D4). *)
  Format.printf "exact verdicts (substrate molecules, 1 catalyst):@.";
  List.iter
    (fun n ->
      Format.printf "  %d substrate: %a@." n Fair_semantics.pp_verdict
        (Fair_semantics.decide p [| n; 1 |]))
    [ 2; 3; 4; 5; 9 ];

  (* The verdict is independent of the catalyst count (catalysts are
     conserved): *)
  Format.printf "catalyst count does not matter:@.";
  List.iter
    (fun cat ->
      Format.printf "  4 substrate + %d catalyst: %a@." cat
        Fair_semantics.pp_verdict
        (Fair_semantics.decide p [| 4; cat |]))
    [ 1; 2; 5 ];

  (* Gillespie-flavoured stochastic runs: how long until fluorescence,
     in parallel time (proportional to physical time in a well-mixed
     solution)? *)
  let rng = Splitmix64.create 31 in
  Format.printf "time to fluorescence (20 substrate + 2 catalyst):@.";
  let ts = Simulator.sample_parallel_times ~runs:8 ~rng p [| 20; 2 |] in
  Format.printf "  %s@." (Stats.summary ts);

  (* The stable sets tell the chemist which mixtures are inert: *)
  let a = Stable_sets.analyse p in
  Format.printf "@.inert (0-stable) mixtures — no fluorescence, ever: %a@."
    (Downset.pp ~names:p.Population.states)
    (Stable_sets.stable a false)
