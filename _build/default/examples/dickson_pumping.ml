(* Lemma 4.2 and Dickson's lemma, live: build the sequence of stable
   configurations C_2, C_3, C_4, …, watch Dickson's lemma produce an
   ascending pair inside one basis element of SC, and extract the
   Lemma 4.1 pumping conclusion eta <= a.

   Also demonstrates the combinatorics behind Lemma 4.4: how long can a
   controlled sequence stay bad?

     dune exec examples/dickson_pumping.exe *)

let () =
  let p = Flock.succinct 2 in
  let names = p.Population.states in
  Format.printf "protocol %s computes x >= 4@.@." p.Population.name;

  (* The Lemma 4.2 sequence: one stable configuration per input. *)
  let analysis = Stable_sets.analyse p in
  let seq = Pumping.sequence p analysis ~first:2 ~count:9 in
  Format.printf "the Lemma 4.2 sequence of stable configurations:@.";
  List.iter
    (fun (i, c) -> Format.printf "  C_%-2d = %a@." i (Mset.pp ~names) c)
    seq;

  (* Dickson's lemma in action: the first ascending pair. *)
  let vectors = List.map (fun (_, c) -> Mset.to_intvec c) seq in
  (match Dickson.first_ascending_pair (List.to_seq vectors) with
   | Some (i, j) ->
     let input_of k = fst (List.nth seq k) in
     Format.printf "@.Dickson witness: C_%d <= C_%d@." (input_of i) (input_of j)
   | None -> Format.printf "@.no ascending pair below the cutoff (increase count)@.");

  (* An ascending chain, as Lemma 4.4 supplies many ordered elements. *)
  (match Dickson.ascending_chain (Array.of_list vectors) 3 with
   | Some chain ->
     Format.printf "ascending chain of length %d at positions %s@."
       (List.length chain)
       (String.concat " <= " (List.map (fun k -> Printf.sprintf "C_%d" (fst (List.nth seq k))) chain))
   | None -> Format.printf "no chain of length 3 yet@.");

  (* The full pumping argument: basis element + ascending pair gives
     Lemma 4.1's conclusion. *)
  (match Pumping.find_witness p ~max_input:12 with
   | Ok w ->
     Format.printf "@.%a@." Pumping.pp w;
     Format.printf "conclusion: if %s computes x >= eta then eta <= %d@."
       p.Population.name w.Pumping.a;
     Format.printf "(exact threshold is 4; witness validates: %b)@." (Pumping.check w)
   | Error e -> Format.printf "pumping failed: %s@." e);

  (* Lemma 4.4's engine: lengths of controlled bad sequences explode
     with the dimension — this is why the Section 4 bound is
     Ackermannian rather than elementary. *)
  Format.printf "@.longest (i+delta)-controlled bad sequences:@.";
  Format.printf "  dim 1 (exact):     ";
  List.iter
    (fun d ->
      match Bad_sequences.max_length_exact ~dim:1 ~delta:d ~budget:1_000_000 with
      | Some l -> Format.printf "delta=%d: %d   " d l
      | None -> ())
    [ 1; 2; 3; 4 ];
  Format.printf "@.  dim 2 (exact):     ";
  List.iter
    (fun d ->
      match Bad_sequences.max_length_exact ~dim:2 ~delta:d ~budget:8_000_000 with
      | Some l -> Format.printf "delta=%d: %d   " d l
      | None -> ())
    [ 0; 1; 2 ];
  Format.printf "@.  dim 2 (staircase): ";
  List.iter
    (fun d ->
      Format.printf "delta=%d: %d   " d
        (List.length (Bad_sequences.descending_staircase ~delta:d ~max_len:1_000_000)))
    [ 4; 8; 12 ];
  Format.printf "@."
