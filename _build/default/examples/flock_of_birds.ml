(* Example 2.1, end to end: the "flock of birds" question — do at least
   2^k birds (sensed agents) report elevated temperature? — solved by
   the naive protocol P_k (2^k + 1 states) and the succinct P'_k
   (k + 2 states), demonstrating the exponential succinctness gap that
   motivates the paper's state-complexity question.

     dune exec examples/flock_of_birds.exe *)

let () =
  let k = 3 in
  let eta = 1 lsl k in
  let naive = Flock.naive k in
  let succinct = Flock.succinct k in
  Format.printf "threshold x >= %d:@." eta;
  Format.printf "  P_%d  (naive)   : %d states@." k (Population.num_states naive);
  Format.printf "  P'_%d (succinct): %d states@.@." k (Population.num_states succinct);

  (* Exact verification: both protocols decide x >= 8 on every input up
     to 18 — the library's fairness semantics (bottom SCCs of the
     reachability graph) proves this, not just tests it. *)
  List.iter
    (fun p ->
      match
        Fair_semantics.check_predicate p (Predicate.threshold_single eta)
          ~inputs:(List.init 17 (fun i -> [| i + 2 |]))
      with
      | Fair_semantics.Ok_all n ->
        Format.printf "%s: exactly verified on %d inputs@." p.Population.name n
      | Fair_semantics.Mismatch (v, verdict, expected) ->
        Format.printf "%s: WRONG at %d: %a (expected %b)@." p.Population.name
          v.(0) Fair_semantics.pp_verdict verdict expected)
    [ naive; succinct ];

  (* The exact thresholds, discovered rather than assumed: *)
  List.iter
    (fun p ->
      Format.printf "%s: %a@." p.Population.name Eta_search.pp_result
        (Eta_search.find p ~max_input:(eta + 8)))
    [ naive; succinct ];

  (* Watch the succinct protocol merge powers of two: a trace of one
     random execution with 11 birds (11 >= 8, so it must accept). *)
  Format.printf "@.one random execution of P'_%d on 11 birds:@." k;
  let rng = Splitmix64.create 7 in
  let r = Simulator.run_input ~rng succinct [| 11 |] in
  Format.printf "  final configuration: %a (output %s)@."
    (Population.pp_config succinct) r.Simulator.final
    (match r.Simulator.output with
     | Some b -> string_of_int (Bool.to_int b)
     | None -> "undefined");

  (* Parallel-time comparison of the two protocols at population 64. *)
  Format.printf "@.convergence at population 64 (10 runs):@.";
  List.iter
    (fun p ->
      let ts = Simulator.sample_parallel_times ~runs:10 ~rng p [| 64 |] in
      Format.printf "  %-18s %s@." p.Population.name (Stats.summary ts))
    [ naive; succinct ];

  (* The general constructions behind Theorem 2.2's BB(n) ∈ Ω(2^n):
     states needed for x >= eta across the two families. *)
  Format.printf "@.states for x >= eta (unary vs binary construction):@.";
  List.iter
    (fun eta ->
      Format.printf "  eta=%-8d unary %-8d binary %d@." eta
        (State_complexity.states_unary eta)
        (State_complexity.states_binary eta))
    [ 8; 64; 1024; 1_000_000 ]
