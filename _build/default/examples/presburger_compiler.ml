(* Compiling Presburger predicates to protocols.

   Population protocols compute exactly the Presburger predicates
   (Angluin et al. [8]); this example compiles boolean combinations of
   thresholds and congruences into protocols with the library's
   Compile module and *proves* each compiled protocol correct on a grid
   of inputs using the exact fairness semantics.

     dune exec examples/presburger_compiler.exe *)

let verify name pred inputs =
  match Compile.compile pred with
  | Error e -> Format.printf "%-34s unsupported: %s@." name e
  | Ok p ->
    (match Fair_semantics.check_predicate ~max_configs:800_000 p pred ~inputs with
     | Fair_semantics.Ok_all n ->
       Format.printf "%-34s %3d states   verified on %d inputs@." name
         (Population.num_states p) n
     | Fair_semantics.Mismatch (v, verdict, expected) ->
       Format.printf "%-34s WRONG at %s: %a (expected %b)@." name
         (String.concat "," (List.map string_of_int (Array.to_list v)))
         Fair_semantics.pp_verdict verdict expected
     | exception Configgraph.Too_many_configs budget ->
       Format.printf "%-34s %3d states   (state space beyond %d configurations)@."
         name (Population.num_states p) budget)

let grid1 = List.init 10 (fun i -> [| i + 2 |])
let grid1_small = List.init 7 (fun i -> [| i + 2 |])

let grid2 =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a + b >= 2 then Some [| a; b |] else None)
        (List.init 5 Fun.id))
    (List.init 5 Fun.id)

let () =
  Format.printf "-- single-variable predicates --@.";
  verify "x >= 7" (Predicate.threshold_single 7) grid1;
  verify "x ≡ 2 (mod 3)" (Predicate.Modulo ([| 1 |], 2, 3)) grid1;
  verify "x >= 4 ∧ x ≡ 0 (mod 2)"
    (Predicate.And (Predicate.threshold_single 4, Predicate.Modulo ([| 1 |], 0, 2)))
    grid1_small;
  verify "x < 6 ∨ x ≡ 1 (mod 3)"
    (Predicate.Or
       (Predicate.Not (Predicate.threshold_single 6), Predicate.Modulo ([| 1 |], 1, 3)))
    grid1_small;

  Format.printf "@.-- multi-variable predicates --@.";
  verify "x0 + 2·x1 >= 5" (Predicate.Threshold ([| 1; 2 |], 5)) grid2;
  verify "x0 > x1 (majority)" (Predicate.majority ()) grid2;
  verify "x0 - x1 ≡ 0 (mod 2)" (Predicate.Modulo ([| 1; -1 |], 0, 2)) grid2;
  verify "x0 > x1 ∧ x0 + x1 >= 4"
    (Predicate.And (Predicate.majority (), Predicate.Threshold ([| 1; 1 |], 4)))
    grid2;
  verify "¬(x0 + x1 >= 3)" (Predicate.Not (Predicate.Threshold ([| 1; 1 |], 3))) grid2;
  verify "2·x0 - 3·x1 >= 1  (mixed signs)" (Predicate.Threshold ([| 2; -3 |], 1)) [];

  (* State budgets: the compiler reports sizes without building. *)
  Format.printf "@.-- predicted state counts --@.";
  List.iter
    (fun (label, pred) ->
      match Compile.states_needed pred with
      | Some n -> Format.printf "%-34s %d states@." label n
      | None -> Format.printf "%-34s (unsupported)@." label)
    [
      ("x >= 100", Predicate.threshold_single 100);
      ("x ≡ 0 (mod 7)", Predicate.Modulo ([| 1 |], 0, 7));
      ( "(x >= 10) ∧ (x ≡ 0 mod 5)",
        Predicate.And (Predicate.threshold_single 10, Predicate.Modulo ([| 1 |], 0, 5)) );
    ];
  Format.printf
    "@.(note: for pure thresholds x >= eta, Threshold.binary beats the@.\
     compiler's unary values exponentially — %d vs %d states at eta = 100)@."
    (Threshold.binary_num_states 100)
    (Option.value (Compile.states_needed (Predicate.threshold_single 100)) ~default:0)
