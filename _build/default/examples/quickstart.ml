(* Quickstart: define a protocol from scratch, simulate it, and verify
   it exactly.

   The protocol is the 4-state majority protocol from the library's
   catalog, then a hand-rolled "at least one B?" detector built directly
   against the Population API.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Take a protocol from the catalog and look at it. *)
  let majority = Majority.protocol () in
  Format.printf "%a@." Population.pp majority;

  (* 2. Simulate it: 60 agents vote A, 40 vote B. *)
  let rng = Splitmix64.create 2024 in
  let result = Simulator.run_input ~rng majority [| 60; 40 |] in
  Format.printf "simulation of 60 A vs 40 B: output=%s after %.1f parallel time@."
    (match result.Simulator.output with
     | Some true -> "A wins"
     | Some false -> "B wins"
     | None -> "undecided")
    (Simulator.parallel_time result ~population:100);

  (* 3. Verify it exactly on small inputs: every fair execution of a
     correct protocol stabilises to the majority answer. *)
  List.iter
    (fun (a, b) ->
      Format.printf "exact verdict for %d A vs %d B: %a@." a b
        Fair_semantics.pp_verdict
        (Fair_semantics.decide majority [| a; b |]))
    [ (3, 2); (2, 3); (2, 2) ];

  (* 4. Build a protocol of your own: "is there at least one B?".
     One state per answer; a B converts everyone it meets. *)
  let detector =
    Population.complete
      (Population.make ~name:"exists-b"
         ~states:[| "a"; "b" |]
         ~transitions:[ (0, 1, 1, 1) ] (* a,b -> b,b *)
         ~inputs:[ ("A", 0); ("B", 1) ]
         ~output:[| false; true |]
         ())
  in
  (* It computes x_B >= 1: *)
  (match
     Fair_semantics.check_predicate detector
       (Predicate.Threshold ([| 0; 1 |], 1))
       ~inputs:[ [| 5; 0 |]; [| 4; 1 |]; [| 0; 2 |]; [| 9; 3 |] ]
   with
  | Fair_semantics.Ok_all n -> Format.printf "exists-b verified on %d inputs@." n
  | Fair_semantics.Mismatch (v, verdict, expected) ->
    Format.printf "exists-b WRONG at %d,%d: %a (expected %b)@." v.(0) v.(1)
      Fair_semantics.pp_verdict verdict expected);

  (* 5. Protocols can be saved and reloaded in a plain-text format. *)
  let text = Protocol_syntax.to_string detector in
  print_string text;
  match Protocol_syntax.parse_string text with
  | Ok _ -> print_endline "round-trip: ok"
  | Error e -> print_endline ("round-trip failed: " ^ e)
