(* A full "state-complexity audit" of one protocol: every analysis the
   paper's proofs are built from, run end to end on the succinct
   threshold protocol for x >= 5.

     dune exec examples/state_complexity_audit.exe *)

let () =
  let p = Threshold.binary 5 in
  let names = p.Population.states in
  Format.printf "auditing %s (%d states, %d transitions)@.@." p.Population.name
    (Population.num_states p) (Population.num_transitions p);

  (* Step 1 — exact threshold (ground truth). *)
  Format.printf "step 1, exact semantics: %a@.@." Eta_search.pp_result
    (Eta_search.find p ~max_input:12);

  (* Step 2 — stable sets (Definition 2 / Lemma 3.2), computed exactly
     by backward coverability rather than bounded by beta. *)
  let analysis = Stable_sets.analyse p in
  Format.printf "step 2, stable sets: %a@." Stable_sets.pp_summary analysis;
  Format.printf "  SC_0 = %a@." (Downset.pp ~names) analysis.Stable_sets.stable0;
  Format.printf "  SC_1 = %a@." (Downset.pp ~names) analysis.Stable_sets.stable1;
  let n = Population.num_states p in
  Format.printf "  paper's beta bound for n=%d: log2 beta = %s@.@." n
    (Bignat.to_string (Factorial_bounds.beta_log2 n));

  (* Step 3 — saturation (Lemma 5.4). *)
  (match Saturation.find p with
   | Ok w ->
     Format.printf
       "step 3, saturation: input 3^%d = %d reaches the 1-saturated %a@."
       w.Saturation.levels w.Saturation.input (Mset.pp ~names) w.Saturation.result;
     Format.printf "  sequence length %d = (3^j - 1)/2; replay valid: %b@.@."
       (List.length w.Saturation.sigma) (Saturation.check w)
   | Error e -> Format.printf "step 3 failed: %s@." e);

  (* Step 4 — the Pottier basis of potentially realisable multisets
     (Definition 4 / Corollary 5.7). *)
  let basis = Potential.basis p in
  let xi = Factorial_bounds.xi_of_protocol p in
  Format.printf "step 4, Pottier basis: %d elements; xi = %s@." (List.length basis)
    (Bignat.to_string xi);
  List.iteri
    (fun i theta ->
      if i < 4 then begin
        let b, d_b = Potential.result_config p theta in
        Format.printf "  theta_%d: |theta| = %d, IC(%d) ==> %a@." i
          (Potential.size theta) b (Mset.pp ~names) d_b
      end)
    basis;
  Format.printf "  Corollary 5.7 bounds hold: %b@.@."
    (Potential.check_corollary_5_7 p basis);

  (* Step 5 — pumping witness (Section 4): the tightest bound the
     Dickson argument yields on this protocol. *)
  (match Pumping.find_witness p ~max_input:12 with
   | Ok w ->
     Format.printf "step 5, pumping: %a@.  validates: %b@.@." Pumping.pp w
       (Pumping.check w)
   | Error e -> Format.printf "step 5 failed: %s@.@." e);

  (* Step 6 — the full Lemma 5.2 certificate (Theorem 5.9's engine). *)
  (match Certificate.construct p with
   | Ok cert ->
     Format.printf "step 6, certificate: %a@.  validates: %b@.@." Certificate.pp
       cert (Certificate.check cert)
   | Error e -> Format.printf "step 6 failed: %s@.@." e);

  (* Step 7 — where this protocol sits against the paper's bounds. *)
  Format.printf "step 7, the bounds landscape for n = %d states:@." n;
  Format.printf "  constructive BB(%d) >= %d (succinct flock)@." n
    (State_complexity.busy_beaver_lower n);
  Format.printf "  Theorem 5.9: BB(%d) <= %s@." n
    (Magnitude.to_string (Factorial_bounds.theorem_5_9_simple n));
  Format.printf "  so STATE(eta) for eta = 5 lies between %d and %d states@."
    (State_complexity.loglog_lower_bound 5)
    (State_complexity.state_upper_bound 5)
