lib/bigarith/bigint.ml: Bignat Format Option
