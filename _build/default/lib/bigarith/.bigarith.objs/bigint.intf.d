lib/bigarith/bigint.mli: Bignat Format
