lib/bigarith/bignat.ml: Array Buffer Char Format List Printf Stdlib String
