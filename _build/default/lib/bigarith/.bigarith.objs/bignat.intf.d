lib/bigarith/bignat.mli: Format
