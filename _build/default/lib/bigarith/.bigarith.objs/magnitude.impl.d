lib/bigarith/magnitude.ml: Bignat Format Printf
