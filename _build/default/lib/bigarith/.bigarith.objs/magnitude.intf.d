lib/bigarith/magnitude.mli: Bignat Format
