(* Sign-magnitude representation; zero is always [Pos Bignat.zero]. *)

type t =
  | Pos of Bignat.t
  | Neg of Bignat.t (* invariant: magnitude is non-zero *)

let zero = Pos Bignat.zero
let of_bignat n = Pos n

let of_int n =
  if n >= 0 then Pos (Bignat.of_int n) else Neg (Bignat.of_int (-n))

let one = of_int 1
let minus_one = of_int (-1)

let to_bignat_opt = function Pos n -> Some n | Neg _ -> None

let sign = function
  | Pos n -> if Bignat.is_zero n then 0 else 1
  | Neg _ -> -1

let neg = function
  | Pos n when Bignat.is_zero n -> zero
  | Pos n -> Neg n
  | Neg n -> Pos n

let abs = function Pos n | Neg n -> n

let add a b =
  match (a, b) with
  | Pos x, Pos y -> Pos (Bignat.add x y)
  | Neg x, Neg y -> Neg (Bignat.add x y)
  | Pos x, Neg y | Neg y, Pos x ->
    let c = Bignat.compare x y in
    if c >= 0 then Pos (Bignat.sub x y) else Neg (Bignat.sub y x)

let sub a b = add a (neg b)

let mul a b =
  let m = Bignat.mul (abs a) (abs b) in
  if Bignat.is_zero m then zero
  else if sign a * sign b >= 0 then Pos m
  else Neg m

let compare a b =
  match (a, b) with
  | Pos x, Pos y -> Bignat.compare x y
  | Neg x, Neg y -> Bignat.compare y x
  | Pos _, Neg _ -> 1
  | Neg _, Pos _ -> -1

let equal a b = compare a b = 0

let to_int_opt = function
  | Pos n -> Bignat.to_int_opt n
  | Neg n -> Option.map (fun v -> -v) (Bignat.to_int_opt n)

let to_string = function
  | Pos n -> Bignat.to_string n
  | Neg n -> "-" ^ Bignat.to_string n

let pp fmt x = Format.pp_print_string fmt (to_string x)
