(** Arbitrary-precision signed integers, built on {!Bignat}.

    Used for displacement arithmetic whose intermediate values may be
    negative (e.g. aggregated transition displacements scaled by bignat
    coefficients). *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_bignat : Bignat.t -> t
val to_bignat_opt : t -> Bignat.t option
(** [Some] iff the value is non-negative. *)

val to_int_opt : t -> int option

val sign : t -> int
(** -1, 0 or 1. *)

val neg : t -> t
val abs : t -> Bignat.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
