(* Little-endian limbs in base 2^30, without trailing zero limbs.  The base is
   chosen so that a limb product (< 2^60) plus carries fits in a 63-bit
   OCaml int. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let is_zero x = Array.length x = 0

(* Strip trailing zero limbs so that the representation is canonical. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count k acc = if acc = 0 then k else count (k + 1) (acc lsr limb_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let rec fill i acc =
      if acc <> 0 then begin
        a.(i) <- acc land limb_mask;
        fill (i + 1) (acc lsr limb_bits)
      end
    in
    fill 0 n;
    a
  end

let one = of_int 1
let two = of_int 2

let to_int_opt x =
  (* An int holds at most 62 bits; accept anything that reconstructs without
     overflow. *)
  let n = Array.length x in
  if n > 3 then None
  else begin
    let rec go i acc =
      if i < 0 then Some acc
      else
        let shifted = acc * base in
        if shifted / base <> acc || shifted < 0 then None
        else
          let v = shifted + x.(i) in
          if v < 0 then None else go (i - 1) v
    in
    go (n - 1) 0
  end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bignat.to_int_exn: does not fit in an int"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let succ x = add x one

let sub_gen ~clamp (a : t) (b : t) : t =
  if compare a b < 0 then
    if clamp then zero else invalid_arg "Bignat.sub: negative result"
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    normalize r
  end

let sub a b = sub_gen ~clamp:false a b
let sub_clamped a b = sub_gen ~clamp:true a b

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let karatsuba_threshold = 32

(* Split [a] into (low, high) at limb index [k]. *)
let split_at (a : t) k =
  let la = Array.length a in
  if la <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (la - k))

let shift_limbs (a : t) k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let k = (Stdlib.max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

let mul_int a k =
  if k < 0 then invalid_arg "Bignat.mul_int: negative"
  else mul a (of_int k)

let bits (x : t) =
  let n = Array.length x in
  if n = 0 then 0
  else begin
    let top = x.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top
  end

let log2_floor x =
  if is_zero x then invalid_arg "Bignat.log2_floor: zero" else bits x - 1

let testbit (x : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length x && (x.(limb) lsr off) land 1 = 1

let shift_left (x : t) k =
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length x in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = x.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right (x : t) k =
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length x in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = x.(i + limbs) lsr off in
        let hi =
          if off = 0 || i + limbs + 1 >= la then 0
          else (x.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let pow2 k =
  if k < 0 then invalid_arg "Bignat.pow2: negative" else shift_left one k

(* Shift-and-subtract long division, one bit at a time.  Quadratic, which is
   fine for the sizes this library prints or divides. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  let c = compare a b in
  if c < 0 then (zero, a)
  else if c = 0 then (one, zero)
  else begin
    let nbits = bits a in
    let qlimbs = (nbits + limb_bits - 1) / limb_bits in
    let q = Array.make qlimbs 0 in
    let r = ref zero in
    for i = nbits - 1 downto 0 do
      r := shift_left !r 1;
      if testbit a i then r := add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let divmod_int (a : t) k =
  if k <= 0 || k >= base then invalid_arg "Bignat.divmod_int: divisor range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / k;
    r := cur mod k
  done;
  (normalize q, !r)

let pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let factorial n =
  if n < 0 then invalid_arg "Bignat.factorial: negative";
  let acc = ref one in
  for i = 2 to n do
    acc := mul_int !acc i
  done;
  !acc

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let of_string s =
  let acc = ref zero in
  let seen = ref false in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
        seen := true;
        acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Bignat.of_string: malformed numeral")
    s;
  if not !seen then invalid_arg "Bignat.of_string: empty numeral";
  !acc

let to_string x =
  if is_zero x then "0"
  else begin
    (* Peel 9 decimal digits at a time. *)
    let chunk = 1_000_000_000 in
    let buf = Buffer.create 32 in
    let rec go x acc =
      if is_zero x then acc
      else
        let q, r = divmod_int x chunk in
        go q (r :: acc)
    in
    match go x [] with
    | [] -> "0"
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest;
      Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)
