(** Arbitrary-precision natural numbers.

    The sealed build environment provides no [zarith]; this module implements
    the natural-number arithmetic needed to evaluate the paper's constants
    ([3^n], [(2n+2)!], the Pottier constant [xi], …) and to print them.

    Numbers are immutable. All operations are total unless documented
    otherwise; subtraction is truncated at zero by [sub_clamped] and partial
    in [sub]. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative machine integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] iff [x] fits in a non-negative [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in an [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].
    @raise Invalid_argument if [b > a]. *)

val sub_clamped : t -> t -> t
(** [sub_clamped a b] is [max 0 (a - b)]. *)

val mul : t -> t -> t
(** Schoolbook multiplication with Karatsuba above an internal threshold. *)

val mul_schoolbook : t -> t -> t
(** Plain quadratic multiplication, exposed for the benchmark harness's
    Karatsuba ablation. Results agree with {!mul}. *)

val mul_int : t -> int -> t
(** [mul_int a k] with [k >= 0]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_int : t -> int -> t * int
(** [divmod_int a k] for [1 <= k < 2^30]. *)

val pow : t -> int -> t
(** [pow b e] is [b] raised to the non-negative machine integer [e]. *)

val pow2 : int -> t
(** [pow2 k] is [2^k] for [k >= 0]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bits : t -> int
(** [bits x] is the position of the highest set bit plus one; [bits zero = 0].
    Hence [x < 2^(bits x)] and, for [x > 0], [2^(bits x - 1) <= x]. *)

val log2_floor : t -> int
(** [log2_floor x] for [x > 0].  @raise Invalid_argument on zero. *)

val testbit : t -> int -> bool

val factorial : int -> t
(** [factorial n] is [n!] for [n >= 0]. *)

val gcd : t -> t -> t

val of_string : string -> t
(** Parses a decimal numeral (optional [_] separators allowed).
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. Intended for values up to a few hundred thousand
    bits; see {!Magnitude} for anything larger. *)

val pp : Format.formatter -> t -> unit
