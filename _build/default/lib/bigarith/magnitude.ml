type t =
  | Num of Bignat.t
  | Exp2 of t (* value 2^m; invariant: the exponent does not collapse *)

(* Exponents at most this size are materialised, keeping small towers
   concrete so that comparisons stay exact. *)
let collapse_bits = 20_000

let of_bignat n = Num n
let of_int n = Num (Bignat.of_int n)

let rec exp2 m =
  match m with
  | Num e ->
    (match Bignat.to_int_opt e with
     | Some k when k <= collapse_bits -> Num (Bignat.pow2 k)
     | _ -> Exp2 m)
  | Exp2 _ -> Exp2 (exp2_norm m)

(* Re-normalise a tower bottom-up (used when towers are built by hand). *)
and exp2_norm m = match m with Num _ -> m | Exp2 inner -> exp2 inner

let exp2_bignat e = exp2 (Num e)

let to_bignat_opt = function Num n -> Some n | Exp2 _ -> None

let is_pow2 n =
  (not (Bignat.is_zero n)) && Bignat.equal n (Bignat.pow2 (Bignat.log2_floor n))

let rec compare a b =
  match (a, b) with
  | Num x, Num y -> Bignat.compare x y
  | Exp2 x, Exp2 y -> compare x y
  | Num x, Exp2 m ->
    (* x < 2^m  iff  bits(x) <= m;  x = 2^m iff x is a power of two with
       log2 x = m. *)
    let bits_cmp = compare (Num (Bignat.of_int (Bignat.bits x))) m in
    if bits_cmp <= 0 then -1
    else if is_pow2 x && compare (Num (Bignat.of_int (Bignat.log2_floor x))) m = 0
    then 0
    else 1
  | Exp2 _, Num _ -> -compare b a

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let log2_floor = function
  | Num n ->
    if Bignat.is_zero n then invalid_arg "Magnitude.log2_floor: zero"
    else Num (Bignat.of_int (Bignat.log2_floor n))
  | Exp2 m -> m

(* ceil(log2 x) as a magnitude; on towers it equals the exponent. *)
let log2_ceil = function
  | Num n ->
    if Bignat.is_zero n then invalid_arg "Magnitude.log2_ceil: zero"
    else if is_pow2 n then Num (Bignat.of_int (Bignat.log2_floor n))
    else Num (Bignat.of_int (Bignat.bits n))
  | Exp2 m -> m

let rec add_upper a b =
  match (a, b) with
  | Num x, Num y -> Num (Bignat.add x y)
  | _ ->
    if compare a (Num Bignat.zero) = 0 then b
    else if compare b (Num Bignat.zero) = 0 then a
    else
      (* a + b <= 2 * max a b = 2^(log2_ceil (max a b) + 1). *)
      exp2 (add_upper (log2_ceil (max a b)) (Num Bignat.one))

let mul_upper a b =
  match (a, b) with
  | Num x, Num y -> Num (Bignat.mul x y)
  | _ ->
    if compare a (Num Bignat.zero) = 0 || compare b (Num Bignat.zero) = 0 then
      Num Bignat.zero
    else exp2 (add_upper (log2_ceil a) (log2_ceil b))

let rec tower_height = function Num _ -> 0 | Exp2 m -> 1 + tower_height m

let rec to_string = function
  | Num n ->
    if Bignat.bits n <= 128 then Bignat.to_string n
    else Printf.sprintf "~2^%d" (Bignat.log2_floor n)
  | Exp2 m -> "2^(" ^ to_string m ^ ")"

let pp fmt x = Format.pp_print_string fmt (to_string x)
