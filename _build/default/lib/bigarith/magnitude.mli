(** Magnitudes: numbers too large to materialise, as iterated exponentials.

    The paper's constants — e.g. the small-basis constant
    [beta = 2^(2(2n+1)!+1)] (Definition 3) or the Theorem 5.9 bound
    [2^((2n+2)!)] — do not fit in memory even as bignats for moderate [n].
    A magnitude is either a concrete {!Bignat.t} or [2^m] for a magnitude
    [m], i.e. a tower of twos over a bignat.

    Comparison between magnitudes is exact (towers of twos are
    well-ordered by their exponents, and concrete-vs-tower comparisons
    reduce to bit lengths). [mul_upper]/[add_upper] are the only
    approximate operations and always round {e up}. *)

type t

val of_bignat : Bignat.t -> t
val of_int : int -> t

val exp2 : t -> t
(** [exp2 m] is the magnitude [2^m].  Small results are collapsed back to
    concrete bignats, so comparisons stay exact. *)

val exp2_bignat : Bignat.t -> t
(** [exp2_bignat e] is [2^e] with a concrete bignat exponent. *)

val to_bignat_opt : t -> Bignat.t option
(** The concrete value if the magnitude is (or collapses to) a bignat. *)

val compare : t -> t -> int
(** Exact comparison. *)

val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val log2_floor : t -> t
(** [log2_floor (exp2 m) = m]; on concrete values, the usual floor.
    @raise Invalid_argument on zero. *)

val mul_upper : t -> t -> t
(** An upper bound on the product: exact on two concrete values, and
    within a factor [2] per concrete operand otherwise. *)

val add_upper : t -> t -> t
(** An upper bound on the sum: exact on two concrete values, otherwise at
    most twice the true value. *)

val tower_height : t -> int
(** Number of [exp2] constructors after normalisation. *)

val to_string : t -> string
(** Decimal for small values, ["2^(...)"] towers otherwise. *)

val pp : Format.formatter -> t -> unit
