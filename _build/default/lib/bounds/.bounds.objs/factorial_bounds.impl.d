lib/bounds/factorial_bounds.ml: Bignat Magnitude Population Stdlib
