lib/bounds/factorial_bounds.mli: Bignat Magnitude Population
