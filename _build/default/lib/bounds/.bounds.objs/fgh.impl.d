lib/bounds/fgh.ml:
