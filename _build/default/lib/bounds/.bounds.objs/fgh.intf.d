lib/bounds/fgh.mli:
