lib/bounds/rackoff.ml: Bignat Factorial_bounds Magnitude
