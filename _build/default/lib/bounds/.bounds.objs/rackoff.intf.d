lib/bounds/rackoff.mli: Bignat Magnitude
