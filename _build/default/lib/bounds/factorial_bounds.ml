let beta_log2 n =
  if n < 0 then invalid_arg "Factorial_bounds.beta_log2: n >= 0";
  Bignat.succ (Bignat.mul_int (Bignat.factorial ((2 * n) + 1)) 2)

let beta n = Magnitude.exp2_bignat (beta_log2 n)
let theta n = Magnitude.exp2_bignat (Bignat.factorial ((2 * n) + 2))

let xi ~num_states ~num_transitions =
  if num_states < 0 || num_transitions < 0 then
    invalid_arg "Factorial_bounds.xi: negative argument";
  Bignat.mul_int
    (Bignat.pow (Bignat.of_int ((2 * num_transitions) + 1)) num_states)
    2

let xi_deterministic ~num_states =
  Bignat.mul_int (Bignat.pow (Bignat.of_int (num_states + 2)) num_states) 2

let xi_of_protocol p =
  xi ~num_states:(Population.num_states p)
    ~num_transitions:(Population.num_transitions p)

let three_pow n = Bignat.pow (Bignat.of_int 3) n

let theorem_5_9 ~num_states ~num_transitions =
  let n = num_states in
  let xi = xi ~num_states ~num_transitions in
  (* ξ·n·3^n is an ordinary bignat; fold it into β's exponent as an
     exact product with the power of two. *)
  let small = Bignat.mul xi (Bignat.mul_int (three_pow n) (Stdlib.max n 1)) in
  Magnitude.mul_upper (Magnitude.of_bignat small) (beta n)

let theorem_5_9_simple n = Magnitude.exp2_bignat (Bignat.factorial ((2 * n) + 2))

let max_transitions n =
  let pairs = n * (n + 1) / 2 in
  pairs * pairs
