(** The paper's explicit constants, as exact big numbers or magnitudes.

    For a protocol with [n] states and [|T|] transitions:
    - the small-basis constant [β = 2^(2(2n+1)!+1)] (Definition 3),
    - the basis-size bound [ϑ(n) = 2^((2n+2)!)] (Lemma 3.2),
    - the Pottier constant [ξ = 2(2|T|+1)^|Q|] (Definition 6), and
    - Theorem 5.9's leaderless busy-beaver bound
      [BB(n) <= ξ·n·β·3^n <= 2^((2n+2)!)]. *)

val beta : int -> Magnitude.t
(** [beta n] is [2^(2(2n+1)! + 1)]. *)

val beta_log2 : int -> Bignat.t
(** [2(2n+1)! + 1], the exact base-2 logarithm of [beta n]. *)

val theta : int -> Magnitude.t
(** [theta n] is [2^((2n+2)!)], Lemma 3.2's bound on the number of
    basis elements. *)

val xi : num_states:int -> num_transitions:int -> Bignat.t
(** Definition 6: [2(2|T|+1)^|Q|]. *)

val xi_deterministic : num_states:int -> Bignat.t
(** Remark 1: [2(|Q|+2)^|Q|] suffices for deterministic protocols. *)

val xi_of_protocol : Population.t -> Bignat.t

val three_pow : int -> Bignat.t
(** [3^n], the saturation input bound of Lemma 5.4. *)

val theorem_5_9 : num_states:int -> num_transitions:int -> Magnitude.t
(** The explicit bound [ξ·n·β·3^n] on [eta] for a leaderless protocol. *)

val theorem_5_9_simple : int -> Magnitude.t
(** The simplified bound [2^((2n+2)!)]. *)

val max_transitions : int -> int
(** The number of unordered state pairs squared — an upper bound
    [|T| <= (n(n+1)/2)^2] used when only [n] is known. *)
