let overflow_guard = max_int / 2

let rec f k x =
  if k < 0 || x < 0 then invalid_arg "Fgh.f: negative argument";
  (* Closed forms for the first two levels: iterating F_0 to evaluate
     F_1(x) would cost x steps, making overflow detection at higher
     levels exponentially slow. *)
  if k = 0 then if x >= overflow_guard then None else Some (x + 1)
  else if k = 1 then if x >= overflow_guard / 2 then None else Some ((2 * x) + 1)
  else begin
    (* F_{k+1}(x) = F_k applied x+1 times to x *)
    let rec iterate times acc =
      if times = 0 then Some acc
      else
        match f (k - 1) acc with
        | None -> None
        | Some acc' -> if acc' > overflow_guard then None else iterate (times - 1) acc'
    in
    iterate (x + 1) x
  end

let f_omega x = f x x

let ackermann m n =
  if m < 0 || n < 0 then invalid_arg "Fgh.ackermann: negative argument";
  (* Iterative evaluation with an explicit stack of pending outer
     arguments (A(m,n) = A(m-1, A(m, n-1))), so that the evaluation
     budget is hit long before any memory pressure. *)
  let exception Overflow in
  let fuel = ref 5_000_000 in
  let rec loop stack n =
    decr fuel;
    if !fuel <= 0 || n >= overflow_guard then raise Overflow;
    match stack with
    | [] -> n
    | 0 :: rest -> loop rest (n + 1)
    | m :: rest ->
      if n = 0 then loop ((m - 1) :: rest) 1
      else loop (m :: (m - 1) :: rest) (n - 1)
  in
  match loop [ m ] n with v -> Some v | exception Overflow -> None

let inverse_ackermann n =
  let rec go m =
    match ackermann m m with
    | Some v when v >= n -> m
    | Some _ -> go (m + 1)
    | None -> m (* A(m,m) overflowed, so it certainly exceeds n *)
  in
  go 0
