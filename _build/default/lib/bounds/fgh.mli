(** The Fast Growing Hierarchy (used in Lemma 4.4 / Theorem 4.5) and the
    Ackermann function, evaluated exactly where machine integers allow.

    [F_0(x) = x + 1], [F_{k+1}(x) = F_k^{x+1}(x)], and
    [F_ω(x) = F_x(x)]. Level [F_ω] — "roughly, the Ackermann function"
    in the paper's words — is where the busy-beaver bound for protocols
    with leaders lives. Evaluation overflows almost immediately, which
    is the point: the results double as a demonstration of how fast the
    Theorem 4.5 bound grows. *)

val f : int -> int -> int option
(** [f k x] is [F_k(x)], or [None] on machine-integer overflow. *)

val f_omega : int -> int option
(** [F_ω(x) = F_x(x)]. *)

val ackermann : int -> int -> int option
(** The two-argument Ackermann–Péter function; [None] when the value
    overflows a machine integer or the evaluation budget runs out
    (in which case the value is astronomically large anyway). *)

val inverse_ackermann : int -> int
(** [inverse_ackermann n]: the least [m] with [A(m, m) >= n] — the
    shape of the paper's state-complexity lower bound for protocols
    with leaders (Section 6). At most 4 for any representable [n]. *)
