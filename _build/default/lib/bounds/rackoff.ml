let log2_bound ~dim ~weight =
  if dim < 0 || weight < 1 then invalid_arg "Rackoff.log2_bound: bad arguments";
  (* lg ℓ(i+1) <= (i+1)·(1 + lg W + lg ℓ(i)) + 1, taking lg W rounded up. *)
  let lg_w = Bignat.of_int (if weight = 1 then 0 else Bignat.bits (Bignat.of_int (weight - 1))) in
  let rec go i acc =
    if i >= dim then acc
    else begin
      let step =
        Bignat.succ
          (Bignat.mul_int (Bignat.add (Bignat.succ lg_w) acc) (i + 1))
      in
      go (i + 1) step
    end
  in
  go 0 Bignat.zero

let magnitude ~dim ~weight = Magnitude.exp2_bignat (log2_bound ~dim ~weight)
let paper_beta n = Factorial_bounds.beta n
