(** Rackoff-style length bounds for covering sequences [26].

    Lemma 3.2's proof truncates stable configurations at [2β] because a
    covering sequence of length at most [β] exists whenever any covering
    sequence does. This module computes (the base-2 logarithm of) the
    classic Rackoff recurrence

    [ℓ(0) = 1],  [ℓ(i+1) = (2·W·ℓ(i))^(i+1) + ℓ(i)],

    where [i] counts unbounded coordinates and [W] bounds transition
    effects and the target norm; [ℓ(dim)] bounds the length of some
    covering sequence. The paper replaces this protocol-specific bound
    by the uniform [β] of Definition 3. *)

val log2_bound : dim:int -> weight:int -> Bignat.t
(** An upper bound on [log2 (ℓ(dim))] for effect/target weight
    [weight >= 1]. *)

val magnitude : dim:int -> weight:int -> Magnitude.t
(** [2^(log2_bound …)], comparable against [Factorial_bounds.beta]. *)

val paper_beta : int -> Magnitude.t
(** The uniform bound the paper uses instead: [β] of Definition 3. *)
