lib/constructions/catalog.ml: Flock Leader_counter Majority Modulo_protocol Option Population Predicate Printf String Threshold
