lib/constructions/catalog.mli: Population Predicate
