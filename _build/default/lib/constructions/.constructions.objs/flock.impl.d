lib/constructions/flock.ml: Array Population Printf Threshold
