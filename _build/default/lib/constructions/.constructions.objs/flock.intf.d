lib/constructions/flock.mli: Population
