lib/constructions/leader_counter.ml: Array List Population Printf
