lib/constructions/leader_counter.mli: Population
