lib/constructions/majority.ml: Population
