lib/constructions/majority.mli: Population
