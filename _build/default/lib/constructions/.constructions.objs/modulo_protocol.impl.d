lib/constructions/modulo_protocol.ml: Array Population Printf
