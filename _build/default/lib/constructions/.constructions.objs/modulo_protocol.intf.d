lib/constructions/modulo_protocol.mli: Population
