lib/constructions/threshold.ml: Array Hashtbl List Population Printf
