lib/constructions/threshold.mli: Population
