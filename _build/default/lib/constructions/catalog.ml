type entry = {
  name : string;
  description : string;
  spec : Predicate.t;
  build : unit -> Population.t;
}

let flock_naive k =
  {
    name = Printf.sprintf "flock-naive-%d" k;
    description = Printf.sprintf "Example 2.1's P_%d: x >= %d with %d states" k (1 lsl k) ((1 lsl k) + 1);
    spec = Predicate.threshold_single (1 lsl k);
    build = (fun () -> Flock.naive k);
  }

let flock_succinct k =
  {
    name = Printf.sprintf "flock-succinct-%d" k;
    description = Printf.sprintf "Example 2.1's P'_%d: x >= %d with %d states" k (1 lsl k) (k + 2);
    spec = Predicate.threshold_single (1 lsl k);
    build = (fun () -> Flock.succinct k);
  }

let threshold_unary eta =
  {
    name = Printf.sprintf "threshold-unary-%d" eta;
    description = Printf.sprintf "unary x >= %d (baseline, %d states)" eta (eta + 1);
    spec = Predicate.threshold_single eta;
    build = (fun () -> Threshold.unary eta);
  }

let threshold_binary eta =
  {
    name = Printf.sprintf "threshold-binary-%d" eta;
    description =
      Printf.sprintf "binary x >= %d (succinct, %d states)" eta
        (Threshold.binary_num_states eta);
    spec = Predicate.threshold_single eta;
    build = (fun () -> Threshold.binary eta);
  }

let majority =
  {
    name = "majority";
    description = "4-state majority: x_A > x_B";
    spec = Predicate.majority ();
    build = (fun () -> Majority.protocol ());
  }

let modulo m r =
  {
    name = Printf.sprintf "mod-%d-%d" m r;
    description = Printf.sprintf "x ≡ %d (mod %d) with %d states" r m (m + 2);
    spec = Predicate.Modulo ([| 1 |], r, m);
    build = (fun () -> Modulo_protocol.protocol ~m ~r);
  }

let leader_counter k =
  {
    name = Printf.sprintf "leader-counter-%d" k;
    description =
      Printf.sprintf "x >= %d via a %d-bit leader counter (%d states, %d leaders)"
        (1 lsl k) k ((3 * k) + 2) k;
    spec = Predicate.threshold_single (1 lsl k);
    build = (fun () -> Leader_counter.protocol k);
  }

let default_entries () =
  [
    flock_naive 1; flock_naive 2; flock_naive 3;
    flock_succinct 1; flock_succinct 2; flock_succinct 3; flock_succinct 4;
    threshold_unary 3; threshold_unary 5;
    threshold_binary 3; threshold_binary 5; threshold_binary 6;
    threshold_binary 9; threshold_binary 11; threshold_binary 13;
    majority;
    modulo 2 0; modulo 3 1;
    leader_counter 1; leader_counter 2; leader_counter 3;
  ]

let int_of_suffix prefix name =
  let lp = String.length prefix and ln = String.length name in
  if ln > lp && String.sub name 0 lp = prefix then
    int_of_string_opt (String.sub name lp (ln - lp))
  else None

let build name =
  let ( >>= ) o f = Option.bind o f in
  let try_param prefix make = int_of_suffix prefix name >>= fun k -> Some (make k) in
  let parse_mod () =
    match String.split_on_char '-' name with
    | [ "mod"; m; r ] ->
      (match (int_of_string_opt m, int_of_string_opt r) with
       | Some m, Some r when m >= 1 && r >= 0 && r < m -> Some (modulo m r)
       | _ -> None)
    | _ -> None
  in
  if name = "majority" then Some majority
  else
    match try_param "flock-naive-" flock_naive with
    | Some _ as r -> r
    | None ->
      (match try_param "flock-succinct-" flock_succinct with
       | Some _ as r -> r
       | None ->
         (match try_param "threshold-unary-" threshold_unary with
          | Some _ as r -> r
          | None ->
            (match try_param "threshold-binary-" threshold_binary with
             | Some _ as r -> r
             | None ->
               (match try_param "leader-counter-" leader_counter with
                | Some _ as r -> r
                | None -> parse_mod ()))))

let names_help =
  "flock-naive-K | flock-succinct-K | threshold-unary-N | threshold-binary-N \
   | majority | mod-M-R | leader-counter-K"
