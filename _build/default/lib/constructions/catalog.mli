(** A registry of the protocol constructions, with the predicate each
    one is specified to compute. CLI tools and benchmarks look
    protocols up here by name. *)

type entry = {
  name : string;
  description : string;
  spec : Predicate.t;  (** the predicate the protocol claims to compute *)
  build : unit -> Population.t;
}

val default_entries : unit -> entry list
(** A representative finite selection (used by tests and benches). *)

val build : string -> entry option
(** Parses parameterised names: [flock-naive-K], [flock-succinct-K],
    [threshold-unary-N], [threshold-binary-N], [majority], [mod-M-R],
    [leader-counter-K]. *)

val names_help : string
(** One-line description of the accepted name syntax. *)
