let naive k =
  if k < 0 then invalid_arg "Flock.naive: k >= 0 required";
  Population.rename (Threshold.unary (1 lsl k)) (Printf.sprintf "flock-naive-%d" k)

let succinct k =
  if k < 0 then invalid_arg "Flock.succinct: k >= 0 required";
  if k = 0 then
    Population.rename (Threshold.binary 1) "flock-succinct-0"
  else begin
    (* States: value 0 and the powers 2^0 .. 2^k. *)
    let states =
      Array.init (k + 2) (fun i ->
          if i = 0 then "v0" else Printf.sprintf "v%d" (1 lsl (i - 1)))
    in
    (* state i>0 carries value 2^(i-1); state 0 carries 0 *)
    let top = k + 1 in
    let transitions = ref [] in
    for i = 1 to k do
      (* 2^(i-1), 2^(i-1) -> 0, 2^i *)
      transitions := (i, i, 0, i + 1) :: !transitions
    done;
    for i = 0 to k + 1 do
      transitions := (i, top, top, top) :: !transitions
    done;
    let output = Array.init (k + 2) (fun i -> i = top) in
    Population.make
      ~name:(Printf.sprintf "flock-succinct-%d" k)
      ~states ~transitions:!transitions
      ~inputs:[ ("x", 1) ]
      ~output ()
    |> Population.complete
  end
