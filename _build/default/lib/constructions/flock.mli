(** The two protocols of Example 2.1, computing [x >= 2^k].

    [P_k] ({!naive}) has [2^k + 1] states; [P'_k] ({!succinct}) has
    [k + 2] states (the values [0, 2^0, …, 2^k] — the paper counts
    [k + 1] by leaving the idle value [0] implicit). Together they
    witness the exponential succinctness gap the paper's busy-beaver
    question is about. *)

val naive : int -> Population.t
(** [naive k] is [P_k] for [k >= 0]. *)

val succinct : int -> Population.t
(** [succinct k] is [P'_k] for [k >= 0]: transitions
    [2^i, 2^i ↦ 0, 2^(i+1)] and [a, 2^k ↦ 2^k, 2^k]. *)
