let protocol k =
  if k < 1 then invalid_arg "Leader_counter.protocol: k >= 1 required";
  (* Agent states. A token is a pending increment of weight 2^0; carry_i a
     pending increment of weight 2^i. *)
  let token = 0 in
  let used = 1 in
  let flag = 2 in
  let carry i = if i = 0 then token else 2 + i (* carry_1 .. carry_(k-1) *) in
  let num_agent_states = 2 + k (* token, used, F, carry_1..carry_(k-1) *) in
  let bit i b = num_agent_states + (2 * i) + b in
  let num_states = num_agent_states + (2 * k) in
  let states =
    Array.init num_states (fun s ->
        if s = token then "token"
        else if s = used then "used"
        else if s = flag then "F"
        else if s < num_agent_states then Printf.sprintf "carry%d" (s - 2)
        else begin
          let r = s - num_agent_states in
          Printf.sprintf "bit%d_%d" (r / 2) (r mod 2)
        end)
  in
  let transitions = ref [] in
  for i = 0 to k - 1 do
    (* a weight-2^i increment meets bit i: 0 -> 1 absorbs it; 1 -> 0 turns
       it into a weight-2^(i+1) increment (or the flag if it overflows). *)
    transitions := (carry i, bit i 0, used, bit i 1) :: !transitions;
    let promoted = if i = k - 1 then flag else carry (i + 1) in
    transitions := (carry i, bit i 1, promoted, bit i 0) :: !transitions
  done;
  for s = 0 to num_states - 1 do
    if s <> flag then transitions := (flag, s, flag, flag) :: !transitions
  done;
  let output = Array.init num_states (fun s -> s = flag) in
  let leaders = List.init k (fun i -> (bit i 0, 1)) in
  Population.make
    ~name:(Printf.sprintf "leader-counter-%d" k)
    ~states ~transitions:!transitions ~leaders
    ~inputs:[ ("x", token) ]
    ~output ()
  |> Population.complete
