(** A protocol {e with leaders} computing [x >= 2^k]: the population's
    tokens increment a [k]-bit binary counter distributed over [k]
    one-bit leader agents; a carry out of the top bit certifies
    [x >= 2^k] and an accepting flag floods the population.

    This exercises the leader machinery of the model (Section 2.2, the
    multiset [L]) with [3k + 2] states and [k] leaders. It sits between
    the unary and binary leaderless constructions in succinctness; the
    doubly-exponential leader family behind Theorem 2.2's
    [BB_L(n) ∈ Ω(2^(2^n))] (Blondin et al. [12]) is out of scope — see
    DESIGN.md. *)

val protocol : int -> Population.t
(** [protocol k] for [k >= 1].  States: agent states [token] ([= x]),
    [used], [carry1 .. carry(k-1)], flag [F]; leader states [bit_i_0],
    [bit_i_1] for [i < k], with one leader starting in each [bit_i_0]. *)
