let protocol () =
  let states = [| "A"; "B"; "a"; "b" |] in
  let transitions =
    [
      (0, 1, 2, 3); (* A,B -> a,b : cancellation *)
      (0, 3, 0, 2); (* A,b -> A,a : active A converts *)
      (1, 2, 1, 3); (* B,a -> B,b : active B converts *)
      (2, 3, 3, 3); (* a,b -> b,b : b wins among passives (ties -> 0) *)
    ]
  in
  Population.make ~name:"majority" ~states ~transitions
    ~inputs:[ ("A", 0); ("B", 1) ]
    ~output:[| true; false; true; false |]
    ()
  |> Population.complete
