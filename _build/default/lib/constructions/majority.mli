(** The classic 4-state majority protocol, deciding [x_A > x_B]
    (ties rejected).

    Majority is the paper's opening example of a Presburger predicate
    decidable by population protocols (Section 1). States: active
    [A]/[B] and passive [a]/[b]; actives cancel pairwise, surviving
    actives convert passives, and passive [b] wins over passive [a] so
    that ties stabilise to output 0. *)

val protocol : unit -> Population.t
(** Input variables [A] then [B]; output 1 on states [A] and [a]. *)
