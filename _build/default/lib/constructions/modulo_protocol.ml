let protocol ~m ~r =
  if m < 1 then invalid_arg "Modulo.protocol: m >= 1 required";
  if r < 0 || r >= m then invalid_arg "Modulo.protocol: 0 <= r < m required";
  (* States 0..m-1: active accumulator holding a residue.
     States m (passive-no) and m+1 (passive-yes): copies of the verdict. *)
  let passive_no = m and passive_yes = m + 1 in
  let states =
    Array.init (m + 2) (fun i ->
        if i < m then Printf.sprintf "acc%d" i
        else if i = passive_no then "no"
        else "yes")
  in
  let verdict v = if v = r then passive_yes else passive_no in
  let transitions = ref [] in
  for u = 0 to m - 1 do
    for v = u to m - 1 do
      let s = (u + v) mod m in
      transitions := (u, v, s, verdict s) :: !transitions
    done;
    (* the accumulator re-stamps passives with its current verdict *)
    transitions := (u, passive_no, u, verdict u) :: !transitions;
    transitions := (u, passive_yes, u, verdict u) :: !transitions
  done;
  let output = Array.init (m + 2) (fun i -> i = passive_yes || i = r) in
  Population.make
    ~name:(Printf.sprintf "mod-%d-%d" m r)
    ~states ~transitions:!transitions
    ~inputs:[ ("x", 1 mod m) ]
    ~output ()
  |> Population.complete
