(** Modulo protocols: deciding [x ≡ r (mod m)].

    Together with thresholds, modulo predicates generate (under boolean
    combinations) everything population protocols can compute [8].
    One agent accumulates the sum of all values modulo [m]; the others
    turn passive and copy the accumulator's verdict. [m + 2] states. *)

val protocol : m:int -> r:int -> Population.t
(** @raise Invalid_argument unless [m >= 1] and [0 <= r < m]. *)
