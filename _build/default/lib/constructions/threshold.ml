let trivial_accepting name =
  Population.make ~name ~states:[| "yes" |]
    ~transitions:[ (0, 0, 0, 0) ]
    ~inputs:[ ("x", 0) ]
    ~output:[| true |] ()

let unary eta =
  if eta < 1 then invalid_arg "Threshold.unary: eta >= 1 required";
  if eta = 1 then trivial_accepting "threshold-unary-1"
  else begin
    (* States are the values 0..eta; two agents pool their values onto one
       of them, capping at eta; value eta is accepting and absorbing. *)
    let states = Array.init (eta + 1) (fun v -> Printf.sprintf "v%d" v) in
    let transitions = ref [] in
    for a = 0 to eta do
      for b = a to eta do
        let s = a + b in
        if s >= eta then begin
          if not (a = eta && b = eta) then
            transitions := (a, b, eta, eta) :: !transitions
        end
        else if s <> b || a <> 0 then transitions := (a, b, 0, s) :: !transitions
      done
    done;
    let output = Array.init (eta + 1) (fun v -> v = eta) in
    Population.make
      ~name:(Printf.sprintf "threshold-unary-%d" eta)
      ~states ~transitions:!transitions
      ~inputs:[ ("x", 1) ]
      ~output ()
    |> Population.complete
  end

(* Set bits of [eta], most significant first. *)
let set_bits eta =
  let rec go i acc =
    if i > 62 then acc
    else go (i + 1) (if eta land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

(* The value set of [binary eta]: 0, all powers of two up to the top bit
   of eta, and the proper prefix sums of eta's binary expansion with at
   least two terms (the "collectors"). The accepting flag T is appended
   separately by the caller. *)
let value_set eta =
  let bits = set_bits eta in
  let top = match bits with b :: _ -> b | [] -> assert false in
  let powers = List.init (top + 1) (fun i -> 1 lsl i) in
  let prefixes =
    match bits with
    | [] -> []
    | b1 :: rest ->
      let _, acc =
        List.fold_left
          (fun (sum, acc) b ->
            let sum = sum + (1 lsl b) in
            (sum, if sum < eta then sum :: acc else acc))
          (1 lsl b1, [])
          rest
      in
      List.rev acc
  in
  let collectors = List.filter (fun v -> not (List.mem v powers)) prefixes in
  (0 :: powers) @ collectors

let binary_num_states eta =
  if eta < 1 then invalid_arg "Threshold.binary_num_states: eta >= 1 required";
  if eta = 1 then 1
  else List.length (value_set eta) + 1

let binary eta =
  if eta < 1 then invalid_arg "Threshold.binary: eta >= 1 required";
  if eta = 1 then trivial_accepting "threshold-binary-1"
  else begin
    let values = value_set eta in
    let num_values = List.length values in
    let value_of_state = Array.of_list values in
    let t_state = num_values in
    let index_of_value = Hashtbl.create 16 in
    Array.iteri (fun i v -> Hashtbl.add index_of_value v i) value_of_state;
    let states =
      Array.init (num_values + 1) (fun i ->
          if i = t_state then "T"
          else begin
            let v = value_of_state.(i) in
            let is_power = v land (v - 1) = 0 in
            if is_power then Printf.sprintf "v%d" v else Printf.sprintf "c%d" v
          end)
    in
    let zero_state = Hashtbl.find index_of_value 0 in
    let transitions = ref [] in
    for i = 0 to num_values - 1 do
      for j = i to num_values - 1 do
        let s = value_of_state.(i) + value_of_state.(j) in
        if s >= eta then transitions := (i, j, t_state, t_state) :: !transitions
        else begin
          match Hashtbl.find_opt index_of_value s with
          | Some k when s > 0 && i <> zero_state && j <> zero_state ->
            transitions := (i, j, k, zero_state) :: !transitions
          | _ -> ()
        end
      done
    done;
    for i = 0 to num_values - 1 do
      transitions := (i, t_state, t_state, t_state) :: !transitions
    done;
    let output = Array.init (num_values + 1) (fun i -> i = t_state) in
    Population.make
      ~name:(Printf.sprintf "threshold-binary-%d" eta)
      ~states ~transitions:!transitions
      ~inputs:[ ("x", Hashtbl.find index_of_value 1) ]
      ~output ()
    |> Population.complete
  end
