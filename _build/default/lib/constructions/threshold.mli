(** Busy-beaver protocols: leaderless protocols computing the counting
    predicate [x >= eta] (Section 2.3).

    Two constructions:
    - {!unary}: the protocol [P_k] of Example 2.1 generalised to
      arbitrary thresholds — [eta + 1] states; agents sum their values,
      capping at [eta].
    - {!binary}: a succinct protocol in the spirit of [P'_k] and of
      Blondin et al. [12], working for {e arbitrary} [eta] with
      [O(log eta)] states. Agents hold either [0], a power of two
      [<= 2^(floor(log2 eta))], a strict prefix sum of [eta]'s binary
      expansion ("collector"), or the absorbing accepting flag [T].
      Two agents combine when their sum is such a value, and switch to
      [T] when their combined value already witnesses [x >= eta]. *)

val unary : int -> Population.t
(** [unary eta] for [eta >= 1]: [eta + 1] states.  [unary 1] is the
    trivial always-accepting one-state protocol. *)

val binary : int -> Population.t
(** [binary eta] for [eta >= 1]: [O(log eta)] states.
    States are labelled with the value they carry ([v0], [v1], [v2],
    [v4], …, collectors [cNNN], and [T]). *)

val binary_num_states : int -> int
(** Number of states of [binary eta] without building it. *)
