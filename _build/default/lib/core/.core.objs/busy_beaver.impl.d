lib/core/busy_beaver.ml: Array Configgraph Eta_search Fun Hashtbl List Option Population Printf Splitmix64 Stdlib
