lib/core/busy_beaver.mli: Population
