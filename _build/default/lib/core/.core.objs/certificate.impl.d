lib/core/certificate.ml: Downset Format Fun Intvec List Mset Omega_vec Population Potential Saturation Splitmix64 Stable_sets Stdlib
