lib/core/certificate.mli: Format Mset Omega_vec Population Saturation
