lib/core/potential.ml: Array Bignat Diophantine Factorial_bounds Fun Hilbert_basis Intvec List Mset Population Stdlib
