lib/core/potential.mli: Diophantine Intvec Mset Population
