lib/core/pumping.ml: Array Configgraph Downset Format Intvec List Mset Omega_vec Population Potential Stable_sets
