lib/core/pumping.mli: Format Mset Omega_vec Population Stable_sets
