lib/core/saturation.ml: Array Fun List Mset Population String
