lib/core/saturation.mli: Mset Population
