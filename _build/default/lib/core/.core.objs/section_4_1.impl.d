lib/core/section_4_1.ml: Array Busy_beaver Configgraph Fair_semantics Fun Hashtbl List Option Population Stdlib
