lib/core/section_4_1.mli: Population
