lib/core/state_complexity.ml: Bignat Stdlib Threshold
