lib/core/state_complexity.mli:
