(** Empirical busy-beaver search (Definition 1 / Section 4.1): enumerate
    small protocols and measure the largest threshold any of them
    computes.

    The search enumerates deterministic, complete, leaderless protocols
    with [n] states and input state 0, decides each input up to a
    cutoff with the exact semantics, and keeps the protocols whose
    verdicts form a threshold pattern [0*1*]. Thresholds beyond the
    cutoff cannot be certified (Section 4.1 explains why this is
    fundamentally hard — it is VAS-reachability territory), so results
    are reported as {e apparent} busy-beaver values. *)

type scan_result = {
  num_protocols : int;       (** protocols enumerated (or sampled) *)
  num_threshold : int;       (** with a certified threshold pattern up to the cutoff *)
  num_reject_all : int;      (** reject every checked input (threshold may exceed cutoff) *)
  best_eta : int;            (** largest threshold seen *)
  best : Population.t option;
  histogram : (int * int) list;  (** threshold value -> number of protocols *)
}

val scan :
  ?max_input:int ->
  ?max_configs:int ->
  ?sample:int * int ->
  n:int ->
  unit ->
  scan_result
(** [scan ~n ()] enumerates all [P^P · 2^n] protocols, where
    [P = n(n+1)/2] (transition assignments times output maps). With
    [~sample:(count, seed)] a uniform random sample is scanned instead —
    required in practice for [n >= 4]. Defaults: [max_input = 12],
    [max_configs = 60_000]. *)

val num_deterministic_protocols : int -> int
(** [P^P · 2^n] (may overflow for [n >= 5]; the busy beaver of
    enumeration itself). *)

val iter_protocols :
  ?sample:int * int -> n:int -> (Population.t -> unit) -> unit
(** Enumerate (or uniformly sample) the same deterministic complete
    leaderless protocol space that {!scan} searches, calling the
    function on each protocol. Used by {!Section_4_1}. *)
