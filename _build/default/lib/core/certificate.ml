type t = {
  protocol : Population.t;
  a : int;
  m : int;
  saturation : Saturation.witness;
  d_config : Mset.t;
  trace : int list;
  stable_target : Mset.t;
  omega : Omega_vec.t;
  theta : int array;
  b : int;
  d_b : Mset.t;
}

let is_identity p t =
  Intvec.norm1 (Population.displacement p t) = 0

let enabled_non_identity p c =
  List.filter
    (fun t -> (not (is_identity p t)) && Population.enabled p c t)
    (List.init (Population.num_transitions p) Fun.id)

(* Random walk recording its trace; stops at the first configuration
   satisfying [accept], or at a fixpoint, or after [max_walk] steps. *)
let walk_to ~rng ~max_walk p c0 accept =
  let rec go c trace steps =
    match accept c with
    | Some payload -> Some (List.rev trace, c, payload)
    | None ->
      if steps >= max_walk then None
      else begin
        match enabled_non_identity p c with
        | [] -> None
        | choices ->
          let t = List.nth choices (Splitmix64.int_below rng (List.length choices)) in
          go (Population.fire p c t) (t :: trace) (steps + 1)
      end
  in
  go c0 [] 0

let omega_coords v =
  List.filter
    (fun q -> match Omega_vec.get v q with Omega_vec.Omega -> true | _ -> false)
    (List.init (Omega_vec.dim v) Fun.id)

let construct ?(seed = 1) ?(max_walk = 200_000) ?(max_m = 64) p =
  if not (Population.is_leaderless p) then Error "leaderless protocols only"
  else begin
    match Saturation.find p with
    | Error e -> Error ("saturation failed: " ^ e)
    | Ok w ->
      let analysis = Stable_sets.analyse p in
      let sc = Stable_sets.stable_union analysis in
      let sc_vectors = Downset.max_elements sc in
      let candidates =
        Potential.basis p
        |> List.filter_map (fun theta ->
               let b, d_b = Potential.result_config p theta in
               if b >= 1 then Some (theta, b, d_b, Potential.size theta) else None)
        |> List.sort (fun (_, _, _, s1) (_, _, _, s2) -> Stdlib.compare s1 s2)
      in
      if candidates = [] then Error "no potentially realisable multiset consumes input"
      else begin
        let rng = Splitmix64.create seed in
        (* accept: a stable configuration compatible with some candidate
           θ whose saturation requirement 2|θ| is within the scale m *)
        let accept m c =
          if not (Downset.mem c sc) then None
          else
            List.find_map
              (fun v ->
                if not (Omega_vec.member c v) then None
                else begin
                  let s = omega_coords v in
                  List.find_map
                    (fun (theta, b, d_b, size) ->
                      if 2 * size <= m
                         && List.for_all (fun q -> List.mem q s) (Mset.support d_b)
                      then Some (v, theta, b, d_b)
                      else None)
                    candidates
                end)
              sc_vectors
        in
        let rec try_m m =
          if m > max_m then
            Error "no compatible stable configuration found within the scale budget"
          else begin
            let d_config = Mset.scale m w.Saturation.result in
            match walk_to ~rng ~max_walk p d_config (accept m) with
            | Some (trace, stable_target, (v, theta, b, d_b)) ->
              Ok
                {
                  protocol = p;
                  a = m * w.Saturation.input;
                  m;
                  saturation = w;
                  d_config;
                  trace;
                  stable_target;
                  omega = v;
                  theta;
                  b;
                  d_b;
                }
            | None -> try_m (m * 2)
          end
        in
        let min_size =
          List.fold_left (fun acc (_, _, _, s) -> Stdlib.min acc s) max_int candidates
        in
        try_m (Stdlib.max 1 (2 * min_size))
      end
  end

let replay_trace p c0 trace =
  let rec go c = function
    | [] -> Some c
    | t :: rest ->
      (match Population.fire_opt p c t with
       | Some c' -> go c' rest
       | None -> None)
  in
  go c0 trace

let check cert =
  let p = cert.protocol in
  let analysis = Stable_sets.analyse p in
  let sc = Stable_sets.stable_union analysis in
  let sc_vectors = Downset.max_elements sc in
  let b', d_b' = Potential.result_config p cert.theta in
  let s = omega_coords cert.omega in
  Saturation.check cert.saturation
  && cert.m >= 1
  && cert.a = cert.m * cert.saturation.Saturation.input
  && Mset.equal cert.d_config (Mset.scale cert.m cert.saturation.Saturation.result)
  && (match Saturation.replay_scaled cert.saturation cert.m with
     | Some c -> Mset.equal c cert.d_config
     | None -> false)
  && (match replay_trace p cert.d_config cert.trace with
     | Some c -> Mset.equal c cert.stable_target
     | None -> false)
  && Downset.mem cert.stable_target sc
  && List.exists (Omega_vec.equal cert.omega) sc_vectors
  && Omega_vec.member cert.stable_target cert.omega
  && Potential.is_potentially_realisable p cert.theta
  && cert.b = b'
  && cert.b >= 1
  && Mset.equal cert.d_b d_b'
  && List.for_all (fun q -> List.mem q s) (Mset.support cert.d_b)
  && 2 * Potential.size cert.theta <= cert.m

let pp fmt cert =
  let names = cert.protocol.Population.states in
  Format.fprintf fmt
    "@[<v>certificate: eta <= %d  (m = %d, input 3^%d = %d)@,\
     D = %a@,stable target C* = %a  (trace length %d)@,\
     basis vector %a@,theta = |%d| transitions, b = %d, D_b = %a@]"
    cert.a cert.m cert.saturation.Saturation.levels
    cert.saturation.Saturation.input (Mset.pp ~names) cert.d_config
    (Mset.pp ~names) cert.stable_target (List.length cert.trace)
    (Omega_vec.pp ~names) cert.omega (Potential.size cert.theta) cert.b
    (Mset.pp ~names) cert.d_b
