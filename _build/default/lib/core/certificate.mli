(** End-to-end, machine-checked instances of Lemma 5.2 — the engine of
    Theorem 5.9 — on concrete leaderless protocols.

    A certificate packages, for a protocol computing some [x >= eta]:
    - a saturation witness (Lemma 5.4) scaled by [m], giving
      [IC(a) →* D] with [D] [m]-saturated, [a = m·3^j];
    - a transition trace [D →* C*] with [C*] a stable configuration,
      i.e. [C* = B + D_a] for the basis element [(B, S)] induced by a
      maximal ω-vector of [SC] (Lemma 5.5's step);
    - a potentially realisable [θ] with [IC(b) ⟹θ D_b], [b >= 1],
      [D_b ∈ N^S] and [m >= 2|θ|] (Lemma 5.8's step);
    and therefore certifies [eta <= a] by Lemma 5.2. {!check}
    re-validates every side condition from scratch. *)

(* The fields are public so that tools and tests can inspect (and
   deliberately corrupt) certificates; {!check} accepts no forgeries. *)
type t = {
  protocol : Population.t;
  a : int;                    (** certified: [eta <= a] *)
  m : int;                    (** saturation scale; [a = m · 3^levels] *)
  saturation : Saturation.witness;
  d_config : Mset.t;          (** [D = m · saturation.result] *)
  trace : int list;           (** transitions from [D] to [stable_target] *)
  stable_target : Mset.t;     (** [C* = B + D_a ∈ SC] *)
  omega : Omega_vec.t;        (** the ω-vector inducing [(B, S)] *)
  theta : int array;          (** potentially realisable multiset *)
  b : int;                    (** [= min_input theta >= 1] *)
  d_b : Mset.t;               (** result of [θ]; supported on [S] *)
}

val construct :
  ?seed:int ->
  ?max_walk:int ->
  ?max_m:int ->
  Population.t ->
  (t, string) result
(** Runs the pipeline: saturation, stable sets, Pottier basis, then for
    increasing scales [m] a fair random walk from [D] to a stable
    configuration compatible with some basis element and basis
    multiset. *)

val check : t -> bool
(** Re-validates the full certificate: replays the scaled saturation
    sequence and the trace, re-computes stability and membership, and
    re-checks [θ] against the Diophantine system. *)

val pp : Format.formatter -> t -> unit
