(** The Section 4 pumping argument, run on concrete protocols.

    Lemma 4.2 constructs stable configurations [C_2, C_3, …] with
    [IC(i) →* C_i] and [C_i + j·x →* C_{i+j}]; Dickson's lemma then
    yields [k < l] with [C_k <= C_l] lying in one basis element [(B,S)]
    of [SC], and Lemma 4.1 concludes [eta <= k] for any threshold
    [x >= eta] the protocol computes. This module builds the sequence
    (using exact reachability for the "run to a stable configuration"
    steps), finds the Dickson witness, and re-checks every side
    condition. Works for protocols with or without leaders. *)

type witness = private {
  protocol : Population.t;
  a : int;               (** the certified bound: [eta <= a] *)
  b : int;               (** the pumping period *)
  c_a : Mset.t;          (** stable configuration with [IC(a) →* c_a] *)
  c_ab : Mset.t;         (** stable, [c_a + b·x →* c_ab], [c_a <= c_ab] *)
  omega : Omega_vec.t;   (** maximal ω-vector of [SC] witnessing the
                             shared basis element: [c_ab ∈ down(omega)]
                             and [supp(c_ab - c_a) ⊆ ω-coordinates] *)
}

val sequence :
  ?max_configs:int ->
  Population.t ->
  Stable_sets.t ->
  first:int ->
  count:int ->
  (int * Mset.t) list
(** [(i, C_i)] pairs of the Lemma 4.2 construction, for [count] inputs
    starting at [first]: each [C_{i+1}] is the first stable
    configuration found (breadth-first) from [C_i + x].
    @raise Failure if some exploration finds no stable configuration
    (the protocol then computes nothing). *)

val find_witness :
  ?max_configs:int -> ?first:int -> Population.t -> max_input:int ->
  (witness, string) result
(** Builds the sequence up to [max_input] and returns the first Dickson
    witness compatible with a basis element of [SC]. *)

val check : ?max_configs:int -> witness -> bool
(** Re-validates: stability of both configurations, reachability
    [IC(a) →* c_a] and [c_a + b·x →* c_ab], the ordering, and the
    basis-element side conditions. *)

val pp : Format.formatter -> witness -> unit
