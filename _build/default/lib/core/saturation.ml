type witness = {
  protocol : Population.t;
  levels : int;
  input : int;
  sigma : int list;
  result : Mset.t;
}

let input_state p =
  if Array.length p.Population.input_vars <> 1 then
    invalid_arg "Saturation: single-input protocols only";
  p.Population.input_map.(0)

let coverable_support p =
  let d = Population.num_states p in
  let in_set = Array.make d false in
  Array.iter (fun s -> in_set.(s) <- true) p.Population.input_map;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun { Population.pre = a, b; post = a', b' } ->
        if in_set.(a) && in_set.(b) then begin
          if not in_set.(a') then begin
            in_set.(a') <- true;
            changed := true
          end;
          if not in_set.(b') then begin
            in_set.(b') <- true;
            changed := true
          end
        end)
      p.Population.transitions
  done;
  List.filter (fun q -> in_set.(q)) (List.init d Fun.id)

(* Lemma 5.3: a transition enabled inside the support that moves an agent
   outside it. *)
let expanding_transition p support =
  let in_support q = List.mem q support in
  let nt = Population.num_transitions p in
  let rec go i =
    if i >= nt then None
    else begin
      let { Population.pre = a, b; post = a', b' } = p.Population.transitions.(i) in
      if in_support a && in_support b && not (in_support a' && in_support b') then
        Some i
      else go (i + 1)
    end
  in
  go 0

let find p =
  if not (Population.is_leaderless p) then Error "protocol has leaders"
  else if Array.length p.Population.input_vars <> 1 then
    Error "protocol has several input variables"
  else begin
    let d = Population.num_states p in
    match List.length (coverable_support p) with
    | c when c < d ->
      let dead =
        List.filter (fun q -> not (List.mem q (coverable_support p)))
          (List.init d Fun.id)
        |> List.map (Population.state_name p)
      in
      Error ("states not coverable: " ^ String.concat ", " dead)
    | _ ->
      (* Build C_0 = x, C_{k+1} = 3·C_k + Δ_t per the proof of Lemma 5.4. *)
      let x = input_state p in
      let rec build k config sigma =
        let support = Mset.support config in
        if List.length support = d then
          Ok { protocol = p; levels = k; input = Mset.size config; sigma = List.rev sigma; result = config }
        else begin
          match expanding_transition p support with
          | None ->
            Error "no expanding transition (unreachable: support closure was full)"
          | Some t ->
            let tripled = Mset.scale 3 config in
            (match Mset.add_delta tripled (Population.displacement p t) with
             | None -> Error "expanding transition not enabled on tripled configuration"
             | Some next ->
               (* σ_{k+1} = σ_k³ t, built in reverse *)
               let sigma' = t :: (sigma @ sigma @ sigma) in
               build (k + 1) next sigma')
        end
      in
      build 0 (Mset.singleton d x) []
  end

let replay p ~input sigma =
  let c0 = Mset.scale input (Mset.singleton (Population.num_states p) (input_state p)) in
  let rec go c = function
    | [] -> Some c
    | t :: rest ->
      (match Population.fire_opt p c t with
       | Some c' -> go c' rest
       | None -> None)
  in
  go c0 sigma

let replay_scaled w m =
  if m < 1 then invalid_arg "Saturation.replay_scaled: m >= 1 required";
  let rec repeat k acc = if k = 0 then acc else repeat (k - 1) (acc @ w.sigma) in
  replay w.protocol ~input:(m * w.input) (repeat m [])

let check w =
  let d = Population.num_states w.protocol in
  let pow3 =
    let rec go k acc = if k = 0 then acc else go (k - 1) (3 * acc) in
    go w.levels 1
  in
  w.input = pow3
  && List.length w.sigma = (w.input - 1) / 2
  && (match replay w.protocol ~input:w.input w.sigma with
     | Some c -> Mset.equal c w.result && List.length (Mset.support c) = d
     | None -> false)
