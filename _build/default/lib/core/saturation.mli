(** The saturation construction of Section 5.3 (Lemmas 5.3 and 5.4):
    for a leaderless protocol with [n] states in which every state is
    coverable, the input [3^j] (some [j <= n]) can reach a 1-saturated
    configuration — one populating every state — via an explicitly
    constructed sequence of length [(3^j - 1) / 2].

    The witness scales: executing the sequence [m] times from input
    [m·3^j] reaches the [m]-saturated configuration [m·C], which is how
    Theorem 5.9 obtains the [2|π|]-saturated configuration [D]. *)

type witness = private {
  protocol : Population.t;
  levels : int;        (** the [j] of Lemma 5.4 *)
  input : int;         (** [3^levels] *)
  sigma : int list;    (** transition indices; [|sigma| = (3^j - 1)/2] *)
  result : Mset.t;     (** the 1-saturated configuration reached *)
}

val coverable_support : Population.t -> int list
(** Closure of the input states under "some transition with its
    precondition inside the set puts an agent outside it" — the states
    coverable from large inputs. Lemma 5.4 applies iff this is all
    of [Q]. *)

val find : Population.t -> (witness, string) result
(** Errors: protocol has leaders, several input variables, or
    non-coverable states (listed in the message). *)

val replay : Population.t -> input:int -> int list -> Mset.t option
(** Fire a transition sequence from [IC(input)]; [None] if some
    transition is disabled en route. *)

val replay_scaled : witness -> int -> Mset.t option
(** [replay_scaled w m] fires [sigma] [m] times from [IC(m·3^j)];
    returns the final configuration (equal to [m·result] when the
    witness is valid, by monotonicity). *)

val check : witness -> bool
(** Replays the witness and verifies 1-saturation and the length bound. *)
