let min_accepting_input ?(max_configs = 60_000) p ~max_input =
  if not (Array.exists Fun.id p.Population.output) then None
  else begin
    let accepting c = Population.output_of_config p c = Some true in
    let inputs = Fair_semantics.valid_inputs_single p ~max:max_input in
    let rec go = function
      | [] -> None
      | i :: rest ->
        let g = Configgraph.explore ~max_configs p (Population.initial_single p i) in
        if Configgraph.can_reach g ~src:g.Configgraph.root accepting then Some i
        else go rest
    in
    go inputs
  end

type scan_result = {
  num_protocols : int;
  max_f : int;
  num_unreachable : int;
  histogram : (int * int) list;
}

let scan ?(max_input = 12) ?(max_configs = 60_000) ?sample ~n () =
  let num_protocols = ref 0 in
  let max_f = ref 0 in
  let num_unreachable = ref 0 in
  let histogram = Hashtbl.create 16 in
  Busy_beaver.iter_protocols ?sample ~n (fun p ->
      incr num_protocols;
      match min_accepting_input ~max_configs p ~max_input with
      | Some i ->
        Hashtbl.replace histogram i
          (1 + Option.value (Hashtbl.find_opt histogram i) ~default:0);
        if i > !max_f then max_f := i
      | None -> incr num_unreachable
      | exception Configgraph.Too_many_configs _ -> incr num_unreachable);
  {
    num_protocols = !num_protocols;
    max_f = !max_f;
    num_unreachable = !num_unreachable;
    histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
      |> List.sort Stdlib.compare;
  }
