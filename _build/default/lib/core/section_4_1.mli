(** Section 4.1's "deceptively similar" function

    [f(n) = max over protocols P with n states of
            min { i | IC(i) →* All_1 }],

    where [All_1] is the set of configurations in which every agent
    populates an output-1 state — over {e all} protocols, not just
    those computing a predicate. The paper notes that with leaders
    [f] grows faster than any primitive recursive function (via VAS
    reachability hardness [15, 16, 22, 23]), whereas for leaderless
    protocols a result of Balasubramanian et al. [10] gives
    [f(n) ∈ 2^O(n)] — the heuristic reason the leaderless busy beaver
    bound of Theorem 5.9 is so much smaller than Theorem 4.5's.

    This module measures [f] empirically on the enumerable protocol
    spaces ([n <= 3] exhaustively, [n = 4] by sampling). *)

val min_accepting_input :
  ?max_configs:int -> Population.t -> max_input:int -> int option
(** Least [i <= max_input] such that some configuration reachable from
    [IC(i)] has all agents on output-1 states; [None] if there is none
    below the cutoff (or the protocol has no output-1 state at all). *)

type scan_result = {
  num_protocols : int;
  max_f : int;              (** largest finite minimum found *)
  num_unreachable : int;    (** protocols that never reach All_1 below the cutoff *)
  histogram : (int * int) list;  (** min accepting input -> #protocols *)
}

val scan :
  ?max_input:int -> ?max_configs:int -> ?sample:int * int -> n:int -> unit ->
  scan_result
(** Same protocol space and defaults as {!Busy_beaver.scan}. *)
