let states_unary eta =
  if eta < 1 then invalid_arg "State_complexity.states_unary: eta >= 1";
  if eta = 1 then 1 else eta + 1

let states_binary eta = Threshold.binary_num_states eta

let state_upper_bound eta = Stdlib.min (states_unary eta) (states_binary eta)

let busy_beaver_lower n =
  if n < 1 then invalid_arg "State_complexity.busy_beaver_lower: n >= 1";
  (* x >= 2 is the trivially-true predicate over populations. *)
  if n <= 2 then 2
  else begin
    let k = n - 2 in
    if k >= 61 then max_int / 2 else Stdlib.max 2 (1 lsl k)
  end

let loglog_lower_bound eta =
  if eta < 1 then invalid_arg "State_complexity.loglog_lower_bound: eta >= 1";
  let eta = Bignat.of_int eta in
  let rec go k =
    let bound = Bignat.factorial ((2 * k) + 2) in
    (* eta <= 2^((2k+2)!)  iff  bits eta - 1 <= (2k+2)!  (conservative) *)
    if Bignat.compare (Bignat.of_int (Bignat.bits eta)) bound <= 0 then k
    else go (k + 1)
  in
  go 1
