(** The state-complexity picture of Section 2.3, instantiated with this
    library's constructions: upper bounds on [STATE(eta)] from the
    protocols we can actually build, and the busy-beaver values they
    witness — the constructive side of Theorem 2.2's
    [BB(n) ∈ Ω(2^n)]. *)

val states_unary : int -> int
(** States of the unary (Example 2.1 [P_k]-style) protocol for
    [x >= eta]: [eta + 1]. *)

val states_binary : int -> int
(** States of the succinct protocol: [O(log eta)]. *)

val state_upper_bound : int -> int
(** [STATE(eta) <=] the best of this library's constructions. *)

val busy_beaver_lower : int -> int
(** The largest [eta] such that some construction in this library
    computes [x >= eta] with at most [n] states — a constructive lower
    bound on [BB(n)] ([= 2^(n-2)] for [n >= 3], via the succinct flock
    protocol). Overflow-guarded: values are capped at [max_int/2]. *)

val loglog_lower_bound : int -> int
(** The paper's Theorem 5.9 read as a lower bound: any leaderless
    protocol for [x >= eta] needs at least [k] states where [k] is
    minimal with [eta <= 2^((2k+2)!)]. Tiny for representable [eta] —
    that is the content of the [Ω(log log eta)] statement. *)
