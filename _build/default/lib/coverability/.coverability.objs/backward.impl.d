lib/coverability/backward.ml: Array Intvec Mset Population Stdlib Upset
