lib/coverability/backward.mli: Mset Population Upset
