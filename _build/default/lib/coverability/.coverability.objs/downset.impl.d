lib/coverability/downset.ml: Format List Omega_vec Stdlib
