lib/coverability/downset.mli: Format Mset Omega_vec
