lib/coverability/karp_miller.ml: Array Downset Intvec List Mset Omega_vec Population Stdlib
