lib/coverability/karp_miller.mli: Downset Mset Omega_vec Population
