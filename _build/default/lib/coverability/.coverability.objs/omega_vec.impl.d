lib/coverability/omega_vec.ml: Array Format Fun List Mset Printf Stdlib String
