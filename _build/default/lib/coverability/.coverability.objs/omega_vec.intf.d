lib/coverability/omega_vec.mli: Format Mset
