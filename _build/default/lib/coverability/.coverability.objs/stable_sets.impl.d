lib/coverability/stable_sets.ml: Array Backward Downset Format Fun List Mset Population Upset
