lib/coverability/stable_sets.mli: Downset Format Mset Population Upset
