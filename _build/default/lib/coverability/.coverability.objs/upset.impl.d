lib/coverability/upset.ml: Array Format Fun Intvec List Mset Omega_vec Stdlib
