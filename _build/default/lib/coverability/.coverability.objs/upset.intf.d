lib/coverability/upset.mli: Format Mset Omega_vec
