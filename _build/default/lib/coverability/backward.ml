type stats = {
  iterations : int;
  added : int;
}

(* Least configuration that enables transition [t] and whose [t]-successor
   covers [m]: pointwise max of the transition's precondition and
   [m - Δ_t] (clamped at zero). *)
let pre_element p ti m =
  let d = Population.num_states p in
  let { Population.pre = a, b; _ } = p.Population.transitions.(ti) in
  let delta = Population.displacement p ti in
  let v =
    Array.init d (fun i ->
        let need = Mset.get m i - Intvec.get delta i in
        Stdlib.max 0 need)
  in
  v.(a) <- Stdlib.max v.(a) (if a = b then 2 else 1);
  if a <> b then v.(b) <- Stdlib.max v.(b) 1;
  Mset.of_array v

let pre_star_stats p u =
  let nt = Population.num_transitions p in
  let iterations = ref 0 in
  let added = ref 0 in
  let rec loop current frontier =
    match frontier with
    | [] -> current
    | m :: rest ->
      let current, new_frontier =
        let rec transitions ti acc_set acc_frontier =
          if ti >= nt then (acc_set, acc_frontier)
          else begin
            incr iterations;
            let cand = pre_element p ti m in
            match Upset.add cand acc_set with
            | None -> transitions (ti + 1) acc_set acc_frontier
            | Some set' ->
              incr added;
              transitions (ti + 1) set' (cand :: acc_frontier)
          end
        in
        transitions 0 current rest
      in
      loop current new_frontier
  in
  let result = loop u (Upset.minimal_elements u) in
  (result, { iterations = !iterations; added = !added })

let pre_star p u = fst (pre_star_stats p u)

let coverable p ~from ~target =
  let u = Upset.of_elements (Population.num_states p) [ target ] in
  Upset.mem from (pre_star p u)
