(** Backward coverability: the classic WSTS fixpoint computing
    [pre*(U)] of an upward-closed set [U] of configurations.

    For a transition [t = p,q ↦ p',q'] and a minimal element [m] of
    [U], the least configuration that enables [t] and reaches [up(m)]
    in one [t]-step is [max(p + q, m - Δ_t)] (pointwise, clamped at 0);
    iterating to fixpoint terminates by Dickson's lemma.

    This is the effective counterpart of the Rackoff-based argument of
    Lemma 3.2: instead of bounding the norm of stable-set bases by
    [β = 2^(2(2n+1)!+1)], it computes the bases exactly. *)

type stats = {
  iterations : int;     (** candidate elements examined *)
  added : int;          (** minimal elements ever inserted *)
}

val pre_star : Population.t -> Upset.t -> Upset.t
(** [pre_star p u] is the set of configurations from which [u] is
    reachable (including [u] itself). *)

val pre_star_stats : Population.t -> Upset.t -> Upset.t * stats

val coverable : Population.t -> from:Mset.t -> target:Mset.t -> bool
(** [coverable p ~from ~target]: can [from] reach some [C >= target]? *)
