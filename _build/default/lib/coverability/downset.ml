type t = {
  dim : int;
  maximal : Omega_vec.t list; (* pairwise incomparable *)
}

let keep_maximal vs =
  List.filter
    (fun v ->
      not
        (List.exists
           (fun v' -> (not (Omega_vec.equal v v')) && Omega_vec.leq v v')
           vs))
    vs
  |> List.sort_uniq Stdlib.compare

let of_max_elements dim vs =
  List.iter
    (fun v ->
      if Omega_vec.dim v <> dim then invalid_arg "Downset.of_max_elements: dimension")
    vs;
  { dim; maximal = keep_maximal vs }

let dim d = d.dim
let max_elements d = d.maximal
let mem c d = List.exists (Omega_vec.member c) d.maximal
let is_empty d = d.maximal = []
let basis d = List.map Omega_vec.to_basis_element d.maximal
let size d = List.length d.maximal
let norm d = List.fold_left (fun acc v -> Stdlib.max acc (Omega_vec.norm_inf v)) 0 d.maximal

let union a b =
  if a.dim <> b.dim then invalid_arg "Downset.union: dimension mismatch";
  { dim = a.dim; maximal = keep_maximal (a.maximal @ b.maximal) }

let subset a b =
  List.for_all (fun v -> List.exists (Omega_vec.leq v) b.maximal) a.maximal

let equal a b = subset a b && subset b a

let pp ?names fmt d =
  match d.maximal with
  | [] -> Format.pp_print_string fmt "∅"
  | vs ->
    Format.fprintf fmt "@[<v>down{";
    List.iteri
      (fun i v ->
        if i > 0 then Format.fprintf fmt ",@ ";
        Omega_vec.pp ?names fmt v)
      vs;
    Format.fprintf fmt "}@]"
