(** Downward-closed subsets of [N^d], represented by their finite set of
    maximal ω-vectors — equivalently, by a {e base} of basis elements
    [(B, S)] in the sense of Section 3 of the paper. *)

type t

val of_max_elements : int -> Omega_vec.t list -> t
(** Down-closure of the given ω-vectors; dominated vectors dropped. *)

val dim : t -> int
val max_elements : t -> Omega_vec.t list
val mem : Mset.t -> t -> bool
val is_empty : t -> bool

val basis : t -> (Mset.t * int list) list
(** The base as [(B, S)] pairs: the set denoted is
    [∪ (B + N^S)] (Section 3). *)

val size : t -> int
(** Number of basis elements. *)

val norm : t -> int
(** The norm of the base: the largest finite coordinate of any basis
    element (compare with the paper's bound [β], Lemma 3.2). *)

val union : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

val pp : ?names:string array -> Format.formatter -> t -> unit
