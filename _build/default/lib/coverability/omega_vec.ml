type coord = Fin of int | Omega
type t = coord array

let finite a =
  Array.map
    (fun x ->
      if x < 0 then invalid_arg "Omega_vec.finite: negative coordinate"
      else Fin x)
    a

let all_omega d = Array.make d Omega

let of_basis_element b s =
  let d = Mset.dim b in
  let v = Array.init d (fun i -> Fin (Mset.get b i)) in
  List.iter
    (fun i ->
      if i < 0 || i >= d then invalid_arg "Omega_vec.of_basis_element: index";
      v.(i) <- Omega)
    s;
  v

let to_basis_element v =
  let d = Array.length v in
  let b = Array.make d 0 in
  let s = ref [] in
  for i = d - 1 downto 0 do
    match v.(i) with
    | Fin x -> b.(i) <- x
    | Omega -> s := i :: !s
  done;
  (Mset.of_array b, !s)

let dim = Array.length
let get (v : t) i = v.(i)
let is_finite (v : t) = Array.for_all (function Fin _ -> true | Omega -> false) v

let coord_leq a b =
  match (a, b) with
  | _, Omega -> true
  | Omega, Fin _ -> false
  | Fin x, Fin y -> x <= y

let leq (u : t) (v : t) =
  let d = Array.length u in
  let rec go i = i >= d || (coord_leq u.(i) v.(i) && go (i + 1)) in
  go 0

let member c (v : t) =
  let d = Array.length v in
  let rec go i =
    i >= d
    ||
    match v.(i) with
    | Omega -> go (i + 1)
    | Fin x -> Mset.get c i <= x && go (i + 1)
  in
  go 0

let coord_min a b =
  match (a, b) with
  | Omega, x | x, Omega -> x
  | Fin x, Fin y -> Fin (Stdlib.min x y)

let meet (u : t) (v : t) : t =
  if Array.length u <> Array.length v then
    invalid_arg "Omega_vec.meet: dimension mismatch";
  Array.init (Array.length u) (fun i -> coord_min u.(i) v.(i))

let equal (u : t) (v : t) = u = v

let norm_inf (v : t) =
  Array.fold_left
    (fun acc c -> match c with Fin x -> Stdlib.max acc x | Omega -> acc)
    0 v

let pp ?names fmt (v : t) =
  let name i =
    match names with
    | Some a when i < Array.length a -> a.(i)
    | _ -> Printf.sprintf "q%d" i
  in
  let entries =
    List.filter_map
      (fun i ->
        match v.(i) with
        | Fin 0 -> None
        | Fin x -> Some (Printf.sprintf "%d·%s" x (name i))
        | Omega -> Some (Printf.sprintf "ω·%s" (name i)))
      (List.init (Array.length v) Fun.id)
  in
  match entries with
  | [] -> Format.pp_print_string fmt "()"
  | _ -> Format.fprintf fmt "(%s)" (String.concat ", " entries)
