(** Vectors over [N ∪ {ω}]: the canonical finite representation of
    downward-closed subsets of [N^d] (Section 3 of the paper represents
    them as basis elements [(B, S)]; an ω-vector is exactly such a pair,
    with [S] the set of ω-coordinates and [B] the finite ones). *)

type coord = Fin of int | Omega
type t = coord array

val finite : int array -> t
(** All coordinates finite. @raise Invalid_argument on negatives. *)

val all_omega : int -> t

val of_basis_element : Mset.t -> int list -> t
(** [of_basis_element b s] is the ω-vector with value [ω] on the
    coordinates of [s] and [b]'s counts elsewhere — the basis element
    [(B, S)] denoting [B + N^S]. *)

val to_basis_element : t -> Mset.t * int list
(** Inverse of {!of_basis_element} (ω-coordinates map to count 0 in [B]). *)

val dim : t -> int
val get : t -> int -> coord
val is_finite : t -> bool

val leq : t -> t -> bool
(** Pointwise order with [n <= ω] for all [n], [ω <= ω]. *)

val member : Mset.t -> t -> bool
(** [member c v]: does the concrete configuration [c] lie below [v]? *)

val meet : t -> t -> t
(** Pointwise minimum — intersection of the two down-closures. *)

val equal : t -> t -> bool

val norm_inf : t -> int
(** Largest finite coordinate (0 if none) — the paper's norm of a basis
    element, [‖(B,S)‖_∞ = ‖B‖_∞]. *)

val pp : ?names:string array -> Format.formatter -> t -> unit
