type t = {
  protocol : Population.t;
  unstable0 : Upset.t;
  unstable1 : Upset.t;
  stable0 : Downset.t;
  stable1 : Downset.t;
}

(* Configurations populating at least one state of output [≠ b]: the
   up-closure of the corresponding singletons. *)
let bad_upset p b =
  let d = Population.num_states p in
  let singles =
    List.filter_map
      (fun q -> if p.Population.output.(q) <> b then Some (Mset.singleton d q) else None)
      (List.init d Fun.id)
  in
  Upset.of_elements d singles

let analyse p =
  let d = Population.num_states p in
  let unstable b = Backward.pre_star p (bad_upset p b) in
  let unstable0 = unstable false and unstable1 = unstable true in
  let stable_of u = Downset.of_max_elements d (Upset.complement u) in
  {
    protocol = p;
    unstable0;
    unstable1;
    stable0 = stable_of unstable0;
    stable1 = stable_of unstable1;
  }

let stable a b = if b then a.stable1 else a.stable0
let unstable a b = if b then a.unstable1 else a.unstable0
let stable_union a = Downset.union a.stable0 a.stable1
let is_stable a b c = Downset.mem c (stable a b)

let pp_summary fmt a =
  Format.fprintf fmt
    "SC_0: %d basis elements, norm %d; SC_1: %d basis elements, norm %d"
    (Downset.size a.stable0) (Downset.norm a.stable0) (Downset.size a.stable1)
    (Downset.norm a.stable1)
