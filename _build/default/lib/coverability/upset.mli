(** Upward-closed subsets of [N^d], represented by their finite set of
    minimal elements (an antichain, by Dickson's lemma). *)

type t

val empty : int -> t
val dim : t -> int

val of_elements : int -> Mset.t list -> t
(** Up-closure of the given configurations; dominated elements dropped. *)

val minimal_elements : t -> Mset.t list
(** The canonical antichain, sorted. *)

val mem : Mset.t -> t -> bool
val is_empty : t -> bool

val add : Mset.t -> t -> t option
(** [add m u] is [Some u'] with [u' = u ∪ up(m)] if [m] is not already
    in [u], and [None] if [m ∈ u] (no change). *)

val union : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

val size : t -> int
(** Number of minimal elements. *)

val max_norm : t -> int
(** Largest coordinate over all minimal elements (0 when empty). *)

val complement : t -> Omega_vec.t list
(** The complement of the upset — a downward-closed set — as its finite
    list of maximal ω-vectors. Worst-case exponential in the number of
    minimal elements; intended for the modest protocols this library
    analyses. *)

val pp : ?names:string array -> Format.formatter -> t -> unit
