lib/hilbert/diophantine.ml: Array Bignat Format Fun List Printf Stdlib String
