lib/hilbert/diophantine.mli: Bignat Format
