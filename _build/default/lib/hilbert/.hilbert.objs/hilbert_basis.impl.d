lib/hilbert/hilbert_basis.ml: Array Diophantine Hashtbl List Stdlib
