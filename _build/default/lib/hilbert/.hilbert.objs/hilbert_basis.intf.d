lib/hilbert/hilbert_basis.mli: Diophantine
