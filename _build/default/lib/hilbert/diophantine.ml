type t = {
  rows : int array array;
  num_vars : int;
}

let make rows ~num_vars =
  if num_vars < 0 then invalid_arg "Diophantine.make: negative arity";
  Array.iter
    (fun row ->
      if Array.length row <> num_vars then
        invalid_arg "Diophantine.make: row arity mismatch")
    rows;
  { rows; num_vars }

let num_constraints sys = Array.length sys.rows

let eval sys y =
  if Array.length y <> sys.num_vars then
    invalid_arg "Diophantine.eval: arity mismatch";
  Array.map
    (fun row ->
      let acc = ref 0 in
      Array.iteri (fun j c -> acc := !acc + (c * y.(j))) row;
      !acc)
    sys.rows

let is_solution_eq sys y =
  Array.for_all (fun v -> v >= 0) y && Array.for_all (fun v -> v = 0) (eval sys y)

let is_solution_geq sys y =
  Array.for_all (fun v -> v >= 0) y && Array.for_all (fun v -> v >= 0) (eval sys y)

let pottier_bound sys =
  let row_abs_sum row = Array.fold_left (fun acc c -> acc + abs c) 0 row in
  let m = Array.fold_left (fun acc row -> Stdlib.max acc (row_abs_sum row)) 0 sys.rows in
  Bignat.pow (Bignat.of_int (1 + m)) (num_constraints sys)

let pp fmt sys =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf fmt "@,";
      let terms =
        List.filter_map
          (fun j ->
            if row.(j) = 0 then None else Some (Printf.sprintf "%+d·y%d" row.(j) j))
          (List.init sys.num_vars Fun.id)
      in
      Format.fprintf fmt "%s = 0"
        (if terms = [] then "0" else String.concat " " terms))
    sys.rows;
  Format.fprintf fmt "@]"
