(** Homogeneous systems of linear Diophantine constraints [A·y = 0] or
    [A·y >= 0] over natural-number unknowns, and Pottier's small-basis
    bound for them (Theorem 5.6 of the paper).

    The solution sets are commutative monoids; their unique minimal
    generating sets (Hilbert bases) are computed by {!Hilbert_basis}. *)

type t = private {
  rows : int array array;  (** one row of coefficients per constraint *)
  num_vars : int;
}

val make : int array array -> num_vars:int -> t
(** @raise Invalid_argument if a row has the wrong arity. *)

val num_constraints : t -> int

val eval : t -> int array -> int array
(** [eval sys y] is the vector [A·y]. *)

val is_solution_eq : t -> int array -> bool
(** [A·y = 0] with [y >= 0]. *)

val is_solution_geq : t -> int array -> bool
(** [A·y >= 0] with [y >= 0]. *)

val pottier_bound : t -> Bignat.t
(** Theorem 5.6: every element [m] of some basis of [A·y >= 0]
    satisfies [‖m‖₁ <= (1 + max_i Σ_j |a_ij|)^e], [e] the number of
    constraints. *)

val pp : Format.formatter -> t -> unit
