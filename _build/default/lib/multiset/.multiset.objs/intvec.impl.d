lib/multiset/intvec.ml: Array Format Fun List Printf Stdlib String
