lib/multiset/intvec.mli: Format
