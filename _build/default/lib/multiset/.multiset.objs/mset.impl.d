lib/multiset/mset.ml: Array Intvec List
