lib/multiset/mset.mli: Format Intvec
