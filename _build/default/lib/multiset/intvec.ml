type t = int array

let make d v = Array.make d v
let zero d = Array.make d 0
let init = Array.init
let dim = Array.length
let get (v : t) i = v.(i)

let set (v : t) i x =
  let r = Array.copy v in
  r.(i) <- x;
  r

let equal (u : t) (v : t) =
  let d = Array.length u in
  d = Array.length v
  &&
  let rec go i = i >= d || (u.(i) = v.(i) && go (i + 1)) in
  go 0

let compare_lex (u : t) (v : t) =
  let du = Array.length u and dv = Array.length v in
  if du <> dv then Stdlib.compare du dv
  else begin
    let rec go i =
      if i >= du then 0
      else if u.(i) <> v.(i) then Stdlib.compare u.(i) v.(i)
      else go (i + 1)
    in
    go 0
  end

let leq (u : t) (v : t) =
  let d = Array.length u in
  let rec go i = i >= d || (u.(i) <= v.(i) && go (i + 1)) in
  go 0

let lt u v = leq u v && not (equal u v)

let map2 f (u : t) (v : t) : t =
  if Array.length u <> Array.length v then
    invalid_arg "Intvec: dimension mismatch";
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

let add u v = map2 ( + ) u v
let sub u v = map2 ( - ) u v
let neg (u : t) : t = Array.map (fun x -> -x) u
let scale k (u : t) : t = Array.map (fun x -> k * x) u
let pointwise_min u v = map2 Stdlib.min u v
let pointwise_max u v = map2 Stdlib.max u v

let sum_coords (u : t) = Array.fold_left ( + ) 0 u
let norm1 (u : t) = Array.fold_left (fun acc x -> acc + abs x) 0 u
let norm_inf (u : t) = Array.fold_left (fun acc x -> Stdlib.max acc (abs x)) 0 u

let support (u : t) =
  let acc = ref [] in
  for i = Array.length u - 1 downto 0 do
    if u.(i) <> 0 then acc := i :: !acc
  done;
  !acc

let is_nonnegative (u : t) = Array.for_all (fun x -> x >= 0) u

let hash (u : t) =
  (* FNV-style mixing; cheap and good enough for configuration tables. *)
  let h = ref 0x811c9dc5 in
  Array.iter (fun x -> h := (!h lxor (x + 0x9e3779b9)) * 0x01000193 land max_int) u;
  !h

let pp ?names fmt (u : t) =
  let name i =
    match names with
    | Some a when i < Array.length a -> a.(i)
    | _ -> Printf.sprintf "q%d" i
  in
  let entries =
    List.filter_map
      (fun i -> if u.(i) <> 0 then Some (Printf.sprintf "%d·%s" u.(i) (name i)) else None)
      (List.init (Array.length u) Fun.id)
  in
  match entries with
  | [] -> Format.pp_print_string fmt "()"
  | _ -> Format.fprintf fmt "(%s)" (String.concat ", " entries)
