(** Dense integer vectors over a fixed finite domain, i.e. elements of
    [Z^d] where coordinates are indexed by [0 .. d-1].

    The representation is an [int array] treated as immutable: every
    operation allocates a fresh array; callers must not mutate results.
    Displacement vectors of protocol transitions (Section 5.1 of the
    paper) live here. *)

type t = int array

val make : int -> int -> t
(** [make d v] is the [d]-dimensional vector with all coordinates [v]. *)

val zero : int -> t
val init : int -> (int -> int) -> t
val dim : t -> int
val get : t -> int -> int
val set : t -> int -> int -> t
(** Functional update. *)

val equal : t -> t -> bool

val compare_lex : t -> t -> int
(** Lexicographic total order (for use in [Map]/[Set]). *)

val leq : t -> t -> bool
(** Pointwise order [u <= v], the order of Dickson's lemma. *)

val lt : t -> t -> bool
(** Strict pointwise order: [leq u v && not (equal u v)]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val pointwise_min : t -> t -> t
val pointwise_max : t -> t -> t

val sum_coords : t -> int
val norm1 : t -> int
val norm_inf : t -> int

val support : t -> int list
(** Indices of the non-zero coordinates, ascending. *)

val is_nonnegative : t -> bool

val hash : t -> int

val pp : ?names:string array -> Format.formatter -> t -> unit
(** Prints e.g. [(2·a, 1·c)]; coordinates equal to zero are omitted. *)
