(** Multisets over a fixed finite domain: elements of [N^d].

    A configuration of a population protocol (Section 2.2) is a multiset
    over its states; this module provides the multiset algebra the paper
    uses — size, support, pointwise order, and monotone arithmetic — on
    top of {!Intvec}'s representation.

    Values are [int array]s with non-negative coordinates, treated as
    immutable. Constructors enforce non-negativity. *)

type t = private int array

val of_array : int array -> t
(** Validates non-negativity (the array is copied).
    @raise Invalid_argument on a negative coordinate. *)

val unsafe_of_array : int array -> t
(** No copy, no check; the caller must guarantee non-negative coordinates
    and renounce mutation. For hot loops only. *)

val to_intvec : t -> Intvec.t
val zero : int -> t
val singleton : int -> int -> t
(** [singleton d i] has one element on coordinate [i]. *)

val of_list : int -> (int * int) list -> t
(** [of_list d assoc] sums [count] elements on each [(index, count)] pair. *)

val dim : t -> int
val get : t -> int -> int
val size : t -> int
(** Total number of elements, [|C|] in the paper. *)

val count_on : t -> int list -> int
(** [count_on c s] is [C(S) = sum_{q in S} C(q)]. *)

val support : t -> int list
val is_zero : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic; a total order for containers. *)

val leq : t -> t -> bool
(** Pointwise order. *)

val lt : t -> t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val sub_opt : t -> t -> t option
val scale : int -> t -> t
val pointwise_min : t -> t -> t
val pointwise_max : t -> t -> t

val add_delta : t -> Intvec.t -> t option
(** [add_delta c delta] is [Some (c + delta)] when non-negative — firing a
    displacement. *)

val hash : t -> int
val pp : ?names:string array -> Format.formatter -> t -> unit
