lib/presburger/compile.ml: Array General_modulo General_threshold List Population Predicate Printf Product Result Stdlib Transform
