lib/presburger/compile.mli: Population Predicate
