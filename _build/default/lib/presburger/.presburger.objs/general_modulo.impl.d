lib/presburger/general_modulo.ml: Array Population Printf String
