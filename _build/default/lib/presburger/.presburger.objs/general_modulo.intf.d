lib/presburger/general_modulo.mli: Population
