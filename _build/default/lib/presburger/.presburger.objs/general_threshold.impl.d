lib/presburger/general_threshold.ml: Array Population Printf String
