lib/presburger/general_threshold.mli: Population
