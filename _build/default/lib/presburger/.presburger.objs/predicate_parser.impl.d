lib/presburger/predicate_parser.ml: Array List Predicate Printf Result Stdlib String
