lib/presburger/predicate_parser.mli: Predicate
