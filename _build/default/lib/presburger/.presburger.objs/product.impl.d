lib/presburger/product.ml: Array List Population Printf
