lib/presburger/product.mli: Population
