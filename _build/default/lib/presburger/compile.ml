let pad coeffs arity =
  Array.init arity (fun i -> if i < Array.length coeffs then coeffs.(i) else 0)

let const_protocol ~arity b =
  Population.make
    ~name:(if b then "const-true" else "const-false")
    ~states:[| (if b then "yes" else "no") |]
    ~transitions:[ (0, 0, 0, 0) ]
    ~inputs:(List.init arity (fun i -> (Printf.sprintf "x%d" i, 0)))
    ~output:[| b |] ()

(* Majority x_i > x_j embedded into [arity] variables: the +1 variable
   feeds active A, the -1 variable active B, all others the passive b
   (which cannot influence the A-vs-B comparison). *)
let majority_protocol ~arity ~plus ~minus =
  let states = [| "A"; "B"; "a"; "b" |] in
  let transitions =
    [ (0, 1, 2, 3); (0, 3, 0, 2); (1, 2, 1, 3); (2, 3, 3, 3) ]
  in
  let inputs =
    List.init arity (fun i ->
        let target = if i = plus then 0 else if i = minus then 1 else 3 in
        (Printf.sprintf "x%d" i, target))
  in
  Population.make
    ~name:(Printf.sprintf "majority-x%d-x%d" plus minus)
    ~states ~transitions ~inputs
    ~output:[| true; false; true; false |]
    ()
  |> Population.complete

(* Recognise the strict-majority shape: one +1, one -1, zeros, c = 1. *)
let majority_shape coeffs c =
  if c <> 1 then None
  else begin
    let plus = ref [] and minus = ref [] and bad = ref false in
    Array.iteri
      (fun i a ->
        if a = 1 then plus := i :: !plus
        else if a = -1 then minus := i :: !minus
        else if a <> 0 then bad := true)
      coeffs;
    match (!bad, !plus, !minus) with
    | false, [ i ], [ j ] -> Some (i, j)
    | _ -> None
  end

let rec go ~arity pred =
  match pred with
  | Predicate.Const b -> Ok (const_protocol ~arity b)
  | Predicate.Threshold (coeffs, c) -> threshold ~arity (pad coeffs arity) c
  | Predicate.Modulo (coeffs, r, m) ->
    if m < 1 then Error "modulus must be positive"
    else Ok (General_modulo.protocol ~coeffs:(pad coeffs arity) ~r:(((r mod m) + m) mod m) ~m)
  | Predicate.Not p ->
    Result.map Transform.complement (go ~arity p)
  | Predicate.And (p1, p2) -> boolean ~arity ( && ) "and" p1 p2
  | Predicate.Or (p1, p2) -> boolean ~arity ( || ) "or" p1 p2

and threshold ~arity coeffs c =
  if Array.for_all (fun a -> a >= 0) coeffs then
    if c <= 0 then Ok (const_protocol ~arity true)
    else Ok (General_threshold.protocol ~coeffs ~c)
  else if Array.for_all (fun a -> a <= 0) coeffs then
    (* Σ a·x >= c  <=>  ¬(Σ (-a)·x >= -c + 1) *)
    go ~arity
      (Predicate.Not (Predicate.Threshold (Array.map (fun a -> -a) coeffs, -c + 1)))
  else begin
    match majority_shape coeffs c with
    | Some (plus, minus) -> Ok (majority_protocol ~arity ~plus ~minus)
    | None ->
      Error
        "mixed-sign threshold outside the supported fragment (only the \
         strict-majority pattern x_i - x_j >= 1 is supported)"
  end

and boolean ~arity f tag p1 p2 =
  match (go ~arity p1, go ~arity p2) with
  | Ok q1, Ok q2 ->
    Ok
      (Product.combine ~f
         ~name:(Printf.sprintf "(%s %s %s)" q1.Population.name tag q2.Population.name)
         q1 q2)
  | (Error _ as e), _ | _, (Error _ as e) -> e

let compile pred =
  let arity = Stdlib.max 1 (Predicate.arity pred) in
  go ~arity pred

let compile_exn pred =
  match compile pred with
  | Ok p -> p
  | Error e -> invalid_arg ("Compile.compile_exn: " ^ e)

let rec states_of pred =
  match pred with
  | Predicate.Const _ -> Some 1
  | Predicate.Threshold (coeffs, c) ->
    if Array.for_all (fun a -> a >= 0) coeffs then
      if c <= 0 then Some 1 else Some (c + 1)
    else if Array.for_all (fun a -> a <= 0) coeffs then
      states_of (Predicate.Threshold (Array.map (fun a -> -a) coeffs, -c + 1))
    else if majority_shape coeffs c <> None then Some 4
    else None
  | Predicate.Modulo (_, _, m) -> if m >= 1 then Some (m + 2) else None
  | Predicate.Not p -> states_of p
  | Predicate.And (p1, p2) | Predicate.Or (p1, p2) ->
    (match (states_of p1, states_of p2) with
     | Some a, Some b -> Some (a * b)
     | _ -> None)

let states_needed = states_of
