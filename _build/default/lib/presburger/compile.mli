(** A compiler from {!Predicate} formulas to population protocols.

    Supported fragment (see DESIGN.md for the rationale):
    - [Const b];
    - [Threshold (a, c)] with all coefficients of one sign (rewritten
      through negation when non-positive);
    - the strict-majority pattern [x_i - x_j >= 1];
    - [Modulo (a, r, m)] with arbitrary coefficients;
    - [Not], [And], [Or] of supported formulas (negation by output
      complement, conjunction/disjunction by synchronous product).

    Mixed-sign thresholds other than majority are rejected: the
    value-merging construction used here relies on values never
    decreasing, which fails with cancellation (the classical
    general-threshold protocol needs a different, more delicate
    machine). *)

val compile : Predicate.t -> (Population.t, string) result
(** The protocol's input variables are [x0 .. x(arity-1)] (predicates
    of arity 0 get a single dummy variable). Every returned protocol is
    leaderless and complete. *)

val compile_exn : Predicate.t -> Population.t
(** @raise Invalid_argument on unsupported predicates. *)

val states_needed : Predicate.t -> int option
(** Number of states {!compile} would produce, without building the
    protocol; [None] if unsupported. *)
