let protocol ~coeffs ~r ~m =
  if Array.length coeffs = 0 then invalid_arg "General_modulo.protocol: no variables";
  if m < 1 then invalid_arg "General_modulo.protocol: m >= 1 required";
  if r < 0 || r >= m then invalid_arg "General_modulo.protocol: 0 <= r < m required";
  let passive_no = m and passive_yes = m + 1 in
  let states =
    Array.init (m + 2) (fun i ->
        if i < m then Printf.sprintf "acc%d" i
        else if i = passive_no then "no"
        else "yes")
  in
  let verdict v = if v = r then passive_yes else passive_no in
  let transitions = ref [] in
  for u = 0 to m - 1 do
    for v = u to m - 1 do
      transitions := (u, v, (u + v) mod m, verdict ((u + v) mod m)) :: !transitions
    done;
    transitions := (u, passive_no, u, verdict u) :: !transitions;
    transitions := (u, passive_yes, u, verdict u) :: !transitions
  done;
  let residue a = ((a mod m) + m) mod m in
  let inputs =
    Array.to_list
      (Array.mapi (fun i a -> (Printf.sprintf "x%d" i, residue a)) coeffs)
  in
  let output = Array.init (m + 2) (fun i -> i = passive_yes || i = r) in
  Population.make
    ~name:
      (Printf.sprintf "linear-%s-mod-%d-%d"
         (String.concat "," (Array.to_list (Array.map string_of_int coeffs)))
         m r)
    ~states ~transitions:!transitions ~inputs ~output ()
  |> Population.complete
