(** Multi-variable modulo protocols [Σ a_i·x_i ≡ r (mod m)] for
    arbitrary (possibly negative) coefficients.

    Residue arithmetic has no sign problems, so — unlike thresholds —
    the full coefficient range is supported: one agent accumulates the
    residue sum while the others become passive and copy the
    accumulator's verdict. *)

val protocol : coeffs:int array -> r:int -> m:int -> Population.t
(** Input variables are named [x0, x1, …]; [m + 2] states.
    @raise Invalid_argument unless [m >= 1], [0 <= r < m] and at least
    one variable is given. *)
