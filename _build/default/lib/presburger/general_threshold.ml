let protocol ~coeffs ~c =
  if Array.length coeffs = 0 then
    invalid_arg "General_threshold.protocol: no variables";
  if Array.exists (fun a -> a < 0) coeffs then
    invalid_arg "General_threshold.protocol: negative coefficient";
  if c < 0 then invalid_arg "General_threshold.protocol: negative constant";
  let name =
    Printf.sprintf "linear-%s-ge-%d"
      (String.concat "+" (Array.to_list (Array.map string_of_int coeffs)))
      c
  in
  if c = 0 then
    (* trivially true *)
    Population.make ~name ~states:[| "yes" |]
      ~transitions:[ (0, 0, 0, 0) ]
      ~inputs:(Array.to_list (Array.mapi (fun i _ -> (Printf.sprintf "x%d" i, 0)) coeffs))
      ~output:[| true |] ()
  else begin
    (* states: carried values 0 .. c-1, plus the accepting flag *)
    let flag = c in
    let states =
      Array.init (c + 1) (fun v -> if v = flag then "T" else Printf.sprintf "v%d" v)
    in
    let transitions = ref [] in
    for u = 0 to c - 1 do
      for v = u to c - 1 do
        let s = u + v in
        if s >= c then transitions := (u, v, flag, flag) :: !transitions
        else if v <> 0 then transitions := (u, v, s, 0) :: !transitions
      done;
      transitions := (u, flag, flag, flag) :: !transitions
    done;
    let inputs =
      Array.to_list
        (Array.mapi
           (fun i a -> (Printf.sprintf "x%d" i, if a >= c then flag else a))
           coeffs)
    in
    let output = Array.init (c + 1) (fun v -> v = flag) in
    Population.make ~name ~states ~transitions:!transitions ~inputs ~output ()
    |> Population.complete
  end
