(** Multi-variable threshold protocols [Σ a_i·x_i >= c] for
    {e non-negative} coefficients.

    Each agent starts with the value [a_i] of its input variable;
    agents pool values onto one of them, and any pair whose combined
    value reaches [c] raises the absorbing accepting flag. With only
    non-negative values in play the flag is sound (a witnessed
    sub-population keeps its value forever), which is exactly why this
    construction does not extend to mixed-sign coefficients — see
    {!Compile} for what is and is not covered. *)

val protocol : coeffs:int array -> c:int -> Population.t
(** [protocol ~coeffs ~c] with [coeffs.(i) >= 0] and [c >= 0]; input
    variables are named [x0, x1, …]. Uses [c + 1] value states
    ([0 .. c-1] and the flag), independent of the number of variables.
    @raise Invalid_argument on negative coefficients, negative [c], or
    an empty coefficient array. *)
