type token =
  | INT of int
  | VAR of int
  | PLUS
  | MINUS
  | STAR
  | GE
  | LE
  | GT
  | LT
  | EQ
  | MOD
  | NOT
  | AND
  | OR
  | LPAREN
  | RPAREN
  | TRUE
  | FALSE

exception Error of string

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    (match c with
     | ' ' | '\t' | '\n' -> incr i
     | '+' -> push PLUS; incr i
     | '-' -> push MINUS; incr i
     | '*' -> push STAR; incr i
     | '(' -> push LPAREN; incr i
     | ')' -> push RPAREN; incr i
     | '!' -> push NOT; incr i
     | '&' ->
       if peek 1 = Some '&' then begin push AND; i := !i + 2 end
       else raise (Error "expected &&")
     | '|' ->
       if peek 1 = Some '|' then begin push OR; i := !i + 2 end
       else raise (Error "expected ||")
     | '>' ->
       if peek 1 = Some '=' then begin push GE; i := !i + 2 end
       else begin push GT; incr i end
     | '<' ->
       if peek 1 = Some '=' then begin push LE; i := !i + 2 end
       else begin push LT; incr i end
     | '=' ->
       if peek 1 = Some '=' then begin push EQ; i := !i + 2 end
       else raise (Error "expected ==")
     | '0' .. '9' ->
       let j = ref !i in
       while !j < n && match s.[!j] with '0' .. '9' -> true | _ -> false do incr j done;
       push (INT (int_of_string (String.sub s !i (!j - !i))));
       i := !j
     | 'x' when (match peek 1 with Some ('0' .. '9') -> true | _ -> false) ->
       let j = ref (!i + 1) in
       while !j < n && match s.[!j] with '0' .. '9' -> true | _ -> false do incr j done;
       push (VAR (int_of_string (String.sub s (!i + 1) (!j - !i - 1))));
       i := !j
     | 'a' .. 'z' ->
       let j = ref !i in
       while !j < n && match s.[!j] with 'a' .. 'z' -> true | _ -> false do incr j done;
       let word = String.sub s !i (!j - !i) in
       (match word with
        | "mod" -> push MOD
        | "true" -> push TRUE
        | "false" -> push FALSE
        | w -> raise (Error (Printf.sprintf "unknown word %S" w)));
       i := !j
     | c -> raise (Error (Printf.sprintf "unexpected character %C" c)))
  done;
  List.rev !tokens

(* A linear combination as (coefficient map over variables). *)
let coeffs_of assoc =
  let max_var = List.fold_left (fun acc (v, _) -> Stdlib.max acc v) 0 assoc in
  let a = Array.make (max_var + 1) 0 in
  List.iter (fun (v, c) -> a.(v) <- a.(v) + c) assoc;
  a

type state = { mutable rest : token list }

let next st = match st.rest with [] -> None | t :: r -> st.rest <- r; Some t
let peek st = match st.rest with [] -> None | t :: _ -> Some t

let expect st t what =
  match next st with
  | Some t' when t' = t -> ()
  | _ -> raise (Error ("expected " ^ what))

(* term ::= int | [int '*'] var | '-'? handled by caller *)
let parse_term st =
  match next st with
  | Some (INT k) ->
    (match peek st with
     | Some STAR ->
       ignore (next st);
       (match next st with
        | Some (VAR v) -> `Var (v, k)
        | _ -> raise (Error "expected variable after *"))
     | _ -> `Const k)
  | Some (VAR v) -> `Var (v, 1)
  | _ -> raise (Error "expected a term")

(* linear ::= term (('+'|'-') term)*  — returns (variable terms, constant) *)
let parse_linear st =
  let vars = ref [] and const = ref 0 in
  let add sign = function
    | `Var (v, c) -> vars := (v, sign * c) :: !vars
    | `Const k -> const := !const + (sign * k)
  in
  add 1 (parse_term st);
  let continue = ref true in
  while !continue do
    match peek st with
    | Some PLUS ->
      ignore (next st);
      add 1 (parse_term st)
    | Some MINUS ->
      ignore (next st);
      add (-1) (parse_term st)
    | _ -> continue := false
  done;
  (!vars, !const)

let parse_int st =
  match next st with
  | Some (INT k) -> k
  | Some MINUS ->
    (match next st with
     | Some (INT k) -> -k
     | _ -> raise (Error "expected an integer"))
  | _ -> raise (Error "expected an integer")

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Some OR ->
    ignore (next st);
    Predicate.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_atomic st in
  match peek st with
  | Some AND ->
    ignore (next st);
    Predicate.And (left, parse_and st)
  | _ -> left

and parse_atomic st =
  match peek st with
  | Some NOT ->
    ignore (next st);
    Predicate.Not (parse_atomic st)
  | Some LPAREN ->
    ignore (next st);
    let f = parse_or st in
    expect st RPAREN ")";
    f
  | Some TRUE ->
    ignore (next st);
    Predicate.Const true
  | Some FALSE ->
    ignore (next st);
    Predicate.Const false
  | _ -> parse_comparison st

and parse_comparison st =
  let vars, const = parse_linear st in
  let a = coeffs_of vars in
  match next st with
  | Some GE -> Predicate.Threshold (a, parse_int st - const)
  | Some GT -> Predicate.Threshold (a, parse_int st - const + 1)
  | Some LE -> Predicate.Not (Predicate.Threshold (a, parse_int st - const + 1))
  | Some LT -> Predicate.Not (Predicate.Threshold (a, parse_int st - const))
  | Some EQ ->
    let r = parse_int st in
    expect st MOD "mod";
    let m = parse_int st in
    if m < 1 then raise (Error "modulus must be positive");
    (* Σ a·x + const ≡ r  <=>  Σ a·x ≡ r - const (mod m) *)
    Predicate.Modulo (a, (((r - const) mod m) + m) mod m, m)
  | _ -> raise (Error "expected a comparison operator")

let parse s =
  match tokenize s with
  | exception Error e -> Result.Error e
  | tokens ->
    let st = { rest = tokens } in
    (match parse_or st with
     | f -> if st.rest = [] then Ok f else Result.Error "trailing input"
     | exception Error e -> Result.Error e)
