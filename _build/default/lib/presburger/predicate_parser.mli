(** A small concrete syntax for {!Predicate} formulas, so predicates can
    be passed on the command line and compiled with {!Compile}.

    Grammar (usual precedence: [!] > [&&] > [||]):
    {v
    formula  ::= 'true' | 'false'
               | linear '>=' int | linear '<=' int
               | linear '>' int  | linear '<' int
               | linear '==' int 'mod' int
               | '!' formula | formula '&&' formula | formula '||' formula
               | '(' formula ')'
    linear   ::= term (('+' | '-') term)*
    term     ::= int | [int '*'] var
    var      ::= 'x' digits
    v}

    Examples: ["x0 >= 7"], ["x0 - x1 >= 1 && x0 + x1 >= 4"],
    ["2*x0 + x1 == 1 mod 3 || !(x0 < 5)"]. *)

val parse : string -> (Predicate.t, string) result
(** Non-[>=] comparisons are normalised: [l <= c] to [¬(l >= c+1)],
    [l > c] to [l >= c+1], [l < c] to [¬(l >= c)]. *)
