(* Both orientations of a transition as agent-level (ordered) mappings:
   p,q -> p',q' acts as "one agent goes p to p', the other q to q'". *)
let oriented { Population.pre = a, b; post = a', b' } =
  let straight = ((a, b), (a', b')) in
  let swapped = ((b, a), (b', a')) in
  if straight = swapped then [ straight ] else [ straight; swapped ]

let combine ~f ~name (p1 : Population.t) (p2 : Population.t) =
  if not (Population.is_leaderless p1 && Population.is_leaderless p2) then
    invalid_arg "Product.combine: leaderless protocols only";
  if p1.Population.input_vars <> p2.Population.input_vars then
    invalid_arg "Product.combine: input variables must coincide";
  let n1 = Population.num_states p1 and n2 = Population.num_states p2 in
  let pair i j = (i * n2) + j in
  let states =
    Array.init (n1 * n2) (fun s ->
        Printf.sprintf "%s|%s"
          p1.Population.states.(s / n2)
          p2.Population.states.(s mod n2))
  in
  let transitions = ref [] in
  Array.iter
    (fun t1 ->
      Array.iter
        (fun t2 ->
          List.iter
            (fun ((a1, b1), (a1', b1')) ->
              List.iter
                (fun ((a2, b2), (a2', b2')) ->
                  transitions :=
                    (pair a1 a2, pair b1 b2, pair a1' a2', pair b1' b2')
                    :: !transitions)
                (oriented t2))
            (oriented t1))
        p2.Population.transitions)
    p1.Population.transitions;
  let inputs =
    Array.to_list
      (Array.mapi
         (fun x v ->
           (v, pair p1.Population.input_map.(x) p2.Population.input_map.(x)))
         p1.Population.input_vars)
  in
  let output =
    Array.init (n1 * n2) (fun s ->
        f p1.Population.output.(s / n2) p2.Population.output.(s mod n2))
  in
  Population.make ~name ~states ~transitions:!transitions ~inputs ~output ()
