(** Synchronous products of population protocols — the classic closure
    construction (Angluin et al. [8]) behind boolean combinations of
    predicates.

    An agent of the product carries one state of each component; when
    two agents interact, a transition of each component fires on the
    respective coordinates. Any fair execution of the product projects
    to fair executions of both components, so if the components compute
    [φ1] and [φ2], the product with output [f o1 o2] computes
    [f ∘ (φ1, φ2)]. *)

val combine :
  f:(bool -> bool -> bool) ->
  name:string ->
  Population.t ->
  Population.t ->
  Population.t
(** [combine ~f ~name p1 p2]. Both protocols must be leaderless and
    have identical input-variable name lists (in the same order).
    The product has [|Q1|·|Q2|] states.
    @raise Invalid_argument otherwise. *)
