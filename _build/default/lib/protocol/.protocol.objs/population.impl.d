lib/protocol/population.ml: Array Format Fun Hashtbl Intvec List Mset Printf String
