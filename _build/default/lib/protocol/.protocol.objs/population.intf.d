lib/protocol/population.mli: Format Intvec Mset
