lib/protocol/predicate.ml: Array Format Stdlib
