lib/protocol/predicate.mli: Format
