lib/protocol/protocol_gen.ml: Array Fun List Population Printf
