lib/protocol/protocol_gen.mli: Population
