lib/protocol/protocol_syntax.ml: Array Buffer Fun Hashtbl In_channel List Mset Option Population Printf String
