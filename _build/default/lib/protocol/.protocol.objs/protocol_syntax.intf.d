lib/protocol/protocol_syntax.mli: Population
