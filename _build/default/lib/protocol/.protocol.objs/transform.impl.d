lib/protocol/transform.ml: Array Fun Hashtbl List Mset Population
