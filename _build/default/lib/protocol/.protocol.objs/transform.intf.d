lib/protocol/transform.mli: Population
