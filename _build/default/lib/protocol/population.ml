type transition = {
  pre : int * int;
  post : int * int;
}

type t = {
  name : string;
  states : string array;
  transitions : transition array;
  leaders : Mset.t;
  input_vars : string array;
  input_map : int array;
  output : bool array;
  deltas : Intvec.t array;
}

let canon_pair (a, b) = if a <= b then (a, b) else (b, a)

let transition_of_quad (p, q, p', q') =
  { pre = canon_pair (p, q); post = canon_pair (p', q') }

let delta_of_transition d { pre = p, q; post = p', q' } =
  let v = Array.make d 0 in
  v.(p) <- v.(p) - 1;
  v.(q) <- v.(q) - 1;
  v.(p') <- v.(p') + 1;
  v.(q') <- v.(q') + 1;
  v

let make ~name ~states ~transitions ?(leaders = []) ~inputs ~output () =
  let d = Array.length states in
  if d = 0 then invalid_arg "Population.make: no states";
  if Array.length output <> d then
    invalid_arg "Population.make: output array has wrong length";
  if inputs = [] then invalid_arg "Population.make: no input variable";
  let check_state what i =
    if i < 0 || i >= d then
      invalid_arg (Printf.sprintf "Population.make: %s state %d out of range" what i)
  in
  List.iter
    (fun (p, q, p', q') ->
      check_state "transition" p;
      check_state "transition" q;
      check_state "transition" p';
      check_state "transition" q')
    transitions;
  List.iter (fun (_, s) -> check_state "input" s) inputs;
  List.iter
    (fun (s, k) ->
      check_state "leader" s;
      if k < 0 then invalid_arg "Population.make: negative leader count")
    leaders;
  let canonical = List.map transition_of_quad transitions in
  let dedup =
    List.fold_left
      (fun acc tr -> if List.mem tr acc then acc else tr :: acc)
      [] canonical
    |> List.rev
  in
  let transitions = Array.of_list dedup in
  let deltas = Array.map (delta_of_transition d) transitions in
  {
    name;
    states;
    transitions;
    leaders = Mset.of_list d leaders;
    input_vars = Array.of_list (List.map fst inputs);
    input_map = Array.of_list (List.map snd inputs);
    output;
    deltas;
  }

let rename p name = { p with name }

let num_states p = Array.length p.states
let num_transitions p = Array.length p.transitions
let is_leaderless p = Mset.is_zero p.leaders

let is_deterministic p =
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun tr ->
      if Hashtbl.mem seen tr.pre then false
      else begin
        Hashtbl.add seen tr.pre ();
        true
      end)
    p.transitions

let missing_pairs p =
  let d = num_states p in
  let present = Hashtbl.create 16 in
  Array.iter (fun tr -> Hashtbl.replace present tr.pre ()) p.transitions;
  let acc = ref [] in
  for q = d - 1 downto 0 do
    for p' = q downto 0 do
      if not (Hashtbl.mem present (p', q)) then acc := (p', q) :: !acc
    done
  done;
  !acc

let complete p =
  match missing_pairs p with
  | [] -> p
  | missing ->
    let extra = List.map (fun pr -> { pre = pr; post = pr }) missing in
    let transitions = Array.append p.transitions (Array.of_list extra) in
    let deltas = Array.map (delta_of_transition (num_states p)) transitions in
    { p with transitions; deltas }

let displacement p i = p.deltas.(i)

let displacement_of_multiset p (pi : int array) =
  if Array.length pi <> num_transitions p then
    invalid_arg "Population.displacement_of_multiset: arity mismatch";
  let acc = ref (Intvec.zero (num_states p)) in
  Array.iteri
    (fun i k ->
      if k < 0 then invalid_arg "Population.displacement_of_multiset: negative count";
      if k > 0 then acc := Intvec.add !acc (Intvec.scale k p.deltas.(i)))
    pi;
  !acc

let enabled p c i =
  let { pre = a, b; _ } = p.transitions.(i) in
  if a = b then Mset.get c a >= 2 else Mset.get c a >= 1 && Mset.get c b >= 1

let fire_opt p c i =
  if not (enabled p c i) then None
  else Mset.add_delta c p.deltas.(i)

let fire p c i =
  match fire_opt p c i with
  | Some c' -> c'
  | None -> invalid_arg "Population.fire: transition disabled"

let successors p c =
  let acc = ref [] in
  for i = num_transitions p - 1 downto 0 do
    match fire_opt p c i with
    | Some c' -> acc := (i, c') :: !acc
    | None -> ()
  done;
  !acc

let distinct_successors p c =
  let tbl = Hashtbl.create 8 in
  List.filter_map
    (fun (_, c') ->
      let key = Array.to_list (Mset.to_intvec c') in
      if Hashtbl.mem tbl key then None
      else begin
        Hashtbl.add tbl key ();
        Some c'
      end)
    (successors p c)

let initial_config p v =
  if Array.length v <> Array.length p.input_vars then
    invalid_arg "Population.initial_config: input arity mismatch";
  let d = num_states p in
  let acc = ref p.leaders in
  Array.iteri
    (fun x count ->
      if count < 0 then invalid_arg "Population.initial_config: negative input";
      acc := Mset.add !acc (Mset.scale count (Mset.singleton d p.input_map.(x))))
    v;
  if Mset.size !acc < 2 then
    invalid_arg "Population.initial_config: populations have at least 2 agents";
  !acc

let initial_single p i =
  if Array.length p.input_vars <> 1 then
    invalid_arg "Population.initial_single: protocol has several input variables";
  initial_config p [| i |]

let output_of_config p c =
  let d = num_states p in
  let rec go i acc =
    if i >= d then acc
    else if Mset.get c i = 0 then go (i + 1) acc
    else begin
      match acc with
      | None -> go (i + 1) (Some p.output.(i))
      | Some b -> if p.output.(i) = b then go (i + 1) acc else None
    end
  in
  go 0 None

let state_index p name =
  let d = num_states p in
  let rec go i =
    if i >= d then raise Not_found
    else if String.equal p.states.(i) name then i
    else go (i + 1)
  in
  go 0

let state_name p i = p.states.(i)

let pp_transition p fmt { pre = a, b; post = a', b' } =
  Format.fprintf fmt "%s,%s ↦ %s,%s" p.states.(a) p.states.(b) p.states.(a')
    p.states.(b')

let pp_config p fmt c = Mset.pp ~names:p.states fmt c

let pp fmt p =
  Format.fprintf fmt "@[<v>protocol %s: %d states, %d transitions%s@," p.name
    (num_states p) (num_transitions p)
    (if is_leaderless p then "" else
       Format.asprintf ", leaders %a" (pp_config p) p.leaders);
  Format.fprintf fmt "  inputs:";
  Array.iteri
    (fun x s ->
      Format.fprintf fmt " %s→%s" p.input_vars.(x) p.states.(s))
    p.input_map;
  Format.fprintf fmt "@,  output-1 states: %s@,"
    (String.concat ", "
       (List.filter_map
          (fun i -> if p.output.(i) then Some p.states.(i) else None)
          (List.init (num_states p) Fun.id)));
  Array.iter (fun tr -> Format.fprintf fmt "  %a@," (pp_transition p) tr)
    p.transitions;
  Format.fprintf fmt "@]"
