(** The population protocol model of Section 2.2: a tuple
    [(Q, T, L, X, I, O)] of states, pairwise transitions, a leader
    multiset, input variables, an input mapping and a binary output
    mapping.

    States are indexed [0 .. num_states - 1]; configurations are
    multisets over state indices ({!Mset.t}). *)

type transition = {
  pre : int * int;   (** the unordered pair [⟨p,q⟩], stored with [p <= q] *)
  post : int * int;  (** the unordered pair [⟨p',q'⟩], stored with [p' <= q'] *)
}

type t = private {
  name : string;
  states : string array;
  transitions : transition array;
  leaders : Mset.t;
  input_vars : string array;
  input_map : int array;  (** [I]: state index for each input variable *)
  output : bool array;    (** [O]: one bit per state *)
  deltas : Intvec.t array;  (** cached displacement of each transition *)
}

val make :
  name:string ->
  states:string array ->
  transitions:(int * int * int * int) list ->
  ?leaders:(int * int) list ->
  inputs:(string * int) list ->
  output:bool array ->
  unit ->
  t
(** [make ~name ~states ~transitions ~inputs ~output ()] builds and
    validates a protocol. Each transition [(p, q, p', q')] denotes
    [p,q ↦ p',q']; pairs are canonicalised, exact duplicates dropped.
    [leaders] lists [(state, count)] pairs; default none.
    @raise Invalid_argument on out-of-range indices, empty [states], no
    input variable, or an [output] array of the wrong length. *)

val transition_of_quad : int * int * int * int -> transition

val rename : t -> string -> t
(** A copy of the protocol under a different name. *)

val num_states : t -> int
val num_transitions : t -> int
val is_leaderless : t -> bool

val is_deterministic : t -> bool
(** At most one transition per unordered pair of pre-states. *)

val missing_pairs : t -> (int * int) list
(** Unordered state pairs with no transition. The paper assumes none;
    see {!complete}. *)

val complete : t -> t
(** Adds the identity transition [p,q ↦ p,q] for every missing pair, so
    that every configuration of size >= 2 enables a transition. *)

val displacement : t -> int -> Intvec.t
(** [displacement p i] is the cached [Δ_t] of transition [i]. *)

val displacement_of_multiset : t -> int array -> Intvec.t
(** [Δ_π] for a Parikh vector [π] over transitions (Section 5.1). *)

val enabled : t -> Mset.t -> int -> bool
(** [enabled p c i]: configuration [c] enables transition [i]. *)

val fire : t -> Mset.t -> int -> Mset.t
(** [fire p c i] fires an enabled transition.
    @raise Invalid_argument if disabled. *)

val fire_opt : t -> Mset.t -> int -> Mset.t option

val successors : t -> Mset.t -> (int * Mset.t) list
(** All [(transition, successor)] pairs enabled at a configuration;
    successors may repeat when distinct transitions coincide. *)

val distinct_successors : t -> Mset.t -> Mset.t list
(** De-duplicated successor configurations. *)

val initial_config : t -> int array -> Mset.t
(** [initial_config p v] is [IC(v) = L + Σ_x v(x)·I(x)].
    @raise Invalid_argument if [v] has the wrong arity or [|IC(v)| < 2]. *)

val initial_single : t -> int -> Mset.t
(** [IC(i)] for single-input protocols (input written [i·x]).
    @raise Invalid_argument if the protocol has several input variables. *)

val output_of_config : t -> Mset.t -> bool option
(** The consensus output [O(C)]: [Some b] if every populated state has
    output [b], [None] otherwise. *)

val state_index : t -> string -> int
(** @raise Not_found if no state has that name. *)

val state_name : t -> int -> string
val pp : Format.formatter -> t -> unit
val pp_config : t -> Format.formatter -> Mset.t -> unit
val pp_transition : t -> Format.formatter -> transition -> unit
