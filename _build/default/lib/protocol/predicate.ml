type t =
  | Const of bool
  | Threshold of int array * int
  | Modulo of int array * int * int
  | Not of t
  | And of t * t
  | Or of t * t

let threshold_single eta = Threshold ([| 1 |], eta)
let majority () = Threshold ([| 1; -1 |], 1)

let dot a v =
  if Array.length a > Array.length v then
    invalid_arg "Predicate.eval: arity mismatch";
  let acc = ref 0 in
  Array.iteri (fun i c -> acc := !acc + (c * v.(i))) a;
  !acc

let rec eval p v =
  match p with
  | Const b -> b
  | Threshold (a, c) -> dot a v >= c
  | Modulo (a, r, m) ->
    if m < 1 then invalid_arg "Predicate.eval: modulus < 1";
    let s = dot a v mod m in
    let s = if s < 0 then s + m else s in
    s = r mod m
  | Not p' -> not (eval p' v)
  | And (p1, p2) -> eval p1 v && eval p2 v
  | Or (p1, p2) -> eval p1 v || eval p2 v

let rec arity = function
  | Const _ -> 0
  | Threshold (a, _) | Modulo (a, _, _) -> Array.length a
  | Not p -> arity p
  | And (p1, p2) | Or (p1, p2) -> Stdlib.max (arity p1) (arity p2)

let pp_sum fmt a =
  let first = ref true in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        if !first then begin
          first := false;
          if c = 1 then Format.fprintf fmt "x%d" i
          else Format.fprintf fmt "%d·x%d" c i
        end
        else if c > 0 then
          if c = 1 then Format.fprintf fmt " + x%d" i
          else Format.fprintf fmt " + %d·x%d" c i
        else if c = -1 then Format.fprintf fmt " - x%d" i
        else Format.fprintf fmt " - %d·x%d" (-c) i
      end)
    a;
  if !first then Format.pp_print_string fmt "0"

let rec pp fmt = function
  | Const b -> Format.pp_print_bool fmt b
  | Threshold (a, c) -> Format.fprintf fmt "%a ≥ %d" pp_sum a c
  | Modulo (a, r, m) -> Format.fprintf fmt "%a ≡ %d (mod %d)" pp_sum a r m
  | Not p -> Format.fprintf fmt "¬(%a)" pp p
  | And (p1, p2) -> Format.fprintf fmt "(%a ∧ %a)" pp p1 pp p2
  | Or (p1, p2) -> Format.fprintf fmt "(%a ∨ %a)" pp p1 pp p2
