(** Predicates over inputs [N^X], in the threshold/modulo fragment that
    population protocols compute (Presburger predicates, [8]).

    Used to state what a protocol is supposed to compute and to check
    constructions against their specification. *)

type t =
  | Const of bool
  | Threshold of int array * int
      (** [Threshold (a, c)] holds iff [Σ a_i·x_i >= c]. *)
  | Modulo of int array * int * int
      (** [Modulo (a, r, m)] holds iff [Σ a_i·x_i ≡ r (mod m)], [m >= 1]. *)
  | Not of t
  | And of t * t
  | Or of t * t

val threshold_single : int -> t
(** [threshold_single eta] is the paper's counting predicate [x >= eta]
    over a single variable. *)

val majority : unit -> t
(** [x_A > x_B] over two variables (A first). *)

val eval : t -> int array -> bool
(** @raise Invalid_argument on arity mismatch with the coefficient
    arrays appearing in the predicate. *)

val arity : t -> int
(** Largest coefficient-array length appearing in the predicate
    (0 for [Const]). *)

val pp : Format.formatter -> t -> unit
