type config = {
  num_states : int;
  num_input_vars : int;
  deterministic : bool;
  extra_transitions : int;
  leaders : int;
}

let default =
  {
    num_states = 4;
    num_input_vars = 1;
    deterministic = true;
    extra_transitions = 0;
    leaders = 0;
  }

(* A tiny self-contained LCG so the generator does not perturb (or
   depend on) any other random stream. *)
let make_stream seed =
  let state = ref ((seed * 2654435761) + 1) in
  fun bound ->
    (* Java-style 48-bit LCG constants, comfortably inside 63-bit ints. *)
    state := ((!state * 0x5DEECE66D) + 0xB) land ((1 lsl 48) - 1);
    (!state lsr 17) mod bound

let generate ?(config = default) ~seed () =
  let { num_states = d; num_input_vars; deterministic; extra_transitions; leaders } =
    config
  in
  if d < 1 then invalid_arg "Protocol_gen.generate: num_states >= 1";
  if num_input_vars < 1 then invalid_arg "Protocol_gen.generate: inputs >= 1";
  let next = make_stream seed in
  let pairs =
    List.concat_map
      (fun i -> List.map (fun j -> (i, j)) (List.init (d - i) (fun k -> i + k)))
      (List.init d Fun.id)
  in
  let parr = Array.of_list pairs in
  let random_pair () = parr.(next (Array.length parr)) in
  let base =
    List.map
      (fun (a, b) ->
        let a', b' = random_pair () in
        (a, b, a', b'))
      pairs
  in
  let extra =
    if deterministic then []
    else
      List.init extra_transitions (fun _ ->
          let a, b = random_pair () and a', b' = random_pair () in
          (a, b, a', b'))
  in
  let inputs =
    List.init num_input_vars (fun i -> (Printf.sprintf "x%d" i, next d))
  in
  let leaders = List.init leaders (fun _ -> (next d, 1)) in
  let output = Array.init d (fun _ -> next 2 = 0) in
  Population.make
    ~name:(Printf.sprintf "random-%d-%d" d seed)
    ~states:(Array.init d (Printf.sprintf "q%d"))
    ~transitions:(base @ extra) ~leaders ~inputs ~output ()
