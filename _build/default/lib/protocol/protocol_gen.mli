(** Seeded random protocol generation, for property-based testing and
    fuzzing the analysis engines against each other.

    Determinism: the same parameters and seed always yield the same
    protocol (the generator uses its own linear congruential stream, so
    it does not depend on any global random state). *)

type config = {
  num_states : int;
  num_input_vars : int;      (** input variables [x0, …], mapped to random states *)
  deterministic : bool;      (** at most one transition per state pair *)
  extra_transitions : int;   (** additional random transitions when not deterministic *)
  leaders : int;             (** leader agents placed on random states *)
}

val default : config
(** 4 states, 1 input variable, deterministic, complete, leaderless. *)

val generate : ?config:config -> seed:int -> unit -> Population.t
(** A complete protocol: every state pair has at least one transition. *)
