type partial = {
  mutable name : string option;
  mutable states : string array option;
  mutable inputs : (string * string) list; (* var, state name; reversed *)
  mutable leaders : (int * string) list;
  mutable accept : string list;
  mutable trans : (string * string * string * string) list; (* reversed *)
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let tokens_of_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let process_line p lineno line =
  match tokens_of_line line with
  | [] -> ()
  | "protocol" :: rest ->
    (match rest with
     | [ n ] -> p.name <- Some n
     | _ -> fail lineno "expected: protocol <name>")
  | "states" :: rest ->
    if rest = [] then fail lineno "expected at least one state";
    if p.states <> None then fail lineno "duplicate states directive";
    p.states <- Some (Array.of_list rest)
  | "input" :: rest ->
    (match rest with
     | [ var; "->"; st ] -> p.inputs <- (var, st) :: p.inputs
     | _ -> fail lineno "expected: input <var> -> <state>")
  | "leader" :: rest ->
    (match rest with
     | [ count; st ] ->
       (match int_of_string_opt count with
        | Some k when k >= 0 -> p.leaders <- (k, st) :: p.leaders
        | _ -> fail lineno "expected a non-negative leader count")
     | _ -> fail lineno "expected: leader <count> <state>")
  | "accept" :: rest -> p.accept <- p.accept @ rest
  | "trans" :: rest ->
    (match rest with
     | [ a; b; "->"; a'; b' ] -> p.trans <- (a, b, a', b') :: p.trans
     | _ -> fail lineno "expected: trans <p> <q> -> <p'> <q'>")
  | tok :: _ -> fail lineno (Printf.sprintf "unknown directive %S" tok)

let build p =
  let states =
    match p.states with
    | Some s -> s
    | None -> fail 0 "missing states directive"
  in
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem index s then fail 0 (Printf.sprintf "duplicate state %S" s);
      Hashtbl.add index s i)
    states;
  let lookup what s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None -> fail 0 (Printf.sprintf "%s refers to unknown state %S" what s)
  in
  let name = Option.value p.name ~default:"unnamed" in
  let inputs =
    List.rev_map (fun (v, s) -> (v, lookup "input" s)) p.inputs
  in
  if inputs = [] then fail 0 "missing input directive";
  let leaders = List.rev_map (fun (k, s) -> (lookup "leader" s, k)) p.leaders in
  let output = Array.make (Array.length states) false in
  List.iter (fun s -> output.(lookup "accept" s) <- true) p.accept;
  let transitions =
    List.rev_map
      (fun (a, b, a', b') ->
        (lookup "trans" a, lookup "trans" b, lookup "trans" a', lookup "trans" b'))
      p.trans
  in
  Population.make ~name ~states ~transitions ~leaders ~inputs ~output ()

let parse_string text =
  let p =
    { name = None; states = None; inputs = []; leaders = []; accept = []; trans = [] }
  in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun i line -> process_line p (i + 1) line);
    Ok (build p)
  with
  | Parse_error (0, msg) -> Error msg
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error msg

let to_string (p : Population.t) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "protocol %s" p.name;
  line "states %s" (String.concat " " (Array.to_list p.states));
  Array.iteri
    (fun x st -> line "input %s -> %s" p.input_vars.(x) p.states.(st))
    p.input_map;
  Array.iteri
    (fun st count -> if count > 0 then line "leader %d %s" count p.states.(st))
    (Mset.to_intvec p.leaders);
  let accepting =
    List.filter_map
      (fun i -> if p.output.(i) then Some p.states.(i) else None)
      (List.init (Array.length p.states) Fun.id)
  in
  if accepting <> [] then line "accept %s" (String.concat " " accepting);
  Array.iter
    (fun { Population.pre = a, b; post = a', b' } ->
      line "trans %s %s -> %s %s" p.states.(a) p.states.(b) p.states.(a')
        p.states.(b'))
    p.transitions;
  Buffer.contents buf
