(** A small line-oriented concrete syntax for population protocols, so
    that the CLI tools can load protocols from files and the catalog can
    be exported.

    Format (one directive per line, [#] starts a comment):
    {v
    protocol <name>
    states <s0> <s1> ...
    input <var> -> <state>          (repeatable; at least one)
    leader <count> <state>          (optional, repeatable)
    accept <state> ...              (states with output 1; repeatable)
    trans <p> <q> -> <p'> <q'>      (repeatable)
    v} *)

val parse_string : string -> (Population.t, string) result
(** Errors carry a line number and a description. *)

val parse_file : string -> (Population.t, string) result

val to_string : Population.t -> string
(** Round-trips through {!parse_string}. *)
