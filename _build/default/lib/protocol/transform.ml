let rebuild ~name ~states ~transitions ~leaders ~inputs ~output =
  Population.make ~name ~states ~transitions ~leaders ~inputs ~output ()

let quad_of_transition { Population.pre = a, b; post = a', b' } = (a, b, a', b')

let complement (p : Population.t) =
  rebuild
    ~name:(p.Population.name ^ "-complement")
    ~states:(Array.copy p.Population.states)
    ~transitions:(Array.to_list (Array.map quad_of_transition p.Population.transitions))
    ~leaders:
      (List.filter_map
         (fun q ->
           let k = Mset.get p.Population.leaders q in
           if k > 0 then Some (q, k) else None)
         (List.init (Population.num_states p) Fun.id))
    ~inputs:
      (Array.to_list
         (Array.mapi (fun x s -> (p.Population.input_vars.(x), s)) p.Population.input_map))
    ~output:(Array.map not p.Population.output)

(* States populated by some reachable configuration: the closure of
   input states and leader states under "both pre-states inside". *)
let coverable_states (p : Population.t) =
  let d = Population.num_states p in
  let in_set = Array.make d false in
  Array.iter (fun s -> in_set.(s) <- true) p.Population.input_map;
  List.iter
    (fun q -> if Mset.get p.Population.leaders q > 0 then in_set.(q) <- true)
    (List.init d Fun.id);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun { Population.pre = a, b; post = a', b' } ->
        if in_set.(a) && in_set.(b) then begin
          if not in_set.(a') then begin
            in_set.(a') <- true;
            changed := true
          end;
          if not in_set.(b') then begin
            in_set.(b') <- true;
            changed := true
          end
        end)
      p.Population.transitions
  done;
  in_set

let restrict_to_coverable (p : Population.t) =
  let keep = coverable_states p in
  let d = Population.num_states p in
  if Array.for_all Fun.id keep then p
  else begin
    let remap = Array.make d (-1) in
    let next = ref 0 in
    for q = 0 to d - 1 do
      if keep.(q) then begin
        remap.(q) <- !next;
        incr next
      end
    done;
    let states =
      Array.of_list
        (List.filter_map
           (fun q -> if keep.(q) then Some p.Population.states.(q) else None)
           (List.init d Fun.id))
    in
    let transitions =
      Array.to_list p.Population.transitions
      |> List.filter_map (fun { Population.pre = a, b; post = a', b' } ->
             if keep.(a) && keep.(b) && keep.(a') && keep.(b') then
               Some (remap.(a), remap.(b), remap.(a'), remap.(b'))
             else None)
    in
    let leaders =
      List.filter_map
        (fun q ->
          let k = Mset.get p.Population.leaders q in
          if k > 0 && keep.(q) then Some (remap.(q), k) else None)
        (List.init d Fun.id)
    in
    let inputs =
      Array.to_list
        (Array.mapi
           (fun x s -> (p.Population.input_vars.(x), remap.(s)))
           p.Population.input_map)
    in
    let output =
      Array.of_list
        (List.filter_map
           (fun q -> if keep.(q) then Some p.Population.output.(q) else None)
           (List.init d Fun.id))
    in
    rebuild
      ~name:(p.Population.name ^ "-restricted")
      ~states ~transitions ~leaders ~inputs ~output
  end

let relabel (p : Population.t) f =
  let d = Population.num_states p in
  let states = Array.init d f in
  let seen = Hashtbl.create d in
  Array.iter
    (fun s ->
      if Hashtbl.mem seen s then
        invalid_arg "Transform.relabel: duplicate state name";
      Hashtbl.add seen s ())
    states;
  rebuild ~name:p.Population.name ~states
    ~transitions:(Array.to_list (Array.map quad_of_transition p.Population.transitions))
    ~leaders:
      (List.filter_map
         (fun q ->
           let k = Mset.get p.Population.leaders q in
           if k > 0 then Some (q, k) else None)
         (List.init d Fun.id))
    ~inputs:
      (Array.to_list
         (Array.mapi (fun x s -> (p.Population.input_vars.(x), s)) p.Population.input_map))
    ~output:(Array.copy p.Population.output)
