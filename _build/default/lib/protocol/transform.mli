(** Structural transformations of protocols. *)

val complement : Population.t -> Population.t
(** Flip every output bit: computes the negation of the original
    predicate (stable consensus for [b] becomes stable consensus for
    [not b]). *)

val restrict_to_coverable : Population.t -> Population.t
(** Drop states no configuration reachable from an initial
    configuration ever populates (closure of the input states and
    leaders under transitions), together with the transitions that
    mention them. The result is equivalent to the input protocol and
    its state count is the honest one for state-complexity purposes. *)

val relabel : Population.t -> (int -> string) -> Population.t
(** Rename states (indices are preserved).
    @raise Invalid_argument if two states receive the same name. *)
