lib/sim/gillespie.ml: Array Fun Intvec List Mset Population Splitmix64
