lib/sim/gillespie.mli: Mset Population Splitmix64
