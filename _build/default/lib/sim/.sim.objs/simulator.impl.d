lib/sim/simulator.ml: Array Hashtbl List Mset Option Population Splitmix64 Stdlib
