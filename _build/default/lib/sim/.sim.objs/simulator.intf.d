lib/sim/simulator.mli: Mset Population Splitmix64
