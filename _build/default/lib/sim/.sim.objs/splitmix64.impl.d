lib/sim/splitmix64.ml: Int64
