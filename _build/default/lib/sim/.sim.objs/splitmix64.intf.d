lib/sim/splitmix64.mli:
