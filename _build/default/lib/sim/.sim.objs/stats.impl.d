lib/sim/stats.ml: Array List Printf Stdlib
