lib/sim/stats.mli:
