type run_result = {
  time : float;
  steps : int;
  last_change : float;
  output : bool option;
  final : Mset.t;
  converged : bool;
}

let is_identity p t = Intvec.norm1 (Population.displacement p t) = 0

let propensity p counts t =
  let { Population.pre = a, b; _ } = p.Population.transitions.(t) in
  if a = b then float_of_int (counts.(a) * (counts.(a) - 1)) /. 2.0
  else float_of_int (counts.(a) * counts.(b))

let status_of ones total : bool option =
  if ones = total then Some true else if ones = 0 then Some false else None

let run ?(max_steps = 5_000_000) ?(quiet_time = 64.0) ?(rate = 1.0) ~rng p c0 =
  let d = Population.num_states p in
  let counts = Array.init d (Mset.get c0) in
  let total = Mset.size c0 in
  if total < 2 then invalid_arg "Gillespie.run: population size >= 2 required";
  let productive =
    List.filter
      (fun t -> not (is_identity p t))
      (List.init (Population.num_transitions p) Fun.id)
  in
  let scale = rate /. float_of_int total in
  let ones = ref 0 in
  Array.iteri (fun s c -> if p.Population.output.(s) then ones := !ones + c) counts;
  let time = ref 0.0 in
  let last_change = ref 0.0 in
  let status = ref (status_of !ones total) in
  let steps = ref 0 in
  let inert = ref false in
  let quiet () = !status <> None && !time -. !last_change >= quiet_time in
  while (not !inert) && (not (quiet ())) && !steps < max_steps do
    let props = List.map (fun t -> (t, propensity p counts t *. scale)) productive in
    let total_rate = List.fold_left (fun acc (_, h) -> acc +. h) 0.0 props in
    if total_rate <= 0.0 then inert := true
    else begin
      let u = Splitmix64.float_unit rng in
      let dt = -.log (1.0 -. u) /. total_rate in
      time := !time +. dt;
      if quiet () then ()
      else begin
        (* select a reaction proportionally to its propensity *)
        let target = Splitmix64.float_unit rng *. total_rate in
        let rec pick acc = function
          | [] -> List.hd (List.rev productive)
          | (t, h) :: rest -> if acc +. h >= target then t else pick (acc +. h) rest
        in
        let t = pick 0.0 props in
        incr steps;
        let { Population.pre = a, b; post = a', b' } = p.Population.transitions.(t) in
        let adjust s delta =
          counts.(s) <- counts.(s) + delta;
          if p.Population.output.(s) then ones := !ones + delta
        in
        adjust a (-1);
        adjust b (-1);
        adjust a' 1;
        adjust b' 1;
        let status' = status_of !ones total in
        if status' <> !status then begin
          status := status';
          last_change := !time
        end
      end
    end
  done;
  {
    time = !time;
    steps = !steps;
    last_change = !last_change;
    output = !status;
    final = Mset.of_array counts;
    converged = !inert || quiet ();
  }

let run_input ?max_steps ?quiet_time ?rate ~rng p v =
  run ?max_steps ?quiet_time ?rate ~rng p (Population.initial_config p v)
