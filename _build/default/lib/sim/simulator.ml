type run_result = {
  steps : int;
  last_change : int;
  output : bool option;
  final : Mset.t;
  converged : bool;
}

(* Lookup from a canonical state pair to the indices of the transitions
   it enables. *)
let pair_table p =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i (tr : Population.transition) ->
      let prev = Option.value (Hashtbl.find_opt tbl tr.pre) ~default:[] in
      Hashtbl.replace tbl tr.pre (i :: prev))
    p.Population.transitions;
  Hashtbl.fold (fun k v acc -> (k, Array.of_list v) :: acc) tbl []
  |> List.to_seq |> Hashtbl.of_seq

(* Sample the states of two distinct agents drawn uniformly from the
   population described by [counts]. *)
let sample_pair rng counts total =
  let pick_index k =
    (* k is a position in 0..total-1 over agents grouped by state *)
    let rec go s acc =
      let acc' = acc + counts.(s) in
      if k < acc' then s else go (s + 1) acc'
    in
    go 0 0
  in
  let k1 = Splitmix64.int_below rng total in
  let s1 = pick_index k1 in
  (* remove agent 1, draw agent 2 from the remaining total-1 *)
  counts.(s1) <- counts.(s1) - 1;
  let k2 = Splitmix64.int_below rng (total - 1) in
  let s2 = pick_index k2 in
  counts.(s1) <- counts.(s1) + 1;
  (s1, s2)

let status_of ones total : bool option =
  if ones = total then Some true else if ones = 0 then Some false else None

let run ?(max_steps = 50_000_000) ?(quiet_window = 64.0) ~rng p c0 =
  let d = Population.num_states p in
  let counts = Array.init d (Mset.get c0) in
  let total = Mset.size c0 in
  if total < 2 then invalid_arg "Simulator.run: population size >= 2 required";
  let table = pair_table p in
  let ones = ref 0 in
  Array.iteri (fun s c -> if p.Population.output.(s) then ones := !ones + c) counts;
  let quiet_steps =
    int_of_float (quiet_window *. float_of_int total) |> Stdlib.max 1
  in
  let last_change = ref 0 in
  let status = ref (status_of !ones total) in
  let step = ref 0 in
  let finished = ref false in
  while (not !finished) && !step < max_steps do
    incr step;
    let s1, s2 = sample_pair rng counts total in
    let pre = if s1 <= s2 then (s1, s2) else (s2, s1) in
    (match Hashtbl.find_opt table pre with
     | None -> ()
     | Some trs ->
       let i =
         if Array.length trs = 1 then trs.(0)
         else trs.(Splitmix64.int_below rng (Array.length trs))
       in
       let { Population.post = p1, p2; _ } = p.Population.transitions.(i) in
       let adjust s delta =
         counts.(s) <- counts.(s) + delta;
         if p.Population.output.(s) then ones := !ones + delta
       in
       adjust s1 (-1);
       adjust s2 (-1);
       adjust p1 1;
       adjust p2 1);
    let status' = status_of !ones total in
    if status' <> !status then begin
      status := status';
      last_change := !step
    end;
    if !step - !last_change >= quiet_steps && !status <> None then finished := true
  done;
  {
    steps = !step;
    last_change = !last_change;
    output = !status;
    final = Mset.of_array counts;
    converged = !finished;
  }

let run_input ?max_steps ?quiet_window ~rng p v =
  run ?max_steps ?quiet_window ~rng p (Population.initial_config p v)

let parallel_time r ~population =
  float_of_int r.last_change /. float_of_int population

let sample_parallel_times ?(runs = 10) ?max_steps ?quiet_window ~rng p v =
  let c0 = Population.initial_config p v in
  let population = Mset.size c0 in
  List.init runs (fun _ -> run ?max_steps ?quiet_window ~rng p c0)
  |> List.filter (fun r -> r.converged)
  |> List.map (fun r -> parallel_time r ~population)
