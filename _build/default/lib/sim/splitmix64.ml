type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let next g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Top 62 bits as a non-negative OCaml int. *)
let next_nonneg g = Int64.to_int (Int64.shift_right_logical (next g) 2)

let int_below g n =
  if n <= 0 then invalid_arg "Splitmix64.int_below: n >= 1 required";
  (* Rejection sampling over the largest multiple of n below 2^62. *)
  let bound = (max_int / n) * n in
  let rec draw () =
    let v = next_nonneg g in
    if v < bound then v mod n else draw ()
  in
  draw ()

let float_unit g =
  let v = Int64.to_int (Int64.shift_right_logical (next g) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let split g =
  let seed = Int64.to_int (next g) in
  create seed
