(** SplitMix64 pseudo-random number generator.

    A small, fast, deterministic PRNG so that simulations and randomised
    test-case generators are reproducible from an explicit seed,
    independent of the OCaml standard library's generator. *)

type t

val create : int -> t
(** [create seed] initialises a generator from a machine-integer seed. *)

val copy : t -> t

val next : t -> int64
(** The next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below g n] draws uniformly from [0 .. n-1], for [n >= 1],
    without modulo bias. *)

val float_unit : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** A generator with an independent stream. *)
