(** Small descriptive-statistics helpers for simulation experiments. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons.
    @raise Invalid_argument on an empty list. *)

val quantile : float -> float list -> float
(** [quantile q xs] for [0 <= q <= 1], by linear interpolation.
    @raise Invalid_argument on an empty list or out-of-range [q]. *)

val median : float list -> float

val summary : float list -> string
(** ["mean=… sd=… med=… n=…"], or ["n=0"] when empty. *)
