lib/verify/configgraph.ml: Array Hashtbl List Mset Population Stdlib
