lib/verify/configgraph.mli: Mset Population
