lib/verify/eta_search.ml: Array Fair_semantics Format List Population String
