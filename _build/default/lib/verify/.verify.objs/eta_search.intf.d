lib/verify/eta_search.mli: Fair_semantics Format Population
