lib/verify/fair_semantics.ml: Array Bool Configgraph Format List Mset Population Predicate Scc Stdlib
