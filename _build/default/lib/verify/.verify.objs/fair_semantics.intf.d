lib/verify/fair_semantics.mli: Format Mset Population Predicate
