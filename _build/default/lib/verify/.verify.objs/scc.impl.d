lib/verify/scc.ml: Array Stdlib
