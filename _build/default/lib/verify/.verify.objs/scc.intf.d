lib/verify/scc.mli:
