lib/verify/witness.ml: Array Configgraph Format Hashtbl List Mset Option Population Queue
