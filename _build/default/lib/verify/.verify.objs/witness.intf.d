lib/verify/witness.mli: Format Mset Population
