(** Explicit-state exploration of the configuration space.

    For a fixed input, the set of configurations reachable from [IC(v)]
    is finite (interactions preserve the number of agents), so the
    reachability graph can be built exhaustively. This graph is the
    ground truth for the semantics of Section 2.2: reachability
    ([C →* C']), fair-execution outcomes, and stability are all decided
    on it. *)

type t = private {
  protocol : Population.t;
  configs : Mset.t array;     (** node index -> configuration *)
  succ : int array array;     (** distinct successor node indices *)
  root : int;                  (** index of the initial configuration *)
}

exception Too_many_configs of int
(** Raised by {!explore} when the exploration exceeds its node budget. *)

val explore : ?max_configs:int -> Population.t -> Mset.t -> t
(** [explore p c0] builds the graph of configurations reachable from
    [c0]. Default budget: 2_000_000 nodes.
    @raise Too_many_configs if the budget is exceeded. *)

val num_configs : t -> int

val find : t -> Mset.t -> int option
(** Index of a configuration in the graph, if reachable. *)

val reachable_from : t -> int -> bool array
(** Forward closure of a node, as a membership array. *)

val can_reach : t -> src:int -> (Mset.t -> bool) -> bool
(** Does some configuration satisfying the predicate lie in the forward
    closure of [src]? *)
