type t = {
  component : int array;
  num_components : int;
  is_bottom : bool array;
  members : int list array;
}

(* Iterative Tarjan; the recursion is unrolled with an explicit frame
   stack because configuration graphs can have very long paths. *)
let compute (succ : int array array) =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Each frame is (node, next child position). *)
  let frames = ref [] in
  let push_node v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    frames := (v, ref 0) :: !frames
  in
  let pop_component v =
    let comp = !next_comp in
    incr next_comp;
    let rec pop () =
      match !stack with
      | [] -> assert false
      | w :: rest ->
        stack := rest;
        on_stack.(w) <- false;
        component.(w) <- comp;
        if w <> v then pop ()
    in
    pop ()
  in
  let run root =
    push_node root;
    let rec loop () =
      match !frames with
      | [] -> ()
      | (v, child) :: rest ->
        if !child < Array.length succ.(v) then begin
          let w = succ.(v).(!child) in
          incr child;
          if index.(w) = -1 then push_node w
          else if on_stack.(w) then
            lowlink.(v) <- Stdlib.min lowlink.(v) index.(w)
        end
        else begin
          frames := rest;
          (match rest with
           | (parent, _) :: _ ->
             lowlink.(parent) <- Stdlib.min lowlink.(parent) lowlink.(v)
           | [] -> ());
          if lowlink.(v) = index.(v) then pop_component v
        end;
        loop ()
    in
    loop ()
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then run v
  done;
  let num_components = !next_comp in
  let is_bottom = Array.make num_components true in
  let members = Array.make num_components [] in
  for v = 0 to n - 1 do
    members.(component.(v)) <- v :: members.(component.(v));
    Array.iter
      (fun w ->
        if component.(w) <> component.(v) then is_bottom.(component.(v)) <- false)
      succ.(v)
  done;
  { component; num_components; is_bottom; members }

let bottom_components t =
  let acc = ref [] in
  for c = t.num_components - 1 downto 0 do
    if t.is_bottom.(c) then acc := c :: !acc
  done;
  !acc
