(** Strongly connected components of a configuration graph (iterative
    Tarjan), and identification of the {e bottom} components — those
    with no edge leaving them.

    Fair executions (Section 2.2) almost surely end inside a bottom SCC
    and then visit each of its configurations infinitely often, so the
    possible limiting behaviours of a protocol on a given input are
    exactly the bottom SCCs reachable from the initial configuration. *)

type t = private {
  component : int array;      (** node -> component id *)
  num_components : int;
  is_bottom : bool array;     (** component id -> bottomness *)
  members : int list array;   (** component id -> member nodes *)
}

val compute : int array array -> t
(** [compute succ] for a graph given by successor adjacency. *)

val bottom_components : t -> int list
(** Ids of the bottom components. *)
