module H = Hashtbl.Make (struct
  type t = Mset.t

  let equal = Mset.equal
  let hash = Mset.hash
end)

let find ?(max_configs = 2_000_000) p ~src ~target =
  (* BFS recording, for every discovered configuration, the transition
     and predecessor that first reached it. *)
  let parent : (int * Mset.t) option H.t = H.create 1024 in
  let queue = Queue.create () in
  H.add parent src None;
  Queue.add src queue;
  let count = ref 1 in
  let rec trace_back c acc =
    match H.find parent c with
    | None -> acc
    | Some (t, pred) -> trace_back pred (t :: acc)
  in
  let found = ref None in
  (try
     while not (Queue.is_empty queue) do
       let c = Queue.pop queue in
       if target c then begin
         found := Some (trace_back c [], c);
         raise Exit
       end;
       List.iter
         (fun (t, c') ->
           if not (H.mem parent c') then begin
             if !count >= max_configs then
               raise (Configgraph.Too_many_configs max_configs);
             H.add parent c' (Some (t, c));
             incr count;
             Queue.add c' queue
           end)
         (Population.successors p c)
     done
   with Exit -> ());
  !found

let find_config ?max_configs p ~src c =
  Option.map fst (find ?max_configs p ~src ~target:(Mset.equal c))

let replay p c0 sigma =
  let rec go c = function
    | [] -> Some c
    | t :: rest ->
      (match Population.fire_opt p c t with
       | Some c' -> go c' rest
       | None -> None)
  in
  go c0 sigma

let pp_trace p fmt sigma =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i t ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "%d: %a" i (Population.pp_transition p)
        p.Population.transitions.(t))
    sigma;
  Format.fprintf fmt "@]"
