(** Concrete witness executions: transition sequences realising a
    reachability claim, found by breadth-first search (hence of minimal
    length).

    Complements {!Configgraph} (which answers yes/no questions) when a
    replayable certificate is wanted — e.g. the [IC(i) →* C] halves of
    pumping witnesses, or debugging a protocol that stabilises to the
    wrong consensus. *)

val find :
  ?max_configs:int ->
  Population.t ->
  src:Mset.t ->
  target:(Mset.t -> bool) ->
  (int list * Mset.t) option
(** [find p ~src ~target] is [Some (sigma, c)] where firing [sigma]
    from [src] reaches [c] with [target c], and [sigma] has minimal
    length; [None] if no reachable configuration satisfies [target].
    @raise Configgraph.Too_many_configs on budget exhaustion
    (default 2_000_000). *)

val find_config :
  ?max_configs:int ->
  Population.t ->
  src:Mset.t ->
  Mset.t ->
  int list option
(** Minimal-length sequence to one specific configuration. *)

val replay : Population.t -> Mset.t -> int list -> Mset.t option
(** Fire a sequence, [None] if some transition is disabled en route. *)

val pp_trace : Population.t -> Format.formatter -> int list -> unit
(** Prints the transitions of a trace, one per line. *)
