lib/wqo/bad_sequences.ml: Array Dickson Intvec List
