lib/wqo/bad_sequences.mli: Intvec
