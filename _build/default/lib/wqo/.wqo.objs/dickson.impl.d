lib/wqo/dickson.ml: Array Intvec List Seq
