lib/wqo/dickson.mli: Intvec Seq
