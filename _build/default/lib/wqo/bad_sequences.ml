(* All vectors of N^dim with ‖v‖₁ <= budget, in descending lexicographic
   order (largest first coordinate first) — the order in which both the
   exact search and the greedy strategy prefer to try them. *)
let vectors_up_to ~dim ~budget =
  let rec go d budget =
    if d = 0 then [ [] ]
    else
      List.concat_map
        (fun first -> List.map (fun rest -> first :: rest) (go (d - 1) (budget - first)))
        (List.init (budget + 1) (fun i -> budget - i))
  in
  List.map Array.of_list (go dim budget)

let allowed chosen v =
  (* appending v keeps the sequence bad iff no earlier vector is <= v *)
  not (List.exists (fun u -> Intvec.leq u v) chosen)

let max_length_exact ~dim ~delta ~budget =
  if dim < 1 then invalid_arg "Bad_sequences.max_length_exact: dim >= 1";
  let nodes = ref 0 in
  let best = ref 0 in
  let exception Out_of_budget in
  (* chosen is kept in reverse order; position i = List.length chosen *)
  let rec dfs chosen i =
    incr nodes;
    if !nodes > budget then raise Out_of_budget;
    if i > !best then best := i;
    let options =
      List.filter (allowed chosen) (vectors_up_to ~dim ~budget:(i + delta))
    in
    List.iter (fun v -> dfs (v :: chosen) (i + 1)) options
  in
  match dfs [] 0 with
  | () -> Some !best
  | exception Out_of_budget -> None

let greedy_sequence ~dim ~delta ~max_len =
  if dim < 1 then invalid_arg "Bad_sequences.greedy_sequence: dim >= 1";
  let rec go chosen i =
    if i >= max_len then List.rev chosen
    else begin
      match
        List.find_opt (allowed chosen) (vectors_up_to ~dim ~budget:(i + delta))
      with
      | Some v -> go (v :: chosen) (i + 1)
      | None -> List.rev chosen
    end
  in
  go [] 0

let descending_staircase ~delta ~max_len =
  (* First coordinate walks delta, delta-1, …, 0; at each level the
     second coordinate spins down from its control bound. *)
  let out = ref [] in
  let len = ref 0 in
  (try
     let i = ref 0 in
     for a = delta downto 0 do
       let start = !i + delta - a in
       for c = start downto 0 do
         if !len >= max_len then raise Exit;
         out := [| a; c |] :: !out;
         incr len;
         incr i
       done
     done
   with Exit -> ());
  List.rev !out

let is_controlled_bad ~delta vs =
  let arr = Array.of_list vs in
  let controlled =
    List.for_all
      (fun (i, v) -> Intvec.norm1 v <= i + delta)
      (List.mapi (fun i v -> (i, v)) vs)
  in
  controlled && Dickson.is_bad arr
