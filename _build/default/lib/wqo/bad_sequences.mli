(** Controlled bad sequences: the combinatorics behind Lemma 4.4.

    A sequence [v_0, v_1, …] over [N^d] is {e bad} if it contains no
    ascending pair [v_i <= v_j] ([i < j]), and [(i + delta)]-controlled
    if [‖v_i‖₁ <= i + delta]. Figueira et al. [19] bound the length of
    such sequences by functions of the Fast Growing Hierarchy; this
    module searches for the longest ones in small dimension, exhibiting
    the explosive growth that drives the paper's Theorem 4.5. *)

val max_length_exact : dim:int -> delta:int -> budget:int -> int option
(** Length of the longest [(i + delta)]-controlled bad sequence over
    [N^dim], by exhaustive depth-first search; [None] if the search
    exceeds [budget] explored nodes. Practical for [dim <= 2] and small
    [delta] ([dim = 1] is [delta + 1]; [dim = 2] grows exponentially). *)

val greedy_sequence : dim:int -> delta:int -> max_len:int -> Intvec.t list
(** A long (not necessarily optimal) controlled bad sequence built by a
    greedy strategy: always append the allowed vector that is largest
    in the reverse-lexicographic order among those minimising future
    obstruction. Stops at [max_len] or when stuck. *)

val descending_staircase : delta:int -> max_len:int -> Intvec.t list
(** The classical dimension-2 lower-bound witness (McAloon [24]): walk
    the first coordinate down from [delta]; at each level spin the
    second coordinate down from its control bound. Provably bad and
    [(i + delta)]-controlled, of length exponential in [delta]. *)

val is_controlled_bad : delta:int -> Intvec.t list -> bool
(** Checks both badness and the control condition. *)
