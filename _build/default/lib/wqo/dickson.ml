let first_ascending_pair seq =
  (* Keep all previous vectors; for each new one scan for a dominated
     predecessor. *)
  let rec go prev j seq =
    match Seq.uncons seq with
    | None -> None
    | Some (v, rest) ->
      let rec scan = function
        | [] -> go ((j, v) :: prev) (j + 1) rest
        | (i, u) :: others ->
          if Intvec.leq u v then Some (i, j) else scan others
      in
      scan (List.rev prev)
  in
  go [] 0 seq

let ascending_chain vs k =
  if k <= 0 then invalid_arg "Dickson.ascending_chain: k >= 1 required";
  let n = Array.length vs in
  (* best.(j) = length of the longest ascending chain ending at j;
     pred.(j) = previous index on such a chain. *)
  let best = Array.make n 1 in
  let pred = Array.make n (-1) in
  let found = ref None in
  (try
     for j = 0 to n - 1 do
       for i = 0 to j - 1 do
         if Intvec.leq vs.(i) vs.(j) && best.(i) + 1 > best.(j) then begin
           best.(j) <- best.(i) + 1;
           pred.(j) <- i
         end
       done;
       if best.(j) >= k then begin
         found := Some j;
         raise Exit
       end
     done
   with Exit -> ());
  match !found with
  | None -> None
  | Some j ->
    let rec collect j acc = if j < 0 then acc else collect pred.(j) (j :: acc) in
    Some (collect j [])

let is_bad vs =
  first_ascending_pair (Array.to_seq vs) = None
