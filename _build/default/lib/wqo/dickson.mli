(** Dickson's lemma (Lemma 4.3) made effective: witnesses for the
    well-quasi-ordering of [(N^d, <=)].

    Every infinite sequence of vectors contains an ascending pair —
    indeed an infinite ascending subsequence; these functions find the
    first such witnesses in a given finite or lazy sequence. *)

val first_ascending_pair : Intvec.t Seq.t -> (int * int) option
(** First (in lexicographic (j, i) order of discovery) pair of indices
    [i < j] with [v_i <= v_j]. Consumes the sequence until a witness
    appears; diverges on an infinite bad sequence (which, by Dickson's
    lemma, does not exist — but a lazy caller may bound the input). *)

val ascending_chain : Intvec.t array -> int -> int list option
(** [ascending_chain vs k]: indices [i_1 < … < i_k] with
    [v_{i_1} <= … <= v_{i_k}], if the array contains such a chain
    (dynamic programming over the dominance order); [None] otherwise. *)

val is_bad : Intvec.t array -> bool
(** No ascending pair — a {e bad} sequence in wqo terminology. *)
