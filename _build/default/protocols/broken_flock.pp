# A deliberately broken variant of flock8 (the v4 merge is missing), kept
# as a regression input: verification must NOT report threshold 8.
protocol broken-flock8
states v0 v1 v2 v4 v8
input x -> v1
accept v8
trans v1 v1 -> v0 v2
trans v2 v2 -> v0 v4
trans v0 v8 -> v8 v8
trans v1 v8 -> v8 v8
trans v2 v8 -> v8 v8
trans v4 v8 -> v8 v8
