# Are there at least two agents observing the event E? (x_E >= 2)
protocol exists-pair
states idle seen T
input N -> idle
input E -> seen
accept T
trans seen seen -> T T
trans T idle -> T T
trans T seen -> T T
