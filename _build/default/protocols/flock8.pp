# Example 2.1 (succinct form): do at least 8 birds report a high temperature?
# Agents hold 0 or a power of two; equal powers merge; reaching 8 floods accept.
protocol flock8
states v0 v1 v2 v4 v8
input x -> v1
accept v8
trans v1 v1 -> v0 v2
trans v2 v2 -> v0 v4
trans v4 v4 -> v0 v8
trans v0 v8 -> v8 v8
trans v1 v8 -> v8 v8
trans v2 v8 -> v8 v8
trans v4 v8 -> v8 v8
