# 4-state exact majority: is A strictly ahead of B? (ties reject)
protocol majority
states A B a b
input A -> A
input B -> B
accept A a
trans A B -> a b
trans A b -> A a
trans B a -> B b
trans a b -> b b
