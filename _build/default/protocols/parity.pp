# Is the number of agents odd? One accumulator keeps the running parity;
# everyone else copies its verdict.
protocol parity
states acc0 acc1 no yes
input x -> acc1
accept acc1 yes
trans acc0 acc0 -> acc0 no
trans acc0 acc1 -> acc1 yes
trans acc1 acc1 -> acc0 no
trans acc0 no -> acc0 no
trans acc0 yes -> acc0 no
trans acc1 no -> acc1 yes
trans acc1 yes -> acc1 yes
