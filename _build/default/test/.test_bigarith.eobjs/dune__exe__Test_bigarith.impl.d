test/test_bigarith.ml: Alcotest Bigint Bignat List Magnitude Option Printf QCheck QCheck_alcotest Stdlib
