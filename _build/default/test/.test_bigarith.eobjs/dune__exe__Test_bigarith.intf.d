test/test_bigarith.mli:
