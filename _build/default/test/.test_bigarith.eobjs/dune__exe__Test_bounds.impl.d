test/test_bounds.ml: Alcotest Bignat Factorial_bounds Fgh Flock List Magnitude Option Population Printf QCheck QCheck_alcotest Rackoff
