test/test_constructions.mli:
