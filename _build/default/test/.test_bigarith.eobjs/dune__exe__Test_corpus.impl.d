test/test_corpus.ml: Alcotest Array Eta_search Fair_semantics Filename List Population Predicate Protocol_syntax Sys
