test/test_coverability.mli:
