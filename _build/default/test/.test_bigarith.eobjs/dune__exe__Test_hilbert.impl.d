test/test_hilbert.ml: Alcotest Array Bignat Diophantine Hilbert_basis List Option Printf QCheck QCheck_alcotest Stdlib String
