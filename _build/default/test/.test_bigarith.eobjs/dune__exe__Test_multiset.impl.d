test/test_multiset.ml: Alcotest Array Intvec Mset QCheck QCheck_alcotest String
