test/test_multiset.mli:
