test/test_protocol.ml: Alcotest Array Intvec List Mset Population Predicate Printf Protocol_gen Protocol_syntax QCheck QCheck_alcotest String
