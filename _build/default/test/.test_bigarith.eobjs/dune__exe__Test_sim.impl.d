test/test_sim.ml: Alcotest Array Fair_semantics Flock Gillespie Leader_counter List Mset Population QCheck QCheck_alcotest Simulator Splitmix64 Stats Stdlib Threshold
