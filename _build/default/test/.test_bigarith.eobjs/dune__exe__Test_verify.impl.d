test/test_verify.ml: Alcotest Array Configgraph Eta_search Fair_semantics Flock Leader_counter List Modulo_protocol Mset Population Predicate QCheck QCheck_alcotest Scc Threshold Witness
