test/test_wqo.ml: Alcotest Array Bad_sequences Dickson Intvec List Printf QCheck QCheck_alcotest
