test/test_wqo.mli:
