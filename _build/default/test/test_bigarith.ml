(* Tests for Bignat, Bigint and Magnitude: ring and order laws, division
   invariants, string round-trips, and exactness of magnitude
   comparisons on the paper's constants. *)

let bignat = Alcotest.testable Bignat.pp Bignat.equal

(* -- generators ---------------------------------------------------------- *)

(* Random bignat with up to [limbs] 30-bit limbs, biased towards small
   values so edge cases near zero are exercised. *)
let gen_bignat =
  QCheck.Gen.(
    let small = map Bignat.of_int (int_bound 1000) in
    let large =
      sized (fun n ->
          let limbs = 1 + (n mod 24) in
          list_repeat limbs (int_bound 1_000_000_000) >|= fun chunks ->
          List.fold_left
            (fun acc c ->
              Bignat.add (Bignat.mul acc (Bignat.of_int 1_000_000_007)) (Bignat.of_int c))
            Bignat.zero chunks)
    in
    frequency [ (1, small); (3, large) ])

let arb_bignat = QCheck.make ~print:Bignat.to_string gen_bignat

let prop name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* -- unit tests ---------------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (Bignat.to_int_opt (Bignat.of_int n)))
    [ 0; 1; 2; 42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31; max_int ]

let test_of_string () =
  Alcotest.check bignat "decimal parse" (Bignat.of_int 123456789)
    (Bignat.of_string "123456789");
  Alcotest.check bignat "underscores" (Bignat.of_int 1234567)
    (Bignat.of_string "1_234_567");
  Alcotest.check bignat "big decimal round-trip"
    (Bignat.of_string "981723987123987129837129387129381723")
    (Bignat.of_string
       (Bignat.to_string (Bignat.of_string "981723987123987129837129387129381723")));
  Alcotest.check_raises "empty" (Invalid_argument "Bignat.of_string: empty numeral")
    (fun () -> ignore (Bignat.of_string ""))

let test_factorial () =
  Alcotest.check bignat "10!" (Bignat.of_int 3628800) (Bignat.factorial 10);
  Alcotest.(check string)
    "22! known value" "1124000727777607680000"
    (Bignat.to_string (Bignat.factorial 22))

let test_pow () =
  Alcotest.check bignat "3^7" (Bignat.of_int 2187) (Bignat.pow (Bignat.of_int 3) 7);
  Alcotest.check bignat "2^40 via pow2" (Bignat.pow (Bignat.of_int 2) 40) (Bignat.pow2 40);
  Alcotest.check bignat "x^0" Bignat.one (Bignat.pow (Bignat.of_int 99) 0)

let test_divmod_known () =
  let a = Bignat.of_string "123456789012345678901234567890" in
  let b = Bignat.of_string "987654321" in
  let q, r = Bignat.divmod a b in
  Alcotest.check bignat "recompose" a (Bignat.add (Bignat.mul q b) r);
  Alcotest.(check bool) "r < b" true (Bignat.compare r b < 0)

let test_bits () =
  Alcotest.(check int) "bits 0" 0 (Bignat.bits Bignat.zero);
  Alcotest.(check int) "bits 1" 1 (Bignat.bits Bignat.one);
  Alcotest.(check int) "bits 2^30" 31 (Bignat.bits (Bignat.pow2 30));
  Alcotest.(check int) "log2 2^100" 100 (Bignat.log2_floor (Bignat.pow2 100))

let test_shift () =
  let x = Bignat.of_string "12345678901234567890" in
  Alcotest.check bignat "shift round-trip" x
    (Bignat.shift_right (Bignat.shift_left x 47) 47);
  Alcotest.check bignat "shift_left = mul pow2" (Bignat.mul x (Bignat.pow2 13))
    (Bignat.shift_left x 13)

let test_sub_errors () =
  Alcotest.check_raises "negative sub" (Invalid_argument "Bignat.sub: negative result")
    (fun () -> ignore (Bignat.sub Bignat.one Bignat.two));
  Alcotest.check bignat "clamped" Bignat.zero (Bignat.sub_clamped Bignat.one Bignat.two)

(* -- properties ---------------------------------------------------------- *)

let props =
  [
    prop "add commutative" QCheck.(pair arb_bignat arb_bignat) (fun (a, b) ->
        Bignat.equal (Bignat.add a b) (Bignat.add b a));
    prop "add associative" QCheck.(triple arb_bignat arb_bignat arb_bignat)
      (fun (a, b, c) ->
        Bignat.equal
          (Bignat.add a (Bignat.add b c))
          (Bignat.add (Bignat.add a b) c));
    prop "mul commutative" QCheck.(pair arb_bignat arb_bignat) (fun (a, b) ->
        Bignat.equal (Bignat.mul a b) (Bignat.mul b a));
    prop "mul distributes" QCheck.(triple arb_bignat arb_bignat arb_bignat)
      (fun (a, b, c) ->
        Bignat.equal
          (Bignat.mul a (Bignat.add b c))
          (Bignat.add (Bignat.mul a b) (Bignat.mul a c)));
    prop "sub inverts add" QCheck.(pair arb_bignat arb_bignat) (fun (a, b) ->
        Bignat.equal (Bignat.sub (Bignat.add a b) b) a);
    prop "divmod invariant" QCheck.(pair arb_bignat arb_bignat) (fun (a, b) ->
        QCheck.assume (not (Bignat.is_zero b));
        let q, r = Bignat.divmod a b in
        Bignat.equal a (Bignat.add (Bignat.mul q b) r) && Bignat.compare r b < 0);
    prop "divmod_int agrees" QCheck.(pair arb_bignat (int_range 1 1_000_000))
      (fun (a, k) ->
        let q, r = Bignat.divmod_int a k in
        let q', r' = Bignat.divmod a (Bignat.of_int k) in
        Bignat.equal q q' && Bignat.equal (Bignat.of_int r) r');
    prop "string round-trip" arb_bignat (fun a ->
        Bignat.equal a (Bignat.of_string (Bignat.to_string a)));
    prop "compare total order" QCheck.(triple arb_bignat arb_bignat arb_bignat)
      (fun (a, b, c) ->
        let ( <= ) x y = Bignat.compare x y <= 0 in
        (not (a <= b && b <= c)) || a <= c);
    prop "bits bounds value" arb_bignat (fun a ->
        QCheck.assume (not (Bignat.is_zero a));
        let b = Bignat.bits a in
        Bignat.compare a (Bignat.pow2 b) < 0
        && Bignat.compare (Bignat.pow2 (b - 1)) a <= 0);
    prop "karatsuba agrees with small mul" QCheck.(pair arb_bignat arb_bignat)
      (fun (a, b) ->
        (* force large operands through repeated squaring *)
        let big x = Bignat.mul (Bignat.pow (Bignat.add x Bignat.two) 40) (Bignat.succ x) in
        let a' = big a and b' = big b in
        let p = Bignat.mul a' b' in
        (* check p mod small primes against modular arithmetic *)
        List.for_all
          (fun m ->
            let ( %% ) x k = snd (Bignat.divmod_int x k) in
            p %% m = (a' %% m * (b' %% m)) mod m)
          [ 97; 65537; 999999937 ]);
    prop "gcd divides" QCheck.(pair arb_bignat arb_bignat) (fun (a, b) ->
        QCheck.assume (not (Bignat.is_zero a) && not (Bignat.is_zero b));
        let g = Bignat.gcd a b in
        Bignat.is_zero (Bignat.rem a g) && Bignat.is_zero (Bignat.rem b g));
  ]

(* -- Bigint -------------------------------------------------------------- *)

let arb_bigint =
  QCheck.make
    ~print:Bigint.to_string
    QCheck.Gen.(
      pair bool gen_bignat >|= fun (neg, m) ->
      if neg then Bigint.neg (Bigint.of_bignat m) else Bigint.of_bignat m)

let bigint_props =
  [
    prop "bigint add/sub cancel" QCheck.(pair arb_bigint arb_bigint) (fun (a, b) ->
        Bigint.equal a (Bigint.sub (Bigint.add a b) b));
    prop "bigint mul sign" QCheck.(pair arb_bigint arb_bigint) (fun (a, b) ->
        let s = Bigint.sign (Bigint.mul a b) in
        if Bigint.sign a = 0 || Bigint.sign b = 0 then s = 0
        else s = Bigint.sign a * Bigint.sign b);
    prop "bigint neg involutive" arb_bigint (fun a ->
        Bigint.equal a (Bigint.neg (Bigint.neg a)));
    prop "bigint compare antisymmetric" QCheck.(pair arb_bigint arb_bigint)
      (fun (a, b) -> Bigint.compare a b = -Bigint.compare b a);
  ]

let test_bigint_basic () =
  Alcotest.(check string) "negative" "-42" (Bigint.to_string (Bigint.of_int (-42)));
  Alcotest.(check (option int)) "to_int" (Some (-7)) (Bigint.to_int_opt (Bigint.of_int (-7)));
  Alcotest.(check int) "sign zero" 0 (Bigint.sign Bigint.zero)

(* -- Magnitude ----------------------------------------------------------- *)

let test_magnitude_compare () =
  let m_small = Magnitude.of_int 1000 in
  let m_pow = Magnitude.exp2_bignat (Bignat.of_int 100) in
  let beta3 = Magnitude.exp2_bignat (Bignat.succ (Bignat.mul_int (Bignat.factorial 7) 2)) in
  let theta3 = Magnitude.exp2_bignat (Bignat.factorial 8) in
  Alcotest.(check bool) "1000 < 2^100" true (Magnitude.compare m_small m_pow < 0);
  Alcotest.(check bool) "beta(3) < theta(3)" true (Magnitude.compare beta3 theta3 < 0);
  Alcotest.(check bool) "exp2 monotone" true
    (Magnitude.compare (Magnitude.exp2 m_small) (Magnitude.exp2 m_pow) < 0);
  (* small exponents collapse to concrete values *)
  Alcotest.(check (option string)) "collapse"
    (Some (Bignat.to_string (Bignat.pow2 64)))
    (Option.map Bignat.to_string (Magnitude.to_bignat_opt (Magnitude.exp2 (Magnitude.of_int 64))))

let test_magnitude_exact_boundary () =
  (* 2^k vs exp2 k must compare equal; 2^k + 1 must be greater *)
  let k = Bignat.of_int 30_000 in
  let tower = Magnitude.exp2_bignat k in
  Alcotest.(check int) "equal" 0
    (Magnitude.compare tower (Magnitude.exp2_bignat k));
  Alcotest.(check bool) "2^k < 2^(k+1)" true
    (Magnitude.compare tower (Magnitude.exp2_bignat (Bignat.succ k)) < 0)

let test_magnitude_mul_upper () =
  let a = Magnitude.of_int 12 and b = Magnitude.of_int 100 in
  Alcotest.(check (option string)) "exact on concrete"
    (Some "1200")
    (Option.map Bignat.to_string (Magnitude.to_bignat_opt (Magnitude.mul_upper a b)));
  let t = Magnitude.exp2_bignat (Bignat.of_int 100_000) in
  Alcotest.(check bool) "upper bound dominates" true
    (Magnitude.compare t (Magnitude.mul_upper t (Magnitude.of_int 7)) <= 0)

let test_magnitude_tower () =
  let t2 = Magnitude.exp2 (Magnitude.exp2_bignat (Bignat.of_int 1_000_000)) in
  Alcotest.(check int) "height 2" 2 (Magnitude.tower_height t2);
  Alcotest.(check bool) "tower beats concrete" true
    (Magnitude.compare (Magnitude.of_bignat (Bignat.factorial 1000)) t2 < 0)

let magnitude_props =
  [
    prop "magnitude order embeds bignat" QCheck.(pair arb_bignat arb_bignat)
      (fun (a, b) ->
        Stdlib.compare (Bignat.compare a b) 0
        = Stdlib.compare (Magnitude.compare (Magnitude.of_bignat a) (Magnitude.of_bignat b)) 0);
    prop "exp2 strictly monotone" QCheck.(pair arb_bignat arb_bignat) (fun (a, b) ->
        QCheck.assume (Bignat.compare a b < 0);
        Magnitude.compare (Magnitude.exp2_bignat a) (Magnitude.exp2_bignat b) < 0);
    prop "concrete below its exp2" arb_bignat (fun a ->
        QCheck.assume (not (Bignat.is_zero a));
        Magnitude.compare (Magnitude.of_bignat a) (Magnitude.exp2_bignat a) < 0);
  ]

let () =
  Alcotest.run "bigarith"
    [
      ( "bignat-unit",
        [
          Alcotest.test_case "of_int round-trip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "sub errors" `Quick test_sub_errors;
        ] );
      ("bignat-props", props);
      ( "bigint",
        Alcotest.test_case "basics" `Quick test_bigint_basic :: bigint_props );
      ( "magnitude",
        [
          Alcotest.test_case "compare" `Quick test_magnitude_compare;
          Alcotest.test_case "boundary" `Quick test_magnitude_exact_boundary;
          Alcotest.test_case "mul_upper" `Quick test_magnitude_mul_upper;
          Alcotest.test_case "towers" `Quick test_magnitude_tower;
        ]
        @ magnitude_props );
    ]
