(* Tests for the paper's explicit constants (β, ϑ, ξ, Theorem 5.9),
   the Rackoff recurrence, and the fast-growing hierarchy. *)

let bn = Bignat.of_string

(* -- Factorial_bounds -------------------------------------------------------- *)

let test_beta_log () =
  (* beta(n) = 2^(2(2n+1)!+1): for n=1, 2·3!+1 = 13 *)
  Alcotest.(check string) "beta_log2(1)" "13" (Bignat.to_string (Factorial_bounds.beta_log2 1));
  Alcotest.(check string) "beta_log2(2)" "241" (Bignat.to_string (Factorial_bounds.beta_log2 2));
  (* beta(1) collapses to a concrete bignat: 2^13 = 8192 *)
  Alcotest.(check (option string)) "beta(1) concrete" (Some "8192")
    (Option.map Bignat.to_string (Magnitude.to_bignat_opt (Factorial_bounds.beta 1)))

let test_theta () =
  (* theta(1) = 2^(4!) = 2^24 *)
  Alcotest.(check (option string)) "theta(1)" (Some "16777216")
    (Option.map Bignat.to_string (Magnitude.to_bignat_opt (Factorial_bounds.theta 1)))

let test_xi () =
  (* xi = 2(2|T|+1)^|Q| *)
  Alcotest.check Alcotest.string "xi(2 states, 3 transitions)" "98"
    (Bignat.to_string (Factorial_bounds.xi ~num_states:2 ~num_transitions:3));
  Alcotest.check Alcotest.string "xi deterministic" "32"
    (Bignat.to_string (Factorial_bounds.xi_deterministic ~num_states:2));
  let p = Flock.succinct 2 in
  let expected =
    Factorial_bounds.xi ~num_states:(Population.num_states p)
      ~num_transitions:(Population.num_transitions p)
  in
  Alcotest.(check string) "xi_of_protocol" (Bignat.to_string expected)
    (Bignat.to_string (Factorial_bounds.xi_of_protocol p))

let test_ordering_of_bounds () =
  (* beta(n) < theta(n) and theorem bound <= 2^((2n+2)!) for small n,
     mirroring the paper's final computation in Theorem 5.9 *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "beta(%d) < theta(%d)" n n)
        true
        (Magnitude.compare (Factorial_bounds.beta n) (Factorial_bounds.theta n) < 0);
      let t = Factorial_bounds.max_transitions n in
      Alcotest.(check bool)
        (Printf.sprintf "thm 5.9 explicit <= simple for n=%d" n)
        true
        (Magnitude.compare
           (Factorial_bounds.theorem_5_9 ~num_states:n ~num_transitions:t)
           (Factorial_bounds.theorem_5_9_simple n)
         <= 0))
    [ 3; 4; 5; 8 ]

let test_three_pow () =
  Alcotest.(check string) "3^10" "59049" (Bignat.to_string (Factorial_bounds.three_pow 10));
  Alcotest.(check string) "3^0" "1" (Bignat.to_string (Factorial_bounds.three_pow 0))

let test_bound_grows () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "simple bound increases at %d" n)
        true
        (Magnitude.compare
           (Factorial_bounds.theorem_5_9_simple n)
           (Factorial_bounds.theorem_5_9_simple (n + 1))
         < 0))
    [ 1; 2; 3; 5; 10; 20 ]

(* -- Rackoff ------------------------------------------------------------------ *)

let test_rackoff_monotone () =
  let lb d = Rackoff.log2_bound ~dim:d ~weight:2 in
  Alcotest.(check bool) "grows with dimension" true
    (Bignat.compare (lb 2) (lb 3) < 0 && Bignat.compare (lb 3) (lb 6) < 0);
  Alcotest.(check bool) "grows with weight" true
    (Bignat.compare
       (Rackoff.log2_bound ~dim:4 ~weight:2)
       (Rackoff.log2_bound ~dim:4 ~weight:100)
     < 0)

let test_rackoff_below_beta () =
  (* the protocol-specific Rackoff bound is far below the uniform beta *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "rackoff(%d) <= beta(%d)" n n)
        true
        (Magnitude.compare (Rackoff.magnitude ~dim:n ~weight:2) (Rackoff.paper_beta n) <= 0))
    [ 2; 3; 4; 6 ]

(* -- Fgh ----------------------------------------------------------------------- *)

let test_fgh_base () =
  Alcotest.(check (option int)) "F_0" (Some 6) (Fgh.f 0 5);
  (* F_1(x) = 2x+1 *)
  Alcotest.(check (option int)) "F_1" (Some 11) (Fgh.f 1 5);
  (* F_2(x) = 2^(x+1)(x+1) - 1 *)
  Alcotest.(check (option int)) "F_2(3)" (Some 63) (Fgh.f 2 3);
  Alcotest.(check (option int)) "F_3 overflows fast" None (Fgh.f 3 10)

let test_fgh_omega () =
  Alcotest.(check (option int)) "F_omega(1) = F_1(1)" (Some 3) (Fgh.f_omega 1);
  Alcotest.(check (option int)) "F_omega(2) = F_2(2)" (Some 23) (Fgh.f_omega 2);
  Alcotest.(check (option int)) "F_omega(4) overflows" None (Fgh.f_omega 4)

let test_ackermann () =
  Alcotest.(check (option int)) "A(1,1)" (Some 3) (Fgh.ackermann 1 1);
  Alcotest.(check (option int)) "A(2,3)" (Some 9) (Fgh.ackermann 2 3);
  Alcotest.(check (option int)) "A(3,3)" (Some 61) (Fgh.ackermann 3 3);
  Alcotest.(check (option int)) "A(3,5)" (Some 253) (Fgh.ackermann 3 5);
  Alcotest.(check (option int)) "A(4,2) out of reach" None (Fgh.ackermann 4 2)

let test_inverse_ackermann () =
  Alcotest.(check int) "alpha(3)" 1 (Fgh.inverse_ackermann 3);
  Alcotest.(check int) "alpha(61)" 3 (Fgh.inverse_ackermann 61);
  Alcotest.(check int) "alpha(10^9) tiny" 4 (Fgh.inverse_ackermann 1_000_000_000)

let fgh_monotone_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"F_k monotone in x where defined" ~count:50
       QCheck.(pair (int_range 0 2) (int_range 0 6))
       (fun (k, x) ->
         match (Fgh.f k x, Fgh.f k (x + 1)) with
         | Some a, Some b -> a < b
         | _, None | None, _ -> true))

let test_parse_helper () =
  (* keep the local helper honest *)
  Alcotest.(check string) "bn" "12345" (Bignat.to_string (bn "12345"))

let () =
  Alcotest.run "bounds"
    [
      ( "factorial-bounds",
        [
          Alcotest.test_case "beta" `Quick test_beta_log;
          Alcotest.test_case "theta" `Quick test_theta;
          Alcotest.test_case "xi" `Quick test_xi;
          Alcotest.test_case "ordering" `Quick test_ordering_of_bounds;
          Alcotest.test_case "3^n" `Quick test_three_pow;
          Alcotest.test_case "growth" `Quick test_bound_grows;
        ] );
      ( "rackoff",
        [
          Alcotest.test_case "monotone" `Quick test_rackoff_monotone;
          Alcotest.test_case "below beta" `Quick test_rackoff_below_beta;
        ] );
      ( "fgh",
        [
          Alcotest.test_case "base levels" `Quick test_fgh_base;
          Alcotest.test_case "F_omega" `Quick test_fgh_omega;
          Alcotest.test_case "ackermann" `Quick test_ackermann;
          Alcotest.test_case "inverse ackermann" `Quick test_inverse_ackermann;
          Alcotest.test_case "helper" `Quick test_parse_helper;
          fgh_monotone_prop;
        ] );
    ]
