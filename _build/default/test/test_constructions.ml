(* Tests for the protocol constructions: state counts, structural
   properties, and (crucially) that each protocol computes exactly its
   specification predicate under the exact fairness semantics. *)

let decides p v = Fair_semantics.decide p v

let check_spec ?(max_configs = 300_000) p spec inputs =
  List.iter
    (fun v ->
      let expected = Predicate.eval spec v in
      match Fair_semantics.decide ~max_configs p v with
      | Fair_semantics.Decides b ->
        if b <> expected then
          Alcotest.failf "%s: input %s decided %b, spec says %b"
            p.Population.name
            (String.concat "," (List.map string_of_int (Array.to_list v)))
            b expected
      | verdict ->
        Alcotest.failf "%s: input %s: %a" p.Population.name
          (String.concat "," (List.map string_of_int (Array.to_list v)))
          Fair_semantics.pp_verdict verdict)
    inputs

let single_inputs lo hi = List.init (hi - lo + 1) (fun i -> [| lo + i |])

(* -- Example 2.1 --------------------------------------------------------- *)

let test_flock_naive_states () =
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "P_%d has 2^%d+1 states" k k)
        ((1 lsl k) + 1)
        (Population.num_states (Flock.naive k)))
    [ 1; 2; 3; 4 ]

let test_flock_succinct_states () =
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "P'_%d has k+2 states" k)
        (k + 2)
        (Population.num_states (Flock.succinct k)))
    [ 1; 2; 3; 4; 8 ]

let test_flock_compute () =
  check_spec (Flock.naive 2) (Predicate.threshold_single 4) (single_inputs 2 9);
  check_spec (Flock.succinct 2) (Predicate.threshold_single 4) (single_inputs 2 9);
  check_spec (Flock.succinct 3) (Predicate.threshold_single 8) (single_inputs 2 17)

let test_flock_equivalent () =
  (* P_k and P'_k are equivalent protocols (compute the same predicate) *)
  List.iter
    (fun k ->
      List.iter
        (fun i ->
          let d1 = decides (Flock.naive k) [| i |] in
          let d2 = decides (Flock.succinct k) [| i |] in
          if d1 <> d2 then Alcotest.failf "P_%d and P'_%d differ on %d" k k i)
        [ 2; 3; 5; 8 ])
    [ 1; 2 ]

(* -- general thresholds --------------------------------------------------- *)

let test_threshold_unary () =
  check_spec (Threshold.unary 5) (Predicate.threshold_single 5) (single_inputs 2 11);
  Alcotest.(check int) "states" 6 (Population.num_states (Threshold.unary 5))

let test_threshold_binary_many () =
  (* every eta in 2..16, verified exactly on inputs up to eta + 4 *)
  List.iter
    (fun eta ->
      check_spec (Threshold.binary eta) (Predicate.threshold_single eta)
        (single_inputs 2 (eta + 4)))
    (List.init 15 (fun i -> i + 2))

let test_threshold_binary_trivial () =
  check_spec (Threshold.binary 1) (Predicate.Const true) (single_inputs 2 5);
  Alcotest.(check int) "one state" 1 (Population.num_states (Threshold.binary 1))

let test_threshold_binary_succinctness () =
  List.iter
    (fun eta ->
      let n = Population.num_states (Threshold.binary eta) in
      Alcotest.(check bool)
        (Printf.sprintf "eta=%d: %d states <= 2·log2(eta) + 4" eta n)
        true
        (let log2 = int_of_float (Float.log2 (float_of_int eta)) in
         n <= (2 * log2) + 4);
      Alcotest.(check int)
        (Printf.sprintf "binary_num_states agrees for %d" eta)
        n
        (Threshold.binary_num_states eta))
    [ 2; 3; 7; 11; 13; 100; 1000; 12345 ]

(* -- majority ------------------------------------------------------------ *)

let test_majority () =
  let p = Majority.protocol () in
  Alcotest.(check int) "4 states" 4 (Population.num_states p);
  let inputs =
    [ [| 1; 1 |]; [| 2; 1 |]; [| 1; 2 |]; [| 3; 3 |]; [| 4; 2 |]; [| 2; 4 |];
      [| 5; 4 |]; [| 4; 5 |]; [| 6; 1 |]; [| 1; 6 |]; [| 0; 3 |]; [| 3; 0 |] ]
  in
  check_spec p (Predicate.majority ()) inputs

(* -- modulo --------------------------------------------------------------- *)

let test_modulo () =
  List.iter
    (fun (m, r) ->
      check_spec
        (Modulo_protocol.protocol ~m ~r)
        (Predicate.Modulo ([| 1 |], r, m))
        (single_inputs 2 ((2 * m) + 3)))
    [ (2, 0); (2, 1); (3, 0); (3, 1); (3, 2); (5, 2) ]

let test_modulo_states () =
  Alcotest.(check int) "m+2 states" 7
    (Population.num_states (Modulo_protocol.protocol ~m:5 ~r:0))

(* -- leader counter ------------------------------------------------------- *)

let test_leader_counter () =
  List.iter
    (fun k ->
      check_spec
        (Leader_counter.protocol k)
        (Predicate.threshold_single (1 lsl k))
        (single_inputs 1 ((1 lsl k) + 3)))
    [ 1; 2; 3 ]

let test_leader_counter_structure () =
  let p = Leader_counter.protocol 3 in
  Alcotest.(check int) "3k+2 states" 11 (Population.num_states p);
  Alcotest.(check int) "k leaders" 3 (Mset.size p.Population.leaders);
  Alcotest.(check bool) "not leaderless" false (Population.is_leaderless p)

(* -- completeness of catalog protocols ------------------------------------ *)

let test_all_complete () =
  List.iter
    (fun e ->
      let p = e.Catalog.build () in
      Alcotest.(check (list (pair int int)))
        (e.Catalog.name ^ " has no missing pairs")
        [] (Population.missing_pairs p))
    (Catalog.default_entries ())

let test_catalog_lookup () =
  List.iter
    (fun (name, expect) ->
      match Catalog.build name with
      | Some e ->
        Alcotest.(check int) name expect (Population.num_states (e.Catalog.build ()))
      | None -> Alcotest.failf "catalog missed %s" name)
    [
      ("flock-naive-2", 5);
      ("flock-succinct-5", 7);
      ("threshold-binary-13", Threshold.binary_num_states 13);
      ("threshold-unary-4", 5);
      ("majority", 4);
      ("mod-4-1", 6);
      ("leader-counter-2", 8);
    ];
  Alcotest.(check bool) "unknown name" true (Catalog.build "frobnicate" = None);
  Alcotest.(check bool) "bad mod" true (Catalog.build "mod-3-7" = None)

(* -- property: random thresholds are correct near the boundary ------------ *)

let threshold_boundary_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"binary threshold exact at boundary" ~count:12
       QCheck.(int_range 2 24)
       (fun eta ->
         let p = Threshold.binary eta in
         let ok i expected =
           match Fair_semantics.decide ~max_configs:400_000 p [| i |] with
           | Fair_semantics.Decides b -> b = expected
           | _ -> false
         in
         ok (Stdlib.max 2 (eta - 1)) (Stdlib.max 2 (eta - 1) >= eta) && ok eta true))

let () =
  Alcotest.run "constructions"
    [
      ( "flock",
        [
          Alcotest.test_case "naive states" `Quick test_flock_naive_states;
          Alcotest.test_case "succinct states" `Quick test_flock_succinct_states;
          Alcotest.test_case "both compute x>=2^k" `Quick test_flock_compute;
          Alcotest.test_case "equivalent" `Quick test_flock_equivalent;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "unary" `Quick test_threshold_unary;
          Alcotest.test_case "binary eta=2..16" `Quick test_threshold_binary_many;
          Alcotest.test_case "binary trivial" `Quick test_threshold_binary_trivial;
          Alcotest.test_case "binary succinctness" `Quick test_threshold_binary_succinctness;
          threshold_boundary_prop;
        ] );
      ("majority", [ Alcotest.test_case "exact" `Quick test_majority ]);
      ( "modulo",
        [
          Alcotest.test_case "exact" `Quick test_modulo;
          Alcotest.test_case "states" `Quick test_modulo_states;
        ] );
      ( "leader-counter",
        [
          Alcotest.test_case "exact" `Quick test_leader_counter;
          Alcotest.test_case "structure" `Quick test_leader_counter_structure;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "complete" `Quick test_all_complete;
          Alcotest.test_case "lookup" `Quick test_catalog_lookup;
        ] );
    ]
