(* Tests for the paper's core pipeline: saturation (Lemma 5.4),
   potentially realisable multisets (Definition 4, Corollary 5.7),
   pumping witnesses (Section 4) and busy-beaver search. The full
   Lemma 5.2 certificates are exercised in test_integration. *)

(* -- Saturation ------------------------------------------------------------- *)

let test_saturation_flock () =
  List.iter
    (fun k ->
      let p = Flock.succinct k in
      match Saturation.find p with
      | Error e -> Alcotest.failf "succinct-%d: %s" k e
      | Ok w ->
        Alcotest.(check bool)
          (Printf.sprintf "succinct-%d: levels <= states" k)
          true
          (w.Saturation.levels <= Population.num_states p);
        Alcotest.(check int)
          (Printf.sprintf "succinct-%d: sigma length" k)
          ((w.Saturation.input - 1) / 2)
          (List.length w.Saturation.sigma);
        Alcotest.(check bool)
          (Printf.sprintf "succinct-%d: replay checks" k)
          true (Saturation.check w);
        Alcotest.(check int)
          (Printf.sprintf "succinct-%d: result is 1-saturated" k)
          (Population.num_states p)
          (List.length (Mset.support w.Saturation.result)))
    [ 1; 2; 3; 4 ]

let test_saturation_various () =
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> Alcotest.failf "catalog: %s" name
      | Some e ->
        let p = e.Catalog.build () in
        if Population.is_leaderless p then begin
          match Saturation.find p with
          | Ok w -> Alcotest.(check bool) (name ^ " checks") true (Saturation.check w)
          | Error err -> Alcotest.failf "%s: %s" name err
        end)
    [ "threshold-binary-5"; "threshold-binary-11"; "threshold-unary-4"; "mod-3-1" ]

let test_saturation_rejects_leaders () =
  match Saturation.find (Leader_counter.protocol 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "leader protocol accepted"

let test_saturation_dead_state () =
  (* a protocol with an unreachable state *)
  let p =
    Population.complete
      (Population.make ~name:"dead"
         ~states:[| "x"; "dead" |]
         ~transitions:[ (0, 0, 0, 0) ]
         ~inputs:[ ("x", 0) ]
         ~output:[| false; true |] ())
  in
  match Saturation.find p with
  | Error msg ->
    Alcotest.(check bool) "mentions dead state" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "dead state saturated"

let test_saturation_scaling () =
  let p = Flock.succinct 2 in
  match Saturation.find p with
  | Error e -> Alcotest.fail e
  | Ok w ->
    (match Saturation.replay_scaled w 3 with
     | Some c ->
       Alcotest.(check bool) "3-scaled result" true
         (Mset.equal c (Mset.scale 3 w.Saturation.result))
     | None -> Alcotest.fail "scaled replay failed")

let test_coverable_support () =
  let p = Flock.succinct 3 in
  Alcotest.(check int) "all states coverable" (Population.num_states p)
    (List.length (Saturation.coverable_support p))

(* -- Potential ---------------------------------------------------------------- *)

let test_potential_system_shape () =
  let p = Flock.succinct 2 in
  let s = Potential.system p in
  Alcotest.(check int) "|Q|-1 constraints"
    (Population.num_states p - 1)
    (Diophantine.num_constraints s);
  Alcotest.(check int) "|T| variables" (Population.num_transitions p)
    s.Diophantine.num_vars

let test_potential_membership () =
  let p = Flock.succinct 2 in
  let nt = Population.num_transitions p in
  (* the empty multiset is potentially realisable *)
  Alcotest.(check bool) "empty" true
    (Potential.is_potentially_realisable p (Array.make nt 0));
  (* firing 'x,x -> 0,2' once: realisable (consumes input only) *)
  let find_tr pre post =
    let rec go i =
      if i >= nt then Alcotest.fail "transition not found"
      else begin
        let tr = p.Population.transitions.(i) in
        if tr.Population.pre = pre && tr.Population.post = post then i else go (i + 1)
      end
    in
    go 0
  in
  let x = Population.state_index p "v1" in
  let zero = Population.state_index p "v0" in
  let two = Population.state_index p "v2" in
  let merge = find_tr (Stdlib.min x x, x) (Stdlib.min zero two, Stdlib.max zero two) in
  let pi = Array.make nt 0 in
  pi.(merge) <- 1;
  Alcotest.(check bool) "merge realisable" true (Potential.is_potentially_realisable p pi);
  Alcotest.(check int) "needs input 2" 2 (Potential.min_input p pi);
  let i, c = Potential.result_config p pi in
  Alcotest.(check int) "i = 2" 2 i;
  Alcotest.(check int) "result size 2" 2 (Mset.size c);
  Alcotest.(check int) "no input agents left" 0 (Mset.get c x)

let test_potential_basis_corollary () =
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> Alcotest.failf "catalog: %s" name
      | Some e ->
        let p = e.Catalog.build () in
        if Population.is_leaderless p then begin
          let basis = Potential.basis p in
          Alcotest.(check bool) (name ^ ": basis nonempty") true (basis <> []);
          Alcotest.(check bool)
            (name ^ ": Corollary 5.7 bounds hold")
            true
            (Potential.check_corollary_5_7 p basis)
        end)
    [ "flock-succinct-1"; "flock-succinct-2"; "threshold-binary-3"; "mod-2-0" ]

let test_potential_decompose () =
  let p = Flock.succinct 2 in
  let nt = Population.num_transitions p in
  (* a random-walk Parikh vector is potentially realisable (Lemma 5.1(i))
     and must decompose over the Pottier basis (Corollary 5.7) *)
  let rng = Splitmix64.create 77 in
  let pi = Array.make nt 0 in
  let rec walk c steps =
    if steps = 0 then ()
    else begin
      let enabled = List.filter (Population.enabled p c) (List.init nt Fun.id) in
      match enabled with
      | [] -> ()
      | _ ->
        let t = List.nth enabled (Splitmix64.int_below rng (List.length enabled)) in
        pi.(t) <- pi.(t) + 1;
        walk (Population.fire p c t) (steps - 1)
    end
  in
  walk (Population.initial_single p 9) 12;
  (match Potential.decompose p pi with
   | Some parts ->
     let total = Array.make nt 0 in
     List.iter (Array.iteri (fun i x -> total.(i) <- total.(i) + x)) parts;
     Alcotest.(check (array int)) "parts sum to pi" pi total
   | None -> Alcotest.fail "realisable multiset did not decompose");
  (* a non-realisable multiset must be rejected: find a transition whose
     lone firing consumes non-input agents nothing produced *)
  let rec find_consuming i =
    if i >= nt then None
    else begin
      let one = Array.make nt 0 in
      one.(i) <- 1;
      if Potential.is_potentially_realisable p one then find_consuming (i + 1)
      else Some one
    end
  in
  (match find_consuming 0 with
   | Some one ->
     Alcotest.(check bool) "non-realisable rejected" true
       (Potential.decompose p one = None)
   | None -> ())

let test_potential_rejects_leaders () =
  Alcotest.check_raises "leaders rejected"
    (Invalid_argument "Potential.system: leaderless protocols only") (fun () ->
      ignore (Potential.system (Leader_counter.protocol 1)))

(* realisability is necessary for actual firing sequences (Lemma 5.1(i)) *)
let potential_necessity_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Parikh images of real runs are potentially realisable"
       ~count:40
       QCheck.(pair (int_range 2 12) (int_range 0 9999))
       (fun (input, seed) ->
         let p = Flock.succinct 2 in
         let rng = Splitmix64.create seed in
         (* random walk of up to 20 steps, collect Parikh vector *)
         let nt = Population.num_transitions p in
         let pi = Array.make nt 0 in
         let rec walk c steps =
           if steps = 0 then ()
           else begin
             let enabled =
               List.filter (Population.enabled p c) (List.init nt Fun.id)
             in
             match enabled with
             | [] -> ()
             | _ ->
               let t = List.nth enabled (Splitmix64.int_below rng (List.length enabled)) in
               pi.(t) <- pi.(t) + 1;
               walk (Population.fire p c t) (steps - 1)
           end
         in
         walk (Population.initial_single p input) 20;
         Potential.is_potentially_realisable p pi))

(* -- Pumping -------------------------------------------------------------------- *)

let test_pumping_flock () =
  List.iter
    (fun (k, eta) ->
      let p = Flock.succinct k in
      match Pumping.find_witness p ~max_input:(eta + 8) with
      | Error e -> Alcotest.failf "succinct-%d: %s" k e
      | Ok w ->
        Alcotest.(check bool)
          (Printf.sprintf "succinct-%d: witness valid" k)
          true (Pumping.check w);
        (* Lemma 4.1's conclusion: eta <= a *)
        Alcotest.(check bool)
          (Printf.sprintf "succinct-%d: eta=%d <= a=%d" k eta w.Pumping.a)
          true (eta <= w.Pumping.a))
    [ (1, 2); (2, 4) ]

let test_pumping_with_leaders () =
  (* Section 4 works for protocols with leaders too *)
  let p = Leader_counter.protocol 1 in
  match Pumping.find_witness p ~max_input:8 with
  | Error e -> Alcotest.fail e
  | Ok w ->
    Alcotest.(check bool) "valid" true (Pumping.check w);
    Alcotest.(check bool) "bounds eta=2" true (2 <= w.Pumping.a)

let test_pumping_sequence_properties () =
  let p = Flock.succinct 2 in
  let analysis = Stable_sets.analyse p in
  let seq = Pumping.sequence p analysis ~first:2 ~count:8 in
  Alcotest.(check int) "eight elements" 8 (List.length seq);
  let sc = Stable_sets.stable_union analysis in
  List.iter
    (fun (i, c) ->
      Alcotest.(check int) (Printf.sprintf "size of C_%d" i) i (Mset.size c);
      Alcotest.(check bool) (Printf.sprintf "C_%d stable" i) true (Downset.mem c sc))
    seq

(* -- Busy_beaver ------------------------------------------------------------------ *)

let test_bb_n1 () =
  let r = Busy_beaver.scan ~n:1 ~max_input:6 () in
  (* single state: only the identity assignment; output accept or reject *)
  Alcotest.(check int) "two protocols" 2 r.Busy_beaver.num_protocols;
  Alcotest.(check int) "best eta" 2 r.Busy_beaver.best_eta

let test_bb_n2 () =
  let r = Busy_beaver.scan ~n:2 ~max_input:10 () in
  Alcotest.(check int) "protocol count" 108 r.Busy_beaver.num_protocols;
  Alcotest.(check bool) "some thresholds" true (r.Busy_beaver.num_threshold > 0);
  (* BB(2) >= 2, and the apparent value with cutoff 10 is exactly 2 *)
  Alcotest.(check int) "BB(2) apparent" 2 r.Busy_beaver.best_eta;
  Alcotest.(check bool) "witness present" true (r.Busy_beaver.best <> None)

let test_bb_sampled_n3 () =
  let r = Busy_beaver.scan ~n:3 ~max_input:10 ~sample:(400, 7) () in
  Alcotest.(check int) "sample size" 400 r.Busy_beaver.num_protocols;
  Alcotest.(check bool) "histogram consistent" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.Busy_beaver.histogram
     = r.Busy_beaver.num_threshold)

let test_bb_counts () =
  Alcotest.(check int) "n=1" 2 (Busy_beaver.num_deterministic_protocols 1);
  Alcotest.(check int) "n=2" 108 (Busy_beaver.num_deterministic_protocols 2);
  Alcotest.(check int) "n=3" (46656 * 8) (Busy_beaver.num_deterministic_protocols 3)

(* -- Section 4.1's f ------------------------------------------------------------------ *)

let test_f_min_accepting () =
  (* flock-succinct-2 first reaches an all-accepting configuration at
     input 4 (all agents can become v4 once the threshold is met) *)
  Alcotest.(check (option int)) "flock" (Some 4)
    (Section_4_1.min_accepting_input (Flock.succinct 2) ~max_input:10);
  (* a protocol with no accepting state never accepts *)
  let p =
    Population.complete
      (Population.make ~name:"never" ~states:[| "x" |] ~transitions:[]
         ~inputs:[ ("x", 0) ]
         ~output:[| false |] ())
  in
  Alcotest.(check (option int)) "no accepting state" None
    (Section_4_1.min_accepting_input p ~max_input:6)

let test_f_scan () =
  let r = Section_4_1.scan ~n:2 ~max_input:10 () in
  Alcotest.(check int) "space size" 108 r.Section_4_1.num_protocols;
  Alcotest.(check int) "f(2) apparent" 2 r.Section_4_1.max_f;
  Alcotest.(check int) "histogram total" (108 - r.Section_4_1.num_unreachable)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.Section_4_1.histogram)

let test_f_dominates_busy_beaver () =
  (* For a threshold protocol, the minimum input reaching All_1 is
     exactly its threshold, so f-scan >= BB-scan on the same space. *)
  let f = Section_4_1.scan ~n:2 ~max_input:10 () in
  let bb = Busy_beaver.scan ~n:2 ~max_input:10 () in
  Alcotest.(check bool) "f >= BB" true
    (f.Section_4_1.max_f >= bb.Busy_beaver.best_eta)

(* -- State_complexity ---------------------------------------------------------------- *)

let test_state_counts () =
  Alcotest.(check int) "unary" 6 (State_complexity.states_unary 5);
  Alcotest.(check int) "binary matches construction"
    (Population.num_states (Threshold.binary 1000))
    (State_complexity.states_binary 1000);
  Alcotest.(check bool) "upper bound is the min" true
    (State_complexity.state_upper_bound 1000 <= State_complexity.states_binary 1000)

let test_bb_lower () =
  Alcotest.(check int) "n=3" 2 (State_complexity.busy_beaver_lower 3);
  Alcotest.(check int) "n=4" 4 (State_complexity.busy_beaver_lower 4);
  Alcotest.(check int) "n=10" 256 (State_complexity.busy_beaver_lower 10);
  (* witnessed: succinct flock with n states computes x >= 2^(n-2) *)
  let n = 6 in
  let p = Flock.succinct (n - 2) in
  Alcotest.(check int) "witness states" n (Population.num_states p);
  match Eta_search.find p ~max_input:20 with
  | Eta_search.Eta eta ->
    Alcotest.(check int) "witness eta" (State_complexity.busy_beaver_lower n) eta
  | r -> Alcotest.failf "witness: %a" Eta_search.pp_result r

let test_loglog () =
  Alcotest.(check int) "small eta needs >= 1" 1 (State_complexity.loglog_lower_bound 2);
  (* bits(max_int) = 63 exceeds (2·1+2)! = 24 but not 6! = 720 *)
  Alcotest.(check int) "max_int eta still tiny" 2
    (State_complexity.loglog_lower_bound max_int)

let () =
  Alcotest.run "core"
    [
      ( "saturation",
        [
          Alcotest.test_case "flock family" `Quick test_saturation_flock;
          Alcotest.test_case "catalog protocols" `Quick test_saturation_various;
          Alcotest.test_case "rejects leaders" `Quick test_saturation_rejects_leaders;
          Alcotest.test_case "dead states" `Quick test_saturation_dead_state;
          Alcotest.test_case "scaling" `Quick test_saturation_scaling;
          Alcotest.test_case "coverable support" `Quick test_coverable_support;
        ] );
      ( "potential",
        [
          Alcotest.test_case "system shape" `Quick test_potential_system_shape;
          Alcotest.test_case "membership" `Quick test_potential_membership;
          Alcotest.test_case "corollary 5.7" `Quick test_potential_basis_corollary;
          Alcotest.test_case "decompose" `Quick test_potential_decompose;
          Alcotest.test_case "rejects leaders" `Quick test_potential_rejects_leaders;
          potential_necessity_prop;
        ] );
      ( "pumping",
        [
          Alcotest.test_case "flock witnesses" `Quick test_pumping_flock;
          Alcotest.test_case "with leaders" `Quick test_pumping_with_leaders;
          Alcotest.test_case "sequence" `Quick test_pumping_sequence_properties;
        ] );
      ( "busy-beaver",
        [
          Alcotest.test_case "n=1" `Quick test_bb_n1;
          Alcotest.test_case "n=2" `Quick test_bb_n2;
          Alcotest.test_case "n=3 sampled" `Quick test_bb_sampled_n3;
          Alcotest.test_case "protocol counts" `Quick test_bb_counts;
        ] );
      ( "section-4-1",
        [
          Alcotest.test_case "min accepting input" `Quick test_f_min_accepting;
          Alcotest.test_case "f scan" `Quick test_f_scan;
          Alcotest.test_case "f dominates BB" `Quick test_f_dominates_busy_beaver;
        ] );
      ( "state-complexity",
        [
          Alcotest.test_case "state counts" `Quick test_state_counts;
          Alcotest.test_case "busy beaver lower" `Quick test_bb_lower;
          Alcotest.test_case "loglog bound" `Quick test_loglog;
        ] );
    ]
