(* The protocols/ corpus: every .pp file parses, and each protocol's
   documented behaviour is verified with the exact semantics. The test
   locates the corpus relative to the dune workspace root. *)

let corpus_dir () =
  (* dune runs tests in _build/default/test; the sources are mirrored
     under the build root *)
  let candidates =
    [ "../protocols"; "protocols"; "../../protocols"; "../../../protocols" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "protocols/ corpus not found"

let load name =
  match Protocol_syntax.parse_file (Filename.concat (corpus_dir ()) name) with
  | Ok p -> Population.complete p
  | Error e -> Alcotest.failf "%s: %s" name e

let test_all_parse () =
  let dir = corpus_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pp")
  in
  Alcotest.(check bool) "at least four corpus files" true (List.length files >= 4);
  List.iter
    (fun f ->
      match Protocol_syntax.parse_file (Filename.concat dir f) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" f e)
    files

let test_flock8 () =
  let p = load "flock8.pp" in
  match Eta_search.find p ~max_input:18 with
  | Eta_search.Eta 8 -> ()
  | r -> Alcotest.failf "flock8: %a" Eta_search.pp_result r

let test_majority () =
  let p = load "majority.pp" in
  match
    Fair_semantics.check_predicate p (Predicate.majority ())
      ~inputs:[ [| 3; 2 |]; [| 2; 3 |]; [| 2; 2 |]; [| 4; 1 |]; [| 0; 2 |] ]
  with
  | Fair_semantics.Ok_all _ -> ()
  | Fair_semantics.Mismatch (v, verdict, expected) ->
    Alcotest.failf "majority at %d,%d: %a (expected %b)" v.(0) v.(1)
      Fair_semantics.pp_verdict verdict expected

let test_parity () =
  let p = load "parity.pp" in
  match
    Fair_semantics.check_predicate p
      (Predicate.Modulo ([| 1 |], 1, 2))
      ~inputs:(List.init 8 (fun i -> [| i + 2 |]))
  with
  | Fair_semantics.Ok_all _ -> ()
  | Fair_semantics.Mismatch (v, verdict, expected) ->
    Alcotest.failf "parity at %d: %a (expected %b)" v.(0)
      Fair_semantics.pp_verdict verdict expected

let test_exists_pair () =
  let p = load "exists_pair.pp" in
  match
    Fair_semantics.check_predicate p
      (Predicate.Threshold ([| 0; 1 |], 2))
      ~inputs:[ [| 3; 0 |]; [| 3; 1 |]; [| 2; 2 |]; [| 0; 3 |]; [| 5; 2 |] ]
  with
  | Fair_semantics.Ok_all _ -> ()
  | Fair_semantics.Mismatch (v, verdict, expected) ->
    Alcotest.failf "exists-pair at %d,%d: %a (expected %b)" v.(0) v.(1)
      Fair_semantics.pp_verdict verdict expected

let test_broken_flock_is_broken () =
  let p = load "broken_flock.pp" in
  match Eta_search.find p ~max_input:18 with
  | Eta_search.Eta 8 -> Alcotest.fail "broken variant passed as threshold 8"
  | _ -> ()

let test_roundtrip_corpus () =
  List.iter
    (fun f ->
      let p = load f in
      match Protocol_syntax.parse_string (Protocol_syntax.to_string p) with
      | Ok p' ->
        Alcotest.(check int) (f ^ " states") (Population.num_states p)
          (Population.num_states p');
        Alcotest.(check int) (f ^ " transitions") (Population.num_transitions p)
          (Population.num_transitions p')
      | Error e -> Alcotest.failf "%s round-trip: %s" f e)
    [ "flock8.pp"; "majority.pp"; "parity.pp"; "exists_pair.pp" ]

let () =
  Alcotest.run "corpus"
    [
      ( "protocols",
        [
          Alcotest.test_case "all parse" `Quick test_all_parse;
          Alcotest.test_case "flock8 threshold" `Quick test_flock8;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "exists-pair" `Quick test_exists_pair;
          Alcotest.test_case "broken variant detected" `Quick test_broken_flock_is_broken;
          Alcotest.test_case "round-trips" `Quick test_roundtrip_corpus;
        ] );
    ]
