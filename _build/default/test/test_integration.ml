(* End-to-end integration tests: the full Lemma 5.2 certificate
   pipeline, consistency between the paper's bounds and exact values,
   and agreement between the independent semantic engines (stochastic
   simulation, explicit graphs, coverability). *)

(* -- certificates (Theorem 5.9 pipeline) ------------------------------------ *)

let exact_eta p ~max_input =
  match Eta_search.find p ~max_input with
  | Eta_search.Eta eta -> Some eta
  | Eta_search.Always_accepts -> Some 2
  | _ -> None

let test_certificates_flock () =
  List.iter
    (fun k ->
      let p = Flock.succinct k in
      match Certificate.construct ~seed:11 p with
      | Error e -> Alcotest.failf "succinct-%d: %s" k e
      | Ok cert ->
        Alcotest.(check bool)
          (Printf.sprintf "succinct-%d: certificate validates" k)
          true (Certificate.check cert);
        let eta = 1 lsl k in
        Alcotest.(check bool)
          (Printf.sprintf "succinct-%d: eta=%d <= certified a=%d" k eta cert.Certificate.a)
          true (eta <= cert.Certificate.a))
    [ 1; 2; 3 ]

let test_certificates_catalog () =
  List.iter
    (fun (name, eta) ->
      match Catalog.build name with
      | None -> Alcotest.failf "catalog: %s" name
      | Some e ->
        let p = e.Catalog.build () in
        (match Certificate.construct ~seed:3 p with
         | Error err -> Alcotest.failf "%s: %s" name err
         | Ok cert ->
           Alcotest.(check bool) (name ^ ": validates") true (Certificate.check cert);
           Alcotest.(check bool)
             (Printf.sprintf "%s: eta=%d <= a=%d" name eta cert.Certificate.a)
             true
             (eta <= cert.Certificate.a)))
    [ ("threshold-binary-3", 3); ("threshold-binary-5", 5); ("threshold-unary-3", 3) ]

let test_certificate_theta_constraints () =
  let p = Flock.succinct 2 in
  match Certificate.construct p with
  | Error e -> Alcotest.fail e
  | Ok cert ->
    (* Lemma 5.2 (ii): D must be 2|θ|-saturated; we scaled by m >= 2|θ| *)
    Alcotest.(check bool) "m >= 2|theta|" true
      (cert.Certificate.m >= 2 * Potential.size cert.Certificate.theta);
    Alcotest.(check bool) "b >= 1" true (cert.Certificate.b >= 1);
    (* D_b lives inside the omega coordinates *)
    let s =
      List.filter
        (fun q ->
          match Omega_vec.get cert.Certificate.omega q with
          | Omega_vec.Omega -> true
          | Omega_vec.Fin _ -> false)
        (List.init (Population.num_states p) Fun.id)
    in
    Alcotest.(check bool) "D_b in N^S" true
      (List.for_all (fun q -> List.mem q s) (Mset.support cert.Certificate.d_b))

(* tampering with a certificate must be caught *)
let test_certificate_tamper_detection () =
  let p = Flock.succinct 2 in
  match Certificate.construct p with
  | Error e -> Alcotest.fail e
  | Ok cert ->
    let tampered = { cert with Certificate.a = cert.Certificate.a - 1 } in
    Alcotest.(check bool) "tampered a rejected" false (Certificate.check tampered);
    let tampered2 = { cert with Certificate.b = cert.Certificate.b + 1 } in
    Alcotest.(check bool) "tampered b rejected" false (Certificate.check tampered2)

(* -- pumping vs exact eta ----------------------------------------------------- *)

let test_pumping_bounds_exact_eta () =
  List.iter
    (fun (name, max_input) ->
      match Catalog.build name with
      | None -> Alcotest.failf "catalog: %s" name
      | Some e ->
        let p = e.Catalog.build () in
        (match exact_eta p ~max_input with
         | None -> Alcotest.failf "%s: no exact eta" name
         | Some eta ->
           (match Pumping.find_witness p ~max_input with
            | Error err -> Alcotest.failf "%s: %s" name err
            | Ok w ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: exact eta=%d <= pumping a=%d" name eta w.Pumping.a)
                true (eta <= w.Pumping.a))))
    [
      ("flock-succinct-1", 10);
      ("flock-succinct-2", 12);
      ("threshold-binary-3", 10);
      ("threshold-binary-5", 12);
      ("threshold-unary-3", 10);
      ("leader-counter-1", 8);
    ]

(* -- Lemma 5.1: ⇒ vs → -------------------------------------------------------- *)

let test_lemma_5_1 () =
  let p = Flock.succinct 2 in
  let nt = Population.num_transitions p in
  (* (i) if C -σ-> C' then C ==π=> C' for the Parikh image π *)
  let rng = Splitmix64.create 99 in
  for _ = 1 to 50 do
    let c0 = Population.initial_single p (2 + Splitmix64.int_below rng 8) in
    let pi = Array.make nt 0 in
    let rec walk c steps =
      if steps = 0 then c
      else begin
        let enabled = List.filter (Population.enabled p c) (List.init nt Fun.id) in
        match enabled with
        | [] -> c
        | _ ->
          let t = List.nth enabled (Splitmix64.int_below rng (List.length enabled)) in
          pi.(t) <- pi.(t) + 1;
          walk (Population.fire p c t) (steps - 1)
      end
    in
    let c' = walk c0 10 in
    let predicted = Intvec.add (Mset.to_intvec c0) (Population.displacement_of_multiset p pi) in
    if not (Intvec.equal predicted (Mset.to_intvec c')) then
      Alcotest.fail "Lemma 5.1(i) violated"
  done;
  (* (ii) if C ==π=> C' and C is 2|π|-saturated then C -σ-> C' for any
     σ with Parikh image π: check on a saturated configuration *)
  match Saturation.find p with
  | Error e -> Alcotest.fail e
  | Ok w ->
    let pi = Array.make nt 0 in
    (* take a small potentially realisable multiset *)
    let basis = Potential.basis p in
    let theta = List.hd (List.sort (fun a b -> Stdlib.compare (Potential.size a) (Potential.size b)) basis) in
    Array.blit theta 0 pi 0 nt;
    let m = 2 * Potential.size pi in
    let c = Mset.scale (Stdlib.max 1 m) w.Saturation.result in
    (* fire the transitions of pi in an arbitrary order *)
    let rec fire_all c remaining =
      let next =
        List.find_opt (fun t -> remaining.(t) > 0) (List.init nt Fun.id)
      in
      match next with
      | None -> Some c
      | Some t ->
        (match Population.fire_opt p c t with
         | None -> None
         | Some c' ->
           remaining.(t) <- remaining.(t) - 1;
           fire_all c' remaining)
    in
    (match fire_all c (Array.copy pi) with
     | Some c' ->
       let predicted = Intvec.add (Mset.to_intvec c) (Population.displacement_of_multiset p pi) in
       Alcotest.(check bool) "Lemma 5.1(ii): execution realises pi" true
         (Intvec.equal predicted (Mset.to_intvec c'))
     | None -> Alcotest.fail "Lemma 5.1(ii): saturated configuration blocked")

(* -- Theorem 5.9 sanity -------------------------------------------------------- *)

let test_theorem_5_9_consistency () =
  (* for each catalog busy beaver: exact eta <= the paper's bound for
     its state count (the bound is astronomically larger; the check is
     that nothing is inconsistent, via exact Magnitude comparison) *)
  List.iter
    (fun (name, max_input) ->
      match Catalog.build name with
      | None -> Alcotest.failf "catalog %s" name
      | Some e ->
        let p = e.Catalog.build () in
        (match exact_eta p ~max_input with
         | None -> Alcotest.failf "%s eta" name
         | Some eta ->
           let bound =
             Factorial_bounds.theorem_5_9
               ~num_states:(Population.num_states p)
               ~num_transitions:(Population.num_transitions p)
           in
           Alcotest.(check bool)
             (Printf.sprintf "%s: eta within Theorem 5.9" name)
             true
             (Magnitude.compare (Magnitude.of_int eta) bound <= 0)))
    [ ("flock-succinct-2", 10); ("threshold-binary-6", 12) ]

(* -- simulation vs exact over the catalog --------------------------------------- *)

let test_sim_exact_agreement () =
  let rng = Splitmix64.create 123 in
  List.iter
    (fun e ->
      let p = e.Catalog.build () in
      if
        Array.length p.Population.input_vars = 1
        && Population.num_states p <= 7
        && p.Population.name <> "majority"
      then begin
        List.iter
          (fun i ->
            match Fair_semantics.decide ~max_configs:150_000 p [| i |] with
            | Fair_semantics.Decides expected ->
              let r = Simulator.run_input ~rng p [| i |] in
              if r.Simulator.converged && r.Simulator.output <> Some expected then
                Alcotest.failf "%s: input %d sim=%s exact=%b" e.Catalog.name i
                  (match r.Simulator.output with
                   | Some b -> string_of_bool b
                   | None -> "?")
                  expected
            | _ -> ())
          [ 3; 6; 11 ]
      end)
    (Catalog.default_entries ())

(* -- parser round-trip through the whole pipeline -------------------------------- *)

let test_parse_analyse_roundtrip () =
  let p = Flock.succinct 2 in
  match Protocol_syntax.parse_string (Protocol_syntax.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    (match (Eta_search.find p ~max_input:10, Eta_search.find p' ~max_input:10) with
     | Eta_search.Eta a, Eta_search.Eta b -> Alcotest.(check int) "same eta" a b
     | _ -> Alcotest.fail "eta search failed after round-trip")

let () =
  Alcotest.run "integration"
    [
      ( "certificates",
        [
          Alcotest.test_case "flock family" `Quick test_certificates_flock;
          Alcotest.test_case "catalog" `Quick test_certificates_catalog;
          Alcotest.test_case "theta constraints" `Quick test_certificate_theta_constraints;
          Alcotest.test_case "tamper detection" `Quick test_certificate_tamper_detection;
        ] );
      ( "pumping-vs-exact",
        [ Alcotest.test_case "bounds exact eta" `Quick test_pumping_bounds_exact_eta ] );
      ("lemma-5-1", [ Alcotest.test_case "both directions" `Quick test_lemma_5_1 ]);
      ( "theorem-5-9",
        [ Alcotest.test_case "consistency" `Quick test_theorem_5_9_consistency ] );
      ( "engines-agree",
        [
          Alcotest.test_case "simulation vs exact" `Quick test_sim_exact_agreement;
          Alcotest.test_case "parse round-trip" `Quick test_parse_analyse_roundtrip;
        ] );
    ]
