(* Tests for the Presburger fragment compiler: the general threshold
   and modulo constructions, synchronous products, output complement,
   and compiled protocols checked against Predicate.eval under the
   exact fairness semantics. *)

let grid2 hi =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a + b >= 2 then Some [| a; b |] else None)
        (List.init (hi + 1) Fun.id))
    (List.init (hi + 1) Fun.id)

let grid1 lo hi = List.init (hi - lo + 1) (fun i -> [| lo + i |])

let check_against_spec ?(max_configs = 500_000) name pred inputs =
  match Compile.compile pred with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok p ->
    (match Fair_semantics.check_predicate ~max_configs p pred ~inputs with
     | Fair_semantics.Ok_all _ -> ()
     | Fair_semantics.Mismatch (v, verdict, expected) ->
       Alcotest.failf "%s: input %s: %a (expected %b)" name
         (String.concat "," (List.map string_of_int (Array.to_list v)))
         Fair_semantics.pp_verdict verdict expected)

(* -- General_threshold ---------------------------------------------------- *)

let test_threshold_basics () =
  let p = General_threshold.protocol ~coeffs:[| 1; 2 |] ~c:5 in
  Alcotest.(check int) "c+1 states" 6 (Population.num_states p);
  Alcotest.(check int) "two inputs" 2 (Array.length p.Population.input_vars);
  Alcotest.check_raises "negative coefficient"
    (Invalid_argument "General_threshold.protocol: negative coefficient") (fun () ->
      ignore (General_threshold.protocol ~coeffs:[| -1 |] ~c:2))

let test_threshold_exact () =
  check_against_spec "x0+2x1>=5" (Predicate.Threshold ([| 1; 2 |], 5)) (grid2 5);
  check_against_spec "3x0>=7" (Predicate.Threshold ([| 3 |], 7)) (grid1 2 6);
  check_against_spec "x0+x1+x2>=4"
    (Predicate.Threshold ([| 1; 1; 1 |], 4))
    [ [| 1; 1; 1 |]; [| 2; 1; 1 |]; [| 0; 2; 2 |]; [| 4; 0; 0 |]; [| 1; 1; 0 |] ]

let test_threshold_large_coefficient () =
  (* a coefficient >= c maps straight to the accepting flag *)
  check_against_spec "5x0+x1>=4" (Predicate.Threshold ([| 5; 1 |], 4)) (grid2 4)

let test_threshold_trivial () =
  check_against_spec "x>=0 is true" (Predicate.Threshold ([| 1 |], 0)) (grid1 2 5)

(* -- General_modulo --------------------------------------------------------- *)

let test_modulo_exact () =
  check_against_spec "x0+2x1 = 1 mod 3"
    (Predicate.Modulo ([| 1; 2 |], 1, 3))
    (grid2 5);
  check_against_spec "negative coefficient mod"
    (Predicate.Modulo ([| 1; -1 |], 0, 2))
    (grid2 5);
  check_against_spec "x = 2 mod 5" (Predicate.Modulo ([| 1 |], 2, 5)) (grid1 2 13)

let test_modulo_states () =
  let p = General_modulo.protocol ~coeffs:[| 1; -1 |] ~r:0 ~m:4 in
  Alcotest.(check int) "m+2 states" 6 (Population.num_states p)

(* -- Product ----------------------------------------------------------------- *)

let test_product_structure () =
  let p1 = General_threshold.protocol ~coeffs:[| 1 |] ~c:3 in
  let p2 = General_modulo.protocol ~coeffs:[| 1 |] ~r:0 ~m:2 in
  let q = Product.combine ~f:( && ) ~name:"conj" p1 p2 in
  Alcotest.(check int) "product states"
    (Population.num_states p1 * Population.num_states p2)
    (Population.num_states q);
  Alcotest.(check (list (pair int int))) "complete" [] (Population.missing_pairs q)

let test_product_requires_same_inputs () =
  let p1 = General_threshold.protocol ~coeffs:[| 1 |] ~c:3 in
  let p2 = General_threshold.protocol ~coeffs:[| 1; 1 |] ~c:3 in
  Alcotest.check_raises "input mismatch"
    (Invalid_argument "Product.combine: input variables must coincide") (fun () ->
      ignore (Product.combine ~f:( && ) ~name:"bad" p1 p2))

let test_product_rejects_leaders () =
  let leaderless = General_threshold.protocol ~coeffs:[| 1 |] ~c:2 in
  let with_leader = Leader_counter.protocol 1 in
  Alcotest.check_raises "leaders rejected"
    (Invalid_argument "Product.combine: leaderless protocols only") (fun () ->
      ignore (Product.combine ~f:( && ) ~name:"bad" with_leader leaderless))

(* -- Transform ------------------------------------------------------------------ *)

let test_complement () =
  let p = General_threshold.protocol ~coeffs:[| 1 |] ~c:4 in
  let q = Transform.complement p in
  List.iter
    (fun i ->
      match (Fair_semantics.decide p [| i |], Fair_semantics.decide q [| i |]) with
      | Fair_semantics.Decides a, Fair_semantics.Decides b ->
        if a = b then Alcotest.failf "complement agrees at %d" i
      | _ -> Alcotest.failf "undecided at %d" i)
    [ 2; 3; 4; 5; 6 ]

let test_restrict_to_coverable () =
  (* glue an unreachable state onto a working protocol *)
  let p =
    Population.complete
      (Population.make ~name:"padded"
         ~states:[| "x"; "y"; "dead" |]
         ~transitions:[ (0, 0, 1, 1); (2, 2, 0, 0) ]
         ~inputs:[ ("x", 0) ]
         ~output:[| false; true; true |] ())
  in
  let q = Transform.restrict_to_coverable p in
  Alcotest.(check int) "dead state dropped" 2 (Population.num_states q);
  (* equivalence on the shared semantics *)
  List.iter
    (fun i ->
      if Fair_semantics.decide p [| i |] <> Fair_semantics.decide q [| i |] then
        Alcotest.failf "restriction changed the verdict at %d" i)
    [ 2; 3; 4; 5 ]

let test_restrict_noop () =
  let p = Flock.succinct 2 in
  Alcotest.(check int) "already minimal" (Population.num_states p)
    (Population.num_states (Transform.restrict_to_coverable p))

let test_relabel () =
  let p = Flock.succinct 1 in
  let q = Transform.relabel p (Printf.sprintf "s%d") in
  Alcotest.(check string) "renamed" "s0" (Population.state_name q 0);
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Transform.relabel: duplicate state name") (fun () ->
      ignore (Transform.relabel p (fun _ -> "same")))

(* -- Compile ----------------------------------------------------------------------- *)

let test_compile_boolean_combos () =
  check_against_spec "conjunction"
    (Predicate.And (Predicate.Threshold ([| 1 |], 3), Predicate.Modulo ([| 1 |], 1, 2)))
    (grid1 2 10);
  check_against_spec "disjunction"
    (Predicate.Or (Predicate.Threshold ([| 1 |], 5), Predicate.Modulo ([| 1 |], 0, 3)))
    (grid1 2 9);
  check_against_spec "negation" (Predicate.Not (Predicate.threshold_single 4)) (grid1 2 8);
  check_against_spec "nested"
    (Predicate.And
       ( Predicate.Not (Predicate.Modulo ([| 1 |], 0, 2)),
         Predicate.Threshold ([| 1 |], 3) ))
    (grid1 2 9)

let test_compile_majority () =
  check_against_spec "majority" (Predicate.majority ()) (grid2 4);
  check_against_spec "swapped majority" (Predicate.Threshold ([| -1; 1 |], 1)) (grid2 4);
  (* majority over three variables: x2 is padding *)
  check_against_spec "padded majority"
    (Predicate.Threshold ([| 1; -1; 0 |], 1))
    [ [| 2; 1; 1 |]; [| 1; 2; 3 |]; [| 2; 2; 1 |]; [| 0; 1; 3 |]; [| 3; 0; 0 |] ]

let test_compile_nonpositive () =
  check_against_spec "-x0-x1 >= -3" (Predicate.Threshold ([| -1; -1 |], -3)) (grid2 4)

let test_compile_const () =
  check_against_spec "const true" (Predicate.Const true) (grid1 2 4);
  check_against_spec "const false" (Predicate.Const false) (grid1 2 4)

let test_compile_unsupported () =
  (match Compile.compile (Predicate.Threshold ([| 2; -3 |], 1)) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "mixed-sign threshold accepted");
  Alcotest.(check bool) "states_needed agrees" true
    (Compile.states_needed (Predicate.Threshold ([| 2; -3 |], 1)) = None)

let test_states_needed () =
  List.iter
    (fun pred ->
      match (Compile.states_needed pred, Compile.compile pred) with
      | Some n, Ok p ->
        Alcotest.(check int)
          (Format.asprintf "%a" Predicate.pp pred)
          n (Population.num_states p)
      | None, Error _ -> ()
      | Some _, Error e -> Alcotest.fail e
      | None, Ok _ -> Alcotest.fail "states_needed missed a supported predicate")
    [
      Predicate.Const true;
      Predicate.Threshold ([| 1; 2 |], 5);
      Predicate.Modulo ([| 1 |], 0, 3);
      Predicate.majority ();
      Predicate.And (Predicate.Threshold ([| 1 |], 3), Predicate.Modulo ([| 1 |], 1, 2));
      Predicate.Not (Predicate.Threshold ([| -1 |], -2));
    ]

(* -- Predicate_parser ----------------------------------------------------------- *)

let test_parser_basics () =
  let ok s pred =
    match Predicate_parser.parse s with
    | Ok p ->
      if p <> pred then
        Alcotest.failf "%s parsed as %s" s (Format.asprintf "%a" Predicate.pp p)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "x0 >= 7" (Predicate.Threshold ([| 1 |], 7));
  ok "x0 + 2*x1 >= 5" (Predicate.Threshold ([| 1; 2 |], 5));
  ok "x0 - x1 >= 1" (Predicate.Threshold ([| 1; -1 |], 1));
  ok "x0 > 3" (Predicate.Threshold ([| 1 |], 4));
  ok "x0 < 3" (Predicate.Not (Predicate.Threshold ([| 1 |], 3)));
  ok "x0 <= 3" (Predicate.Not (Predicate.Threshold ([| 1 |], 4)));
  ok "x0 == 2 mod 5" (Predicate.Modulo ([| 1 |], 2, 5));
  ok "true" (Predicate.Const true);
  ok "x0 + 1 >= 3" (Predicate.Threshold ([| 1 |], 2))

let test_parser_boolean_structure () =
  match Predicate_parser.parse "!(x0 >= 2) && x1 >= 1 || x0 == 0 mod 2" with
  | Ok (Predicate.Or (Predicate.And (Predicate.Not _, _), Predicate.Modulo _)) -> ()
  | Ok p -> Alcotest.failf "wrong structure: %s" (Format.asprintf "%a" Predicate.pp p)
  | Error e -> Alcotest.fail e

let test_parser_errors () =
  List.iter
    (fun s ->
      match Predicate_parser.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "x0 >="; "x0 & x1 >= 1"; "x0 >= 2 extra"; "x0 == 1 mod 0"; "y >= 1" ]

let test_parser_semantics_agree () =
  (* parsed predicates evaluate like hand-built ones on a grid *)
  List.iter
    (fun (s, f) ->
      match Predicate_parser.parse s with
      | Error e -> Alcotest.failf "%s: %s" s e
      | Ok pred ->
        List.iter
          (fun (a, b) ->
            let v = [| a; b |] in
            if Predicate.eval pred v <> f a b then
              Alcotest.failf "%s disagrees at (%d,%d)" s a b)
          [ (0, 0); (1, 2); (3, 1); (5, 5); (2, 7) ])
    [
      ("x0 + x1 >= 4", fun a b -> a + b >= 4);
      ("x0 - 2*x1 < 0", fun a b -> a - (2 * b) < 0);
      ("x0 == 1 mod 2 || x1 == 0 mod 3", fun a b -> a mod 2 = 1 || b mod 3 = 0);
      ("!(x0 - x1 >= 1)", fun a b -> not (a - b >= 1));
    ]

(* random predicates from the supported fragment vs direct evaluation *)
let arb_fragment =
  let open QCheck.Gen in
  let atom =
    frequency
      [
        (3, map2 (fun a c -> Predicate.Threshold ([| a; abs a mod 3 |], c))
             (int_range 0 3) (int_range 0 5));
        (3, map2 (fun a r -> Predicate.Modulo ([| a; 1 |], r mod 3, 3))
             (int_range (-2) 2) (int_range 0 2));
        (1, return (Predicate.majority ()));
      ]
  in
  let combo =
    atom >>= fun p1 ->
    atom >>= fun p2 ->
    oneofl
      [ p1; Predicate.Not p1; Predicate.And (p1, p2); Predicate.Or (p1, p2) ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Predicate.pp) combo

let compile_random_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random fragment predicates compile correctly" ~count:25
       arb_fragment
       (fun pred ->
         match Compile.compile pred with
         | Error _ -> QCheck.assume_fail ()
         | Ok p ->
           List.for_all
             (fun v ->
               match Fair_semantics.decide ~max_configs:400_000 p v with
               | Fair_semantics.Decides b -> b = Predicate.eval pred v
               | _ -> false)
             [ [| 2; 0 |]; [| 1; 1 |]; [| 3; 2 |]; [| 0; 4 |]; [| 5; 1 |] ]))

let () =
  Alcotest.run "presburger"
    [
      ( "general-threshold",
        [
          Alcotest.test_case "basics" `Quick test_threshold_basics;
          Alcotest.test_case "exact" `Quick test_threshold_exact;
          Alcotest.test_case "large coefficient" `Quick test_threshold_large_coefficient;
          Alcotest.test_case "trivial" `Quick test_threshold_trivial;
        ] );
      ( "general-modulo",
        [
          Alcotest.test_case "exact" `Quick test_modulo_exact;
          Alcotest.test_case "states" `Quick test_modulo_states;
        ] );
      ( "product",
        [
          Alcotest.test_case "structure" `Quick test_product_structure;
          Alcotest.test_case "input mismatch" `Quick test_product_requires_same_inputs;
          Alcotest.test_case "leaders" `Quick test_product_rejects_leaders;
        ] );
      ( "transform",
        [
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "restrict" `Quick test_restrict_to_coverable;
          Alcotest.test_case "restrict noop" `Quick test_restrict_noop;
          Alcotest.test_case "relabel" `Quick test_relabel;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parser_basics;
          Alcotest.test_case "boolean structure" `Quick test_parser_boolean_structure;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "semantics" `Quick test_parser_semantics_agree;
        ] );
      ( "compile",
        [
          Alcotest.test_case "boolean combinations" `Quick test_compile_boolean_combos;
          Alcotest.test_case "majority" `Quick test_compile_majority;
          Alcotest.test_case "nonpositive" `Quick test_compile_nonpositive;
          Alcotest.test_case "constants" `Quick test_compile_const;
          Alcotest.test_case "unsupported" `Quick test_compile_unsupported;
          Alcotest.test_case "states_needed" `Quick test_states_needed;
          compile_random_prop;
        ] );
    ]
