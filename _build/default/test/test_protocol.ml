(* Tests for the protocol model (Section 2.2): construction, semantics
   of firing, initial configurations, outputs, displacements, and the
   concrete syntax round-trip. *)

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* A tiny 3-state protocol used across the tests:
   states a b c; a,a -> b,c; b,c -> c,c; output 1 on c. *)
let tiny () =
  Population.make ~name:"tiny"
    ~states:[| "a"; "b"; "c" |]
    ~transitions:[ (0, 0, 1, 2); (1, 2, 2, 2) ]
    ~inputs:[ ("x", 0) ]
    ~output:[| false; false; true |]
    ()

let test_make_validation () =
  Alcotest.check_raises "bad transition state"
    (Invalid_argument "Population.make: transition state 5 out of range")
    (fun () ->
      ignore
        (Population.make ~name:"bad" ~states:[| "a" |]
           ~transitions:[ (0, 0, 0, 5) ]
           ~inputs:[ ("x", 0) ]
           ~output:[| false |] ()));
  Alcotest.check_raises "no inputs" (Invalid_argument "Population.make: no input variable")
    (fun () ->
      ignore
        (Population.make ~name:"bad" ~states:[| "a" |] ~transitions:[] ~inputs:[]
           ~output:[| false |] ()))

let test_transition_canonicalisation () =
  let p =
    Population.make ~name:"canon" ~states:[| "a"; "b" |]
      ~transitions:[ (1, 0, 1, 0); (0, 1, 0, 1) ]
      ~inputs:[ ("x", 0) ]
      ~output:[| false; false |] ()
  in
  Alcotest.(check int) "duplicates dropped" 1 (Population.num_transitions p)

let test_fire () =
  let p = tiny () in
  let c = Mset.of_list 3 [ (0, 3) ] in
  Alcotest.(check bool) "t0 enabled" true (Population.enabled p c 0);
  Alcotest.(check bool) "t1 disabled" false (Population.enabled p c 1);
  let c' = Population.fire p c 0 in
  Alcotest.(check int) "a decreased" 1 (Mset.get c' 0);
  Alcotest.(check int) "b appeared" 1 (Mset.get c' 1);
  Alcotest.(check int) "c appeared" 1 (Mset.get c' 2);
  Alcotest.(check int) "size preserved" 3 (Mset.size c');
  Alcotest.check_raises "disabled fire"
    (Invalid_argument "Population.fire: transition disabled") (fun () ->
      ignore (Population.fire p c 1))

let test_self_pair_needs_two () =
  let p = tiny () in
  let c = Mset.of_list 3 [ (0, 1); (1, 1) ] in
  Alcotest.(check bool) "a,a needs two agents in a" false (Population.enabled p c 0)

let test_initial_config () =
  let p = tiny () in
  let ic = Population.initial_single p 5 in
  Alcotest.(check int) "five in input state" 5 (Mset.get ic 0);
  Alcotest.(check int) "size" 5 (Mset.size ic);
  Alcotest.check_raises "too small"
    (Invalid_argument "Population.initial_config: populations have at least 2 agents")
    (fun () -> ignore (Population.initial_single p 1))

let test_initial_with_leaders () =
  let p =
    Population.make ~name:"leader" ~states:[| "x"; "l" |]
      ~transitions:[ (0, 1, 1, 1) ]
      ~leaders:[ (1, 2) ]
      ~inputs:[ ("x", 0) ]
      ~output:[| false; true |] ()
  in
  let ic = Population.initial_single p 3 in
  Alcotest.(check int) "leaders included" 2 (Mset.get ic 1);
  Alcotest.(check int) "size" 5 (Mset.size ic);
  Alcotest.(check bool) "not leaderless" false (Population.is_leaderless p)

let test_output_of_config () =
  let p = tiny () in
  Alcotest.(check (option bool)) "all zero-output" (Some false)
    (Population.output_of_config p (Mset.of_list 3 [ (0, 2); (1, 1) ]));
  Alcotest.(check (option bool)) "all one-output" (Some true)
    (Population.output_of_config p (Mset.of_list 3 [ (2, 4) ]));
  Alcotest.(check (option bool)) "mixed" None
    (Population.output_of_config p (Mset.of_list 3 [ (0, 1); (2, 1) ]))

let test_complete () =
  let p = tiny () in
  Alcotest.(check int) "missing pairs" 4 (List.length (Population.missing_pairs p));
  let p' = Population.complete p in
  Alcotest.(check (list (pair int int))) "none missing" [] (Population.missing_pairs p');
  Alcotest.(check int) "six transitions" 6 (Population.num_transitions p')

let test_displacement () =
  let p = tiny () in
  let d = Population.displacement p 0 in
  Alcotest.(check (list int)) "delta t0" [ -2; 1; 1 ] (Array.to_list d);
  Alcotest.(check int) "deltas conserve agents" 0 (Intvec.sum_coords d);
  let pi = [| 2; 1 |] in
  let dp = Population.displacement_of_multiset p pi in
  Alcotest.(check (list int)) "delta pi" [ -4; 1; 3 ] (Array.to_list dp)

let test_deterministic () =
  Alcotest.(check bool) "tiny deterministic" true (Population.is_deterministic (tiny ()));
  let nondet =
    Population.make ~name:"nd" ~states:[| "a"; "b" |]
      ~transitions:[ (0, 0, 0, 1); (0, 0, 1, 1) ]
      ~inputs:[ ("x", 0) ]
      ~output:[| false; false |] ()
  in
  Alcotest.(check bool) "nondeterministic" false (Population.is_deterministic nondet)

let test_state_lookup () =
  let p = tiny () in
  Alcotest.(check int) "index" 1 (Population.state_index p "b");
  Alcotest.(check string) "name" "c" (Population.state_name p 2);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Population.state_index p "zz"))

(* -- monotonicity (the property the paper calls "by monotonicity") ------- *)

let arb_context =
  QCheck.make
    ~print:(fun m -> String.concat ";" (List.map string_of_int (Array.to_list (Mset.to_intvec m))))
    QCheck.Gen.(array_size (return 3) (int_bound 4) >|= Mset.of_array)

let monotonicity_prop =
  prop "firing is monotone in the configuration" arb_context (fun ctx ->
      let p = tiny () in
      let c = Mset.of_list 3 [ (0, 2) ] in
      match Population.fire_opt p c 0 with
      | None -> false
      | Some c' ->
        (match Population.fire_opt p (Mset.add c ctx) 0 with
         | None -> false
         | Some c'' -> Mset.equal c'' (Mset.add c' ctx)))

(* -- predicates ---------------------------------------------------------- *)

let test_predicates () =
  let open Predicate in
  Alcotest.(check bool) "threshold true" true (eval (threshold_single 3) [| 5 |]);
  Alcotest.(check bool) "threshold false" false (eval (threshold_single 3) [| 2 |]);
  Alcotest.(check bool) "majority strict" false (eval (majority ()) [| 2; 2 |]);
  Alcotest.(check bool) "majority true" true (eval (majority ()) [| 3; 2 |]);
  Alcotest.(check bool) "modulo" true (eval (Modulo ([| 1 |], 1, 3)) [| 7 |]);
  Alcotest.(check bool) "negative residue normalised" true
    (eval (Modulo ([| -1 |], 2, 3)) [| 7 |]);
  Alcotest.(check bool) "boolean combo" true
    (eval (And (threshold_single 2, Not (threshold_single 10))) [| 5 |]);
  Alcotest.(check int) "arity" 2 (arity (majority ()))

(* -- random generation ---------------------------------------------------- *)

let test_gen_deterministic_repeatable () =
  let p1 = Protocol_gen.generate ~seed:42 () in
  let p2 = Protocol_gen.generate ~seed:42 () in
  Alcotest.(check int) "same transitions" (Population.num_transitions p1)
    (Population.num_transitions p2);
  Alcotest.(check (array bool)) "same outputs" p1.Population.output p2.Population.output;
  let p3 = Protocol_gen.generate ~seed:43 () in
  Alcotest.(check bool) "different seed differs" true
    (p1.Population.output <> p3.Population.output
     || p1.Population.transitions <> p3.Population.transitions)

let test_gen_complete_and_deterministic () =
  for seed = 0 to 30 do
    let p = Protocol_gen.generate ~seed () in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "seed %d complete" seed)
      [] (Population.missing_pairs p);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d deterministic" seed)
      true (Population.is_deterministic p)
  done

let test_gen_with_leaders () =
  let config = { Protocol_gen.default with Protocol_gen.leaders = 2 } in
  let p = Protocol_gen.generate ~config ~seed:5 () in
  Alcotest.(check int) "two leaders" 2 (Mset.size p.Population.leaders)

let test_gen_nondeterministic () =
  let config =
    { Protocol_gen.default with
      Protocol_gen.deterministic = false;
      Protocol_gen.extra_transitions = 12 }
  in
  let p = Protocol_gen.generate ~config ~seed:9 () in
  Alcotest.(check bool) "has at least the complete set" true
    (Population.num_transitions p >= 10)

(* -- concrete syntax ----------------------------------------------------- *)

let test_syntax_roundtrip () =
  let p = Population.complete (tiny ()) in
  match Protocol_syntax.parse_string (Protocol_syntax.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    Alcotest.(check int) "states" (Population.num_states p) (Population.num_states p');
    Alcotest.(check int) "transitions" (Population.num_transitions p)
      (Population.num_transitions p');
    Alcotest.(check (array bool)) "outputs" p.Population.output p'.Population.output

let test_syntax_errors () =
  (match Protocol_syntax.parse_string "states a\ninput x -> b" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown state accepted");
  (match Protocol_syntax.parse_string "input x -> a" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing states accepted");
  match Protocol_syntax.parse_string "states a b\ninput x -> a\ntrans a b ->" with
  | Error e ->
    Alcotest.(check bool) "line number reported" true
      (String.length e > 0 && e.[0] = 'l')
  | Ok _ -> Alcotest.fail "bad transition accepted"

let test_syntax_leaders () =
  let text =
    "protocol lc\nstates t b0 b1\ninput x -> t\nleader 1 b0\naccept b1\n\
     trans t b0 -> t b1\n"
  in
  match Protocol_syntax.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "leader count" 1 (Mset.size p.Population.leaders);
    Alcotest.(check bool) "accepting" true p.Population.output.(2)

let () =
  Alcotest.run "protocol"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "canonicalisation" `Quick test_transition_canonicalisation;
          Alcotest.test_case "fire" `Quick test_fire;
          Alcotest.test_case "self pair" `Quick test_self_pair_needs_two;
          Alcotest.test_case "initial config" `Quick test_initial_config;
          Alcotest.test_case "leaders" `Quick test_initial_with_leaders;
          Alcotest.test_case "output" `Quick test_output_of_config;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "displacement" `Quick test_displacement;
          Alcotest.test_case "determinism" `Quick test_deterministic;
          Alcotest.test_case "state lookup" `Quick test_state_lookup;
          monotonicity_prop;
        ] );
      ("predicates", [ Alcotest.test_case "eval" `Quick test_predicates ]);
      ( "generator",
        [
          Alcotest.test_case "repeatable" `Quick test_gen_deterministic_repeatable;
          Alcotest.test_case "complete+deterministic" `Quick test_gen_complete_and_deterministic;
          Alcotest.test_case "leaders" `Quick test_gen_with_leaders;
          Alcotest.test_case "nondeterministic" `Quick test_gen_nondeterministic;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "round-trip" `Quick test_syntax_roundtrip;
          Alcotest.test_case "errors" `Quick test_syntax_errors;
          Alcotest.test_case "leaders" `Quick test_syntax_leaders;
        ] );
    ]
