(* Tests for the Dickson-witness search and controlled bad sequences
   (the combinatorial engine of Lemma 4.4 / Theorem 4.5). *)

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let vecs l = List.map Array.of_list l

(* -- Dickson --------------------------------------------------------------- *)

let test_first_pair () =
  Alcotest.(check (option (pair int int))) "finds first pair"
    (Some (1, 3))
    (Dickson.first_ascending_pair
       (List.to_seq (vecs [ [ 2; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 0; 2 ] ])));
  Alcotest.(check (option (pair int int))) "bad sequence has none" None
    (Dickson.first_ascending_pair (List.to_seq (vecs [ [ 2; 0 ]; [ 1; 1 ]; [ 0; 2 ] ])))

let test_first_pair_equal_vectors () =
  Alcotest.(check (option (pair int int))) "equal counts as ascending"
    (Some (0, 1))
    (Dickson.first_ascending_pair (List.to_seq (vecs [ [ 1; 1 ]; [ 1; 1 ] ])))

let test_ascending_chain () =
  let arr = Array.of_list (vecs [ [ 0; 3 ]; [ 1; 0 ]; [ 1; 1 ]; [ 0; 4 ]; [ 2; 2 ] ]) in
  (match Dickson.ascending_chain arr 3 with
   | Some ([ _; _; _ ] as chain) ->
     let rec ascending = function
       | a :: (b :: _ as rest) -> Intvec.leq arr.(a) arr.(b) && ascending rest
       | _ -> true
     in
     Alcotest.(check bool) "chain ascending" true (ascending chain)
   | Some _ -> Alcotest.fail "wrong chain length"
   | None -> Alcotest.fail "chain exists");
  Alcotest.(check (option (list int))) "no chain of 4" None (Dickson.ascending_chain arr 4)

let test_is_bad () =
  Alcotest.(check bool) "strictly descending is bad" true
    (Dickson.is_bad (Array.of_list (vecs [ [ 3 ]; [ 2 ]; [ 1 ] ])));
  Alcotest.(check bool) "ascending pair detected" false
    (Dickson.is_bad (Array.of_list (vecs [ [ 1; 2 ]; [ 2; 2 ] ])))

(* Dickson's lemma itself, empirically: random sequences over a bounded
   grid must contain an ascending pair once longer than the largest
   antichain through the grid. *)
let dickson_lemma_prop =
  prop "bounded sequences of length > antichain bound have witnesses"
    QCheck.(list_of_size (QCheck.Gen.return 10) (pair (int_bound 2) (int_bound 2)))
    (fun pts ->
      (* 10 points in {0,1,2}^2: longest antichain has <= 3 elements + ...
         certainly < 10, so a witness must exist *)
      let arr = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      not (Dickson.is_bad arr))

let witness_correct_prop =
  prop "returned witness is actually ascending"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 12) (pair (int_bound 4) (int_bound 4)))
    (fun pts ->
      let arr = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      match Dickson.first_ascending_pair (Array.to_seq arr) with
      | None -> Dickson.is_bad arr
      | Some (i, j) -> i < j && Intvec.leq arr.(i) arr.(j))

(* -- Bad_sequences ---------------------------------------------------------- *)

let test_dim1_exact () =
  (* dimension 1: the longest (i+delta)-controlled bad sequence is
     delta, delta-1, …, 0 — length delta + 1 *)
  List.iter
    (fun delta ->
      Alcotest.(check (option int))
        (Printf.sprintf "L(1, %d)" delta)
        (Some (delta + 1))
        (Bad_sequences.max_length_exact ~dim:1 ~delta ~budget:2_000_000))
    [ 0; 1; 2; 3; 4 ]

let test_dim2_growth () =
  (* dimension 2 grows much faster; known small values via exhaustive
     search. L(2,0) counts sequences controlled by ‖v_i‖₁ <= i. *)
  let l delta = Bad_sequences.max_length_exact ~dim:2 ~delta ~budget:6_000_000 in
  match (l 0, l 1) with
  | Some l0, Some l1 ->
    Alcotest.(check bool) "monotone in delta" true (l1 > l0);
    Alcotest.(check bool) "superlinear already" true (l1 >= 2 * 1 + 2)
  | _ -> Alcotest.fail "search budget exceeded"

let test_staircase_valid () =
  List.iter
    (fun delta ->
      let seq = Bad_sequences.descending_staircase ~delta ~max_len:4000 in
      Alcotest.(check bool)
        (Printf.sprintf "staircase delta=%d is controlled bad" delta)
        true
        (Bad_sequences.is_controlled_bad ~delta seq))
    [ 0; 1; 2; 3; 4; 5 ]

let test_staircase_explodes () =
  let len d = List.length (Bad_sequences.descending_staircase ~delta:d ~max_len:100_000) in
  Alcotest.(check bool) "roughly doubling" true (len 6 > (3 * len 5) / 2);
  Alcotest.(check bool) "exceeds linear control" true (len 8 > 100)

let test_greedy_valid () =
  List.iter
    (fun (dim, delta) ->
      let seq = Bad_sequences.greedy_sequence ~dim ~delta ~max_len:60 in
      Alcotest.(check bool)
        (Printf.sprintf "greedy (%d,%d) is controlled bad" dim delta)
        true
        (Bad_sequences.is_controlled_bad ~delta seq);
      Alcotest.(check bool) "nonempty" true (List.length seq > 0))
    [ (1, 2); (2, 1); (2, 2); (3, 1) ]

let test_greedy_matches_exact_dim1 () =
  let seq = Bad_sequences.greedy_sequence ~dim:1 ~delta:3 ~max_len:100 in
  Alcotest.(check int) "greedy optimal in dim 1" 4 (List.length seq)

let test_exact_budget_exhaustion () =
  Alcotest.(check (option int)) "tiny budget returns None" None
    (Bad_sequences.max_length_exact ~dim:2 ~delta:2 ~budget:5)

let greedy_at_least_staircase =
  prop "greedy in dim 2 at least as long as the staircase" ~count:4
    QCheck.(int_range 0 3)
    (fun delta ->
      let g = List.length (Bad_sequences.greedy_sequence ~dim:2 ~delta ~max_len:120) in
      let s = List.length (Bad_sequences.descending_staircase ~delta ~max_len:120) in
      g >= s)

let () =
  Alcotest.run "wqo"
    [
      ( "dickson",
        [
          Alcotest.test_case "first pair" `Quick test_first_pair;
          Alcotest.test_case "equal vectors" `Quick test_first_pair_equal_vectors;
          Alcotest.test_case "ascending chain" `Quick test_ascending_chain;
          Alcotest.test_case "is_bad" `Quick test_is_bad;
          dickson_lemma_prop;
          witness_correct_prop;
        ] );
      ( "bad-sequences",
        [
          Alcotest.test_case "dim 1 exact" `Quick test_dim1_exact;
          Alcotest.test_case "dim 2 growth" `Quick test_dim2_growth;
          Alcotest.test_case "staircase valid" `Quick test_staircase_valid;
          Alcotest.test_case "staircase explodes" `Quick test_staircase_explodes;
          Alcotest.test_case "greedy valid" `Quick test_greedy_valid;
          Alcotest.test_case "greedy dim 1 optimal" `Quick test_greedy_matches_exact_dim1;
          Alcotest.test_case "budget" `Quick test_exact_budget_exhaustion;
          greedy_at_least_staircase;
        ] );
    ]
