(* The experiment harness: regenerates every experiment of
   EXPERIMENTS.md (the paper has no tables or figures — each experiment
   is keyed to a theorem, lemma or example instead) and then runs the
   bechamel timing micro-benchmarks.

   Run with `dune exec bench/main.exe`; pass a subset of section names
   (e.g. `E1 E11 timings`) to run only those. *)

let section id title =
  Printf.printf "\n== %s: %s ==\n%!" id title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  section "E1" "Example 2.1 — P_k vs P'_k compute x >= 2^k";
  row "%-4s %-12s %-12s %-14s %-14s\n" "k" "states(P_k)" "states(P'_k)" "eta(P_k)" "eta(P'_k)";
  List.iter
    (fun k ->
      let eta_of p max_input =
        match Eta_search.find p ~max_input with
        | Eta_search.Eta e -> string_of_int e
        | Eta_search.Always_accepts -> "<=2"
        | r -> Format.asprintf "%a" Eta_search.pp_result r
      in
      let naive = Flock.naive k and succinct = Flock.succinct k in
      let max_input = (1 lsl k) + 6 in
      row "%-4d %-12d %-12d %-14s %-14s\n" k
        (Population.num_states naive)
        (Population.num_states succinct)
        (eta_of naive max_input) (eta_of succinct max_input))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  section "E2" "Theorem 2.2 — BB(n) ∈ Ω(2^n): states vs eta for the constructions";
  row "%-8s %-14s %-14s %-10s\n" "eta" "unary-states" "binary-states" "log2(eta)";
  List.iter
    (fun eta ->
      row "%-8d %-14d %-14d %-10.1f\n" eta
        (State_complexity.states_unary eta)
        (State_complexity.states_binary eta)
        (Float.log2 (float_of_int eta)))
    [ 2; 3; 4; 6; 8; 13; 16; 32; 64; 128; 1000; 65536; 1_000_000 ];
  row "\nconstructive busy-beaver lower bound (succinct flock, exact-verified for small n):\n";
  row "%-4s %-16s\n" "n" "BB(n) >=";
  List.iter
    (fun n -> row "%-4d %-16d\n" n (State_complexity.busy_beaver_lower n))
    [ 3; 4; 5; 6; 8; 10; 16; 24 ]

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  section "E3" "Leader protocols — the leader-counter family (see DESIGN.md on [12]'s Ω(2^2^n))";
  row "%-4s %-8s %-8s %-8s %-20s\n" "k" "states" "leaders" "eta" "verified";
  List.iter
    (fun k ->
      let p = Leader_counter.protocol k in
      let eta =
        match Eta_search.find p ~max_input:((1 lsl k) + 4) with
        | Eta_search.Eta e -> string_of_int e
        | r -> Format.asprintf "%a" Eta_search.pp_result r
      in
      row "%-4d %-8d %-8d %-8d %-20s\n" k (Population.num_states p)
        (Mset.size p.Population.leaders)
        (1 lsl k) eta)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  section "E4" "Lemma 3.2 — exact stable-set bases vs the beta bound";
  row "%-22s %-4s %-10s %-10s %-10s %-10s %-18s\n" "protocol" "n" "|SC0|" "norm0"
    "|SC1|" "norm1" "log2 beta(n)";
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        let n = Population.num_states p in
        let a = Stable_sets.analyse p in
        let beta_str =
          let lg = Factorial_bounds.beta_log2 n in
          if Bignat.bits lg <= 40 then Bignat.to_string lg
          else Printf.sprintf "~2^%d" (Bignat.log2_floor lg)
        in
        row "%-22s %-4d %-10d %-10d %-10d %-10d %-18s\n" name n
          (Downset.size a.Stable_sets.stable0)
          (Downset.norm a.Stable_sets.stable0)
          (Downset.size a.Stable_sets.stable1)
          (Downset.norm a.Stable_sets.stable1)
          beta_str)
    [
      "flock-succinct-1"; "flock-succinct-2"; "flock-succinct-3";
      "threshold-binary-5"; "threshold-binary-11"; "threshold-unary-4";
      "majority"; "mod-3-1"; "leader-counter-2";
    ]

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  section "E5" "Corollary 5.7 — Pottier bases of potentially realisable multisets";
  row "%-22s %-8s %-12s %-12s %-16s\n" "protocol" "|basis|" "max |pi|" "max input"
    "xi/2 bound";
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        if Population.is_leaderless p then begin
          let basis = Potential.basis p in
          let max_size =
            List.fold_left (fun acc pi -> Stdlib.max acc (Potential.size pi)) 0 basis
          in
          let max_input =
            List.fold_left (fun acc pi -> Stdlib.max acc (Potential.min_input p pi)) 0 basis
          in
          let xi = Factorial_bounds.xi_of_protocol p in
          let xi_str =
            if Bignat.bits xi <= 40 then Bignat.to_string (Bignat.div xi Bignat.two)
            else Printf.sprintf "~2^%d" (Bignat.log2_floor xi - 1)
          in
          row "%-22s %-8d %-12d %-12d %-16s  bounds hold: %b\n" name
            (List.length basis) max_size max_input xi_str
            (Potential.check_corollary_5_7 p basis)
        end)
    [
      "flock-succinct-1"; "flock-succinct-2"; "flock-succinct-3";
      "threshold-binary-3"; "threshold-binary-5"; "threshold-unary-3"; "mod-2-0";
    ]

(* ----------------------------------------------------------------- E4p *)

let e4p () =
  (* fixed jobs matrix (not Domain.recommended_domain_count): the
     section's summed work counters must be machine-independent so the
     regression gate can require them exactly; speedup is informational
     and only meaningful on a multi-core host *)
  section "E4p"
    "Parallel backward coverability: stable-set fixpoints over the domain pool";
  let time f =
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    (r, Obs.Clock.elapsed_s t0)
  in
  row "%-22s %-8s %-10s %-10s %-8s\n" "protocol" "jobs" "wall (s)" "speedup"
    "det-ok";
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        let base = ref None in
        List.iter
          (fun jobs ->
            let a, wall = time (fun () -> Stable_sets.analyse ~jobs p) in
            let a0, wall0 =
              match !base with
              | Some x -> x
              | None ->
                base := Some (a, wall);
                (a, wall)
            in
            (* the acceptance check of the parallel expansion: the
               bases agree byte-for-byte whatever the domain count *)
            let det_ok =
              Downset.equal a.Stable_sets.stable0 a0.Stable_sets.stable0
              && Downset.equal a.Stable_sets.stable1 a0.Stable_sets.stable1
              && Upset.equal a.Stable_sets.unstable0 a0.Stable_sets.unstable0
              && Upset.equal a.Stable_sets.unstable1 a0.Stable_sets.unstable1
            in
            row "%-22s %-8d %-10.2f %-10.2f %b\n" name jobs wall (wall0 /. wall)
              det_ok)
          [ 1; 2; 4 ])
    [ "flock-succinct-5"; "threshold-binary-37" ]

(* ----------------------------------------------------------------- E5p *)

let e5p () =
  section "E5p"
    "Parallel Hilbert bases: Contejean–Devie completion over the domain pool";
  let time f =
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    (r, Obs.Clock.elapsed_s t0)
  in
  row "%-22s %-8s %-10s %-10s %-8s\n" "protocol" "jobs" "wall (s)" "speedup"
    "det-ok";
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        let base = ref None in
        List.iter
          (fun jobs ->
            let b, wall = time (fun () -> Potential.basis ~jobs p) in
            let b0, wall0 =
              match !base with
              | Some x -> x
              | None ->
                base := Some (b, wall);
                (b, wall)
            in
            (* the acceptance check of the two-phase completion round:
               the basis agrees byte-for-byte whatever the domain
               count *)
            row "%-22s %-8d %-10.2f %-10.2f %b\n" name jobs wall (wall0 /. wall)
              (b = b0))
          [ 1; 2; 4 ])
    [ "threshold-unary-7"; "mod-5-2" ]

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  section "E6" "Lemma 5.4 — saturation witnesses: input 3^j reaches a 1-saturated configuration";
  row "%-22s %-4s %-8s %-10s %-10s %-10s\n" "protocol" "n" "level j" "input 3^j"
    "|sigma|" "3^n bound";
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        if Population.is_leaderless p then begin
          match Saturation.find p with
          | Error msg -> row "%-22s %s\n" name msg
          | Ok w ->
            let n = Population.num_states p in
            row "%-22s %-4d %-8d %-10d %-10d %-10s  (replay ok: %b)\n" name n
              w.Saturation.levels w.Saturation.input
              (List.length w.Saturation.sigma)
              (Bignat.to_string (Factorial_bounds.three_pow n))
              (Saturation.check w)
        end)
    [
      "flock-succinct-1"; "flock-succinct-2"; "flock-succinct-3";
      "flock-succinct-4"; "threshold-binary-5"; "threshold-binary-11";
      "threshold-unary-4"; "mod-3-1";
    ]

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  section "E7" "Busy-beaver search over small protocol spaces (apparent values, cutoff 12)";
  let print_result n r =
    row "n=%d: %d protocols scanned, %d threshold, %d reject-all, apparent BB(%d) = %d\n"
      n r.Busy_beaver.num_protocols r.Busy_beaver.num_threshold
      r.Busy_beaver.num_reject_all n r.Busy_beaver.best_eta;
    List.iter (fun (eta, c) -> row "   eta=%-3d  %d protocols\n" eta c)
      r.Busy_beaver.histogram
  in
  print_result 1 (Busy_beaver.scan ~n:1 ());
  print_result 2 (Busy_beaver.scan ~n:2 ());
  row "n=3: exhaustive scan of %d protocols...\n%!"
    (Busy_beaver.num_deterministic_protocols 3);
  print_result 3 (Busy_beaver.scan ~n:3 ());
  row "n=4: uniform sample of 30000 protocols (seed 5)...\n%!";
  print_result 4 (Busy_beaver.scan ~n:4 ~sample:(30_000, 5) ())

(* ------------------------------------------------------------------ E7p *)

let e7p () =
  let jobs_hi = Stdlib.max 2 (Stdlib.min 4 (Domain.recommended_domain_count ())) in
  section "E7p"
    "Parallel busy-beaver scan: domain sharding, symmetry pruning, packed configs";
  let time f =
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    (r, Obs.Clock.elapsed_s t0)
  in
  let aggregates (r : Busy_beaver.scan_result) =
    ( r.Busy_beaver.num_protocols, r.Busy_beaver.num_threshold,
      r.Busy_beaver.num_reject_all, r.Busy_beaver.best_eta,
      r.Busy_beaver.histogram )
  in
  row "full n=3 sweep (pruned, packed):\n";
  row "%-8s %-10s %-10s %-8s\n" "jobs" "wall (s)" "speedup" "det-ok";
  let base = ref None in
  List.iter
    (fun jobs ->
      let r, wall = time (fun () -> Busy_beaver.scan ~jobs ~n:3 ()) in
      let r0, wall0 =
        match !base with
        | Some x -> x
        | None ->
          base := Some (r, wall);
          (r, wall)
      in
      (* the acceptance check of the sharding model: aggregates agree
         byte-for-byte whatever the domain count *)
      row "%-8d %-10.2f %-10.2f %b\n" jobs wall (wall0 /. wall)
        (aggregates r = aggregates r0))
    (List.sort_uniq Stdlib.compare [ 1; 2; jobs_hi ]);
  row "\nsymmetry pruning (full n=3 sweep, packed, jobs=1):\n%!";
  let r1, w1 = match !base with Some x -> x | None -> assert false in
  let r_np, w_np =
    time (fun () -> Busy_beaver.scan ~prune:false ~n:3 ())
  in
  row "  off: %.2fs   on: %.2fs   speedup x%.2f   aggregates identical: %b\n"
    w_np w1 (w_np /. w1)
    (aggregates r_np = aggregates r1);
  row "\npacked configuration graphs (n=3, 50k sample, no pruning, jobs=1):\n%!";
  let r_ref, w_ref =
    time (fun () ->
        Busy_beaver.scan ~prune:false ~packed:false ~sample:(50_000, 20260705)
          ~n:3 ())
  in
  let r_pk, w_pk =
    time (fun () ->
        Busy_beaver.scan ~prune:false ~packed:true ~sample:(50_000, 20260705)
          ~n:3 ())
  in
  row "  multiset: %.2fs   packed: %.2fs   speedup x%.2f   results identical: %b\n"
    w_ref w_pk (w_ref /. w_pk)
    (aggregates r_ref = aggregates r_pk)

(* ----------------------------------------------------------------- E7d *)

let e7d () =
  section "E7d"
    "Distributed busy-beaver scan: lease-based forked workers over the \
     checkpoint ledger (n=3, 30k sample, seed 5)";
  let time f =
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    (r, Obs.Clock.elapsed_s t0)
  in
  let aggregates (r : Busy_beaver.scan_result) =
    ( r.Busy_beaver.num_protocols, r.Busy_beaver.num_threshold,
      r.Busy_beaver.num_reject_all, r.Busy_beaver.best_eta,
      r.Busy_beaver.histogram )
  in
  let reference, w_seq =
    time (fun () -> Busy_beaver.scan ~n:3 ~sample:(30_000, 5) ())
  in
  row "sequential reference: %.2fs (%d protocols)\n" w_seq
    reference.Busy_beaver.num_protocols;
  (* the acceptance check of the lease model: the index-ordered merge of
     per-process chunk accumulators equals the sequential fold byte for
     byte, whatever the worker count. Wall-clock is honest — on a
     single-core host forked workers time-slice and gain nothing. *)
  row "%-9s %-10s %-10s %-8s %-7s %-6s %s\n" "workers" "wall (s)" "speedup"
    "chunks" "seen" "lost" "ident";
  let base = ref None in
  let w4 = ref 0.0 in
  List.iter
    (fun workers ->
      let plan = Busy_beaver.plan ~n:3 ~sample:(30_000, 5) () in
      let o, wall =
        time (fun () ->
            (* telemetry off explicitly: the bench harness's own metric
               registry being enabled must not flip the default on and
               contaminate the plain rows *)
            Distributed_scan.coordinate ~workers ~telemetry:false ~plan ())
      in
      let w0 = match !base with Some w -> w | None -> base := Some wall; wall in
      if workers = 4 then w4 := wall;
      row "%-9d %-10.2f %-10.2f %-8d %-7d %-6d %b\n" workers wall (w0 /. wall)
        o.Distributed_scan.stats.Dist.Coordinator.chunks_done
        o.Distributed_scan.stats.Dist.Coordinator.workers_seen
        o.Distributed_scan.stats.Dist.Coordinator.workers_lost
        (aggregates o.Distributed_scan.result = aggregates reference))
    [ 1; 2; 4 ];
  (* the fleet telemetry plane, on: metric deltas on every heartbeat,
     batched event forwarding into one merged log, per-worker registry
     behind the exporter. The contract is identical aggregates and
     small wall overhead over the telemetry-off 4-worker row. *)
  (let events_path = Filename.temp_file "bench_e7d" ".events.jsonl" in
   Fun.protect
     ~finally:(fun () -> try Sys.remove events_path with Sys_error _ -> ())
     (fun () ->
       let plan = Busy_beaver.plan ~n:3 ~sample:(30_000, 5) () in
       Obs.Events.start_file events_path;
       let o, wall =
         Fun.protect
           ~finally:(fun () -> Obs.Events.stop ())
           (fun () ->
             time (fun () ->
                 Distributed_scan.coordinate ~workers:4 ~telemetry:true ~plan ()))
       in
       let s = o.Distributed_scan.stats in
       row "\n4 workers with fleet telemetry (heartbeat metric deltas + merged \
            events):\n";
       row
         "  wall %.2fs   overhead vs plain x%.2f   events_forwarded=%d   \
          fleet_rows=%d   identical=%b\n"
         wall
         (if !w4 > 0.0 then wall /. !w4 else 0.0)
         s.Dist.Coordinator.events_forwarded
         (List.length s.Dist.Coordinator.fleet)
         (aggregates o.Distributed_scan.result = aggregates reference)));
  (* fault injection: worker 0 of 3 SIGKILLs itself after 2 chunks; its
     leased chunks go back to the pool and the merged result must still
     be identical *)
  let plan = Busy_beaver.plan ~n:3 ~sample:(30_000, 5) () in
  let o, wall =
    time (fun () ->
        Distributed_scan.coordinate ~workers:3 ~chaos_kill:(0, 2)
          ~telemetry:false ~plan ())
  in
  let s = o.Distributed_scan.stats in
  row "\nkill 1 of 3 workers after 2 chunks:\n";
  row "  wall %.2fs   lost=%d   reassigned=%d   recovered=%b   identical=%b\n"
    wall s.Dist.Coordinator.workers_lost s.Dist.Coordinator.reassigned
    (s.Dist.Coordinator.workers_lost = 1
     && not s.Dist.Coordinator.interrupted)
    (aggregates o.Distributed_scan.result = aggregates reference);
  (* network fault injection: every frame on every connection passes
     through the seeded chaos shim on both sides — drops, duplicates,
     delays, truncations, bit flips, all within a finite per-connection
     budget. Retries, CRC skips and lease regrants absorb the damage;
     the merged result must still be identical. *)
  (let plan = Busy_beaver.plan ~n:3 ~sample:(30_000, 5) () in
   let spec =
     match Dist.Chaos.parse_spec "wild:5" with
     | Ok s -> s
     | Error e -> failwith e
   in
   let o, wall =
     time (fun () ->
         Distributed_scan.coordinate ~workers:3 ~heartbeat_timeout:1.0
           ~telemetry:false ~chaos_net:spec ~plan ())
   in
   let s = o.Distributed_scan.stats in
   row "\n3 workers under --chaos-net wild:5 (seeded frame faults, both sides):\n";
   row
     "  wall %.2fs   corrupt_frames=%d   rejoins=%d   reassigned=%d   \
      identical=%b\n"
     wall s.Dist.Coordinator.corrupt_frames s.Dist.Coordinator.rejoins
     s.Dist.Coordinator.reassigned
     (aggregates o.Distributed_scan.result = aggregates reference));
  (* coordinator crash recovery: the first life checkpoints every chunk
     and is stopped mid-scan; the second life resumes from the lease
     ledger, bumps the epoch, and finishes only the remaining chunks.
     The row is the price of the coordinator dying once. *)
  let ckpt = Filename.temp_file "bench_e7d" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      let plan = Busy_beaver.plan ~n:3 ~sample:(30_000, 5) () in
      let m_done = Obs.Metrics.counter "dist.chunks_done" in
      let m_restarts = Obs.Metrics.counter "coordinator.restarts" in
      let base_done = Obs.Metrics.value m_done in
      let base_restarts = Obs.Metrics.value m_restarts in
      let o1, w_first =
        time (fun () ->
            Distributed_scan.coordinate ~workers:3 ~telemetry:false
              ~checkpoint:ckpt ~checkpoint_every_chunks:1
              ~should_stop:(fun () ->
                Obs.Metrics.value m_done - base_done >= 4)
              ~plan ())
      in
      let o2, w_second =
        time (fun () ->
            Distributed_scan.coordinate ~workers:3 ~telemetry:false
              ~checkpoint:ckpt ~checkpoint_every_chunks:1 ~resume:true ~plan ())
      in
      row "\ncoordinator stopped after %d chunks, restarted with --resume:\n"
        o1.Distributed_scan.stats.Dist.Coordinator.chunks_done;
      row
        "  first life %.2fs + recovery %.2fs = %.2fs   restarts=%d   \
         identical=%b\n"
        w_first w_second (w_first +. w_second)
        (Obs.Metrics.value m_restarts - base_restarts)
        (aggregates o2.Distributed_scan.result = aggregates reference))

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  let jobs_hi = Stdlib.max 2 (Stdlib.min 4 (Domain.recommended_domain_count ())) in
  section "E8"
    (Printf.sprintf
       "Convergence under the uniform scheduler (ensemble, 10 trials; \
        wall-clock on 1 vs %d domains)" jobs_hi);
  row "%-22s %-8s %-10s %-10s %-10s %-10s %-10s %-9s %s\n" "protocol" "pop" "mean"
    "stddev" "median" "wall(1j)" (Printf.sprintf "wall(%dj)" jobs_hi) "speedup"
    "det-ok";
  let measure ?(trials = 10) ~backend name p input =
    let e1 = Ensemble.run_input ~jobs:1 ~backend ~seed:20260705 ~trials p input in
    let eN =
      Ensemble.run_input ~jobs:jobs_hi ~backend ~seed:20260705 ~trials p input
    in
    (* the acceptance check of the seeding model: aggregates agree
       byte-for-byte whatever the domain count *)
    let det_ok = Ensemble.summary e1 = Ensemble.summary eN in
    let ts = Ensemble.parallel_times e1 in
    let pop =
      String.concat "+" (List.map string_of_int (Array.to_list input))
    in
    if ts = [] then row "%-22s %-8s (no convergence within budget)\n" name pop
    else
      row "%-22s %-8s %-10.2f %-10.2f %-10.2f %-10.3f %-10.3f %-9.2f %b\n" name
        pop (Stats.mean ts) (Stats.stddev ts) (Stats.median ts)
        e1.Ensemble.wall eN.Ensemble.wall
        (e1.Ensemble.wall /. eN.Ensemble.wall) det_ok
  in
  List.iter
    (fun (name, pops) ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        List.iter
          (fun pop -> measure ~backend:(Ensemble.uniform ()) name p [| pop |])
          pops)
    [
      ("flock-succinct-4", [ 25; 50; 100; 200; 400 ]);
      ("threshold-binary-13", [ 25; 50; 100; 200; 400 ]);
      ("mod-3-1", [ 25; 50; 100; 200 ]);
    ];
  (* majority's passive-vs-passive drift makes large ties exponentially
     slow under the random scheduler — measure small populations only *)
  let maj = Majority.protocol () in
  List.iter
    (fun (a, b) ->
      measure ~trials:5
        ~backend:(Ensemble.uniform ~max_steps:5_000_000 ())
        "majority" maj [| a; b |])
    [ (15, 10); (30, 20); (60, 40) ]

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  section "E9" "Section 4 pumping — Dickson witnesses against exact thresholds";
  row "%-22s %-10s %-6s %-6s %-8s\n" "protocol" "exact eta" "a" "b" "eta<=a";
  List.iter
    (fun (name, max_input) ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        let eta =
          match Eta_search.find p ~max_input with
          | Eta_search.Eta x -> Some x
          | Eta_search.Always_accepts -> Some 2
          | _ -> None
        in
        (match (eta, Pumping.find_witness p ~max_input) with
         | Some eta, Ok w ->
           row "%-22s %-10d %-6d %-6d %-8b (checked: %b)\n" name eta w.Pumping.a
             w.Pumping.b (eta <= w.Pumping.a) (Pumping.check w)
         | _, Error msg -> row "%-22s %s\n" name msg
         | None, _ -> row "%-22s no exact eta below cutoff\n" name))
    [
      ("flock-succinct-1", 10); ("flock-succinct-2", 12);
      ("threshold-binary-3", 10); ("threshold-binary-5", 12);
      ("threshold-binary-6", 12); ("threshold-unary-3", 10);
      ("leader-counter-1", 8);
    ]

(* ------------------------------------------------------------------ E10 *)

let e10 () =
  section "E10" "The paper's constants (Definitions 3, 6; Lemma 3.2; Theorems 4.5, 5.9)";
  row "%-4s %-14s %-18s %-22s %-20s\n" "n" "3^n" "xi (det.)" "log2 beta = 2(2n+1)!+1"
    "Theorem 5.9 bound";
  List.iter
    (fun n ->
      let lg_beta = Factorial_bounds.beta_log2 n in
      let simple = Factorial_bounds.theorem_5_9_simple n in
      row "%-4d %-14s %-18s %-22s %-20s\n" n
        (Bignat.to_string (Factorial_bounds.three_pow n))
        (Bignat.to_string (Factorial_bounds.xi_deterministic ~num_states:n))
        (if Bignat.bits lg_beta <= 40 then Bignat.to_string lg_beta
         else Printf.sprintf "~2^%d" (Bignat.log2_floor lg_beta))
        (Magnitude.to_string simple))
    [ 2; 3; 4; 5; 6; 8 ];
  row "\nFast Growing Hierarchy at tiny arguments (Theorem 4.5 lives at level F_omega):\n";
  row "%-10s %-14s %-14s %-14s\n" "x" "F_1(x)" "F_2(x)" "F_omega(x)";
  List.iter
    (fun x ->
      let s f = match f with Some v -> string_of_int v | None -> "overflow" in
      row "%-10d %-14s %-14s %-14s\n" x (s (Fgh.f 1 x)) (s (Fgh.f 2 x)) (s (Fgh.f_omega x)))
    [ 1; 2; 3; 4 ];
  row "\nAckermann values / inverse (the leader lower-bound shape):\n";
  List.iter
    (fun m ->
      match Fgh.ackermann m m with
      | Some v -> row "A(%d,%d) = %d\n" m m v
      | None -> row "A(%d,%d) : beyond machine integers\n" m m)
    [ 0; 1; 2; 3; 4 ];
  row "alpha(10^18) = %d\n" (Fgh.inverse_ackermann 1_000_000_000_000_000_000)

(* ------------------------------------------------------------------ E11 *)

let e11 () =
  section "E11" "Lemma 5.2 certificates — machine-checked eta <= a on concrete protocols";
  row "%-22s %-10s %-10s %-6s %-6s %-10s\n" "protocol" "exact eta" "cert. a" "m"
    "b" "validates";
  List.iter
    (fun (name, max_input) ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        let eta =
          match Eta_search.find p ~max_input with
          | Eta_search.Eta x -> string_of_int x
          | Eta_search.Always_accepts -> "<=2"
          | _ -> "?"
        in
        (match Certificate.construct ~seed:7 p with
         | Ok c ->
           row "%-22s %-10s %-10d %-6d %-6d %-10b\n" name eta c.Certificate.a
             c.Certificate.m c.Certificate.b (Certificate.check c)
         | Error msg -> row "%-22s %-10s %s\n" name eta msg))
    [
      ("flock-succinct-1", 10); ("flock-succinct-2", 12); ("flock-succinct-3", 18);
      ("threshold-binary-3", 10); ("threshold-binary-5", 12);
      ("threshold-unary-3", 10);
    ]

(* ------------------------------------------------------------------ E12 *)

let e12 () =
  section "E12" "Controlled bad sequences (Lemma 4.4's engine, Figueira et al. [19])";
  row "dim 1, exact: ";
  List.iter
    (fun d ->
      match Bad_sequences.max_length_exact ~dim:1 ~delta:d ~budget:3_000_000 with
      | Some l -> row "L(1,%d)=%d  " d l
      | None -> row "L(1,%d)=?  " d)
    [ 0; 1; 2; 3; 4; 5 ];
  row "\ndim 2, exact: ";
  List.iter
    (fun d ->
      match Bad_sequences.max_length_exact ~dim:2 ~delta:d ~budget:8_000_000 with
      | Some l -> row "L(2,%d)=%d  " d l
      | None -> row "L(2,%d)>=? (budget)  " d)
    [ 0; 1; 2 ];
  row "\nstaircase lower-bound witness (dim 2): ";
  List.iter
    (fun d ->
      let l = List.length (Bad_sequences.descending_staircase ~delta:d ~max_len:2_000_000) in
      row "delta=%d -> %d  " d l)
    [ 2; 4; 6; 8; 10; 12; 14 ];
  row "\ngreedy (dim 3, delta=1, capped 150): %d\n"
    (List.length (Bad_sequences.greedy_sequence ~dim:3 ~delta:1 ~max_len:150))

(* ------------------------------------------------------------------ E13 *)

let e13 () =
  section "E13" "Presburger fragment compiler (closure under boolean operations, [8])";
  row "%-42s %-8s %-10s\n" "predicate" "states" "verified";
  let grid1 = List.init 8 (fun i -> [| i + 2 |]) in
  let grid2 =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a + b >= 2 then Some [| a; b |] else None)
          (List.init 5 Fun.id))
      (List.init 5 Fun.id)
  in
  List.iter
    (fun (label, pred, inputs) ->
      match Compile.compile pred with
      | Error e -> row "%-42s %s\n" label e
      | Ok p ->
        (match
           Fair_semantics.check_predicate ~max_configs:600_000 p pred ~inputs
         with
        | Fair_semantics.Ok_all n ->
          row "%-42s %-8d on %d inputs\n" label (Population.num_states p) n
        | Fair_semantics.Mismatch (v, _, _) ->
          row "%-42s WRONG at %s\n" label
            (String.concat "," (List.map string_of_int (Array.to_list v)))
        | exception Configgraph.Too_many_configs _ ->
          row "%-42s %-8d (state space too large to verify exhaustively)\n"
            label (Population.num_states p)))
    [
      ("x >= 7", Predicate.threshold_single 7, grid1);
      ("x ≡ 2 (mod 3)", Predicate.Modulo ([| 1 |], 2, 3), grid1);
      ( "x >= 4 ∧ x ≡ 0 (mod 2)",
        Predicate.And (Predicate.threshold_single 4, Predicate.Modulo ([| 1 |], 0, 2)),
        List.init 6 (fun i -> [| i + 2 |]) );
      ("x0 + 2·x1 >= 5", Predicate.Threshold ([| 1; 2 |], 5), grid2);
      ("x0 > x1", Predicate.majority (), grid2);
      ("x0 - x1 ≡ 0 (mod 2)", Predicate.Modulo ([| 1; -1 |], 0, 2), grid2);
      ( "x0 > x1 ∧ x0 + x1 >= 4",
        Predicate.And (Predicate.majority (), Predicate.Threshold ([| 1; 1 |], 4)),
        grid2 );
      ("¬(x0 + x1 >= 3)", Predicate.Not (Predicate.Threshold ([| 1; 1 |], 3)), grid2);
    ]

(* ------------------------------------------------------------------ E14 *)

let e14 () =
  let jobs = Stdlib.max 2 (Stdlib.min 4 (Domain.recommended_domain_count ())) in
  section "E14" "Continuous-time (Gillespie SSA) vs discrete parallel time (8-trial ensembles)";
  row "%-22s %-8s %-16s %-16s %-12s\n" "protocol" "pop" "SSA time (mean)"
    "discrete pt (mean)" "wall (s)";
  List.iter
    (fun (name, pops) ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        List.iter
          (fun pop ->
            let ssa =
              Ensemble.run_input ~jobs ~backend:(Ensemble.gillespie ()) ~seed:7
                ~trials:8 p [| pop |]
            in
            let disc =
              Ensemble.run_input ~jobs ~backend:(Ensemble.uniform ()) ~seed:7
                ~trials:8 p [| pop |]
            in
            let cont = Ensemble.parallel_times ssa in
            let dts = Ensemble.parallel_times disc in
            row "%-22s %-8d %-16.2f %-16.2f %-12.3f\n" name pop
              (if cont = [] then nan else Stats.mean cont)
              (if dts = [] then nan else Stats.mean dts)
              (ssa.Ensemble.wall +. disc.Ensemble.wall))
          pops)
    [ ("flock-succinct-4", [ 50; 100; 200 ]); ("threshold-binary-13", [ 50; 100; 200 ]) ]

(* ------------------------------------------------------------------ E15 *)

let e15 () =
  section "E15" "Section 4.1's f(n): min input reaching All_1, maximised over protocols";
  let print n r =
    row
      "n=%d: %d protocols, f(%d) = %d (apparent, cutoff 12); %d never reach All_1\n"
      n r.Section_4_1.num_protocols n r.Section_4_1.max_f
      r.Section_4_1.num_unreachable;
    List.iter
      (fun (i, c) -> row "   min accepting input %-3d %d protocols\n" i c)
      r.Section_4_1.histogram
  in
  print 1 (Section_4_1.scan ~n:1 ());
  print 2 (Section_4_1.scan ~n:2 ());
  row "n=3: exhaustive...\n%!";
  print 3 (Section_4_1.scan ~n:3 ());
  row "(leaderless f stays tiny — consistent with f(n) ∈ 2^O(n) [10]; the\n\
       non-elementary growth the paper cites needs leaders, out of enumeration reach)\n"

(* ------------------------------------------------------------------ E16 *)

(* The cost of the observability stack itself: the same scan bare, with
   the structured event log + sampling profiler (the low-overhead pair
   meant to stay on for long runs — the <5% acceptance number), and
   with the trace sink added on top (which writes one JSON line per
   span, so its cost scales with span count and dominates). Aggregates
   must be identical in every configuration — the instrumentation may
   not perturb results. Each configuration is timed twice and the
   minimum kept, squeezing scheduler noise out of the ratios. *)
let e16 () =
  section "E16"
    "Instrumentation overhead: scan bare vs --events + --profile vs + --trace";
  let time f =
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    (r, Obs.Clock.elapsed_s t0)
  in
  let best_of_2 f =
    let r, w1 = time f in
    let _, w2 = time f in
    (r, Float.min w1 w2)
  in
  let scan () = Busy_beaver.scan ~n:3 ~sample:(20_000, 11) () in
  let aggregates (r : Busy_beaver.scan_result) =
    ( r.Busy_beaver.num_protocols, r.Busy_beaver.num_threshold,
      r.Busy_beaver.num_reject_all, r.Busy_beaver.best_eta,
      r.Busy_beaver.histogram )
  in
  let r_bare, w_bare = best_of_2 scan in
  let events_f = Filename.temp_file "ppbench-e16" ".events.jsonl" in
  let trace_f = Filename.temp_file "ppbench-e16" ".trace.json" in
  let profile_f = Filename.temp_file "ppbench-e16" ".folded" in
  Obs.Events.start_file events_f;
  Obs.Profile.start ~path:profile_f ();
  let r_ep, w_ep = best_of_2 scan in
  Obs.Trace.start_file trace_f;
  let r_full, w_full = best_of_2 scan in
  ignore (Obs.Trace.stop ());
  Obs.Profile.stop ();
  Obs.Events.stop ();
  let lines path =
    In_channel.with_open_text path (fun ic ->
        let n = ref 0 in
        String.iter (fun c -> if c = '\n' then incr n) (In_channel.input_all ic);
        !n)
  in
  let overhead w = 100.0 *. ((w /. w_bare) -. 1.0) in
  row
    "n=3, 20k sample: bare %.2fs; --events --profile %.2fs (%+.1f%%); \
     + --trace %.2fs (%+.1f%%)\n"
    w_bare w_ep (overhead w_ep) w_full (overhead w_full);
  row "aggregates identical across all configurations: %b\n"
    (aggregates r_bare = aggregates r_ep
    && aggregates r_bare = aggregates r_full);
  row "recorded: %d event lines, %d trace lines, %d profile stacks (%d samples)\n"
    (lines events_f) (lines trace_f) (lines profile_f)
    (Obs.Profile.samples ());
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ events_f; trace_f; profile_f ]

(* ------------------------------------------------------------ ablations *)

let ablations () =
  section "ablations" "design-choice ablations (DESIGN.md §5)";

  row "\nA. Contejean–Devie scalar-product criterion (Hilbert basis search):\n";
  let time f =
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    (r, Obs.Clock.elapsed_s t0)
  in
  (* candidate counts come straight from the engine's own counter — the
     same cell hilbert_basis.ml publishes, re-registered here by name *)
  let c_cand = Obs.Metrics.counter "hilbert.candidates" in
  List.iter
    (fun name ->
      match Catalog.build name with
      | None -> ()
      | Some e ->
        let p = e.Catalog.build () in
        let sys = Potential.system p in
        let cand0 = Obs.Metrics.value c_cand in
        let with_c, t_with =
          time (fun () -> List.length (Hilbert_basis.solve_geq sys))
        in
        let cand_with = Obs.Metrics.value c_cand - cand0 in
        let cand1 = Obs.Metrics.value c_cand in
        let without, t_without =
          time (fun () ->
              match
                Hilbert_basis.solve_geq ~scalar_criterion:false
                  ~max_candidates:400_000 sys
              with
              | basis -> Printf.sprintf "%d elements" (List.length basis)
              | exception Obs.Budget.Exceeded _ ->
                "diverges (400k-candidate budget hit)")
        in
        let cand_without = Obs.Metrics.value c_cand - cand1 in
        row
          "  %-20s criterion on: %d elements %.3fs (%d candidates)   off: %s \
           %.3fs (%d candidates)\n"
          name with_c t_with cand_with without t_without cand_without)
    [ "flock-succinct-1"; "flock-succinct-2" ];

  row "\nB. Karatsuba multiplication threshold (Bignat):\n";
  let big = Bignat.factorial 4000 in
  let _, t_kara = time (fun () -> Bignat.mul big big) in
  let _, t_school = time (fun () -> Bignat.mul_schoolbook big big) in
  row "  4000! squared (%d bits): karatsuba %.4fs, schoolbook %.4fs (x%.1f)\n"
    (Bignat.bits big) t_kara t_school (t_school /. t_kara);

  row "\nC. Simulator quiet-window sensitivity (flock-succinct-4, pop 100):\n";
  let rng = Splitmix64.create 99 in
  List.iter
    (fun window ->
      let ts =
        Simulator.sample_parallel_times ~runs:10 ~quiet_window:window ~rng
          (Flock.succinct 4) [| 100 |]
      in
      row "  window %-6.0f convergence estimate: %s\n" window (Stats.summary ts))
    [ 4.0; 16.0; 64.0; 256.0 ];

  row "\nD. Certificate scale m (flock-succinct-2): larger m inflates the bound a:\n";
  List.iter
    (fun seed ->
      match Certificate.construct ~seed (Flock.succinct 2) with
      | Ok c ->
        row "  seed %-3d m = %-3d a = %-4d (valid: %b)\n" seed c.Certificate.m
          c.Certificate.a (Certificate.check c)
      | Error e -> row "  seed %-3d %s\n" seed e)
    [ 1; 7; 13 ]

(* ------------------------------------------------------- timing benches *)

(* ns/run estimates of the last [timings] run, for the --json report *)
let timing_results : (string * float) list ref = ref []

let timings () =
  section "timings" "bechamel micro-benchmarks";
  let open Bechamel in
  let sim_bench =
    Test.make ~name:"simulate flock-succinct-4 pop=100"
      (Staged.stage (fun () ->
           let rng = Splitmix64.create 5 in
           ignore (Simulator.run_input ~rng (Flock.succinct 4) [| 100 |])))
  in
  let eta_bench =
    Test.make ~name:"exact eta of threshold-binary-6"
      (Staged.stage (fun () -> ignore (Eta_search.find (Threshold.binary 6) ~max_input:10)))
  in
  let cover_bench =
    Test.make ~name:"stable sets of threshold-binary-11"
      (Staged.stage (fun () -> ignore (Stable_sets.analyse (Threshold.binary 11))))
  in
  let hilbert_bench =
    Test.make ~name:"Pottier basis of flock-succinct-3"
      (Staged.stage (fun () -> ignore (Potential.basis (Flock.succinct 3))))
  in
  let saturation_bench =
    Test.make ~name:"saturation witness of flock-succinct-4"
      (Staged.stage (fun () -> ignore (Saturation.find (Flock.succinct 4))))
  in
  let bignat_bench =
    Test.make ~name:"bignat: 2000! and a 64-limb divmod"
      (Staged.stage (fun () ->
           let f = Bignat.factorial 2000 in
           ignore (Bignat.divmod f (Bignat.pow (Bignat.of_int 997) 100))))
  in
  let tests =
    [ sim_bench; eta_bench; cover_bench; hilbert_bench; saturation_bench; bignat_bench ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raws ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raws
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] ->
            timing_results := (name, est) :: !timing_results;
            row "%-45s %12.1f ns/run\n" name est
          | _ -> row "%-45s (no estimate)\n" name)
        results)
    tests

(* ----------------------------------------------------------------- main *)

let experiments =
  [
    (* E7d forks worker processes, and OCaml 5 forbids Unix.fork in any
       process that has ever spawned a domain — so it must run before
       the domain-using sections (E4p, E5p, E7p, E8, ...). Keep it
       first here, and first on the command line of any explicit
       section list that includes it. *)
    ("E7d", e7d);
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E4p", e4p); ("E5", e5);
    ("E5p", e5p); ("E6", e6);
    ("E7", e7); ("E7p", e7p); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("ablations", ablations); ("timings", timings);
  ]

let () =
  let rec split_opt key acc = function
    | [] -> (None, List.rev acc)
    | x :: value :: rest when x = key -> (Some value, List.rev_append acc rest)
    | x :: rest -> split_opt key (x :: acc) rest
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let json_path, args = split_opt "--json" [] args in
  let history_dir, names = split_opt "--history" [] args in
  let requested = if names = [] then List.map fst experiments else names in
  let records = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        (* every section runs with engine counters recording, except the
           timings section, which must measure the instrumentation's
           disabled-by-default cost *)
        Obs.Metrics.set_enabled (name <> "timings");
        (* hermetic sections: zero every metric cell and the
           cross-section stable-set memo, so a section's diff — and
           with it the regression gate — does not depend on which
           sections ran before it. In particular the last-writer
           stable_sets.{basis,norm}*_size gauges appear in a section
           exactly when that section wrote them. *)
        Obs.Metrics.reset ();
        Stable_sets.memo_clear ();
        let before = Obs.Metrics.snapshot () in
        let t0 = Obs.Clock.now_ns () in
        f ();
        let wall = Obs.Clock.elapsed_s t0 in
        let counters = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
        Obs.Metrics.set_enabled false;
        records := (name, wall, counters) :: !records
      | None ->
        Printf.eprintf "unknown section %s (have: %s)\n" name
          (String.concat " " (List.map fst experiments)))
    requested;
  if json_path <> None || history_dir <> None then begin
    let run =
      {
        Obs.History.meta = Some (Obs.Run_meta.collect ());
        sections =
          List.rev_map
            (fun (id, wall_s, metrics) ->
              (id, { Obs.History.wall_s; metrics }))
            !records;
        timings = List.rev !timing_results;
      }
    in
    (match json_path with
     | None -> ()
     | Some path ->
       Out_channel.with_open_text path (fun oc ->
           Out_channel.output_string oc
             (Obs.Json.to_string (Obs.History.run_to_json run));
           Out_channel.output_char oc '\n');
       Printf.eprintf "wrote %s\n%!" path);
    match history_dir with
    | None -> ()
    | Some dir ->
      Obs.History.append ~dir run;
      Printf.eprintf "appended to %s\n%!" (Obs.History.ledger_file dir)
  end
