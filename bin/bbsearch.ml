(* bbsearch: enumerate (or sample) small deterministic leaderless
   protocols and report apparent busy-beaver values (Definition 1).

     bbsearch -n 2
     bbsearch -n 3 --jobs 4
     bbsearch -n 3 --sample 50000 --seed 9
     bbsearch -n 3 --workers 4 --checkpoint scan.ckpt        # fork workers
     bbsearch -n 3 --serve 7171 --checkpoint scan.ckpt       # TCP coordinator
     bbsearch --connect host:7171                            # TCP worker *)

let print_result n max_input print_best (r : Busy_beaver.scan_result) =
  Printf.printf
    "scanned %d protocols with %d states (space: %d)\n"
    r.Busy_beaver.num_protocols n
    (Busy_beaver.num_deterministic_protocols n);
  Printf.printf "threshold protocols: %d, reject-all: %d\n" r.Busy_beaver.num_threshold
    r.Busy_beaver.num_reject_all;
  if r.Busy_beaver.num_aborted > 0 then
    Printf.printf "verdict unknown (budget): %d\n" r.Busy_beaver.num_aborted;
  if r.Busy_beaver.task_errors > 0 then
    Printf.printf "chunk failures tolerated: %d\n" r.Busy_beaver.task_errors;
  Printf.printf "apparent BB(%d) = %d (inputs up to %d)\n" n r.Busy_beaver.best_eta
    max_input;
  List.iter
    (fun (eta, count) -> Printf.printf "  eta=%-4d %d protocols\n" eta count)
    r.Busy_beaver.histogram;
  match (print_best, r.Busy_beaver.best) with
  | true, Some p ->
    print_newline ();
    print_string (Protocol_syntax.to_string p)
  | _ -> ()

(* --connect mode: serve chunks for a remote coordinator; everything
   about the scan (including n) comes over the wire, local scan flags
   are ignored *)
(* the spec is logged on stderr and in the event log so a failing chaos
   run can be replayed exactly: same spec, same fault schedule *)
let log_chaos_net = function
  | None -> ()
  | Some spec ->
    let s = Dist.Chaos.spec_to_string spec in
    Printf.eprintf "bbsearch: chaos-net active: replay with --chaos-net %s\n%!" s;
    if Obs.Events.enabled () then
      Obs.Events.emit ~data:[ ("spec", Obs.Json.String s) ] "chaos.config"

let run_worker (host, port) chaos_kill chaos_net heartbeat_timeout =
  log_chaos_net chaos_net;
  (* the worker's own cadence tracks the coordinator's liveness window *)
  let heartbeat_every =
    Option.map (fun t -> Float.min 2.0 (t /. 4.0)) heartbeat_timeout
  in
  match
    Distributed_scan.connect_worker ?heartbeat_every ?chaos_kill ?chaos_net
      ~host ~port ()
  with
  | Ok () -> 0
  | Error e ->
    Printf.eprintf "bbsearch: worker: %s\n" e;
    1

let run n max_input sample seed jobs chunk schedule no_prune no_packed
    eta_budget checkpoint ckpt_chunks ckpt_secs resume on_error print_best
    workers serve connect chaos_kill chaos_worker chaos_net heartbeat_timeout
    () =
  match connect with
  | Some hp -> run_worker hp chaos_kill chaos_net heartbeat_timeout
  | None ->
  let sample = Option.map (fun count -> (count, seed)) sample in
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let distributed = workers > 0 || serve <> None in
  (* inside the graceful region a SIGINT/SIGTERM only sets the
     cancellation flag: the pool (or the coordinator loop) drains, the
     checkpoint flushes, and we exit below with the conventional
     128+signum code *)
  let r =
    try
      Obs.Shutdown.with_graceful (fun () ->
          if distributed then begin
            (* under `Guided the partition is shaped by the worker
               count; single-process --jobs plays no other role here *)
            let pjobs = if workers > 0 then workers else jobs in
            let plan =
              Busy_beaver.plan ?sample ~jobs:pjobs ~chunk ~schedule
                ~prune:(not no_prune) ~packed:(not no_packed)
                ?eta_budget_s:eta_budget ~max_input ~n ()
            in
            let serve_fd =
              Option.map (fun port -> Distributed_scan.listen ~port ()) serve
            in
            let chaos =
              Option.map (fun k -> (chaos_worker, k)) chaos_kill
            in
            log_chaos_net chaos_net;
            let o =
              Fun.protect
                ~finally:(fun () ->
                  match serve_fd with
                  | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
                  | None -> ())
                (fun () ->
                  Distributed_scan.coordinate ~workers ?serve:serve_fd
                    ?heartbeat_timeout ?checkpoint
                    ~checkpoint_every_chunks:ckpt_chunks
                    ~checkpoint_every_s:ckpt_secs ~resume ?chaos_kill:chaos
                    ?chaos_net ~plan ())
            in
            let s = o.Distributed_scan.stats in
            (* stderr, so the stdout report stays byte-identical to a
               single-process run; CI greps "workers seen, N lost", so
               new fields only ever append *)
            Printf.eprintf
              "bbsearch: distributed: %d workers seen, %d lost, %d chunks \
               scanned, %d reassigned, %d stale dropped, %d rejoined, %d \
               corrupt frames\n%!"
              s.Dist.Coordinator.workers_seen s.Dist.Coordinator.workers_lost
              s.Dist.Coordinator.chunks_done s.Dist.Coordinator.reassigned
              s.Dist.Coordinator.stale_dropped s.Dist.Coordinator.rejoins
              s.Dist.Coordinator.corrupt_frames;
            o.Distributed_scan.result
          end
          else
            Busy_beaver.scan ?sample ~jobs ~chunk ~schedule
              ~prune:(not no_prune) ~packed:(not no_packed)
              ?eta_budget_s:eta_budget ?checkpoint
              ~checkpoint_every_chunks:ckpt_chunks ~checkpoint_every_s:ckpt_secs
              ~resume ~on_task_error:on_error ~max_input ~n ())
    with
    | Obs.Checkpoint.Mismatch { path; diff } ->
      (* which flag changed, not just that two hashes differ *)
      prerr_endline (Obs.Checkpoint.mismatch_message ~path diff);
      exit 1
    | Invalid_argument msg ->
      prerr_endline msg;
      exit 1
  in
  if r.Busy_beaver.interrupted then begin
    (match (Obs.Shutdown.signal_name (), checkpoint) with
     | Some s, Some path ->
       Printf.eprintf
         "bbsearch: SIG%s after %d/%d chunks; checkpoint saved to %s (rerun \
          with --resume)\n"
         s r.Busy_beaver.completed_chunks r.Busy_beaver.total_chunks path
     | Some s, None ->
       Printf.eprintf
         "bbsearch: SIG%s after %d/%d chunks; no --checkpoint, progress \
          discarded\n"
         s r.Busy_beaver.completed_chunks r.Busy_beaver.total_chunks
     | None, _ ->
       Printf.eprintf "bbsearch: interrupted after %d/%d chunks\n"
         r.Busy_beaver.completed_chunks r.Busy_beaver.total_chunks);
    flush stderr;
    Obs.Shutdown.exit_if_requested ();
    (* interrupted by a non-signal cancellation: still no results *)
    exit 1
  end;
  print_result n max_input print_best r;
  0

open Cmdliner

let n_arg = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of states (1-4).")

let max_input_arg =
  Arg.(value & opt int 12 & info [ "max-input" ] ~doc:"Threshold certification cutoff.")

let sample_arg =
  Arg.(value & opt (some int) None & info [ "sample" ]
         ~doc:"Scan a uniform random sample instead of the full space.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Sampling seed.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ]
         ~doc:"Domains to shard the scan across (0 = one per recommended \
               core). Aggregates are byte-identical for any value; only \
               wall-clock varies.")

let chunk_arg =
  Arg.(value & opt int 1024 & info [ "chunk" ]
         ~doc:"Codes per scheduling chunk. Any value yields the same \
               result; smaller chunks balance better, larger ones have \
               less overhead.")

let schedule_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "fixed" -> Ok `Fixed
    | "guided" -> Ok `Guided
    | _ -> Error (`Msg "expected fixed or guided")
  in
  let print fmt (s : Pool.schedule) =
    Format.pp_print_string fmt
      (match s with `Fixed -> "fixed" | `Guided -> "guided")
  in
  Arg.conv (parse, print)

let schedule_arg =
  Arg.(value & opt schedule_conv `Fixed & info [ "schedule" ] ~docv:"KIND"
         ~doc:"Chunk size schedule: $(b,fixed) (every chunk --chunk codes, \
               the default) or $(b,guided) (sizes descend from --chunk to \
               1, cutting the straggler tail; the chunk partition — and so \
               the checkpoint fingerprint — then depends on the worker \
               count). Aggregates are byte-identical either way.")

let no_prune_arg =
  Arg.(value & flag & info [ "no-prune" ]
         ~doc:"Disable symmetry pruning (scan every code instead of one \
               canonical representative per state-relabelling orbit). \
               The aggregate result is identical either way.")

let no_packed_arg =
  Arg.(value & flag & info [ "no-packed" ]
         ~doc:"Use the reference multiset configuration graphs instead \
               of the packed-int fast path.")

let eta_budget_arg =
  Arg.(value & opt (some float) None & info [ "eta-budget" ] ~docv:"S"
         ~doc:"Wall-clock budget in seconds for verifying any single \
               protocol; over-budget protocols are counted as unknown \
               instead of aborting the scan. Machine-dependent — leave \
               off when byte-identical reruns matter.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Periodically snapshot completed chunks to $(docv) \
               (atomic tmp+rename), and flush a final snapshot on \
               SIGINT/SIGTERM or crash. In distributed mode this is the \
               shared ledger: it also records the live lease table and \
               the coordinator epoch.")

let ckpt_chunks_arg =
  Arg.(value & opt int 64 & info [ "checkpoint-every-chunks" ] ~docv:"N"
         ~doc:"Snapshot after every $(docv) completed chunks.")

let ckpt_secs_arg =
  Arg.(value & opt float 30.0 & info [ "checkpoint-every" ] ~docv:"S"
         ~doc:"Snapshot at least every $(docv) seconds.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume from the --checkpoint file if it exists: completed \
               chunks are skipped and the finished aggregate is \
               byte-identical to an uninterrupted run.")

let on_error_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "fail" -> Ok `Fail
    | "skip" -> Ok `Skip
    | s when String.length s > 6 && String.sub s 0 6 = "retry:" ->
      (match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
       | Some n when n >= 0 -> Ok (`Retry n)
       | _ -> Error (`Msg "retry:N requires a non-negative integer N"))
    | _ -> Error (`Msg "expected fail, skip or retry:N")
  in
  let print fmt (p : Pool.error_policy) =
    Format.pp_print_string fmt
      (match p with
       | `Fail -> "fail"
       | `Skip -> "skip"
       | `Retry n -> Printf.sprintf "retry:%d" n)
  in
  Arg.conv (parse, print)

let on_error_arg =
  Arg.(value & opt on_error_conv `Fail & info [ "on-error" ] ~docv:"POLICY"
         ~doc:"What to do when a chunk raises: $(b,fail) (cancel and \
               re-raise, the default), $(b,skip) (drop the chunk, keep \
               scanning) or $(b,retry:N) (re-run up to N times, then \
               skip).")

let best_arg =
  Arg.(value & flag & info [ "print-best" ] ~doc:"Print the best protocol found.")

let workers_arg =
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
         ~doc:"Distributed mode: fork $(docv) local worker processes and \
               coordinate them over socketpairs. A worker that dies (even \
               SIGKILL) has its leased chunks reassigned; the final report \
               is byte-identical to a single-process run.")

let serve_arg =
  Arg.(value & opt (some int) None & info [ "serve" ] ~docv:"PORT"
         ~doc:"Distributed mode: listen on 127.0.0.1:$(docv) and \
               coordinate workers that join with $(b,--connect). May be \
               combined with $(b,--workers).")

let host_port_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i ->
      let host = String.sub s 0 i in
      (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
       | Some port when port > 0 && host <> "" -> Ok (host, port)
       | _ -> Error (`Msg "expected HOST:PORT"))
    | None -> Error (`Msg "expected HOST:PORT")
  in
  let print fmt (h, p) = Format.fprintf fmt "%s:%d" h p in
  Arg.conv (parse, print)

let connect_arg =
  Arg.(value & opt (some host_port_conv) None & info [ "connect" ]
         ~docv:"HOST:PORT"
         ~doc:"Worker mode: join the coordinator at $(docv) and serve \
               chunks until it shuts the scan down. The entire scan \
               configuration comes from the coordinator; local scan flags \
               are ignored.")

(* fault-injection hooks for tests and CI — deliberately undocumented
   in the manpage *)
let chaos_kill_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-kill" ] ~docv:"K" ~docs:Manpage.s_none
           ~doc:"Kill one worker with SIGKILL after it completes $(docv) \
                 chunks (fault-injection test hook).")

let chaos_worker_arg =
  Arg.(value & opt int 0
       & info [ "chaos-worker" ] ~docv:"W" ~docs:Manpage.s_none
           ~doc:"Which forked worker index $(b,--chaos-kill) applies to.")

let chaos_net_conv =
  let parse s =
    match Dist.Chaos.parse_spec s with
    | Ok spec -> Ok spec
    | Error e -> Error (`Msg e)
  in
  let print fmt spec = Format.pp_print_string fmt (Dist.Chaos.spec_to_string spec) in
  Arg.conv (parse, print)

let chaos_net_arg =
  Arg.(value & opt (some chaos_net_conv) None
       & info [ "chaos-net" ] ~docv:"PROFILE[:SEED]" ~docs:Manpage.s_none
           ~doc:"Deterministic transport fault injection: drop, duplicate, \
                 delay, truncate and bit-flip frames per $(docv) \
                 (none|lossy|corrupt|wild, seed defaults to 1). The same \
                 spec replays the same fault schedule; the merged scan \
                 result stays byte-identical regardless.")

let heartbeat_timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "heartbeat-timeout" ] ~docv:"SECONDS"
           ~doc:"Distributed liveness window (default 10): a lease with no \
                 progress for $(docv) is reclaimed, and worker cadences \
                 (heartbeats, Welcome retries) scale down with it. Lower it \
                 to recover faster from injected faults; raise it on slow \
                 links.")

let cmd =
  Cmd.v (Cmd.info "bbsearch" ~doc:"Busy-beaver search over small protocols")
    Term.(
      const run $ n_arg $ max_input_arg $ sample_arg $ seed_arg $ jobs_arg
      $ chunk_arg $ schedule_arg $ no_prune_arg $ no_packed_arg
      $ eta_budget_arg $ checkpoint_arg $ ckpt_chunks_arg $ ckpt_secs_arg
      $ resume_arg $ on_error_arg $ best_arg $ workers_arg $ serve_arg
      $ connect_arg $ chaos_kill_arg $ chaos_worker_arg $ chaos_net_arg
      $ heartbeat_timeout_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
