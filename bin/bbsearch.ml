(* bbsearch: enumerate (or sample) small deterministic leaderless
   protocols and report apparent busy-beaver values (Definition 1).

     bbsearch -n 2
     bbsearch -n 3 --jobs 4
     bbsearch -n 3 --sample 50000 --seed 9 *)

let run n max_input sample seed jobs chunk no_prune no_packed eta_budget
    checkpoint ckpt_chunks ckpt_secs resume on_error print_best () =
  let sample = Option.map (fun count -> (count, seed)) sample in
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  (* inside the graceful region a SIGINT/SIGTERM only sets the
     cancellation flag: the pool drains, the checkpoint flushes, and we
     exit below with the conventional 128+signum code *)
  let r =
    try
      Obs.Shutdown.with_graceful (fun () ->
          Busy_beaver.scan ?sample ~jobs ~chunk ~prune:(not no_prune)
            ~packed:(not no_packed) ?eta_budget_s:eta_budget ?checkpoint
            ~checkpoint_every_chunks:ckpt_chunks ~checkpoint_every_s:ckpt_secs
            ~resume ~on_task_error:on_error ~max_input ~n ())
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 1
  in
  if r.Busy_beaver.interrupted then begin
    (match (Obs.Shutdown.signal_name (), checkpoint) with
     | Some s, Some path ->
       Printf.eprintf
         "bbsearch: SIG%s after %d/%d chunks; checkpoint saved to %s (rerun \
          with --resume)\n"
         s r.Busy_beaver.completed_chunks r.Busy_beaver.total_chunks path
     | Some s, None ->
       Printf.eprintf
         "bbsearch: SIG%s after %d/%d chunks; no --checkpoint, progress \
          discarded\n"
         s r.Busy_beaver.completed_chunks r.Busy_beaver.total_chunks
     | None, _ ->
       Printf.eprintf "bbsearch: interrupted after %d/%d chunks\n"
         r.Busy_beaver.completed_chunks r.Busy_beaver.total_chunks);
    flush stderr;
    Obs.Shutdown.exit_if_requested ();
    (* interrupted by a non-signal cancellation: still no results *)
    exit 1
  end;
  Printf.printf
    "scanned %d protocols with %d states (space: %d)\n"
    r.Busy_beaver.num_protocols n
    (Busy_beaver.num_deterministic_protocols n);
  Printf.printf "threshold protocols: %d, reject-all: %d\n" r.Busy_beaver.num_threshold
    r.Busy_beaver.num_reject_all;
  if r.Busy_beaver.num_aborted > 0 then
    Printf.printf "verdict unknown (budget): %d\n" r.Busy_beaver.num_aborted;
  if r.Busy_beaver.task_errors > 0 then
    Printf.printf "chunk failures tolerated: %d\n" r.Busy_beaver.task_errors;
  Printf.printf "apparent BB(%d) = %d (inputs up to %d)\n" n r.Busy_beaver.best_eta
    max_input;
  List.iter
    (fun (eta, count) -> Printf.printf "  eta=%-4d %d protocols\n" eta count)
    r.Busy_beaver.histogram;
  (match (print_best, r.Busy_beaver.best) with
   | true, Some p ->
     print_newline ();
     print_string (Protocol_syntax.to_string p)
   | _ -> ());
  0

open Cmdliner

let n_arg = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of states (1-4).")

let max_input_arg =
  Arg.(value & opt int 12 & info [ "max-input" ] ~doc:"Threshold certification cutoff.")

let sample_arg =
  Arg.(value & opt (some int) None & info [ "sample" ]
         ~doc:"Scan a uniform random sample instead of the full space.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Sampling seed.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ]
         ~doc:"Domains to shard the scan across (0 = one per recommended \
               core). Aggregates are byte-identical for any value; only \
               wall-clock varies.")

let chunk_arg =
  Arg.(value & opt int 1024 & info [ "chunk" ]
         ~doc:"Codes per scheduling chunk. Any value yields the same \
               result; smaller chunks balance better, larger ones have \
               less overhead.")

let no_prune_arg =
  Arg.(value & flag & info [ "no-prune" ]
         ~doc:"Disable symmetry pruning (scan every code instead of one \
               canonical representative per state-relabelling orbit). \
               The aggregate result is identical either way.")

let no_packed_arg =
  Arg.(value & flag & info [ "no-packed" ]
         ~doc:"Use the reference multiset configuration graphs instead \
               of the packed-int fast path.")

let eta_budget_arg =
  Arg.(value & opt (some float) None & info [ "eta-budget" ] ~docv:"S"
         ~doc:"Wall-clock budget in seconds for verifying any single \
               protocol; over-budget protocols are counted as unknown \
               instead of aborting the scan. Machine-dependent — leave \
               off when byte-identical reruns matter.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Periodically snapshot completed chunks to $(docv) \
               (atomic tmp+rename), and flush a final snapshot on \
               SIGINT/SIGTERM or crash.")

let ckpt_chunks_arg =
  Arg.(value & opt int 64 & info [ "checkpoint-every-chunks" ] ~docv:"N"
         ~doc:"Snapshot after every $(docv) completed chunks.")

let ckpt_secs_arg =
  Arg.(value & opt float 30.0 & info [ "checkpoint-every" ] ~docv:"S"
         ~doc:"Snapshot at least every $(docv) seconds.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume from the --checkpoint file if it exists: completed \
               chunks are skipped and the finished aggregate is \
               byte-identical to an uninterrupted run.")

let on_error_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "fail" -> Ok `Fail
    | "skip" -> Ok `Skip
    | s when String.length s > 6 && String.sub s 0 6 = "retry:" ->
      (match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
       | Some n when n >= 0 -> Ok (`Retry n)
       | _ -> Error (`Msg "retry:N requires a non-negative integer N"))
    | _ -> Error (`Msg "expected fail, skip or retry:N")
  in
  let print fmt (p : Pool.error_policy) =
    Format.pp_print_string fmt
      (match p with
       | `Fail -> "fail"
       | `Skip -> "skip"
       | `Retry n -> Printf.sprintf "retry:%d" n)
  in
  Arg.conv (parse, print)

let on_error_arg =
  Arg.(value & opt on_error_conv `Fail & info [ "on-error" ] ~docv:"POLICY"
         ~doc:"What to do when a chunk raises: $(b,fail) (cancel and \
               re-raise, the default), $(b,skip) (drop the chunk, keep \
               scanning) or $(b,retry:N) (re-run up to N times, then \
               skip).")

let best_arg =
  Arg.(value & flag & info [ "print-best" ] ~doc:"Print the best protocol found.")

let cmd =
  Cmd.v (Cmd.info "bbsearch" ~doc:"Busy-beaver search over small protocols")
    Term.(
      const run $ n_arg $ max_input_arg $ sample_arg $ seed_arg $ jobs_arg
      $ chunk_arg $ no_prune_arg $ no_packed_arg $ eta_budget_arg
      $ checkpoint_arg $ ckpt_chunks_arg $ ckpt_secs_arg $ resume_arg
      $ on_error_arg $ best_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
