(* bbsearch: enumerate (or sample) small deterministic leaderless
   protocols and report apparent busy-beaver values (Definition 1).

     bbsearch -n 2
     bbsearch -n 3 --jobs 4
     bbsearch -n 3 --sample 50000 --seed 9 *)

let run n max_input sample seed jobs chunk no_prune no_packed print_best () =
  let sample = Option.map (fun count -> (count, seed)) sample in
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let r =
    try
      Busy_beaver.scan ?sample ~jobs ~chunk ~prune:(not no_prune)
        ~packed:(not no_packed) ~max_input ~n ()
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 1
  in
  Printf.printf
    "scanned %d protocols with %d states (space: %d)\n"
    r.Busy_beaver.num_protocols n
    (Busy_beaver.num_deterministic_protocols n);
  Printf.printf "threshold protocols: %d, reject-all: %d\n" r.Busy_beaver.num_threshold
    r.Busy_beaver.num_reject_all;
  Printf.printf "apparent BB(%d) = %d (inputs up to %d)\n" n r.Busy_beaver.best_eta
    max_input;
  List.iter
    (fun (eta, count) -> Printf.printf "  eta=%-4d %d protocols\n" eta count)
    r.Busy_beaver.histogram;
  (match (print_best, r.Busy_beaver.best) with
   | true, Some p ->
     print_newline ();
     print_string (Protocol_syntax.to_string p)
   | _ -> ());
  0

open Cmdliner

let n_arg = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of states (1-4).")

let max_input_arg =
  Arg.(value & opt int 12 & info [ "max-input" ] ~doc:"Threshold certification cutoff.")

let sample_arg =
  Arg.(value & opt (some int) None & info [ "sample" ]
         ~doc:"Scan a uniform random sample instead of the full space.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Sampling seed.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ]
         ~doc:"Domains to shard the scan across (0 = one per recommended \
               core). Aggregates are byte-identical for any value; only \
               wall-clock varies.")

let chunk_arg =
  Arg.(value & opt int 1024 & info [ "chunk" ]
         ~doc:"Codes per scheduling chunk. Any value yields the same \
               result; smaller chunks balance better, larger ones have \
               less overhead.")

let no_prune_arg =
  Arg.(value & flag & info [ "no-prune" ]
         ~doc:"Disable symmetry pruning (scan every code instead of one \
               canonical representative per state-relabelling orbit). \
               The aggregate result is identical either way.")

let no_packed_arg =
  Arg.(value & flag & info [ "no-packed" ]
         ~doc:"Use the reference multiset configuration graphs instead \
               of the packed-int fast path.")

let best_arg =
  Arg.(value & flag & info [ "print-best" ] ~doc:"Print the best protocol found.")

let cmd =
  Cmd.v (Cmd.info "bbsearch" ~doc:"Busy-beaver search over small protocols")
    Term.(
      const run $ n_arg $ max_input_arg $ sample_arg $ seed_arg $ jobs_arg
      $ chunk_arg $ no_prune_arg $ no_packed_arg $ best_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
