(* ppanalyse: run the paper's Section 3-5 machinery on a protocol —
   stable-set bases, saturation witness, Pottier basis, pumping witness
   and the full Lemma 5.2 certificate.

     ppanalyse --protocol flock-succinct-2
     ppanalyse --file my.pp --max-input 14 *)

let load ~name ~file =
  match (name, file) with
  | Some n, None ->
    (match Catalog.build n with
     | Some e -> Ok (e.Catalog.build ())
     | None ->
       Error (Printf.sprintf "unknown protocol %S (expected: %s)" n Catalog.names_help))
  | None, Some f -> Protocol_syntax.parse_file f
  | _ -> Error "exactly one of --protocol and --file is required"

let run name file max_input jobs () =
  match load ~name ~file with
  | Error e ->
    prerr_endline e;
    1
  | Ok p ->
    let names = p.Population.states in
    Format.printf "%a@." Population.pp p;

    Format.printf "@.-- stable sets (Definition 2, Lemma 3.2) --@.";
    let analysis = Stable_sets.analyse ~jobs p in
    Format.printf "%a@." Stable_sets.pp_summary analysis;
    Format.printf "SC_0 = %a@." (Downset.pp ~names) analysis.Stable_sets.stable0;
    Format.printf "SC_1 = %a@." (Downset.pp ~names) analysis.Stable_sets.stable1;

    Format.printf "@.-- parametric coverability (Karp–Miller clover over all inputs) --@.";
    (match Karp_miller.clover_parametric ~max_nodes:200_000 p with
     | vectors ->
       List.iter
         (fun v -> Format.printf "  %a@." (Omega_vec.pp ~names) v)
         vectors
     | exception Obs.Budget.Exceeded info ->
       Format.printf "  incomplete: %s@." (Obs.Budget.describe info);
       (match info.Obs.Budget.partial with
        | Karp_miller.Partial_clover vectors ->
          Format.printf "  partial clover (under-approximation, %d vectors):@."
            (List.length vectors);
          List.iter
            (fun v -> Format.printf "  %a@." (Omega_vec.pp ~names) v)
            vectors
        | _ -> ()));

    if Population.is_leaderless p && Array.length p.Population.input_vars = 1
    then begin
      Format.printf "@.-- saturation (Lemma 5.4) --@.";
      (match Saturation.find p with
       | Ok w ->
         Format.printf "input 3^%d = %d reaches %a via %d transitions (valid: %b)@."
           w.Saturation.levels w.Saturation.input (Mset.pp ~names)
           w.Saturation.result
           (List.length w.Saturation.sigma)
           (Saturation.check w)
       | Error msg -> Format.printf "saturation: %s@." msg);

      Format.printf "@.-- potentially realisable multisets (Cor. 5.7) --@.";
      let basis = Potential.basis ~jobs p in
      Format.printf "Pottier basis: %d elements; Corollary 5.7 bounds hold: %b@."
        (List.length basis)
        (Potential.check_corollary_5_7 p basis);

      Format.printf "@.-- Lemma 5.2 certificate --@.";
      match Certificate.construct p with
      | Ok cert ->
        Format.printf "%a@.validates: %b@." Certificate.pp cert (Certificate.check cert)
      | Error msg -> Format.printf "certificate: %s@." msg
    end;

    if Array.length p.Population.input_vars = 1 then begin
      Format.printf "@.-- pumping witness (Section 4) --@.";
      (match Pumping.find_witness p ~max_input with
       | Ok w -> Format.printf "%a@.validates: %b@." Pumping.pp w (Pumping.check w)
       | Error msg -> Format.printf "pumping: %s@." msg);

      Format.printf "@.-- exact threshold --@.";
      match Eta_search.find p ~max_input with
      | r -> Format.printf "%a@." Eta_search.pp_result r
    end;
    0

open Cmdliner

let name_arg =
  Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"NAME"
         ~doc:("Catalog protocol name: " ^ Catalog.names_help))

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Protocol description file.")

let max_input_arg =
  Arg.(value & opt int 12 & info [ "max-input" ] ~doc:"Search cutoff.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the stable-set fixpoints and the Pottier \
               basis completion. Results are identical for any value.")

let cmd =
  Cmd.v
    (Cmd.info "ppanalyse" ~doc:"State-complexity analysis of a population protocol")
    Term.(const run $ name_arg $ file_arg $ max_input_arg $ jobs_arg
          $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
