(* ppbounds: print the paper's constants for a range of state counts.

     ppbounds --max 8 *)

let run max_n () =
  Printf.printf "%-4s %-14s %-18s %-24s %-24s\n" "n" "3^n" "xi (deterministic)"
    "log2 beta = 2(2n+1)!+1" "Theorem 5.9: 2^((2n+2)!)";
  for n = 1 to max_n do
    let lg_beta = Factorial_bounds.beta_log2 n in
    Printf.printf "%-4d %-14s %-18s %-24s %-24s\n" n
      (Bignat.to_string (Factorial_bounds.three_pow n))
      (Bignat.to_string (Factorial_bounds.xi_deterministic ~num_states:n))
      (if Bignat.bits lg_beta <= 48 then Bignat.to_string lg_beta
       else Printf.sprintf "~2^%d" (Bignat.log2_floor lg_beta))
      (Magnitude.to_string (Factorial_bounds.theorem_5_9_simple n))
  done;
  Printf.printf "\nRackoff-style covering-length bounds (log2), weight 2:\n";
  for n = 1 to max_n do
    let lg = Rackoff.log2_bound ~dim:n ~weight:2 in
    Printf.printf "  dim %d: log2 length <= %s\n" n (Bignat.to_string lg)
  done;
  0

open Cmdliner

let max_arg = Arg.(value & opt int 8 & info [ "max" ] ~doc:"Largest state count.")

let cmd =
  Cmd.v (Cmd.info "ppbounds" ~doc:"Print the paper's explicit constants")
    Term.(const run $ max_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
