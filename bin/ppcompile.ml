(* ppcompile: compile a Presburger formula into a population protocol.

     ppcompile "x0 + 2*x1 >= 5"
     ppcompile "x0 - x1 >= 1 && x0 + x1 >= 4" -o conj.pp --verify 5 *)

let run formula out verify () =
  match Predicate_parser.parse formula with
  | Error e ->
    Printf.eprintf "parse error: %s\n" e;
    1
  | Ok pred ->
    (match Compile.compile pred with
     | Error e ->
       Printf.eprintf "compile error: %s\n" e;
       1
     | Ok p ->
       Format.printf "%a@.compiled to %d states, %d transitions@." Predicate.pp
         pred (Population.num_states p)
         (Population.num_transitions p);
       (match out with
        | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Protocol_syntax.to_string p));
          Format.printf "wrote %s@." path
        | None -> print_string (Protocol_syntax.to_string p));
       (match verify with
        | None -> 0
        | Some max ->
          let arity = Array.length p.Population.input_vars in
          let rec grids k =
            if k = 0 then [ [] ]
            else
              List.concat_map
                (fun rest -> List.init (max + 1) (fun v -> v :: rest))
                (grids (k - 1))
          in
          let inputs =
            List.filter_map
              (fun l ->
                let v = Array.of_list l in
                if Array.fold_left ( + ) 0 v >= 2 then Some v else None)
              (grids arity)
          in
          (match
             Fair_semantics.check_predicate ~max_configs:400_000 p pred ~inputs
           with
          | Fair_semantics.Ok_all n ->
            Format.printf "verified exactly on %d inputs (coordinates <= %d)@." n max;
            0
          | Fair_semantics.Mismatch (v, verdict, expected) ->
            Format.printf "MISMATCH at %s: %a (expected %b)@."
              (String.concat "," (List.map string_of_int (Array.to_list v)))
              Fair_semantics.pp_verdict verdict expected;
            1
          | exception Configgraph.Too_many_configs _ ->
            Format.printf "state space too large to verify at this bound@.";
            1)))

open Cmdliner

let formula_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA"
         ~doc:"e.g. \"x0 + 2*x1 >= 5 && !(x0 == 0 mod 2)\"")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the protocol file here instead of stdout.")

let verify_arg =
  Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"MAX"
         ~doc:"Exactly verify the compiled protocol on all inputs with \
               coordinates up to MAX.")

let cmd =
  Cmd.v
    (Cmd.info "ppcompile" ~doc:"Compile Presburger formulas to population protocols")
    Term.(const run $ formula_arg $ out_arg $ verify_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
