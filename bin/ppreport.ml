(* ppreport: the run-history, regression and trace-analytics toolkit
   over the JSON the bench harness and the obs layer emit (ppbench/v1
   and /v2, Chrome trace-event files).

     ppreport diff BENCH_results.json bench-new.json
     ppreport history --ledger bench/history --markdown
     ppreport check --baseline BENCH_results.json bench-new.json
     ppreport check --history-median bench/history --sections E2,E10 new.json
     ppreport trace bb-trace.json --json trace-report.json *)

let load_run path =
  match Obs.History.load_file path with
  | Ok run -> run
  | Error e ->
    Printf.eprintf "ppreport: cannot load %s: %s\n" path e;
    exit 2

let restrict sections (run : Obs.History.run) =
  match sections with
  | None -> run
  | Some wanted ->
    {
      run with
      Obs.History.sections =
        List.filter (fun (id, _) -> List.mem id wanted) run.Obs.History.sections;
    }

(* ---------------------------------------------------------------- diff *)

let diff_run sections old_path new_path () =
  let baseline = restrict sections (load_run old_path) in
  let candidate = restrict sections (load_run new_path) in
  print_string (Obs.Regress.render_diff ~baseline ~candidate);
  0

(* ------------------------------------------------------------- history *)

let warn_skipped ledger skipped =
  if skipped > 0 then
    Printf.eprintf
      "ppreport: warning: skipped %d malformed line%s in %s (crash-truncated \
       appends?)\n"
      skipped
      (if skipped = 1 then "" else "s")
      (Obs.History.ledger_file ledger)

let history_run ledger markdown sections () =
  match Obs.History.load_ledger ledger with
  | Error e ->
    Printf.eprintf "ppreport: cannot load ledger %s: %s\n"
      (Obs.History.ledger_file ledger) e;
    2
  | Ok ([], skipped) ->
    warn_skipped ledger skipped;
    Printf.eprintf "ppreport: ledger %s is empty\n"
      (Obs.History.ledger_file ledger);
    2
  | Ok (runs, skipped) ->
    warn_skipped ledger skipped;
    print_string (Obs.History.render_history ~markdown ?sections runs);
    0

(* --------------------------------------------------------------- check *)

let check_run baseline_path ledger wall_tol gauge_tol ignores no_default_ignores
    sections candidate_path () =
  let baseline =
    match (baseline_path, ledger) with
    | Some path, None -> load_run path
    | None, Some dir ->
      (match Obs.History.load_ledger dir with
       | Error e ->
         Printf.eprintf "ppreport: cannot load ledger %s: %s\n"
           (Obs.History.ledger_file dir) e;
         exit 2
       | Ok (runs, skipped) ->
         warn_skipped dir skipped;
         (match Obs.History.median_run runs with
          | Ok run -> run
          | Error e ->
            Printf.eprintf "ppreport: %s\n" e;
            exit 2))
    | _ ->
      Printf.eprintf
        "ppreport: check needs exactly one of --baseline FILE or \
         --history-median DIR\n";
      exit 2
  in
  let candidate = load_run candidate_path in
  let default = Obs.Regress.default_config in
  let config =
    {
      Obs.Regress.wall_tol =
        { default.Obs.Regress.wall_tol with rel = wall_tol };
      gauge_tol = { default.Obs.Regress.gauge_tol with rel = gauge_tol };
      ignore_prefixes =
        (if no_default_ignores then ignores
         else Obs.Regress.default_ignore_prefixes @ ignores);
      ignore_infixes =
        (if no_default_ignores then [] else Obs.Regress.default_ignore_infixes);
      sections;
    }
  in
  let verdict = Obs.Regress.check ~config ~baseline ~candidate () in
  print_string (Obs.Regress.render_verdict verdict);
  if Obs.Regress.failed verdict then 1 else 0

(* --------------------------------------------------------------- trace *)

let trace_run trace_path json_out () =
  match Obs.Trace_stats.load trace_path with
  | Error e ->
    Printf.eprintf "ppreport: cannot analyse %s: %s\n" trace_path e;
    2
  | Ok report ->
    print_string (Obs.Trace_stats.to_markdown report);
    (match json_out with
     | None -> ()
     | Some path ->
       Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc
             (Obs.Json.to_string (Obs.Trace_stats.to_json report));
           Out_channel.output_char oc '\n'));
    0

(* --------------------------------------------------------------- fleet *)

let fleet_run events_path json_out () =
  match Obs.Fleet_stats.load events_path with
  | Error e ->
    Printf.eprintf "ppreport: cannot analyse %s: %s\n" events_path e;
    2
  | Ok report ->
    print_string (Obs.Fleet_stats.to_markdown report);
    (match json_out with
     | None -> ()
     | Some path ->
       Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc
             (Obs.Json.to_string (Obs.Fleet_stats.to_json report));
           Out_channel.output_char oc '\n'));
    0

(* ----------------------------------------------------------------- CLI *)

open Cmdliner

let sections_arg =
  Arg.(value
       & opt (some (list ~sep:',' string)) None
       & info [ "sections" ] ~docv:"A,B,..."
           ~doc:"Restrict to these experiment sections (comma-separated).")

let diff_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Show every wall-clock, counter, gauge and histogram drift \
             between two bench runs (no tolerances; informational).")
    Term.(const diff_run $ sections_arg $ old_arg $ new_arg $ Obs_cli.term)

let history_cmd =
  let ledger_arg =
    Arg.(value & opt string "bench/history"
         & info [ "ledger" ] ~docv:"DIR"
             ~doc:"Ledger directory holding runs.jsonl.")
  in
  let markdown_arg =
    Arg.(value & flag
         & info [ "markdown" ]
             ~doc:"Emit a markdown table (for EXPERIMENTS.md) instead of the \
                   plain-text series view.")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Per-section wall-clock and counter series across the ledger, \
             with sparklines; drifting counters are called out.")
    Term.(const history_run $ ledger_arg $ markdown_arg $ sections_arg
          $ Obs_cli.term)

let check_cmd =
  let baseline_arg =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Baseline bench JSON to gate against.")
  in
  let ledger_arg =
    Arg.(value & opt (some string) None
         & info [ "history-median" ] ~docv:"DIR"
             ~doc:"Gate against the per-metric median of the ledger in $(docv) \
                   instead of a single baseline file.")
  in
  let wall_tol_arg =
    Arg.(value & opt float Obs.Regress.default_config.Obs.Regress.wall_tol.Obs.Regress.rel
         & info [ "wall-tol" ] ~docv:"REL"
             ~doc:"Relative tolerance for wall-clock, timings and *_s gauges \
                   (|a-b| <= REL*max(|a|,|b|) + abs slack).")
  in
  let gauge_tol_arg =
    Arg.(value & opt float Obs.Regress.default_config.Obs.Regress.gauge_tol.Obs.Regress.rel
         & info [ "gauge-tol" ] ~docv:"REL"
             ~doc:"Relative tolerance for other gauges and histogram sums.")
  in
  let ignore_arg =
    Arg.(value & opt_all string []
         & info [ "ignore" ] ~docv:"PREFIX"
             ~doc:"Skip metrics whose name starts with $(docv) (repeatable; \
                   adds to the defaults gc., process. and the per-domain \
                   cells).")
  in
  let no_default_ignores_arg =
    Arg.(value & flag
         & info [ "no-default-ignores" ]
             ~doc:"Also gate the environment-shaped metrics skipped by \
                   default (gc.*, process.*, *.domainN.*).")
  in
  let candidate_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CANDIDATE")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Regression gate: deterministic counters must match the baseline \
             exactly; wall-clock and gauges get the tolerance noise model. \
             Exits 1 on regression, naming the section and metric.")
    Term.(const check_run $ baseline_arg $ ledger_arg $ wall_tol_arg
          $ gauge_tol_arg $ ignore_arg $ no_default_ignores_arg $ sections_arg
          $ candidate_arg $ Obs_cli.term)

let trace_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the machine-readable report \
                   (pptrace-report/v1) to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Analyse a recorded --trace file: per-phase self/total time, \
             per-domain utilization timelines, the critical path through \
             the span forest, and pool chunk straggler detection. Markdown \
             on stdout; --json FILE for the archivable form.")
    Term.(const trace_run $ trace_arg $ json_arg $ Obs_cli.term)

let fleet_cmd =
  let events_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENTS"
         ~doc:"Merged ppevents JSONL written by a telemetry-on coordinator.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the machine-readable report \
                   (ppfleet-report/v1) to $(docv).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Analyse a merged fleet events log: per-worker utilization \
             timelines, grant-to-completion lease latency distributions, \
             chunk-normalised straggler detection over forwarded \
             worker.chunk records, and the join/loss/reassignment \
             chronology. Markdown on stdout; --json FILE for the \
             archivable form.")
    Term.(const fleet_run $ events_arg $ json_arg $ Obs_cli.term)

let cmd =
  Cmd.group
    (Cmd.info "ppreport"
       ~doc:"Run ledger, diffing, regression gating, trace and fleet \
             analytics for the bench harness and the obs layer")
    [ diff_cmd; history_cmd; check_cmd; trace_cmd; fleet_cmd ]

let () = exit (Cmd.eval' cmd)
