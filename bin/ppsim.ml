(* ppsim: simulate a population protocol, batching independent trials
   through the multicore Monte-Carlo ensemble engine.

     ppsim --protocol flock-succinct-3 --input 20 --trials 200 --jobs 4 --seed 7
     ppsim --file my_protocol.pp --input 10,3 --backend gillespie

   The aggregate summary on stdout is byte-identical for any --jobs
   value (trial i always runs on the i-th split of the seed); only the
   wall-clock line on stderr varies. *)

let load ~name ~file =
  match (name, file) with
  | Some n, None ->
    (match Catalog.build n with
     | Some e -> Ok (e.Catalog.build ())
     | None ->
       Error (Printf.sprintf "unknown protocol %S (expected: %s)" n Catalog.names_help))
  | None, Some f -> Protocol_syntax.parse_file f
  | _ -> Error "exactly one of --protocol and --file is required"

let parse_input p s =
  let parts = String.split_on_char ',' s in
  match List.map int_of_string_opt parts with
  | ints when List.for_all Option.is_some ints ->
    let v = Array.of_list (List.map Option.get ints) in
    if Array.length v = Array.length p.Population.input_vars then Ok v
    else
      Error
        (Printf.sprintf "protocol expects %d input variables"
           (Array.length p.Population.input_vars))
  | _ -> Error "inputs must be comma-separated integers"

let parse_backend name max_steps quiet rate =
  match name with
  | "uniform" -> Ok (Ensemble.uniform ~max_steps ~quiet_window:quiet ())
  | "gillespie" -> Ok (Ensemble.gillespie ~max_steps ~quiet_time:quiet ~rate ())
  | s -> Error (Printf.sprintf "unknown backend %S (expected: uniform, gillespie)" s)

let run name file input trials jobs backend_name seed max_steps quiet rate verbose () =
  match load ~name ~file with
  | Error e ->
    prerr_endline e;
    1
  | Ok p ->
    (match parse_input p input with
     | Error e ->
       prerr_endline e;
       1
     | Ok v ->
       (match parse_backend backend_name max_steps quiet rate with
        | Error e ->
          prerr_endline e;
          1
        | Ok backend ->
          if verbose then Format.printf "%a@." Population.pp p;
          let e = Ensemble.run_input ~jobs ~backend ~seed ~trials p v in
          if trials <= 20 || verbose then
            Array.iter
              (fun t ->
                Format.printf "trial %d: output=%s steps=%d parallel-time=%.2f %s@."
                  t.Ensemble.index
                  (match t.Ensemble.output with
                   | Some b -> string_of_int (Bool.to_int b)
                   | None -> "undefined")
                  t.Ensemble.steps t.Ensemble.parallel_time
                  (if t.Ensemble.converged then "" else "(step budget exhausted)"))
              e.Ensemble.trials;
          print_string (Ensemble.summary e);
          Printf.eprintf "wall-clock %.3fs on %d domain%s\n%!" e.Ensemble.wall
            e.Ensemble.jobs
            (if e.Ensemble.jobs = 1 then "" else "s");
          0))

open Cmdliner

let name_arg =
  Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"NAME"
         ~doc:("Catalog protocol name: " ^ Catalog.names_help))

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Protocol description file (see Protocol_syntax).")

let input_arg =
  Arg.(value & opt string "10" & info [ "i"; "input" ] ~docv:"INTS"
         ~doc:"Comma-separated input counts, one per input variable.")

let trials_arg =
  Arg.(value & opt int 3 & info [ "n"; "trials"; "r"; "runs" ]
         ~doc:"Independent trials in the ensemble.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ]
         ~doc:"Domains to fan the trials across. The aggregate summary \
               is byte-identical for any value; only wall-clock varies.")

let backend_arg =
  Arg.(value & opt string "uniform" & info [ "b"; "backend" ] ~docv:"NAME"
         ~doc:"Simulation backend: uniform (discrete scheduler) or \
               gillespie (continuous-time SSA).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let steps_arg =
  Arg.(value & opt int 50_000_000 & info [ "max-steps" ] ~doc:"Interaction budget.")

let quiet_arg =
  Arg.(value & opt float 64.0 & info [ "quiet-window" ]
         ~doc:"Parallel time without an output change before declaring convergence.")

let rate_arg =
  Arg.(value & opt float 1.0 & info [ "rate" ]
         ~doc:"Reaction rate constant (gillespie backend only).")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the protocol.")

let cmd =
  Cmd.v
    (Cmd.info "ppsim" ~doc:"Simulate a population protocol")
    Term.(
      const run $ name_arg $ file_arg $ input_arg $ trials_arg $ jobs_arg
      $ backend_arg $ seed_arg $ steps_arg $ quiet_arg $ rate_arg $ verbose_arg
      $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
