(* pptop: a live terminal dashboard over the atomic ppmetrics/v1
   export that --metrics-out writes. Point it at the same FILE while a
   scan runs:

     bbsearch -n 4 --metrics-out /tmp/bb.json --metrics-every 1 &
     pptop /tmp/bb.json

   Every refresh re-reads the snapshot (the tmp+rename export means a
   read never sees a torn file), computes counter rates from the
   previous snapshot and appends to in-memory series rendered as
   sparklines. --once prints a single frame without ANSI control
   sequences (CI, scripting). *)

let hist_len = 48

type sample = { elapsed_s : float; snap : Obs.Metrics.snapshot }

let read_snapshot path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Obs.Json.parse contents with
     | Error e -> Error e
     | Ok (Obs.Json.Obj fields) ->
       let number = function
         | Some (Obs.Json.Float f) -> f
         | Some (Obs.Json.Int i) -> float_of_int i
         | _ -> 0.0
       in
       let elapsed_s = number (List.assoc_opt "elapsed_s" fields) in
       let meta =
         Option.bind
           (List.assoc_opt "meta" fields)
           (fun j -> Result.to_option (Obs.Run_meta.of_json j))
       in
       (match List.assoc_opt "metrics" fields with
        | Some m ->
          (match Obs.Metrics.of_json_value m with
           | Ok snap -> Ok (meta, { elapsed_s; snap })
           | Error e -> Error e)
        | None -> Error "no \"metrics\" field (is this a ppmetrics/v1 file?)")
     | Ok _ -> Error "not a JSON object (is this a ppmetrics/v1 file?)")

(* per-metric series of recent values (gauges) or rates (counters),
   oldest first, capped at [hist_len] *)
let series : (string, float list) Hashtbl.t = Hashtbl.create 64

let push name v =
  let old = Option.value ~default:[] (Hashtbl.find_opt series name) in
  let l = old @ [ v ] in
  let n = List.length l in
  let l = if n > hist_len then List.filteri (fun i _ -> i >= n - hist_len) l else l in
  Hashtbl.replace series name l

let spark name =
  match Hashtbl.find_opt series name with
  | None | Some [] -> ""
  | Some l -> Obs.History.sparkline l

let fit w s = if String.length s <= w then s else String.sub s 0 (w - 1) ^ "~"

let number f =
  if Float.abs f >= 1e6 then Printf.sprintf "%.3g" f
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let render ~path ~meta ~prev ~cur ~filters =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "pptop — %s   elapsed %.1fs%s\n" path cur.elapsed_s
    (match meta with
     | Some m ->
       Printf.sprintf "   [%s@%s jobs=%d]" m.Obs.Run_meta.git_rev
         m.Obs.Run_meta.hostname m.Obs.Run_meta.jobs
     | None -> "");
  let dt =
    match prev with
    | Some p when cur.elapsed_s > p.elapsed_s -> Some (cur.elapsed_s -. p.elapsed_s)
    | _ -> None
  in
  let prev_value name =
    Option.bind prev (fun p -> List.assoc_opt name p.snap)
  in
  let keep name =
    filters = [] || List.exists (fun f -> String.starts_with ~prefix:f name) filters
  in
  let entries =
    List.filter (fun (name, _) -> keep name) cur.snap
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let counters, gauges, hists =
    List.fold_left
      (fun (c, g, h) (name, v) ->
        match v with
        | Obs.Metrics.Counter _ -> ((name, v) :: c, g, h)
        | Obs.Metrics.Gauge _ -> (c, (name, v) :: g, h)
        | Obs.Metrics.Histogram _ -> (c, g, (name, v) :: h))
      ([], [], []) entries
  in
  let counters = List.rev counters
  and gauges = List.rev gauges
  and hists = List.rev hists in
  if counters <> [] then begin
    Printf.bprintf buf "\n%-40s %14s %12s  %s\n" "COUNTER" "total" "rate/s" "";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Counter n ->
          let rate =
            match (dt, prev_value name) with
            | Some dt, Some (Obs.Metrics.Counter p) -> float_of_int (n - p) /. dt
            | _ -> 0.0
          in
          push name rate;
          Printf.bprintf buf "%-40s %14d %12s  %s\n" (fit 40 name) n
            (number rate) (spark name)
        | _ -> ())
      counters
  end;
  if gauges <> [] then begin
    Printf.bprintf buf "\n%-40s %14s %12s  %s\n" "GAUGE" "value" "" "";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Gauge f ->
          push name f;
          Printf.bprintf buf "%-40s %14s %12s  %s\n" (fit 40 name) (number f) ""
            (spark name)
        | _ -> ())
      gauges
  end;
  if hists <> [] then begin
    Printf.bprintf buf "\n%-40s %10s %10s %10s %10s  %s\n" "HISTOGRAM" "count"
      "p50" "p90" "p99" "buckets";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Histogram { counts; count; _ } ->
          let q p =
            match Obs.Metrics.quantile v p with
            | Some x -> number x
            | None -> "-"
          in
          Printf.bprintf buf "%-40s %10d %10s %10s %10s  %s\n" (fit 40 name)
            count (q 0.5) (q 0.9) (q 0.99)
            (Obs.History.sparkline
               (Array.to_list (Array.map float_of_int counts)))
        | _ -> ())
      hists
  end;
  Buffer.contents buf

let run path interval once filters =
  let tty = try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false in
  let rec loop prev waited =
    match read_snapshot path with
    | Error e ->
      if once then begin
        Printf.eprintf "pptop: %s: %s\n" path e;
        2
      end
      else begin
        if waited = 0 then
          Printf.eprintf "pptop: waiting for %s (%s)\n%!" path e;
        Unix.sleepf interval;
        loop prev (waited + 1)
      end
    | Ok (meta, cur) ->
      let frame = render ~path ~meta ~prev ~cur ~filters in
      if once then begin
        print_string frame;
        0
      end
      else begin
        (* home + clear-below keeps a static layout from flickering *)
        if tty then print_string "\x1b[H\x1b[J";
        print_string frame;
        flush stdout;
        Unix.sleepf interval;
        loop (Some cur) waited
      end
  in
  loop None 0

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE"
           ~doc:"ppmetrics/v1 JSON snapshot, as written by --metrics-out.")

let interval_arg =
  Arg.(value & opt float 1.0
       & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")

let once_arg =
  Arg.(value & flag
       & info [ "once" ]
           ~doc:"Print a single frame without terminal control sequences and \
                 exit (scripting/CI).")

let filter_arg =
  Arg.(value & opt_all string []
       & info [ "filter" ] ~docv:"PREFIX"
           ~doc:"Only show metrics whose name starts with $(docv) \
                 (repeatable).")

let cmd =
  Cmd.v
    (Cmd.info "pptop"
       ~doc:"Live terminal dashboard for a running instrumented binary: tails \
             the atomic ppmetrics/v1 export, showing counter rates, gauges \
             and histogram quantiles with sparkline history.")
    Term.(const run $ path_arg $ interval_arg $ once_arg $ filter_arg)

let () = exit (Cmd.eval' cmd)
