(* pptop: a live terminal dashboard over the atomic ppmetrics export
   that --metrics-out writes. Point it at the same FILE while a scan
   runs:

     bbsearch -n 4 --metrics-out /tmp/bb.json --metrics-every 1 &
     pptop /tmp/bb.json

   Every refresh re-reads the snapshot (the tmp+rename export means a
   read never sees a torn file), computes counter rates from the
   previous snapshot and appends to in-memory series rendered as
   sparklines. --once prints a single frame without ANSI control
   sequences (CI, scripting). --fleet adds the per-worker table that a
   telemetry-on coordinator publishes in its ppmetrics/v2 snapshots. *)

let hist_len = 48
let stale_after_s = 10.0

type frow = {
  f_worker : string;
  f_host : string;
  f_pid : int;
  f_last_seen_s : float;
  f_offset_s : float;
  f_chunks : int;
  f_leased : int;
  f_events : int;
}

type sample = {
  elapsed_s : float;
  snap : Obs.Metrics.snapshot;
  workers : frow list;
}

let jnumber = function
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> 0.0

let jint = function Some (Obs.Json.Int i) -> i | _ -> 0

let jstring = function Some (Obs.Json.String s) -> s | _ -> ""

let frow_of_json = function
  | Obs.Json.Obj f ->
    let g k = List.assoc_opt k f in
    Some
      {
        f_worker = jstring (g "worker");
        f_host = jstring (g "host");
        f_pid = jint (g "pid");
        f_last_seen_s = jnumber (g "last_seen_s");
        f_offset_s = jnumber (g "offset_s");
        f_chunks = jint (g "chunks_done");
        f_leased = jint (g "leased");
        f_events = jint (g "events");
      }
  | _ -> None

let read_snapshot path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Obs.Json.parse contents with
     | Error e -> Error e
     | Ok (Obs.Json.Obj fields) ->
       let elapsed_s = jnumber (List.assoc_opt "elapsed_s" fields) in
       let meta =
         Option.bind
           (List.assoc_opt "meta" fields)
           (fun j -> Result.to_option (Obs.Run_meta.of_json j))
       in
       let workers =
         match List.assoc_opt "workers" fields with
         | Some (Obs.Json.List items) -> List.filter_map frow_of_json items
         | _ -> []
       in
       (match List.assoc_opt "metrics" fields with
        | Some m ->
          (match Obs.Metrics.of_json_value m with
           | Ok snap -> Ok (meta, { elapsed_s; snap; workers })
           | Error e -> Error e)
        | None -> Error "no \"metrics\" field (is this a ppmetrics file?)")
     | Ok _ -> Error "not a JSON object (is this a ppmetrics file?)")

(* per-metric series of recent values (gauges) or rates (counters),
   oldest first, capped at [hist_len] *)
let series : (string, float list) Hashtbl.t = Hashtbl.create 64

let push name v =
  let old = Option.value ~default:[] (Hashtbl.find_opt series name) in
  let l = old @ [ v ] in
  let n = List.length l in
  let l = if n > hist_len then List.filteri (fun i _ -> i >= n - hist_len) l else l in
  Hashtbl.replace series name l

let spark name =
  match Hashtbl.find_opt series name with
  | None | Some [] -> ""
  | Some l -> Obs.History.sparkline l

let fit w s = if String.length s <= w then s else String.sub s 0 (w - 1) ^ "~"

let number f =
  if Float.abs f >= 1e6 then Printf.sprintf "%.3g" f
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let render_fleet buf ~prev ~cur ~dt =
  if cur.workers = [] then
    Buffer.add_string buf
      "\n(no workers section — telemetry off, or a ppmetrics/v1 writer)\n"
  else begin
    Printf.bprintf buf "\n%-24s %-12s %7s %8s %7s %7s %9s %6s  %s\n" "WORKER"
      "host" "chunks" "chunks/s" "leased" "events" "offset" "seen" "";
    List.iter
      (fun w ->
        let rate =
          match
            ( dt,
              Option.bind prev (fun p ->
                  List.find_opt (fun x -> x.f_worker = w.f_worker) p.workers) )
          with
          | Some dt, Some p -> float_of_int (w.f_chunks - p.f_chunks) /. dt
          | _ -> 0.0
        in
        let key = "worker:" ^ w.f_worker in
        push key rate;
        let seen =
          if w.f_last_seen_s > stale_after_s then
            Printf.sprintf "%.0fs!" w.f_last_seen_s
          else Printf.sprintf "%.0fs" w.f_last_seen_s
        in
        Printf.bprintf buf "%-24s %-12s %7d %8s %7d %7d %8.1gs %6s  %s\n"
          (fit 24 w.f_worker) (fit 12 w.f_host) w.f_chunks (number rate)
          w.f_leased w.f_events w.f_offset_s seen (spark key))
      cur.workers
  end;
  (* recovery counters, shown only once something went wrong: a clean
     run keeps the fleet view clean *)
  let v name =
    match List.assoc_opt name cur.snap with
    | Some (Obs.Metrics.Counter n) -> float_of_int n
    | Some (Obs.Metrics.Gauge g) -> g
    | Some _ | None -> 0.0
  in
  let restarts = v "coordinator.restarts"
  and rejoins = v "dist.rejoins"
  and corrupt = v "dist.corrupt_frames"
  and expired = v "dist.lease_expired" in
  if restarts +. rejoins +. corrupt +. expired > 0.0 then
    Printf.bprintf buf
      "recovery: %s coordinator restarts, %s rejoins, %s expired leases, %s \
       corrupt frames\n"
      (number restarts) (number rejoins) (number expired) (number corrupt)

let render ~path ~meta ~prev ~cur ~filters ~fleet =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "pptop — %s   elapsed %.1fs%s\n" path cur.elapsed_s
    (match meta with
     | Some m ->
       Printf.sprintf "   [%s@%s jobs=%d]" m.Obs.Run_meta.git_rev
         m.Obs.Run_meta.hostname m.Obs.Run_meta.jobs
     | None -> "");
  let dt =
    match prev with
    | Some p when cur.elapsed_s > p.elapsed_s -> Some (cur.elapsed_s -. p.elapsed_s)
    | _ -> None
  in
  if fleet then render_fleet buf ~prev ~cur ~dt;
  let prev_value name =
    Option.bind prev (fun p -> List.assoc_opt name p.snap)
  in
  let keep name =
    filters = [] || List.exists (fun f -> String.starts_with ~prefix:f name) filters
  in
  let entries =
    List.filter (fun (name, _) -> keep name) cur.snap
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let counters, gauges, hists =
    List.fold_left
      (fun (c, g, h) (name, v) ->
        match v with
        | Obs.Metrics.Counter _ -> ((name, v) :: c, g, h)
        | Obs.Metrics.Gauge _ -> (c, (name, v) :: g, h)
        | Obs.Metrics.Histogram _ -> (c, g, (name, v) :: h))
      ([], [], []) entries
  in
  let counters = List.rev counters
  and gauges = List.rev gauges
  and hists = List.rev hists in
  if counters <> [] then begin
    Printf.bprintf buf "\n%-40s %14s %12s  %s\n" "COUNTER" "total" "rate/s" "";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Counter n ->
          let rate =
            match (dt, prev_value name) with
            | Some dt, Some (Obs.Metrics.Counter p) -> float_of_int (n - p) /. dt
            | _ -> 0.0
          in
          push name rate;
          Printf.bprintf buf "%-40s %14d %12s  %s\n" (fit 40 name) n
            (number rate) (spark name)
        | _ -> ())
      counters
  end;
  if gauges <> [] then begin
    Printf.bprintf buf "\n%-40s %14s %12s  %s\n" "GAUGE" "value" "" "";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Gauge f ->
          push name f;
          Printf.bprintf buf "%-40s %14s %12s  %s\n" (fit 40 name) (number f) ""
            (spark name)
        | _ -> ())
      gauges
  end;
  if hists <> [] then begin
    Printf.bprintf buf "\n%-40s %10s %10s %10s %10s  %s\n" "HISTOGRAM" "count"
      "p50" "p90" "p99" "buckets";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Histogram { counts; count; _ } ->
          let q p =
            match Obs.Metrics.quantile v p with
            | Some x -> number x
            | None -> "-"
          in
          Printf.bprintf buf "%-40s %10d %10s %10s %10s  %s\n" (fit 40 name)
            count (q 0.5) (q 0.9) (q 0.99)
            (Obs.History.sparkline
               (Array.to_list (Array.map float_of_int counts)))
        | _ -> ())
      hists
  end;
  Buffer.contents buf

let run path interval once filters fleet =
  let tty = try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false in
  let rec loop prev waited =
    match read_snapshot path with
    | Error e ->
      if once then begin
        Printf.eprintf "pptop: %s: %s\n" path e;
        2
      end
      else begin
        if waited = 0 then
          Printf.eprintf "pptop: waiting for %s (%s)\n%!" path e;
        Unix.sleepf interval;
        loop prev (waited + 1)
      end
    | Ok (meta, cur) ->
      let frame = render ~path ~meta ~prev ~cur ~filters ~fleet in
      if once then begin
        print_string frame;
        0
      end
      else begin
        (* home + clear-below keeps a static layout from flickering *)
        if tty then print_string "\x1b[H\x1b[J";
        print_string frame;
        flush stdout;
        Unix.sleepf interval;
        loop (Some cur) waited
      end
  in
  loop None 0

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE"
           ~doc:"ppmetrics JSON snapshot, as written by --metrics-out.")

let interval_arg =
  Arg.(value & opt float 1.0
       & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")

let once_arg =
  Arg.(value & flag
       & info [ "once" ]
           ~doc:"Print a single frame without terminal control sequences and \
                 exit (scripting/CI).")

let filter_arg =
  Arg.(value & opt_all string []
       & info [ "filter" ] ~docv:"PREFIX"
           ~doc:"Only show metrics whose name starts with $(docv) \
                 (repeatable).")

let fleet_arg =
  Arg.(value & flag
       & info [ "fleet" ]
           ~doc:"Show the per-worker table from a telemetry-on coordinator's \
                 ppmetrics/v2 snapshot (chunk rates, leases, forwarded \
                 events, clock offsets, last-seen staleness) above the \
                 global panels.")

let cmd =
  Cmd.v
    (Cmd.info "pptop"
       ~doc:"Live terminal dashboard for a running instrumented binary: tails \
             the atomic ppmetrics export, showing counter rates, gauges \
             and histogram quantiles with sparkline history — plus, with \
             $(b,--fleet), the coordinator's per-worker telemetry.")
    Term.(const run $ path_arg $ interval_arg $ once_arg $ filter_arg $ fleet_arg)

let () = exit (Cmd.eval' cmd)
