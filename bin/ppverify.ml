(* ppverify: decide protocol outputs exactly (bottom-SCC fairness
   semantics) and determine thresholds.

     ppverify --protocol flock-succinct-3 --max-input 20
     ppverify --file my.pp --input 7 *)

let load ~name ~file =
  match (name, file) with
  | Some n, None ->
    (match Catalog.build n with
     | Some e -> Ok (e.Catalog.build ())
     | None ->
       Error (Printf.sprintf "unknown protocol %S (expected: %s)" n Catalog.names_help))
  | None, Some f -> Protocol_syntax.parse_file f
  | _ -> Error "exactly one of --protocol and --file is required"

let print_witness p v =
  let src = Population.initial_config p v in
  match
    Witness.find p ~src ~target:(fun c ->
        Population.output_of_config p c = Some true)
  with
  | Some (sigma, c) ->
    Format.printf "shortest trace to an accepting configuration (%d steps):@."
      (List.length sigma);
    Format.printf "%a@." (Witness.pp_trace p) sigma;
    Format.printf "reached: %a@." (Population.pp_config p) c
  | None -> Format.printf "no accepting configuration is reachable@."

let run name file input max_input max_configs wall_budget witness jobs stable ()
    =
  let deadline =
    Option.map (Obs.Budget.deadline_in ~source:"ppverify") wall_budget
  in
  match load ~name ~file with
  | Error e ->
    prerr_endline e;
    1
  | Ok p ->
    (match input with
     | Some s ->
       let parts = List.filter_map int_of_string_opt (String.split_on_char ',' s) in
       let v = Array.of_list parts in
       (try
          Format.printf "input %s: %a@." s Fair_semantics.pp_verdict
            (Fair_semantics.decide ~max_configs ?deadline p v);
          if witness then print_witness p v;
          0
        with
        | Configgraph.Too_many_configs n ->
          Format.printf "input %s: unknown (state space exceeds %d configurations)@."
            s n;
          0
        | Obs.Budget.Exceeded info ->
          Format.printf "input %s: unknown (%s)@." s (Obs.Budget.describe info);
          0
        | Invalid_argument msg ->
          prerr_endline msg;
          1)
     | None ->
       if Array.length p.Population.input_vars <> 1 then begin
         prerr_endline "threshold search requires a single-input protocol; use --input";
         1
       end
       else begin
         try
           (match Eta_search.find ~max_configs ?wall_budget_s:wall_budget ~jobs
                    ~stable:(if stable then `Memo else `Off) p ~max_input with
            | Eta_search.Eta eta ->
              Format.printf "threshold protocol: eta = %d (inputs up to %d)@." eta max_input
            | r -> Format.printf "%a@." Eta_search.pp_result r);
           0
         with
         | Configgraph.Too_many_configs n ->
           Format.printf
             "threshold unknown (state space exceeds %d configurations; lower --max-input)@."
             n;
           0
         | Obs.Budget.Exceeded info ->
           Format.printf "threshold unknown (%s)@." (Obs.Budget.describe info);
           0
       end)

open Cmdliner

let name_arg =
  Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"NAME"
         ~doc:("Catalog protocol name: " ^ Catalog.names_help))

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Protocol description file.")

let input_arg =
  Arg.(value & opt (some string) None & info [ "i"; "input" ] ~docv:"INTS"
         ~doc:"Decide this single input instead of searching for a threshold.")

let max_input_arg =
  Arg.(value & opt int 16 & info [ "max-input" ] ~doc:"Threshold search cutoff.")

let max_configs_arg =
  Arg.(value & opt int 2_000_000 & info [ "max-configs" ]
         ~doc:"Exploration budget per input.")

let wall_budget_arg =
  Arg.(value & opt (some float) None & info [ "wall-budget" ] ~docv:"S"
         ~doc:"Wall-clock budget in seconds; on expiry the verdict degrades \
               to unknown instead of aborting. Makes aborts machine-dependent.")

let witness_arg =
  Arg.(value & flag & info [ "w"; "witness" ]
         ~doc:"With --input: print a shortest trace to an accepting configuration.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the parallel verification paths (threshold \
               search with --stable-sets). Results are identical for any \
               value.")

let stable_arg =
  Arg.(value & flag & info [ "stable-sets" ]
         ~doc:"During threshold search, decide inputs whose initial \
               configuration already lies in a stable set (Definition 2) \
               without exploring their configuration graph; the stable-set \
               analysis is computed once and memoized.")

let cmd =
  Cmd.v
    (Cmd.info "ppverify" ~doc:"Exact verification of population protocols")
    Term.(
      const run $ name_arg $ file_arg $ input_arg $ max_input_arg
      $ max_configs_arg $ wall_budget_arg $ witness_arg $ jobs_arg $ stable_arg
      $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
