type scan_result = {
  num_protocols : int;
  num_threshold : int;
  num_reject_all : int;
  best_eta : int;
  best : Population.t option;
  histogram : (int * int) list;
}

let pairs n =
  List.concat_map
    (fun i -> List.map (fun j -> (i, j)) (List.init (n - i) (fun k -> i + k)))
    (List.init n Fun.id)
  |> Array.of_list

let num_deterministic_protocols n =
  let p = n * (n + 1) / 2 in
  let rec pow b e acc = if e = 0 then acc else pow b (e - 1) (acc * b) in
  pow p p 1 * (1 lsl n)

(* Decode a protocol from (transition assignment index, output bitmap). *)
let protocol_of_code n ~pair_list ~assignment ~output_bits =
  let np = Array.length pair_list in
  let transitions = ref [] in
  let code = ref assignment in
  for i = 0 to np - 1 do
    let target = !code mod np in
    code := !code / np;
    let p, q = pair_list.(i) in
    let p', q' = pair_list.(target) in
    transitions := (p, q, p', q') :: !transitions
  done;
  let output = Array.init n (fun s -> output_bits land (1 lsl s) <> 0) in
  Population.make
    ~name:(Printf.sprintf "bb-%d-%d-%d" n assignment output_bits)
    ~states:(Array.init n (fun i -> Printf.sprintf "q%d" i))
    ~transitions:!transitions
    ~inputs:[ ("x", 0) ]
    ~output ()

let iter_protocols ?sample ~n f =
  if n < 1 || n > 4 then invalid_arg "Busy_beaver.iter_protocols: 1 <= n <= 4";
  let pair_list = pairs n in
  let np = Array.length pair_list in
  let rec pow b e acc = if e = 0 then acc else pow b (e - 1) (acc * b) in
  let num_assignments = pow np np 1 in
  let num_outputs = 1 lsl n in
  match sample with
  | None ->
    for assignment = 0 to num_assignments - 1 do
      for output_bits = 0 to num_outputs - 1 do
        f (protocol_of_code n ~pair_list ~assignment ~output_bits)
      done
    done
  | Some (count, seed) ->
    let rng = Splitmix64.create seed in
    for _ = 1 to count do
      f
        (protocol_of_code n ~pair_list
           ~assignment:(Splitmix64.int_below rng num_assignments)
           ~output_bits:(Splitmix64.int_below rng num_outputs))
    done

let m_scanned = Obs.Metrics.counter "bbsearch.protocols_scanned"
let m_threshold = Obs.Metrics.counter "bbsearch.threshold_protocols"
let m_aborted = Obs.Metrics.counter "bbsearch.config_budget_aborts"

let scan ?(max_input = 12) ?(max_configs = 60_000) ?sample ~n () =
  if n < 1 || n > 4 then invalid_arg "Busy_beaver.scan: 1 <= n <= 4";
  let pair_list = pairs n in
  let np = Array.length pair_list in
  let rec pow b e acc = if e = 0 then acc else pow b (e - 1) (acc * b) in
  let num_assignments = pow np np 1 in
  let num_outputs = 1 lsl n in
  let total =
    match sample with
    | None -> num_assignments * num_outputs
    | Some (count, _) -> count
  in
  let num_threshold = ref 0 in
  let num_reject_all = ref 0 in
  let best_eta = ref 0 in
  let best = ref None in
  let histogram = Hashtbl.create 16 in
  let scanned = ref 0 in
  let progress = Obs.Progress.create "bbsearch" in
  let examine assignment output_bits =
    incr scanned;
    Obs.Metrics.incr m_scanned;
    Obs.Progress.tick progress (fun () ->
        Printf.sprintf "%d/%d protocols, %d threshold, best eta %d" !scanned
          total !num_threshold !best_eta);
    (* all-reject and all-accept output maps short-circuit *)
    if output_bits = 0 then incr num_reject_all
    else begin
      let p = protocol_of_code n ~pair_list ~assignment ~output_bits in
      let record_best eta =
        best_eta := eta;
        best := Some p;
        Obs.Trace.instant "bbsearch.new_best" ~cat:"bbsearch"
          ~args:[ ("eta", string_of_int eta); ("protocol", p.Population.name) ]
      in
      match Eta_search.find ~max_configs p ~max_input with
      | Eta_search.Eta eta ->
        incr num_threshold;
        Obs.Metrics.incr m_threshold;
        Hashtbl.replace histogram eta
          (1 + Option.value (Hashtbl.find_opt histogram eta) ~default:0);
        if eta > !best_eta then record_best eta
      | Eta_search.Always_accepts ->
        (* computes x >= i for every valid i up to the smallest input:
           record as threshold 2 (all populations have >= 2 agents) *)
        incr num_threshold;
        Obs.Metrics.incr m_threshold;
        Hashtbl.replace histogram 2
          (1 + Option.value (Hashtbl.find_opt histogram 2) ~default:0);
        if !best_eta < 2 then record_best 2
      | Eta_search.Always_rejects -> incr num_reject_all
      | Eta_search.Not_threshold _ -> ()
      | exception Configgraph.Too_many_configs _ -> Obs.Metrics.incr m_aborted
    end
  in
  Obs.Trace.with_span "bbsearch.scan" ~cat:"bbsearch"
    ~args:[ ("states", string_of_int n); ("total", string_of_int total) ]
    (fun () ->
      match sample with
      | None ->
        for assignment = 0 to num_assignments - 1 do
          for output_bits = 0 to num_outputs - 1 do
            examine assignment output_bits
          done
        done
      | Some (count, seed) ->
        let rng = Splitmix64.create seed in
        for _ = 1 to count do
          examine
            (Splitmix64.int_below rng num_assignments)
            (Splitmix64.int_below rng num_outputs)
        done);
  Obs.Progress.finish progress (fun () ->
      Printf.sprintf "%d protocols scanned, %d threshold, best eta %d" !scanned
        !num_threshold !best_eta);
  {
    num_protocols = !scanned;
    num_threshold = !num_threshold;
    num_reject_all = !num_reject_all;
    best_eta = !best_eta;
    best = !best;
    histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
      |> List.sort Stdlib.compare;
  }
