type scan_result = {
  num_protocols : int;
  num_threshold : int;
  num_reject_all : int;
  num_aborted : int;
  best_eta : int;
  best : Population.t option;
  histogram : (int * int) list;
  completed_chunks : int;
  total_chunks : int;
  interrupted : bool;
  task_errors : int;
}

let pairs n =
  List.concat_map
    (fun i -> List.map (fun j -> (i, j)) (List.init (n - i) (fun k -> i + k)))
    (List.init n Fun.id)
  |> Array.of_list

let num_deterministic_protocols n =
  let p = n * (n + 1) / 2 in
  let rec pow b e acc = if e = 0 then acc else pow b (e - 1) (acc * b) in
  pow p p 1 * (1 lsl n)

(* Decode a protocol from (transition assignment index, output bitmap). *)
let decode n ~pair_list ~assignment ~output_bits =
  let np = Array.length pair_list in
  let transitions = ref [] in
  let code = ref assignment in
  for i = 0 to np - 1 do
    let target = !code mod np in
    code := !code / np;
    let p, q = pair_list.(i) in
    let p', q' = pair_list.(target) in
    transitions := (p, q, p', q') :: !transitions
  done;
  let output = Array.init n (fun s -> output_bits land (1 lsl s) <> 0) in
  Population.make
    ~name:(Printf.sprintf "bb-%d-%d-%d" n assignment output_bits)
    ~states:(Array.init n (fun i -> Printf.sprintf "q%d" i))
    ~transitions:!transitions
    ~inputs:[ ("x", 0) ]
    ~output ()

let check_n who n =
  if n < 1 || n > 4 then
    invalid_arg (Printf.sprintf "Busy_beaver.%s: 1 <= n <= 4" who)

let protocol_of_code ~n ~assignment ~output_bits =
  check_n "protocol_of_code" n;
  decode n ~pair_list:(pairs n) ~assignment ~output_bits

(* Sampled codes come from per-index splits of the master stream (the
   [Ensemble.rng_for_trial] scheme): sample [i] depends only on the seed
   and [i], never on the chunking or the domain count. *)
let sample_codes ~seed ~count ~num_assignments ~num_outputs =
  let master = Splitmix64.create seed in
  let codes = Array.make count (0, 0) in
  for i = 0 to count - 1 do
    let rng = Splitmix64.split master in
    let assignment = Splitmix64.int_below rng num_assignments in
    codes.(i) <- (assignment, Splitmix64.int_below rng num_outputs)
  done;
  codes

module Symmetry = struct
  (* The group acting on the code space. A state permutation sends a
     protocol to an isomorphic one (same decided predicate, same
     threshold), but the enumeration fixes the input state to 0, so the
     permutations that keep the code space closed are exactly the
     stabiliser of state 0 — S_{n-1} acting on states 1..n-1. Each
     element is stored with its induced permutation of unordered state
     pairs, which is how it acts on transition-assignment digits. *)
  type t = {
    np : int;
    n : int;
    elems : (int array * int array) array;
        (* (state perm, pair perm), identity excluded *)
    powers : int array;  (* np^k for re-encoding assignment digits *)
  }

  let rec insertions x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insertions x rest)

  let rec permutations = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insertions x) (permutations rest)

  let make n =
    check_n "Symmetry.make" n;
    let pair_list = pairs n in
    let np = Array.length pair_list in
    let pair_index = Array.make (n * n) 0 in
    Array.iteri (fun k (a, b) -> pair_index.((a * n) + b) <- k) pair_list;
    let elems =
      permutations (List.init (n - 1) (fun i -> i + 1))
      |> List.filter_map (fun tail ->
             let sperm = Array.of_list (0 :: tail) in
             if Array.for_all2 ( = ) sperm (Array.init n Fun.id) then None
             else begin
               let pperm =
                 Array.map
                   (fun (a, b) ->
                     let a' = sperm.(a) and b' = sperm.(b) in
                     let a', b' = if a' <= b' then (a', b') else (b', a') in
                     pair_index.((a' * n) + b'))
                   pair_list
               in
               Some (sperm, pperm)
             end)
      |> Array.of_list
    in
    let powers = Array.make np 1 in
    for k = 1 to np - 1 do
      powers.(k) <- powers.(k - 1) * np
    done;
    { np; n; elems; powers }

  (* Image of a code under one group element: assignment digit i (the
     target pair of pair i) moves to position pperm(i) with value
     pperm(digit); output bit s moves to sperm(s). *)
  let apply t (sperm, pperm) ~assignment ~output_bits =
    let a' = ref 0 in
    let code = ref assignment in
    for i = 0 to t.np - 1 do
      let target = !code mod t.np in
      code := !code / t.np;
      a' := !a' + (pperm.(target) * t.powers.(pperm.(i)))
    done;
    let o' = ref 0 in
    for s = 0 to t.n - 1 do
      if output_bits land (1 lsl s) <> 0 then o' := !o' lor (1 lsl sperm.(s))
    done;
    (!a', !o')

  let orbit t ~assignment ~output_bits =
    Array.fold_left
      (fun acc g ->
        let image = apply t g ~assignment ~output_bits in
        if List.mem image acc then acc else image :: acc)
      [ (assignment, output_bits) ]
      t.elems

  let canonical t ~assignment ~output_bits =
    List.fold_left Stdlib.min (assignment, output_bits)
      (List.map
         (fun g -> apply t g ~assignment ~output_bits)
         (Array.to_list t.elems))

  (* [Some orbit_size] when the code is the lexicographic minimum of its
     orbit (the member the pruned scan verifies, standing in for the
     whole orbit), [None] when a smaller member exists. *)
  let canonical_weight t ~assignment ~output_bits =
    let self = (assignment, output_bits) in
    let rec go i distinct =
      if i >= Array.length t.elems then Some (1 + List.length distinct)
      else
        let image = apply t t.elems.(i) ~assignment ~output_bits in
        if image < self then None
        else
          go (i + 1)
            (if image = self || List.mem image distinct then distinct
             else image :: distinct)
    in
    go 0 []

  let order t = 1 + Array.length t.elems
end

let m_scanned = Obs.Metrics.counter "bbsearch.protocols_scanned"
let m_threshold = Obs.Metrics.counter "bbsearch.threshold_protocols"
let m_aborted = Obs.Metrics.counter "bbsearch.config_budget_aborts"
let m_pruned = Obs.Metrics.counter "bbsearch.pruned_symmetry"

(* Per-chunk accumulator. Chunks are a fixed partition of the code
   space, each owned by exactly one worker; the driver reduces them in
   index order, so aggregates are byte-identical for every jobs/chunk
   setting (the [Pool] contract). The best protocol is held as its code
   — not a decoded [Population.t] — so a checkpointed chunk can be
   restored byte-identically by re-decoding. *)
type partial = {
  mutable p_scanned : int;
  mutable p_threshold : int;
  mutable p_reject_all : int;
  mutable p_aborted : int;
  mutable p_best_eta : int;
  mutable p_best_code : (int * int) option;
  p_hist : (int, int) Hashtbl.t;
}

let fresh_partial () =
  {
    p_scanned = 0;
    p_threshold = 0;
    p_reject_all = 0;
    p_aborted = 0;
    p_best_eta = 0;
    p_best_code = None;
    p_hist = Hashtbl.create 8;
  }

(* Checkpoint serialisation of one chunk accumulator. The histogram is
   emitted sorted so equal accumulators always render identically. *)
let partial_to_json part =
  let open Obs.Json in
  let hist =
    Hashtbl.fold (fun eta count acc -> (eta, count) :: acc) part.p_hist []
    |> List.sort Stdlib.compare
    |> List.map (fun (eta, count) -> List [ Int eta; Int count ])
  in
  Obj
    [
      ("scanned", Int part.p_scanned);
      ("threshold", Int part.p_threshold);
      ("reject_all", Int part.p_reject_all);
      ("aborted", Int part.p_aborted);
      ("best_eta", Int part.p_best_eta);
      ( "best_code",
        match part.p_best_code with
        | None -> Null
        | Some (a, o) -> List [ Int a; Int o ] );
      ("hist", List hist);
    ]

let partial_of_json j =
  let open Obs.Json in
  match j with
  | Obj fields ->
    let int k =
      match List.assoc_opt k fields with
      | Some (Int n) -> Ok n
      | _ -> Error (Printf.sprintf "chunk state: missing int field %S" k)
    in
    let ( let* ) = Result.bind in
    let* scanned = int "scanned" in
    let* threshold = int "threshold" in
    let* reject_all = int "reject_all" in
    let* aborted = int "aborted" in
    let* best_eta = int "best_eta" in
    let part = fresh_partial () in
    part.p_scanned <- scanned;
    part.p_threshold <- threshold;
    part.p_reject_all <- reject_all;
    part.p_aborted <- aborted;
    part.p_best_eta <- best_eta;
    let* () =
      match List.assoc_opt "best_code" fields with
      | Some Null | None -> Ok ()
      | Some (List [ Int a; Int o ]) ->
        part.p_best_code <- Some (a, o);
        Ok ()
      | Some _ -> Error "chunk state: malformed best_code"
    in
    (match List.assoc_opt "hist" fields with
     | Some (List entries) ->
       List.fold_left
         (fun acc entry ->
           let* () = acc in
           match entry with
           | List [ Int eta; Int count ] ->
             Hashtbl.replace part.p_hist eta count;
             Ok ()
           | _ -> Error "chunk state: malformed hist entry")
         (Ok ()) entries
       |> Result.map (fun () -> part)
     | None -> Ok part
     | Some _ -> Error "chunk state: malformed hist")
  | _ -> Error "chunk state: object expected"

(* ------------------------------------------------------------- plans *)

(* A plan pins everything that shapes the chunk partition or the
   per-chunk content of a scan — the code space, cutoffs, symmetry
   pruning, sampling scheme, and the precomputed chunk boundaries. Any
   two agents (domains of one process, or worker processes on other
   machines) holding equal plans compute byte-identical chunk
   accumulators for equal chunk indices; that is the whole determinism
   story of the distributed scan. *)
type plan = {
  pl_n : int;
  pl_pair_list : (int * int) array;
  pl_num_outputs : int;
  pl_max_input : int;
  pl_max_configs : int;
  pl_eta_budget_s : float option;
  pl_prune : bool;
  pl_packed : bool;
  pl_chunk : int;
  pl_schedule : Pool.schedule;
  pl_jobs : int;
  pl_sample : (int * int) option;
  pl_codes : (int * int) array option;
  pl_sym : Symmetry.t option;
  pl_total : int;
  pl_bounds : (int * int) array;
}

let plan ?(jobs = 1) ?(chunk = 1024) ?(schedule = `Fixed) ?(prune = true)
    ?(packed = true) ?(max_input = 12) ?(max_configs = 60_000) ?eta_budget_s
    ?sample ~n () =
  check_n "plan" n;
  let pair_list = pairs n in
  let np = Array.length pair_list in
  let rec pow b e acc = if e = 0 then acc else pow b (e - 1) (acc * b) in
  let num_assignments = pow np np 1 in
  let num_outputs = 1 lsl n in
  let codes =
    Option.map
      (fun (count, seed) ->
        sample_codes ~seed ~count ~num_assignments ~num_outputs)
      sample
  in
  let total =
    match codes with
    | None -> num_assignments * num_outputs
    | Some codes -> Array.length codes
  in
  let chunk = Stdlib.max 1 chunk in
  {
    pl_n = n;
    pl_pair_list = pair_list;
    pl_num_outputs = num_outputs;
    pl_max_input = max_input;
    pl_max_configs = max_configs;
    pl_eta_budget_s = eta_budget_s;
    pl_prune = prune;
    pl_packed = packed;
    pl_chunk = chunk;
    pl_schedule = schedule;
    pl_jobs = Stdlib.max 1 jobs;
    pl_sample = sample;
    pl_codes = codes;
    pl_sym = (if prune then Some (Symmetry.make n) else None);
    pl_total = total;
    pl_bounds = Pool.boundaries schedule ~tasks:total ~jobs ~chunk;
  }

let plan_chunks plan = Array.length plan.pl_bounds
let plan_total plan = plan.pl_total

let plan_chunk_range plan ci =
  if ci < 0 || ci >= Array.length plan.pl_bounds then
    invalid_arg
      (Printf.sprintf "Busy_beaver.plan_chunk_range: chunk %d of %d" ci
         (Array.length plan.pl_bounds));
  plan.pl_bounds.(ci)

let chunk_index plan ~lo =
  match plan.pl_schedule with
  | `Fixed -> lo / plan.pl_chunk
  | `Guided ->
    (* boundaries are sorted by [lo]; binary-search the slot *)
    let bounds = plan.pl_bounds in
    let rec go a b =
      if a > b then
        invalid_arg (Printf.sprintf "Busy_beaver.chunk_index: lo %d" lo)
      else
        let m = (a + b) / 2 in
        let mlo, mhi = bounds.(m) in
        if lo < mlo then go a (m - 1)
        else if lo >= mhi then go (m + 1) b
        else m
    in
    go 0 (Array.length bounds - 1)

(* Everything that shapes the chunk partition or the per-chunk content
   goes into the checkpoint fingerprint: a snapshot only resumes a
   scan that would recompute the exact same chunks, and a worker only
   serves a coordinator whose plan equals its own. The sample
   (count, seed) covers the RNG scheme — sampled code [i] depends on
   nothing else. The guided schedule's partition depends on jobs, so
   those two fields join the fingerprint only in that mode (default
   fingerprints stay compatible with pre-v2 snapshots). *)
let plan_config plan =
  let open Obs.Json in
  Obj
    ([
       ("workload", String "bbsearch");
       ("n", Int plan.pl_n);
       ("max_input", Int plan.pl_max_input);
       ("max_configs", Int plan.pl_max_configs);
       ( "eta_budget_s",
         match plan.pl_eta_budget_s with None -> Null | Some s -> Float s );
       ("prune", Bool plan.pl_prune);
       ("packed", Bool plan.pl_packed);
       ("chunk", Int plan.pl_chunk);
       ( "sample",
         match plan.pl_sample with
         | None -> Null
         | Some (count, seed) -> List [ Int count; Int seed ] );
       ("total", Int plan.pl_total);
     ]
     @
     match plan.pl_schedule with
     | `Fixed -> []
     | `Guided -> [ ("schedule", String "guided"); ("jobs", Int plan.pl_jobs) ])

let plan_of_config json =
  let open Obs.Json in
  match json with
  | Obj fields ->
    let ( let* ) = Result.bind in
    let int k =
      match List.assoc_opt k fields with
      | Some (Int n) -> Ok n
      | _ -> Error (Printf.sprintf "scan config: missing int field %S" k)
    in
    let bool k =
      match List.assoc_opt k fields with
      | Some (Bool b) -> Ok b
      | _ -> Error (Printf.sprintf "scan config: missing bool field %S" k)
    in
    let* () =
      match List.assoc_opt "workload" fields with
      | Some (String "bbsearch") -> Ok ()
      | _ -> Error "scan config: not a bbsearch configuration"
    in
    let* n = int "n" in
    if n < 1 || n > 4 then Error "scan config: 1 <= n <= 4"
    else
      let* max_input = int "max_input" in
      let* max_configs = int "max_configs" in
      let* eta_budget_s =
        match List.assoc_opt "eta_budget_s" fields with
        | Some Null | None -> Ok None
        | Some (Float s) -> Ok (Some s)
        | Some (Int s) -> Ok (Some (float_of_int s))
        | Some _ -> Error "scan config: malformed eta_budget_s"
      in
      let* prune = bool "prune" in
      let* packed = bool "packed" in
      let* chunk = int "chunk" in
      let* sample =
        match List.assoc_opt "sample" fields with
        | Some Null | None -> Ok None
        | Some (List [ Int count; Int seed ]) -> Ok (Some (count, seed))
        | Some _ -> Error "scan config: malformed sample"
      in
      let* schedule, jobs =
        match List.assoc_opt "schedule" fields with
        | None -> Ok (`Fixed, 1)
        | Some (String "guided") ->
          let* jobs = int "jobs" in
          Ok (`Guided, jobs)
        | Some _ -> Error "scan config: malformed schedule"
      in
      let p =
        plan ~jobs ~chunk ~schedule ~prune ~packed ~max_input ~max_configs
          ?eta_budget_s ?sample ~n ()
      in
      let* total = int "total" in
      if total <> p.pl_total then
        Error
          (Printf.sprintf "scan config: total %d does not match the space (%d)"
             total p.pl_total)
      else Ok p
  | _ -> Error "scan config: object expected"

(* ------------------------------------------------------ chunk running *)

(* Live progress shared by the chunks of one in-process scan; worker
   processes of a distributed scan run without one (their coordinator
   aggregates progress instead). *)
type display = {
  d_total : int;
  d_scanned : int Atomic.t;
  d_threshold : int Atomic.t;
  d_best : int Atomic.t;
  d_progress : Obs.Progress.t;
}

let examine plan part display ~weight ~assignment ~output_bits =
  part.p_scanned <- part.p_scanned + weight;
  if Obs.Metrics.enabled () then Obs.Metrics.add m_scanned weight;
  (match display with
   | None -> ()
   | Some d ->
     ignore (Atomic.fetch_and_add d.d_scanned weight);
     Obs.Progress.tick d.d_progress (fun () ->
         Printf.sprintf "%d/%d protocols, %d threshold, best eta %d"
           (Atomic.get d.d_scanned) d.d_total
           (Atomic.get d.d_threshold)
           (Atomic.get d.d_best)));
  (* all-reject output maps short-circuit *)
  if output_bits = 0 then part.p_reject_all <- part.p_reject_all + weight
  else begin
    let p = decode plan.pl_n ~pair_list:plan.pl_pair_list ~assignment ~output_bits in
    let bump_hist eta =
      part.p_threshold <- part.p_threshold + weight;
      if Obs.Metrics.enabled () then Obs.Metrics.add m_threshold weight;
      (match display with
       | None -> ()
       | Some d -> ignore (Atomic.fetch_and_add d.d_threshold weight));
      Hashtbl.replace part.p_hist eta
        (weight + Option.value (Hashtbl.find_opt part.p_hist eta) ~default:0)
    in
    let record_best eta =
      if eta > part.p_best_eta then begin
        part.p_best_eta <- eta;
        part.p_best_code <- Some (assignment, output_bits);
        (match display with
         | None -> ()
         | Some d ->
           let rec raise_disp () =
             let cur = Atomic.get d.d_best in
             if eta > cur && not (Atomic.compare_and_set d.d_best cur eta) then
               raise_disp ()
           in
           raise_disp ());
        Obs.Trace.instant "bbsearch.new_best" ~cat:"bbsearch"
          ~args:[ ("eta", string_of_int eta); ("protocol", p.Population.name) ]
      end
    in
    match
      (* eager exploration: the scan decides almost every input, so
         lazy SCC detection saves <0.1% of the nodes while its DFS
         machinery costs ~25% per node *)
      Eta_search.find ~max_configs:plan.pl_max_configs
        ?wall_budget_s:plan.pl_eta_budget_s ~packed:plan.pl_packed
        ~incremental:false p ~max_input:plan.pl_max_input
    with
    | Eta_search.Eta eta ->
      bump_hist eta;
      record_best eta
    | Eta_search.Always_accepts ->
      (* computes x >= i for every valid i up to the smallest input:
         record as threshold 2 (all populations have >= 2 agents) *)
      bump_hist 2;
      record_best 2
    | Eta_search.Always_rejects -> part.p_reject_all <- part.p_reject_all + weight
    | Eta_search.Not_threshold _ -> ()
    | exception Configgraph.Too_many_configs _ ->
      part.p_aborted <- part.p_aborted + weight;
      Obs.Metrics.incr m_aborted
    | exception Obs.Budget.Exceeded _ ->
      (* wall budget hit on this protocol: its verdict degrades to
         unknown, the scan itself keeps going *)
      part.p_aborted <- part.p_aborted + weight;
      Obs.Metrics.incr m_aborted
  end

(* One chunk of the plan, from a fresh accumulator — the unit of work a
   pool domain or a remote worker process performs. A retried or
   re-leased chunk restarts from scratch by construction, so its counts
   can never double. *)
let run_chunk ?display plan ci =
  let part = fresh_partial () in
  let lo, hi = plan_chunk_range plan ci in
  for idx = lo to hi - 1 do
    match plan.pl_codes with
    | Some codes ->
      (* sampling examines every drawn code exactly once; with pruning
         on, its canonical orbit representative is verified instead —
         same threshold result, and duplicate-orbit draws then hit the
         same protocol *)
      let assignment, output_bits = codes.(idx) in
      let assignment, output_bits =
        match plan.pl_sym with
        | None -> (assignment, output_bits)
        | Some s ->
          let a, o = Symmetry.canonical s ~assignment ~output_bits in
          (a, o)
      in
      examine plan part display ~weight:1 ~assignment ~output_bits
    | None ->
      let assignment = idx / plan.pl_num_outputs
      and output_bits = idx mod plan.pl_num_outputs in
      (match plan.pl_sym with
       | None -> examine plan part display ~weight:1 ~assignment ~output_bits
       | Some s ->
         (match Symmetry.canonical_weight s ~assignment ~output_bits with
          | Some weight -> examine plan part display ~weight ~assignment ~output_bits
          | None ->
            (* a smaller orbit member is (or will be) verified with
               this code's count folded into its weight *)
            Obs.Metrics.incr m_pruned))
  done;
  part

let scan_chunk plan ci = partial_to_json (run_chunk plan ci)

(* order-fixed reduce: folding the chunk partials left-to-right is the
   same fold the sequential scan performs over the full code space —
   for any contiguous partition *)
let merge_partials plan partials ~completed ~interrupted ~task_errors =
  let acc = fresh_partial () in
  Array.iter
    (fun part ->
      acc.p_scanned <- acc.p_scanned + part.p_scanned;
      acc.p_threshold <- acc.p_threshold + part.p_threshold;
      acc.p_reject_all <- acc.p_reject_all + part.p_reject_all;
      acc.p_aborted <- acc.p_aborted + part.p_aborted;
      if part.p_best_eta > acc.p_best_eta then begin
        acc.p_best_eta <- part.p_best_eta;
        acc.p_best_code <- part.p_best_code
      end;
      Hashtbl.iter
        (fun eta count ->
          Hashtbl.replace acc.p_hist eta
            (count + Option.value (Hashtbl.find_opt acc.p_hist eta) ~default:0))
        part.p_hist)
    partials;
  ( acc,
    {
      num_protocols = acc.p_scanned;
      num_threshold = acc.p_threshold;
      num_reject_all = acc.p_reject_all;
      num_aborted = acc.p_aborted;
      best_eta = acc.p_best_eta;
      best =
        Option.map
          (fun (assignment, output_bits) ->
            decode plan.pl_n ~pair_list:plan.pl_pair_list ~assignment
              ~output_bits)
          acc.p_best_code;
      histogram =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) acc.p_hist []
        |> List.sort Stdlib.compare;
      completed_chunks = completed;
      total_chunks = Array.length plan.pl_bounds;
      interrupted;
      task_errors;
    } )

let result_of_chunks ?(interrupted = false) ?(task_errors = 0) plan chunks =
  if Array.length chunks <> plan_chunks plan then
    invalid_arg
      (Printf.sprintf "Busy_beaver.result_of_chunks: %d chunk slots, plan has %d"
         (Array.length chunks) (plan_chunks plan));
  let completed = ref 0 in
  let partials =
    Array.mapi
      (fun i state ->
        match state with
        | None -> fresh_partial ()
        | Some j ->
          (match partial_of_json j with
           | Ok part ->
             incr completed;
             part
           | Error msg ->
             invalid_arg
               (Printf.sprintf "Busy_beaver.result_of_chunks: chunk %d: %s" i
                  msg)))
      chunks
  in
  snd
    (merge_partials plan partials ~completed:!completed ~interrupted
       ~task_errors)

(* --------------------------------------------------------------- scan *)

let scan ?(jobs = 1) ?(chunk = 1024) ?(schedule = `Fixed) ?(prune = true)
    ?(packed = true) ?(max_input = 12) ?(max_configs = 60_000) ?eta_budget_s
    ?sample ?checkpoint ?(checkpoint_every_chunks = 64)
    ?(checkpoint_every_s = 30.0) ?(resume = false) ?should_stop
    ?(on_task_error = `Fail) ~n () =
  let plan =
    plan ~jobs ~chunk ~schedule ~prune ~packed ~max_input ~max_configs
      ?eta_budget_s ?sample ~n ()
  in
  let total = plan.pl_total in
  let num_chunks = plan_chunks plan in
  let partials = Array.init num_chunks (fun _ -> fresh_partial ()) in
  let config_json = plan_config plan in
  let cp =
    match checkpoint with
    | None -> None
    | Some path ->
      let c =
        if resume && Sys.file_exists path then begin
          match Obs.Checkpoint.load path with
          | Error msg ->
            invalid_arg
              (Printf.sprintf "Busy_beaver.scan: cannot resume from %s: %s"
                 path msg)
          | Ok c ->
            if
              c.Obs.Checkpoint.config_hash
              <> Obs.Checkpoint.hash_config config_json
              || c.Obs.Checkpoint.total_chunks <> num_chunks
            then
              (* a typed error with a field-level diff: the user learns
                 which flag changed, not just that two hashes differ *)
              raise
                (Obs.Checkpoint.Mismatch
                   {
                     path;
                     diff =
                       Obs.Checkpoint.config_diff ~expected:config_json
                         ~found:c.Obs.Checkpoint.config;
                   });
            (* restore the completed chunks' accumulators *)
            for i = 0 to num_chunks - 1 do
              match Obs.Checkpoint.chunk_state c i with
              | None -> ()
              | Some j ->
                (match partial_of_json j with
                 | Ok part -> partials.(i) <- part
                 | Error msg ->
                   invalid_arg
                     (Printf.sprintf
                        "Busy_beaver.scan: checkpoint %s, chunk %d: %s" path i
                        msg))
            done;
            c
        end
        else Obs.Checkpoint.create ~config:config_json ~total_chunks:num_chunks
      in
      let writer =
        Obs.Checkpoint.writer ~every_chunks:checkpoint_every_chunks
          ~every_s:checkpoint_every_s ~path c
      in
      Some (c, writer)
  in
  let restored_chunks =
    match cp with Some (c, _) -> Obs.Checkpoint.num_done c | None -> 0
  in
  (* display-only tallies for the progress line; the authoritative
     counts live in the per-chunk partials *)
  let display =
    {
      d_total = total;
      d_scanned = Atomic.make 0;
      d_threshold = Atomic.make 0;
      d_best = Atomic.make 0;
      d_progress = Obs.Progress.create "bbsearch";
    }
  in
  Array.iter
    (fun part ->
      ignore (Atomic.fetch_and_add display.d_scanned part.p_scanned);
      ignore (Atomic.fetch_and_add display.d_threshold part.p_threshold);
      if part.p_best_eta > Atomic.get display.d_best then
        Atomic.set display.d_best part.p_best_eta)
    partials;
  let do_range ~lo ~hi:_ =
    let ci = chunk_index plan ~lo in
    (* a fresh accumulator per (re)run of the chunk, so a retried chunk
       can never double its counts *)
    partials.(ci) <- run_chunk ~display plan ci
  in
  (* cancellation: a delivered SIGINT/SIGTERM (inside the binary's
     graceful region) or the caller's token stops further chunk claims *)
  let stop_requested () =
    Obs.Shutdown.requested ()
    || (match should_stop with Some f -> f () | None -> false)
  in
  let skip_chunk =
    match cp with
    | None -> None
    | Some (c, _) -> Some (fun i -> Obs.Checkpoint.is_done c i)
  in
  let completed = Atomic.make restored_chunks in
  let on_chunk_done i =
    Atomic.incr completed;
    match cp with
    | None -> ()
    | Some (_, w) -> Obs.Checkpoint.note_done w i (partial_to_json partials.(i))
  in
  let pool_stats =
    (* the final snapshot must land even when a task failure re-raises
       out of the pool — that is the checkpoint a crash resumes from *)
    Fun.protect
      ~finally:(fun () ->
        match cp with
        | None -> ()
        | Some (_, w) ->
          (try Obs.Checkpoint.flush w
           with Sys_error msg ->
             Printf.eprintf "bbsearch: checkpoint write failed: %s\n%!" msg))
      (fun () ->
        Obs.Trace.with_span "bbsearch.scan" ~cat:"bbsearch"
          ~args:[ ("states", string_of_int n); ("total", string_of_int total) ]
          (fun () ->
            Pool.run ~jobs ~chunk ~schedule ~name:"bbsearch" ~on_task_error
              ~should_stop:stop_requested ?skip_chunk ~on_chunk_done
              ~tasks:total do_range))
  in
  let acc, result =
    merge_partials plan partials
      ~completed:(Atomic.get completed)
      ~interrupted:pool_stats.Pool.cancelled
      ~task_errors:pool_stats.Pool.task_errors
  in
  Obs.Progress.finish display.d_progress (fun () ->
      Printf.sprintf "%d protocols scanned, %d threshold, best eta %d"
        acc.p_scanned acc.p_threshold acc.p_best_eta);
  result

let iter_protocols ?sample ~n f =
  check_n "iter_protocols" n;
  let pair_list = pairs n in
  let np = Array.length pair_list in
  let rec pow b e acc = if e = 0 then acc else pow b (e - 1) (acc * b) in
  let num_assignments = pow np np 1 in
  let num_outputs = 1 lsl n in
  match sample with
  | None ->
    for assignment = 0 to num_assignments - 1 do
      for output_bits = 0 to num_outputs - 1 do
        f (decode n ~pair_list ~assignment ~output_bits)
      done
    done
  | Some (count, seed) ->
    Array.iter
      (fun (assignment, output_bits) ->
        f (decode n ~pair_list ~assignment ~output_bits))
      (sample_codes ~seed ~count ~num_assignments ~num_outputs)
