(** Empirical busy-beaver search (Definition 1 / Section 4.1): enumerate
    small protocols and measure the largest threshold any of them
    computes.

    The search enumerates deterministic, complete, leaderless protocols
    with [n] states and input state 0, decides each input up to a
    cutoff with the exact semantics, and keeps the protocols whose
    verdicts form a threshold pattern [0*1*]. Thresholds beyond the
    cutoff cannot be certified (Section 4.1 explains why this is
    fundamentally hard — it is VAS-reachability territory), so results
    are reported as {e apparent} busy-beaver values.

    The scan is a sharded pipeline: the code space is cut into
    fixed-size chunks, chunks are claimed dynamically by a domain pool
    ({!Pool}), and per-chunk partial results are reduced in chunk index
    order — so aggregates are byte-identical for every [jobs] and
    [chunk] setting. Symmetry pruning ({!Symmetry}) skips
    non-canonical codes and weights canonical ones by their orbit size,
    which preserves every aggregate exactly while verifying only one
    protocol per isomorphism class. *)

type scan_result = {
  num_protocols : int;       (** protocols enumerated (or sampled) *)
  num_threshold : int;       (** with a certified threshold pattern up to the cutoff *)
  num_reject_all : int;      (** reject every checked input (threshold may exceed cutoff) *)
  num_aborted : int;
      (** verdict unknown: the verifier hit its node budget
          ({!Configgraph.Too_many_configs}) or the [eta_budget_s] wall
          budget on these protocols *)
  best_eta : int;            (** largest threshold seen *)
  best : Population.t option;
  histogram : (int * int) list;  (** threshold value -> number of protocols *)
  completed_chunks : int;    (** chunks finished, restored ones included *)
  total_chunks : int;
  interrupted : bool;
      (** the scan stopped early — a signal or [should_stop] fired; the
          aggregates cover only the completed chunks *)
  task_errors : int;         (** failed chunk attempts (see {!Pool.stats}) *)
}

val scan :
  ?jobs:int ->
  ?chunk:int ->
  ?schedule:Pool.schedule ->
  ?prune:bool ->
  ?packed:bool ->
  ?max_input:int ->
  ?max_configs:int ->
  ?eta_budget_s:float ->
  ?sample:int * int ->
  ?checkpoint:string ->
  ?checkpoint_every_chunks:int ->
  ?checkpoint_every_s:float ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?on_task_error:Pool.error_policy ->
  n:int ->
  unit ->
  scan_result
(** [scan ~n ()] enumerates all [P^P · 2^n] protocols, where
    [P = n(n+1)/2] (transition assignments times output maps). With
    [~sample:(count, seed)] a uniform random sample is scanned instead —
    required in practice for [n >= 4]; sampled codes are drawn with a
    per-index split of the seed, so sample [i] is the same regardless of
    [jobs]/[chunk].

    [?jobs] (default 1) domains share the scan; [?chunk] (default 1024)
    is the dynamic-scheduling granule. Any setting of either produces
    byte-identical aggregates. [?schedule] (default [`Fixed]) selects
    the {!Pool.schedule}: under [`Guided] chunk sizes descend from
    [chunk] to 1 (cutting the straggler tail on wide chunks) — the
    aggregate is still byte-identical, but the chunk partition (and so
    the checkpoint fingerprint) then depends on [jobs].
    [?prune] (default true) enables symmetry
    pruning: with it, [num_protocols] still counts the {e full} space
    (orbit-weighted), and [best] may be any member of the best orbit.
    [?packed] (default true) selects the packed configuration-graph
    representation in the verifier. Defaults: [max_input = 12],
    [max_configs = 60_000].

    {b Robustness.} [?eta_budget_s] caps the wall-clock spent verifying
    any single protocol; over-budget protocols count into [num_aborted]
    (unknown verdict) instead of killing the scan — note wall budgets
    make which protocols abort machine-dependent, so leave it off when
    byte-identical reruns matter. [?on_task_error] (default [`Fail]) is
    the {!Pool.run} fault policy for unexpected per-chunk exceptions.
    [?should_stop] is a cancellation token polled between chunks;
    {!Obs.Shutdown.requested} is always polled alongside it, so a
    SIGINT/SIGTERM delivered inside {!Obs.Shutdown.with_graceful} drains
    the scan cleanly ([interrupted] is then set).

    {b Checkpoint/resume.} With [?checkpoint:path] the scan snapshots
    its completed-chunk bitmap and per-chunk accumulators to [path]
    (atomic tmp+rename; every [?checkpoint_every_chunks], default 64, or
    [?checkpoint_every_s], default 30, whichever first, plus a final
    snapshot on every exit path). With [~resume:true] an existing
    snapshot is loaded first: completed chunks are skipped and their
    accumulators restored, and the finished aggregate is byte-identical
    to an uninterrupted run — chunk content depends only on the code
    index, and the reduce is in chunk-index order.
    @raise Obs.Checkpoint.Mismatch when resuming from a snapshot whose
    configuration fingerprint (n, cutoffs, chunk, sample seed/count, …)
    does not match — the exception carries a field-level diff of the
    two configurations.
    @raise Invalid_argument when the snapshot file is unreadable or
    malformed. *)

(** {2 Range-addressed scanning}

    The distributed scan's entry points: a {!plan} pins the entire scan
    configuration (code space, cutoffs, pruning, sampling, chunk
    partition), {!scan_chunk} runs one chunk of it to a serialised
    accumulator, and {!result_of_chunks} merges per-chunk accumulators
    — local or received over the wire — in index order. Two processes
    holding equal plans compute byte-identical accumulators for equal
    chunk indices, so a coordinator can hand chunk ranges to worker
    processes (fork or TCP), collect the JSON states, and reproduce the
    single-process [scan ~jobs:1] result byte for byte. {!scan} itself
    is built on the same functions. *)

type plan

val plan :
  ?jobs:int ->
  ?chunk:int ->
  ?schedule:Pool.schedule ->
  ?prune:bool ->
  ?packed:bool ->
  ?max_input:int ->
  ?max_configs:int ->
  ?eta_budget_s:float ->
  ?sample:int * int ->
  n:int ->
  unit ->
  plan
(** Same defaults as {!scan}. [jobs] shapes the partition only under
    [`Guided]. *)

val plan_config : plan -> Obs.Json.t
(** The canonical configuration object — what {!scan} fingerprints into
    checkpoints and what a coordinator sends to joining workers. *)

val plan_of_config : Obs.Json.t -> (plan, string) result
(** Rebuild a plan from {!plan_config} output: a worker process derives
    its entire scan — sample codes included — from the coordinator's
    welcome message, so the two cannot disagree. *)

val plan_chunks : plan -> int
(** Number of chunks in the partition. *)

val plan_total : plan -> int
(** Number of codes scanned (the task count). *)

val plan_chunk_range : plan -> int -> int * int
(** [plan_chunk_range p ci] is the code-index range [\[lo, hi)] of
    chunk [ci]. *)

val scan_chunk : plan -> int -> Obs.Json.t
(** Run chunk [ci] from a fresh accumulator and serialise the result —
    deterministic: equal plans and indices give byte-equal JSON in any
    process. *)

val result_of_chunks :
  ?interrupted:bool ->
  ?task_errors:int ->
  plan ->
  Obs.Json.t option array ->
  scan_result
(** Merge one accumulator slot per chunk ([None] = chunk not run) in
    index order. With every slot filled by {!scan_chunk} output, the
    result equals the [scan ~jobs:1] result byte for byte.
    @raise Invalid_argument on a malformed accumulator or a slot-count
    mismatch. *)

val num_deterministic_protocols : int -> int
(** [P^P · 2^n] (may overflow for [n >= 5]; the busy beaver of
    enumeration itself). *)

val protocol_of_code :
  n:int -> assignment:int -> output_bits:int -> Population.t
(** Decode one point of the code space: [assignment] is a base-[P]
    number whose digit [i] names the target pair of ordered-pair [i];
    [output_bits] is the output bitmap ([bit s] set iff state [s] maps
    to true). This is the enumeration {!scan} walks. *)

val iter_protocols :
  ?sample:int * int -> n:int -> (Population.t -> unit) -> unit
(** Enumerate (or uniformly sample) the same deterministic complete
    leaderless protocol space that {!scan} searches, calling the
    function on each protocol. Used by {!Section_4_1}. *)

(** The symmetry group of the code space: state permutations fixing the
    input state 0 (isomorphic to [S_{n-1}]). Relabelling states by such
    a permutation yields an isomorphic protocol — same decided
    predicate, same threshold — so {!scan} only verifies the
    lexicographically least code of each orbit and scales its counts by
    the orbit size. *)
module Symmetry : sig
  type t

  val make : int -> t
  (** Precompute the group for [n] states (order [(n-1)!]). *)

  val order : t -> int

  val orbit : t -> assignment:int -> output_bits:int -> (int * int) list
  (** All distinct codes in the orbit, self included. *)

  val canonical : t -> assignment:int -> output_bits:int -> int * int
  (** Lexicographically least member of the orbit. *)

  val canonical_weight : t -> assignment:int -> output_bits:int -> int option
  (** [Some orbit_size] iff the code is its orbit's canonical member,
      [None] otherwise. Summing the weights over all canonical codes
      recovers the full code-space cardinality. *)
end
