(* A worker's entire scan comes from the coordinator's config bytes —
   see Dist.Worker. *)
let worker_runner config =
  match Busy_beaver.plan_of_config config with
  | Ok plan ->
    Ok
      {
        Dist.Worker.scan = Busy_beaver.scan_chunk plan;
        range = Some (Busy_beaver.plan_chunk_range plan);
      }
  | Error e -> Error e

(* Writing to a worker that died between select rounds must surface as
   EPIPE (handled), not kill the process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

type outcome = {
  result : Busy_beaver.scan_result;
  stats : Dist.Coordinator.stats;
}

let m_restarts = Obs.Metrics.counter "coordinator.restarts"

(* Same open-or-resume logic as Busy_beaver.scan, plus the v2 adoption
   step: bump the epoch and persist it *before* any grant goes out, so
   grants of a previous (crashed) coordinator can never be mistaken for
   this run's. Every recovery step leaves an events/metrics trail:
   [coordinator.restarts] counts prior lives (epoch - 1 on adoption)
   and a [dist.recovery] record says what was rehydrated. *)
let open_ledger ~path ~resume ~config_json ~num_chunks =
  let c, resumed =
    if resume && Sys.file_exists path then begin
      match Obs.Checkpoint.load path with
      | Error msg ->
        invalid_arg
          (Printf.sprintf "Distributed_scan: cannot resume from %s: %s" path msg)
      | Ok c ->
        if
          c.Obs.Checkpoint.config_hash <> Obs.Checkpoint.hash_config config_json
          || c.Obs.Checkpoint.total_chunks <> num_chunks
        then
          raise
            (Obs.Checkpoint.Mismatch
               {
                 path;
                 diff =
                   Obs.Checkpoint.config_diff ~expected:config_json
                     ~found:c.Obs.Checkpoint.config;
               });
        (c, true)
    end
    else (Obs.Checkpoint.create ~config:config_json ~total_chunks:num_chunks, false)
  in
  let epoch = Obs.Checkpoint.bump_epoch c in
  (* leases stamped by previous lives are dead letters in the new
     epoch — their holders (if still alive) carry stale grant stamps
     the coordinator will drop anyway. Clear them so the ledger's lease
     table only ever describes the current epoch. *)
  let stale_leases = ref 0 in
  for i = 0 to num_chunks - 1 do
    match Obs.Checkpoint.lease c i with
    | Some { Obs.Checkpoint.lease_epoch; _ } when lease_epoch < epoch ->
      incr stale_leases;
      Obs.Checkpoint.clear_lease c i
    | _ -> ()
  done;
  Obs.Checkpoint.save ~path c;
  if resumed then begin
    Obs.Metrics.add m_restarts (epoch - 1);
    if Obs.Events.enabled () then
      Obs.Events.emit "dist.recovery"
        ~data:
          [
            ("path", Obs.Json.String path);
            ("epoch", Obs.Json.Int epoch);
            ("done_chunks", Obs.Json.Int (Obs.Checkpoint.num_done c));
            ("total_chunks", Obs.Json.Int num_chunks);
            ("stale_leases_cleared", Obs.Json.Int !stale_leases);
          ]
  end;
  c

(* Chaos stream numbering keeps both endpoints of every connection on
   independent Splitmix64 substreams of the same seed: the coordinator
   numbers its streams by accept order (0, 1, 2, ...), forked children
   take 10000+idx, TCP workers 20000+session. *)
let child_chaos ~chaos_net ~idx =
  match chaos_net with
  | None -> None
  | Some spec -> Some (Dist.Chaos.create spec ~conn:(10_000 + idx))

let child_main ~idx ~chaos_kill ~chaos_net ~heartbeat_timeout ~fd =
  (* the inherited trace/events/export channels (buffers included)
     belong to the parent — recording from here would interleave
     garbage into its files. Detach, don't stop: stop would close the
     parent's fds. The worker's own telemetry restarts from the
     Welcome when the coordinator asks for it. *)
  Obs.Trace.detach ();
  Obs.Events.detach ();
  Obs.Export.detach ();
  let kills =
    match chaos_kill with Some (w, k) when w = idx -> Some k | _ -> None
  in
  let count = ref 0 in
  let on_chunk_done _ =
    incr count;
    match kills with
    | Some k when !count >= k -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()
  in
  let name = Printf.sprintf "fork%d-%d" idx (Unix.getpid ()) in
  (* cadence scales with the coordinator's expiry horizon (identical to
     the old fixed 2s/5s at the default 10s timeout): grants are gated
     on beat freshness, so a child must beat well inside the timeout,
     and a lost Welcome must be retried before the scan gives up on
     it *)
  let heartbeat_every = Float.min 2.0 (heartbeat_timeout /. 4.0) in
  let welcome_timeout =
    Float.min 5.0 (Float.max 0.25 (heartbeat_timeout /. 2.0))
  in
  match
    Dist.Worker.run ~heartbeat_every ~welcome_timeout
      ?chaos:(child_chaos ~chaos_net ~idx) ~on_chunk_done ~name ~fd
      ~runner:worker_runner ()
  with
  | Ok () -> Unix._exit 0
  | Error e ->
    (* stderr only: the child shares the parent's stdout buffers, and
       [_exit] below is what keeps those from double-flushing *)
    output_string stderr (Printf.sprintf "bbsearch worker %s: %s\n" name e);
    flush stderr;
    Unix._exit 1

let coordinate ?(workers = 0) ?serve ?(heartbeat_timeout = 10.0)
    ?(max_batch = 16) ?checkpoint ?(checkpoint_every_chunks = 64)
    ?(checkpoint_every_s = 30.0) ?(resume = false) ?should_stop ?chaos_kill
    ?chaos_net ?telemetry ~plan () =
  if workers < 0 then invalid_arg "Distributed_scan.coordinate: workers >= 0";
  if workers = 0 && serve = None then
    invalid_arg "Distributed_scan.coordinate: no worker source (workers=0, no serve)";
  ignore_sigpipe ();
  let num_chunks = Busy_beaver.plan_chunks plan in
  let config_json = Busy_beaver.plan_config plan in
  let cp =
    match checkpoint with
    | None -> None
    | Some path ->
      let c = open_ledger ~path ~resume ~config_json ~num_chunks in
      let writer =
        Obs.Checkpoint.writer ~every_chunks:checkpoint_every_chunks
          ~every_s:checkpoint_every_s ~path c
      in
      Some (c, writer)
  in
  let epoch = match cp with Some (c, _) -> Obs.Checkpoint.epoch c | None -> 1 in
  (* per-chunk accumulator slots — the authoritative state; the
     checkpoint mirrors it to disk *)
  let slots = Array.make num_chunks None in
  (match cp with
  | Some (c, _) ->
    for i = 0 to num_chunks - 1 do
      slots.(i) <- Obs.Checkpoint.chunk_state c i
    done
  | None -> ());
  (* socketpairs before any fork, so each child can close every end it
     does not own *)
  let pairs =
    Array.init workers (fun _ ->
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let fork_or_explain () =
    try Unix.fork ()
    with Failure msg when workers > 0 ->
      (* OCaml 5 forbids fork once any domain was ever spawned — e.g. a
         prior [Busy_beaver.scan ~jobs:(>1)] in this same process *)
      invalid_arg
        (Printf.sprintf
           "Distributed_scan: cannot fork workers (%s); a domain was \
            already spawned in this process (e.g. an earlier --jobs \
            scan) — fork first, or use --serve with external \
            --connect workers"
           msg)
  in
  let pids =
    Array.mapi
      (fun i (_parent_fd, child_fd) ->
        match fork_or_explain () with
        | 0 ->
          (* the parent has already closed the child ends of earlier
             workers, so some of these fds are gone — EBADF is fine *)
          let close_quiet fd =
            try Unix.close fd with Unix.Unix_error _ -> ()
          in
          Array.iteri
            (fun j (p, c) ->
              close_quiet p;
              if j <> i then close_quiet c)
            pairs;
          (match serve with Some fd -> close_quiet fd | None -> ());
          child_main ~idx:i ~chaos_kill ~chaos_net ~heartbeat_timeout
            ~fd:child_fd
        | pid ->
          Unix.close child_fd;
          pid)
      pairs
  in
  let on_result ~chunk state =
    slots.(chunk) <- Some state;
    match cp with
    | None -> ()
    | Some (_, w) -> Obs.Checkpoint.note_done w chunk state
  in
  let on_grant ~worker ~lo ~hi =
    match cp with
    | None -> ()
    | Some (c, _) ->
      for i = lo to hi - 1 do
        Obs.Checkpoint.set_lease c i ~holder:worker
      done
  in
  let on_reclaim ~worker:_ ~chunks =
    match cp with
    | None -> ()
    | Some (c, _) -> List.iter (fun i -> Obs.Checkpoint.clear_lease c i) chunks
  in
  let stop_requested () =
    Obs.Shutdown.requested ()
    || (match should_stop with Some f -> f () | None -> false)
  in
  let stats =
    Fun.protect
      ~finally:(fun () ->
        (* reap every forked child — the chaos-killed one included —
           and land the final snapshot *)
        Array.iter
          (fun pid ->
            try ignore (Unix.waitpid [] pid)
            with Unix.Unix_error _ -> ())
          pids;
        match cp with
        | None -> ()
        | Some (_, w) ->
          (try Obs.Checkpoint.flush w
           with Sys_error msg ->
             Printf.eprintf "bbsearch: checkpoint write failed: %s\n%!" msg))
      (fun () ->
        Obs.Export.set_identity [ ("role", "coordinator") ];
        Obs.Trace.with_span "bbsearch.coordinate" ~cat:"dist"
          ~args:
            [
              ("workers", string_of_int workers);
              ("chunks", string_of_int num_chunks);
            ]
          (fun () ->
            Dist.Coordinator.run ?accept:serve
              ~fds:(Array.to_list (Array.map fst pairs))
              ~heartbeat_timeout ~max_batch ?chaos:chaos_net
              ~should_stop:stop_requested
              ~on_grant ~on_reclaim ?telemetry ~config:config_json
              ~config_hash:(Obs.Checkpoint.hash_config config_json)
              ~epoch ~total_chunks:num_chunks
              ~completed:(fun i -> slots.(i) <> None)
              ~on_result ()))
  in
  let result =
    Busy_beaver.result_of_chunks
      ~interrupted:stats.Dist.Coordinator.interrupted plan slots
  in
  { result; stats }

let resolve host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        invalid_arg (Printf.sprintf "Distributed_scan: cannot resolve %s" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
        invalid_arg (Printf.sprintf "Distributed_scan: cannot resolve %s" host))
  in
  Unix.ADDR_INET (addr, port)

let listen ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (resolve host port);
  Unix.listen fd 16;
  fd

let connect_worker ?name ?heartbeat_every ?chaos_kill ?chaos_net
    ?(reconnect = true) ?max_attempts ?backoff_base ~host ~port () =
  ignore_sigpipe ();
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s-%d" (Unix.gethostname ()) (Unix.getpid ())
  in
  Obs.Export.set_identity [ ("role", "worker"); ("worker", name) ];
  let count = ref 0 in
  let on_chunk_done _ =
    incr count;
    match chaos_kill with
    | Some k when !count >= k -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()
  in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (resolve host port) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s:%d: %s" host port
           (Unix.error_message e))
    | () -> Ok fd
  in
  if reconnect then
    (* the session layer owns the fds; the chunk cache rides across
       sessions so a Result lost to a dying connection is resent, not
       recomputed, once the redial's rejoin handshake lands *)
    Dist.Worker.run_reconnect ?heartbeat_every ?max_attempts ?backoff_base
      ~jitter_seed:(Hashtbl.hash (host, port))
      ?chaos_for:
        (match chaos_net with
         | None -> None
         | Some spec ->
           Some (fun session -> Some (Dist.Chaos.create spec ~conn:(20_000 + session))))
      ~on_chunk_done ~name ~connect ~runner:worker_runner ()
  else
    match connect () with
    | Error e -> Error e
    | Ok fd ->
      let chaos =
        match chaos_net with
        | None -> None
        | Some spec -> Some (Dist.Chaos.create spec ~conn:20_000)
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Dist.Worker.run ?heartbeat_every ?chaos ~on_chunk_done ~name ~fd
            ~runner:worker_runner ())
