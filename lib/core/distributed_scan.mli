(** Multi-process busy-beaver scans: a coordinator leases chunk ranges
    of a {!Busy_beaver.plan} to worker {e processes} — forked locally
    over socketpairs, or connecting over TCP — and merges their
    per-chunk accumulators in index order, so the distributed result is
    byte-identical to [Busy_beaver.scan ~jobs:1] of the same plan.

    The fault story is the whole point: a worker that dies (crash,
    SIGKILL, unplugged machine) merely returns its leased chunks to the
    pool; the survivors re-run them. The shared {!Obs.Checkpoint}
    ledger (v2) persists completed chunks {e and} the live lease table,
    so a killed {e coordinator} resumes too — it bumps the ledger's
    epoch on adoption, which makes any result from a previous life's
    grant recognisably stale.

    Determinism: chunk content depends only on (plan, chunk index) —
    never on which process ran it or when — and the final reduce is
    index-ordered, so worker count, scheduling, crashes and
    reassignments are all invisible in the aggregate. *)

type outcome = {
  result : Busy_beaver.scan_result;
  stats : Dist.Coordinator.stats;
}

val coordinate :
  ?workers:int ->
  ?serve:Unix.file_descr ->
  ?heartbeat_timeout:float ->
  ?max_batch:int ->
  ?checkpoint:string ->
  ?checkpoint_every_chunks:int ->
  ?checkpoint_every_s:float ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?chaos_kill:int * int ->
  ?chaos_net:Dist.Chaos.spec ->
  ?telemetry:bool ->
  plan:Busy_beaver.plan ->
  unit ->
  outcome
(** Run a distributed scan of [plan] to completion as its coordinator.

    [workers] (default 0) forks that many local worker processes, each
    wired up over a socketpair; [serve] additionally (or instead)
    accepts TCP workers on an already-listening socket (see
    {!listen}). At least one of the two must be able to produce a
    worker. Workers derive their plan from the coordinator's
    {!Busy_beaver.plan_config} bytes, never from their own flags.

    [checkpoint]/[resume] work as in {!Busy_beaver.scan} — same file,
    same fingerprint, same {!Obs.Checkpoint.Mismatch} on a flag change
    — plus the v2 extras: the epoch is bumped (and persisted) when the
    ledger is adopted, and every snapshot carries the live lease
    table. [should_stop] (polled alongside {!Obs.Shutdown.requested})
    drains the scan early with [result.interrupted] set.

    OCaml 5 restriction: [Unix.fork] is forbidden in a process that
    has ever spawned a domain, so with [workers > 0] this must be
    called before any [Domain.spawn] (in particular before any
    [Busy_beaver.scan ~jobs:(>1)] in the same process).

    [chaos_kill:(w, k)] is the fault-injection hook for tests and CI:
    forked worker index [w] SIGKILLs {e itself} after completing [k]
    chunks — exercising EOF detection, lease reassignment and the
    byte-identity of the merged result under a real mid-scan crash.
    [chaos_net] arms deterministic {e transport} fault injection
    ({!Dist.Chaos}) on both sides of every connection: the coordinator
    mangles its outbound frames and each forked child mangles its own,
    all on independent Splitmix64 substreams of the spec's seed — the
    same spec replays the same fault schedule. The scan rides it out
    (CRC skip, progress-expiry, re-grant, duplicate drop) and the
    merged result stays byte-identical.

    Resuming a ledger emits a [dist.recovery] event (epoch, done
    chunks, stale leases cleared) and adds the prior life count to the
    [coordinator.restarts] metric; leases stamped by earlier epochs
    are cleared on adoption.

    [telemetry] is passed through to {!Dist.Coordinator.run}: workers
    stream metric deltas and event batches up, the coordinator merges
    them into its {!Obs.Export} snapshots ([ppmetrics/v2] fleet
    section) and its ppevents log (offset-aligned, worker-tagged).
    Defaults to on exactly when a local observability sink is live;
    either way the scan result is byte-identical. Forked children
    detach every inherited observability channel before serving.

    All forked children are reaped before returning. *)

val listen : ?host:string -> port:int -> unit -> Unix.file_descr
(** Bind and listen a TCP socket for [?serve] ([host] defaults to
    ["127.0.0.1"]; port 0 picks a free port — recover it with
    [Unix.getsockname]). The caller closes it when done. *)

val connect_worker :
  ?name:string ->
  ?heartbeat_every:float ->
  ?chaos_kill:int ->
  ?chaos_net:Dist.Chaos.spec ->
  ?reconnect:bool ->
  ?max_attempts:int ->
  ?backoff_base:float ->
  host:string ->
  port:int ->
  unit ->
  (unit, string) result
(** Join a coordinator at [host:port] as a TCP worker and serve chunks
    until its {!Dist.Wire.Shutdown}. [name] defaults to
    ["<hostname>-<pid>"]. [chaos_kill:k] SIGKILLs the process after
    [k] chunks (tests); [chaos_net] mangles this side's outbound
    frames deterministically ({!Dist.Chaos}).

    [reconnect] (default true) redials through
    {!Dist.Worker.run_reconnect} when the connection drops — or was
    never up — with exponential backoff and deterministic jitter, up
    to [max_attempts] (default 6) consecutive failures, keeping the
    same worker identity and its computed-chunk cache across sessions:
    a coordinator restart ([--serve --resume]) sees the worker rejoin
    mid-scan and any completed-but-unacked chunk is resent, not
    redone. Returns [Error _] when the coordinator stays gone or
    rejects — the exit diagnostic, not an exception. *)
