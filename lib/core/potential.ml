let input_state p =
  if Array.length p.Population.input_vars <> 1 then
    invalid_arg "Potential: single-input protocols only";
  p.Population.input_map.(0)

let system p =
  if not (Population.is_leaderless p) then
    invalid_arg "Potential.system: leaderless protocols only";
  let x = input_state p in
  let d = Population.num_states p in
  let nt = Population.num_transitions p in
  let rows =
    List.filter_map
      (fun q ->
        if q = x then None
        else
          Some
            (Array.init nt (fun t -> Intvec.get (Population.displacement p t) q)))
      (List.init d Fun.id)
  in
  Diophantine.make (Array.of_list rows) ~num_vars:nt

let is_potentially_realisable p pi = Diophantine.is_solution_geq (system p) pi

let basis ?jobs ?chunk ?max_candidates p =
  Hilbert_basis.solve_geq ?jobs ?chunk ?max_candidates (system p)

let displacement p pi = Population.displacement_of_multiset p pi

let size (pi : int array) = Array.fold_left ( + ) 0 pi

let min_input p pi =
  let x = input_state p in
  Stdlib.max 0 (-Intvec.get (displacement p pi) x)

let result_config p pi =
  let i = min_input p pi in
  let x = input_state p in
  let delta = displacement p pi in
  let d = Population.num_states p in
  let c =
    Array.init d (fun q ->
        let base = if q = x then i else 0 in
        base + Intvec.get delta q)
  in
  (i, Mset.of_array c)

let decompose p pi =
  let sys = system p in
  Hilbert_basis.decompose_geq sys ~basis:(basis p) pi

let check_corollary_5_7 p basis_elements =
  let xi = Factorial_bounds.xi_of_protocol p in
  let leq_xi n = Bignat.compare (Bignat.of_int n) xi <= 0 in
  let half_xi_ok n = Bignat.compare (Bignat.of_int (2 * n)) xi <= 0 in
  List.for_all
    (fun pi ->
      let i, c = result_config p pi in
      is_potentially_realisable p pi
      && half_xi_ok (size pi)
      && leq_xi i
      && leq_xi (Mset.size c))
    basis_elements
