(** Potentially realisable transition multisets (Definition 4) and their
    Pottier basis (Corollary 5.7).

    For a leaderless single-input protocol, a multiset [π ∈ N^T] is
    potentially realisable iff [Δ_π(q) >= 0] for every state [q] other
    than the input state — a homogeneous system of [|Q| - 1] Diophantine
    inequalities over [|T|] variables, whose Hilbert basis this module
    computes and checks against the Pottier constant
    [ξ = 2(2|T|+1)^|Q|]. *)

val input_state : Population.t -> int
(** @raise Invalid_argument unless the protocol has one input variable. *)

val system : Population.t -> Diophantine.t
(** The system of Section 5.4. Requires a leaderless protocol. *)

val is_potentially_realisable : Population.t -> int array -> bool

val basis :
  ?jobs:int -> ?chunk:int -> ?max_candidates:int -> Population.t ->
  int array list
(** Hilbert basis of {!system} (Corollary 5.7's basis). [jobs]/[chunk]
    parallelise the completion (see {!Hilbert_basis.solve_eq}); the
    basis is identical for any setting. *)

val displacement : Population.t -> int array -> Intvec.t
(** [Δ_π]. *)

val size : int array -> int
(** [|π|], the total number of transition occurrences. *)

val min_input : Population.t -> int array -> int
(** The least [i] with [IC(i) ⟹π C] for some configuration [C >= 0]:
    [max 0 (-Δ_π(x))]. *)

val result_config : Population.t -> int array -> int * Mset.t
(** [(i, C)] with [i] minimal such that [IC(i) ⟹π C]; then [C(x) = 0]
    whenever [Δ_π(x) <= 0] (the normalisation used by Corollary 5.7). *)

val decompose : Population.t -> int array -> int array list option
(** Corollary 5.7's generation property: write a potentially realisable
    multiset as a sum of Pottier-basis elements (with multiplicity);
    [None] if the argument is not potentially realisable. Computes the
    basis internally — cache it via {!basis} +
    {!Hilbert_basis.decompose_geq} in hot paths. *)

val check_corollary_5_7 : Population.t -> int array list -> bool
(** Every basis element [π] satisfies [|π| <= ξ/2], its minimal input
    is at most [ξ], and its result configuration has size at most [ξ]. *)
