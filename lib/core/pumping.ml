type witness = {
  protocol : Population.t;
  a : int;
  b : int;
  c_a : Mset.t;
  c_ab : Mset.t;
  omega : Omega_vec.t;
}

let stable_union_downset analysis = Stable_sets.stable_union analysis

(* First stable configuration in BFS order from [c0]. *)
let first_stable ?max_configs p sc c0 =
  let g = Configgraph.explore ?max_configs p c0 in
  let n = Configgraph.num_configs g in
  let rec go i =
    if i >= n then None
    else begin
      let c = g.Configgraph.configs.(i) in
      if Downset.mem c sc then Some c else go (i + 1)
    end
  in
  go 0

let add_inputs p c j =
  let x = Potential.input_state p in
  Mset.add c (Mset.scale j (Mset.singleton (Mset.dim c) x))

let sequence ?max_configs p analysis ~first ~count =
  let sc = stable_union_downset analysis in
  let rec go i c_prev acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let start =
        match c_prev with
        | None -> Population.initial_single p i
        | Some c -> add_inputs p c 1
      in
      match first_stable ?max_configs p sc start with
      | None -> failwith "Pumping.sequence: no stable configuration reachable"
      | Some c -> go (i + 1) (Some c) ((i, c) :: acc) (remaining - 1)
    end
  in
  go first None [] count

(* The Dickson-plus-basis-element condition of Theorem 4.5: C_k <= C_l,
   some maximal ω-vector v of SC contains C_l, and the difference is
   supported on v's ω-coordinates (so both lie in the same basis element
   (B, S) with B = C_k zeroed on S). *)
let compatible sc_vectors c_k c_l =
  if not (Mset.leq c_k c_l) then None
  else begin
    let diff = Intvec.sub (Mset.to_intvec c_l) (Mset.to_intvec c_k) in
    let diff_support = Intvec.support diff in
    List.find_opt
      (fun v ->
        Omega_vec.member c_l v
        && List.for_all
             (fun q -> match Omega_vec.get v q with Omega_vec.Omega -> true | _ -> false)
             diff_support)
      sc_vectors
  end

let find_witness ?max_configs ?(first = 2) p ~max_input =
  if Array.length p.Population.input_vars <> 1 then
    Error "single-input protocols only"
  else begin
    let analysis = Stable_sets.analyse p in
    let sc_vectors = Downset.max_elements (stable_union_downset analysis) in
    match
      sequence ?max_configs p analysis ~first ~count:(max_input - first + 1)
    with
    | exception Failure msg -> Error msg
    | seq ->
      let arr = Array.of_list seq in
      let n = Array.length arr in
      let rec scan k l =
        if k >= n then Error "no Dickson witness below the cutoff"
        else if l >= n then scan (k + 1) (k + 2)
        else begin
          let a, c_a = arr.(k) and ab, c_ab = arr.(l) in
          match compatible sc_vectors c_a c_ab with
          | Some v -> Ok { protocol = p; a; b = ab - a; c_a; c_ab; omega = v }
          | None -> scan k (l + 1)
        end
      in
      scan 0 1
  end

let reaches ?max_configs p c0 target =
  let g = Configgraph.explore ?max_configs p c0 in
  Configgraph.can_reach_config g ~src:g.Configgraph.root target

let check ?max_configs w =
  let p = w.protocol in
  let analysis = Stable_sets.analyse p in
  let sc = stable_union_downset analysis in
  let sc_vectors = Downset.max_elements sc in
  Mset.leq w.c_a w.c_ab
  && w.b >= 1
  && Downset.mem w.c_a sc
  && Downset.mem w.c_ab sc
  && (match compatible sc_vectors w.c_a w.c_ab with
     | Some _ -> true
     | None -> false)
  && List.exists (Omega_vec.equal w.omega) sc_vectors
  && Omega_vec.member w.c_ab w.omega
  && reaches ?max_configs p (Population.initial_single p w.a) w.c_a
  && reaches ?max_configs p (add_inputs p w.c_a w.b) w.c_ab

let pp fmt w =
  let names = w.protocol.Population.states in
  Format.fprintf fmt
    "@[<v>pumping witness: eta <= %d (period %d)@,C_a = %a@,C_a+b = %a@,basis vector %a@]"
    w.a w.b (Mset.pp ~names) w.c_a (Mset.pp ~names) w.c_ab
    (Omega_vec.pp ~names) w.omega
