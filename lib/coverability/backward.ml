type stats = {
  iterations : int;
  added : int;
}

let m_fixpoints = Obs.Metrics.counter "backward.fixpoints"
let m_candidates = Obs.Metrics.counter "backward.candidates"
let m_added = Obs.Metrics.counter "backward.added"
let m_pruned = Obs.Metrics.counter "backward.pruned"
let m_generations = Obs.Metrics.counter "backward.generations"

(* Least configuration that enables transition [t] and whose [t]-successor
   covers [m]: pointwise max of the transition's precondition and
   [m - Δ_t] (clamped at zero). *)
let pre_element p ti m =
  let d = Population.num_states p in
  let { Population.pre = a, b; _ } = p.Population.transitions.(ti) in
  let delta = Population.displacement p ti in
  let v =
    Array.init d (fun i ->
        let need = Mset.get m i - Intvec.get delta i in
        Stdlib.max 0 need)
  in
  v.(a) <- Stdlib.max v.(a) (if a = b then 2 else 1);
  if a <> b then v.(b) <- Stdlib.max v.(b) 1;
  Mset.of_array v

(* Generation-synchronous fixpoint: each round expands the whole current
   frontier. Per-candidate work — the [pre_element] computation and the
   membership test against the upset as it stood at the start of the
   generation — is embarrassingly parallel, and the membership pre-filter
   is sound because the upset only grows: a candidate already covered by
   the snapshot stays covered. Candidates that survive the pre-filter go
   through the authoritative [Upset.add] in the sequential index-ordered
   reduction, so the computed basis — and, because candidates are counted
   per generation as [|frontier| * |T|] regardless of scheduling — every
   counter is byte-identical for any [jobs]/[chunk] setting. *)
let pre_star_stats ?(jobs = 1) ?(chunk = 4) p u =
  let nt = Population.num_transitions p in
  let candidates = ref 0 in
  let added = ref 0 in
  let generations = ref 0 in
  let progress = Obs.Progress.create "backward.pre_star" in
  let current = ref u in
  let frontier = ref (Array.of_list (Upset.minimal_elements u)) in
  (* slot [i]: frontier element [i]'s candidates that survived the
     snapshot pre-filter, in transition order *)
  let slots = ref [||] in
  let pending = ref false in
  let next () =
    if !pending then begin
      pending := false;
      let fresh = ref [] in
      Array.iter
        (fun cands ->
          List.iter
            (fun cand ->
              match Upset.add cand !current with
              | None -> ()
              | Some set' ->
                incr added;
                current := set';
                fresh := cand :: !fresh)
            cands)
        !slots;
      frontier := Array.of_list (List.rev !fresh)
    end;
    let n = Array.length !frontier in
    if n = 0 then None
    else begin
      incr generations;
      Obs.Progress.tick progress (fun () ->
          Printf.sprintf "generation %d: %d candidates, %d basis elements, frontier %d"
            !generations !candidates !added n);
      candidates := !candidates + (n * nt);
      slots := Array.make n [];
      pending := true;
      Some n
    end
  in
  let result =
    Obs.Trace.with_span "backward.pre_star" ~cat:"coverability"
      ~args:[ ("transitions", string_of_int nt) ]
      (fun () ->
        (* [stage] is the upset as of the opening of the current round —
           the pre-filter snapshot the workers read *)
        let stage = ref !current in
        let frontier_ref = frontier and slots_ref = slots in
        let next () =
          let r = next () in
          stage := !current;
          r
        in
        ignore
          (Pool.run_rounds ~jobs ~chunk ~name:"backward" ~next
             (fun ~round:_ ~lo ~hi ->
               let frontier = !frontier_ref
               and slots = !slots_ref
               and snapshot = !stage in
               for i = lo to hi - 1 do
                 let m = frontier.(i) in
                 let acc = ref [] in
                 for ti = nt - 1 downto 0 do
                   let cand = pre_element p ti m in
                   if not (Upset.mem cand snapshot) then acc := cand :: !acc
                 done;
                 slots.(i) <- !acc
               done));
        !current)
  in
  Obs.Progress.finish progress (fun () ->
      Printf.sprintf "fixpoint: %d candidates, %d basis elements" !candidates !added);
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_fixpoints;
    Obs.Metrics.add m_candidates !candidates;
    Obs.Metrics.add m_added !added;
    Obs.Metrics.add m_pruned (!candidates - !added);
    Obs.Metrics.add m_generations !generations
  end;
  (result, { iterations = !candidates; added = !added })

let pre_star ?jobs ?chunk p u = fst (pre_star_stats ?jobs ?chunk p u)

let coverable p ~from ~target =
  let u = Upset.of_elements (Population.num_states p) [ target ] in
  Upset.mem from (pre_star p u)
