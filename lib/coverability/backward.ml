type stats = {
  iterations : int;
  added : int;
}

let m_fixpoints = Obs.Metrics.counter "backward.fixpoints"
let m_candidates = Obs.Metrics.counter "backward.candidates"
let m_added = Obs.Metrics.counter "backward.added"
let m_pruned = Obs.Metrics.counter "backward.pruned"

(* Least configuration that enables transition [t] and whose [t]-successor
   covers [m]: pointwise max of the transition's precondition and
   [m - Δ_t] (clamped at zero). *)
let pre_element p ti m =
  let d = Population.num_states p in
  let { Population.pre = a, b; _ } = p.Population.transitions.(ti) in
  let delta = Population.displacement p ti in
  let v =
    Array.init d (fun i ->
        let need = Mset.get m i - Intvec.get delta i in
        Stdlib.max 0 need)
  in
  v.(a) <- Stdlib.max v.(a) (if a = b then 2 else 1);
  if a <> b then v.(b) <- Stdlib.max v.(b) 1;
  Mset.of_array v

let pre_star_stats p u =
  let nt = Population.num_transitions p in
  let iterations = ref 0 in
  let added = ref 0 in
  let progress = Obs.Progress.create "backward.pre_star" in
  let result =
    Obs.Trace.with_span "backward.pre_star" ~cat:"coverability"
      ~args:[ ("transitions", string_of_int nt) ]
      (fun () ->
        let rec loop current frontier =
          match frontier with
          | [] -> current
          | m :: rest ->
            Obs.Progress.tick progress (fun () ->
                Printf.sprintf "%d candidates, %d basis elements, frontier %d"
                  !iterations !added (List.length frontier));
            let current, new_frontier =
              let rec transitions ti acc_set acc_frontier =
                if ti >= nt then (acc_set, acc_frontier)
                else begin
                  incr iterations;
                  let cand = pre_element p ti m in
                  match Upset.add cand acc_set with
                  | None -> transitions (ti + 1) acc_set acc_frontier
                  | Some set' ->
                    incr added;
                    transitions (ti + 1) set' (cand :: acc_frontier)
                end
              in
              transitions 0 current rest
            in
            loop current new_frontier
        in
        loop u (Upset.minimal_elements u))
  in
  Obs.Progress.finish progress (fun () ->
      Printf.sprintf "fixpoint: %d candidates, %d basis elements" !iterations !added);
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_fixpoints;
    Obs.Metrics.add m_candidates !iterations;
    Obs.Metrics.add m_added !added;
    Obs.Metrics.add m_pruned (!iterations - !added)
  end;
  (result, { iterations = !iterations; added = !added })

let pre_star p u = fst (pre_star_stats p u)

let coverable p ~from ~target =
  let u = Upset.of_elements (Population.num_states p) [ target ] in
  Upset.mem from (pre_star p u)
