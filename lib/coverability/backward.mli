(** Backward coverability: the classic WSTS fixpoint computing
    [pre*(U)] of an upward-closed set [U] of configurations.

    For a transition [t = p,q ↦ p',q'] and a minimal element [m] of
    [U], the least configuration that enables [t] and reaches [up(m)]
    in one [t]-step is [max(p + q, m - Δ_t)] (pointwise, clamped at 0);
    iterating to fixpoint terminates by Dickson's lemma.

    The fixpoint is generation-synchronous: each round expands the
    whole current frontier, with the per-candidate predecessor
    computation and the membership pre-filter against the
    generation-start upset fanned out over a {!Pool.run_rounds} domain
    pool, and the basis updates reduced sequentially in index order.
    The resulting basis {e and} every published counter are
    byte-identical for any [jobs]/[chunk] setting (the test suite
    checks this differentially).

    This is the effective counterpart of the Rackoff-based argument of
    Lemma 3.2: instead of bounding the norm of stable-set bases by
    [β = 2^(2(2n+1)!+1)], it computes the bases exactly. *)

type stats = {
  iterations : int;     (** candidate elements examined *)
  added : int;          (** minimal elements ever inserted *)
}

val pre_star : ?jobs:int -> ?chunk:int -> Population.t -> Upset.t -> Upset.t
(** [pre_star p u] is the set of configurations from which [u] is
    reachable (including [u] itself). [jobs] (default 1) domains expand
    each frontier generation in chunks of [chunk] (default 4)
    candidates; the result does not depend on either. *)

val pre_star_stats :
  ?jobs:int -> ?chunk:int -> Population.t -> Upset.t -> Upset.t * stats

val coverable : Population.t -> from:Mset.t -> target:Mset.t -> bool
(** [coverable p ~from ~target]: can [from] reach some [C >= target]? *)
