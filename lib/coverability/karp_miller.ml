type stats = {
  nodes : int;
  accelerations : int;
}

let coord_at_least (v : Omega_vec.t) i k =
  match Omega_vec.get v i with Omega_vec.Omega -> true | Omega_vec.Fin n -> n >= k

let enabled (v : Omega_vec.t) (a, b) =
  if a = b then coord_at_least v a 2
  else coord_at_least v a 1 && coord_at_least v b 1

let apply (v : Omega_vec.t) (delta : Intvec.t) : Omega_vec.t =
  Array.mapi
    (fun i c ->
      match c with
      | Omega_vec.Omega -> Omega_vec.Omega
      | Omega_vec.Fin n -> Omega_vec.Fin (n + Intvec.get delta i))
    v

(* ω-acceleration: any ancestor u strictly below v' witnesses a
   self-covering pump, so the strictly increased coordinates go to ω. *)
let accelerate ancestors v' =
  let accelerated = ref false in
  let result = ref v' in
  List.iter
    (fun u ->
      if Omega_vec.leq u !result && not (Omega_vec.equal u !result) then begin
        let bumped =
          Array.mapi
            (fun i c ->
              match (Omega_vec.get u i, c) with
              | Omega_vec.Fin a, Omega_vec.Fin b when a < b -> Omega_vec.Omega
              | _, c -> c)
            !result
        in
        if not (Omega_vec.equal bumped !result) then begin
          accelerated := true;
          result := bumped
        end
      end)
    ancestors;
  (!result, !accelerated)

type Obs.Budget.partial += Partial_clover of Omega_vec.t list

(* keep the maximal elements *)
let maximal_of discovered =
  List.filter
    (fun v ->
      not
        (List.exists
           (fun u -> (not (Omega_vec.equal u v)) && Omega_vec.leq v u)
           discovered))
    discovered
  |> List.sort_uniq Stdlib.compare

let clover_stats ?(max_nodes = 1_000_000) p c0 =
  let nt = Population.num_transitions p in
  let nodes = ref 0 in
  let accelerations = ref 0 in
  let discovered : Omega_vec.t list ref = ref [] in
  let covered v = List.exists (fun u -> Omega_vec.leq v u) !discovered in
  let root = Omega_vec.finite (Mset.to_intvec c0) in
  let budget () =
    (* the maximal elements seen so far under-approximate the clover;
       a budgeted caller can still use them as a partial answer *)
    raise
      (Obs.Budget.exceeded
         ~partial:(Partial_clover (maximal_of !discovered))
         ~source:"karp_miller.clover" ~resource:"nodes"
         ~limit:(float_of_int max_nodes)
         ~consumed:
           [
             ("nodes", float_of_int !nodes);
             ("accelerations", float_of_int !accelerations);
           ]
         ())
  in
  (* depth-first over (vector, ancestor path) *)
  let rec expand v ancestors =
    incr nodes;
    if !nodes > max_nodes then budget ();
    discovered := v :: !discovered;
    let ancestors' = v :: ancestors in
    for t = 0 to nt - 1 do
      let tr = p.Population.transitions.(t) in
      if enabled v tr.Population.pre then begin
        let v' = apply v (Population.displacement p t) in
        let v', accel = accelerate ancestors' v' in
        if accel then incr accelerations;
        if not (covered v') then expand v' ancestors'
      end
    done
  in
  expand root [];
  (maximal_of !discovered, { nodes = !nodes; accelerations = !accelerations })

let clover ?max_nodes p c0 = fst (clover_stats ?max_nodes p c0)

let coverable p ~from ~target =
  let cl = clover p from in
  List.exists (Omega_vec.member target) cl

let downset ?max_nodes p c0 =
  Downset.of_max_elements (Population.num_states p) (clover ?max_nodes p c0)

let clover_parametric ?(max_nodes = 1_000_000) p =
  (* Re-run the tree construction from the ω-input root. The code above
     only touches the root through [Omega_vec] operations, so we reuse
     it by inlining a second entry point. *)
  let d = Population.num_states p in
  let root =
    Array.init d (fun q ->
        if Array.exists (fun s -> s = q) p.Population.input_map then Omega_vec.Omega
        else Omega_vec.Fin (Mset.get p.Population.leaders q))
  in
  let nt = Population.num_transitions p in
  let nodes = ref 0 in
  let discovered : Omega_vec.t list ref = ref [] in
  let covered v = List.exists (fun u -> Omega_vec.leq v u) !discovered in
  let rec expand v ancestors =
    incr nodes;
    if !nodes > max_nodes then
      raise
        (Obs.Budget.exceeded
           ~partial:(Partial_clover (maximal_of !discovered))
           ~source:"karp_miller.clover_parametric" ~resource:"nodes"
           ~limit:(float_of_int max_nodes)
           ~consumed:[ ("nodes", float_of_int !nodes) ]
           ());
    discovered := v :: !discovered;
    let ancestors' = v :: ancestors in
    for t = 0 to nt - 1 do
      let tr = p.Population.transitions.(t) in
      if enabled v tr.Population.pre then begin
        let v' = apply v (Population.displacement p t) in
        let v', _ = accelerate ancestors' v' in
        if not (covered v') then expand v' ancestors'
      end
    done
  in
  expand root [];
  maximal_of !discovered
