(** The Karp–Miller coverability tree: a forward computation of the
    {e clover} — the downward closure of the set of configurations
    reachable from a given initial configuration, represented by its
    maximal ω-vectors.

    Complements {!Backward}: backward coverability answers one query
    [from →* up(target)] exactly; the clover answers {e all} coverability
    queries from a fixed source at once ([target] coverable iff
    [target ∈ clover]), at the price of ω-acceleration
    (self-covering loops pump coordinates to ω, which is sound for
    coverability by the monotonicity property of Section 2.2). *)

type stats = {
  nodes : int;          (** tree nodes expanded *)
  accelerations : int;  (** ω-introductions performed *)
}

type Obs.Budget.partial += Partial_clover of Omega_vec.t list
(** The maximal ω-vectors discovered before a node budget ran out — an
    under-approximation of the clover, carried by
    {!Obs.Budget.Exceeded}. *)

val clover : ?max_nodes:int -> Population.t -> Mset.t -> Omega_vec.t list
(** [clover p c0]: the maximal ω-vectors of the coverability set of
    [c0]. @raise Obs.Budget.Exceeded if the tree exceeds [max_nodes]
    (default 1_000_000) nodes; the exception carries {!Partial_clover}
    and the node/acceleration counts consumed. *)

val clover_stats :
  ?max_nodes:int -> Population.t -> Mset.t -> Omega_vec.t list * stats

val coverable : Population.t -> from:Mset.t -> target:Mset.t -> bool
(** Same answer as {!Backward.coverable}, computed forward. *)

val downset : ?max_nodes:int -> Population.t -> Mset.t -> Downset.t
(** The coverability set as a {!Downset.t}. *)

val clover_parametric : ?max_nodes:int -> Population.t -> Omega_vec.t list
(** The coverability set over {e all} initial configurations at once:
    the tree is rooted at the ω-vector with [ω] on every input state
    (and the leader counts elsewhere), so the result is the downward
    closure of [∪_v Reach(IC(v))]. On a fixed input the population is
    conserved and no acceleration can fire; here accelerations do the
    work. A state is coverable from some input iff some clover vector
    is positive on it (compare {!Saturation.coverable_support}). *)
