type t = {
  protocol : Population.t;
  unstable0 : Upset.t;
  unstable1 : Upset.t;
  stable0 : Downset.t;
  stable1 : Downset.t;
}

(* Configurations populating at least one state of output [≠ b]: the
   up-closure of the corresponding singletons. *)
let bad_upset p b =
  let d = Population.num_states p in
  let singles =
    List.filter_map
      (fun q -> if p.Population.output.(q) <> b then Some (Mset.singleton d q) else None)
      (List.init d Fun.id)
  in
  Upset.of_elements d singles

let m_analyses = Obs.Metrics.counter "stable_sets.analyses"
let m_memo_hits = Obs.Metrics.counter "stable_sets.memo_hits"
let m_memo_misses = Obs.Metrics.counter "stable_sets.memo_misses"
let g_basis0 = Obs.Metrics.gauge "stable_sets.basis0_size"
let g_basis1 = Obs.Metrics.gauge "stable_sets.basis1_size"
let g_norm0 = Obs.Metrics.gauge "stable_sets.norm0"
let g_norm1 = Obs.Metrics.gauge "stable_sets.norm1"

let analyse ?jobs ?chunk p =
  Obs.Trace.with_span "stable_sets.analyse" ~cat:"coverability"
    ~args:[ ("protocol", p.Population.name) ]
    (fun () ->
      let d = Population.num_states p in
      let unstable b =
        Obs.Trace.with_span
          (if b then "stable_sets.unstable1" else "stable_sets.unstable0")
          ~cat:"coverability"
          (fun () -> Backward.pre_star ?jobs ?chunk p (bad_upset p b))
      in
      let unstable0 = unstable false and unstable1 = unstable true in
      let stable_of u = Downset.of_max_elements d (Upset.complement u) in
      let stable0 = stable_of unstable0 and stable1 = stable_of unstable1 in
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_analyses;
        Obs.Metrics.set g_basis0 (float_of_int (Downset.size stable0));
        Obs.Metrics.set g_basis1 (float_of_int (Downset.size stable1));
        Obs.Metrics.set g_norm0 (float_of_int (Downset.norm stable0));
        Obs.Metrics.set g_norm1 (float_of_int (Downset.norm stable1))
      end;
      { protocol = p; unstable0; unstable1; stable0; stable1 })

(* -- memoization across eta sweeps ------------------------------------- *)

(* Structural fingerprint of everything [analyse] depends on — the
   protocol name deliberately excluded, so structurally equal protocols
   built under different names share one analysis. Hashed through the
   checkpoint layer's config-fingerprint scheme. *)
let fingerprint p =
  let ints xs = Obs.Json.List (List.map (fun i -> Obs.Json.Int i) xs) in
  let json =
    Obs.Json.Obj
      [
        ("states", Obs.Json.Int (Population.num_states p));
        ( "transitions",
          Obs.Json.List
            (Array.to_list
               (Array.map
                  (fun { Population.pre = a, b; post = a', b' } ->
                    ints [ a; b; a'; b' ])
                  p.Population.transitions)) );
        ( "leaders",
          ints
            (List.init (Mset.dim p.Population.leaders)
               (Mset.get p.Population.leaders)) );
        ("input_map", ints (Array.to_list p.Population.input_map));
        ( "output",
          ints (Array.to_list (Array.map Bool.to_int p.Population.output)) );
      ]
  in
  Obs.Checkpoint.hash_config json

(* Bounded protocol-hash-keyed cache. The lock makes concurrent callers
   safe (the busy-beaver pool may analyse from several domains); a full
   cache is cleared wholesale — the sweep workloads this serves analyse
   one protocol at a time, so any eviction policy only has to bound
   memory, not maximise hits. *)
let memo_cap = 128
let memo : (string, t) Hashtbl.t = Hashtbl.create 32
let memo_lock = Mutex.create ()

let analyse_memo ?jobs ?chunk p =
  let key = fingerprint p in
  let cached =
    Mutex.lock memo_lock;
    let r = Hashtbl.find_opt memo key in
    Mutex.unlock memo_lock;
    r
  in
  match cached with
  | Some a ->
    if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
    a
  | None ->
    if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_misses;
    let a = analyse ?jobs ?chunk p in
    Mutex.lock memo_lock;
    if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
    if not (Hashtbl.mem memo key) then Hashtbl.add memo key a;
    Mutex.unlock memo_lock;
    a

let memo_clear () =
  Mutex.lock memo_lock;
  Hashtbl.reset memo;
  Mutex.unlock memo_lock

let stable a b = if b then a.stable1 else a.stable0
let unstable a b = if b then a.unstable1 else a.unstable0
let stable_union a = Downset.union a.stable0 a.stable1
let is_stable a b c = Downset.mem c (stable a b)

let pp_summary fmt a =
  Format.fprintf fmt
    "SC_0: %d basis elements, norm %d; SC_1: %d basis elements, norm %d"
    (Downset.size a.stable0) (Downset.norm a.stable0) (Downset.size a.stable1)
    (Downset.norm a.stable1)
