type t = {
  protocol : Population.t;
  unstable0 : Upset.t;
  unstable1 : Upset.t;
  stable0 : Downset.t;
  stable1 : Downset.t;
}

(* Configurations populating at least one state of output [≠ b]: the
   up-closure of the corresponding singletons. *)
let bad_upset p b =
  let d = Population.num_states p in
  let singles =
    List.filter_map
      (fun q -> if p.Population.output.(q) <> b then Some (Mset.singleton d q) else None)
      (List.init d Fun.id)
  in
  Upset.of_elements d singles

let m_analyses = Obs.Metrics.counter "stable_sets.analyses"
let g_basis0 = Obs.Metrics.gauge "stable_sets.basis0_size"
let g_basis1 = Obs.Metrics.gauge "stable_sets.basis1_size"
let g_norm0 = Obs.Metrics.gauge "stable_sets.norm0"
let g_norm1 = Obs.Metrics.gauge "stable_sets.norm1"

let analyse p =
  Obs.Trace.with_span "stable_sets.analyse" ~cat:"coverability"
    ~args:[ ("protocol", p.Population.name) ]
    (fun () ->
      let d = Population.num_states p in
      let unstable b =
        Obs.Trace.with_span
          (if b then "stable_sets.unstable1" else "stable_sets.unstable0")
          ~cat:"coverability"
          (fun () -> Backward.pre_star p (bad_upset p b))
      in
      let unstable0 = unstable false and unstable1 = unstable true in
      let stable_of u = Downset.of_max_elements d (Upset.complement u) in
      let stable0 = stable_of unstable0 and stable1 = stable_of unstable1 in
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_analyses;
        Obs.Metrics.set g_basis0 (float_of_int (Downset.size stable0));
        Obs.Metrics.set g_basis1 (float_of_int (Downset.size stable1));
        Obs.Metrics.set g_norm0 (float_of_int (Downset.norm stable0));
        Obs.Metrics.set g_norm1 (float_of_int (Downset.norm stable1))
      end;
      { protocol = p; unstable0; unstable1; stable0; stable1 })

let stable a b = if b then a.stable1 else a.stable0
let unstable a b = if b then a.unstable1 else a.unstable0
let stable_union a = Downset.union a.stable0 a.stable1
let is_stable a b c = Downset.mem c (stable a b)

let pp_summary fmt a =
  Format.fprintf fmt
    "SC_0: %d basis elements, norm %d; SC_1: %d basis elements, norm %d"
    (Downset.size a.stable0) (Downset.norm a.stable0) (Downset.size a.stable1)
    (Downset.norm a.stable1)
