(** Exact computation of the stable sets [SC_0], [SC_1] and
    [SC = SC_0 ∪ SC_1] of Definition 2.

    A configuration is [b]-stable iff it cannot reach a configuration
    populating a state of output [≠ b]; the non-[b]-stable
    configurations are therefore [pre*] of an upward-closed set,
    computed by {!Backward.pre_star}, and [SC_b] is its complement — a
    downward-closed set (Lemma 3.1) with an effective base (the exact
    version of Lemma 3.2's [β]-norm base). *)

type t = {
  protocol : Population.t;
  unstable0 : Upset.t;   (** configurations that are not 0-stable *)
  unstable1 : Upset.t;
  stable0 : Downset.t;   (** [SC_0] *)
  stable1 : Downset.t;   (** [SC_1] *)
}

val analyse : ?jobs:int -> ?chunk:int -> Population.t -> t
(** [jobs]/[chunk] parallelise the two backward fixpoints (see
    {!Backward.pre_star}); the analysis is identical for any setting. *)

val analyse_memo : ?jobs:int -> ?chunk:int -> Population.t -> t
(** {!analyse}, memoized in a bounded process-wide cache keyed by a
    structural fingerprint of the protocol (name excluded), so repeated
    sweeps — e.g. one {!val:analyse} per eta candidate — pay for the
    backward fixpoints once. Thread-safe. Publishes
    ["stable_sets.memo_hits"]/["stable_sets.memo_misses"]. *)

val memo_clear : unit -> unit
(** Empty the {!analyse_memo} cache (tests use this for isolation). *)

val stable : t -> bool -> Downset.t
val unstable : t -> bool -> Upset.t

val stable_union : t -> Downset.t
(** [SC]; its base is the union of the bases (as in Lemma 3.2). *)

val is_stable : t -> bool -> Mset.t -> bool
(** [is_stable a b c]: is [c] a [b]-stable configuration? *)

val pp_summary : Format.formatter -> t -> unit
(** Base sizes and norms of [SC_0] and [SC_1]. *)
