type t = {
  dim : int;
  minimal : Mset.t list; (* pairwise incomparable *)
}

let empty dim = { dim; minimal = [] }
let dim u = u.dim

let minimize elements =
  let keep m =
    not (List.exists (fun m' -> (not (Mset.equal m m')) && Mset.leq m' m) elements)
  in
  List.filter keep elements |> List.sort_uniq Mset.compare

let of_elements dim elements =
  List.iter
    (fun m ->
      if Mset.dim m <> dim then invalid_arg "Upset.of_elements: dimension")
    elements;
  { dim; minimal = minimize elements }

let minimal_elements u = u.minimal
let mem c u = List.exists (fun m -> Mset.leq m c) u.minimal
let is_empty u = u.minimal = []

let add m u =
  if mem m u then None
  else
    (* [m] is below no survivor (they'd have been filtered) and above
       none (mem returned false), so the filtered list extended with [m]
       is already an antichain: sorting alone restores canonical form,
       no quadratic re-minimization needed. *)
    let minimal =
      List.sort_uniq Mset.compare
        (m :: List.filter (fun m' -> not (Mset.leq m m')) u.minimal)
    in
    Some { u with minimal }

let union a b =
  if a.dim <> b.dim then invalid_arg "Upset.union: dimension mismatch";
  { dim = a.dim; minimal = minimize (a.minimal @ b.minimal) }

let subset a b = List.for_all (fun m -> mem m b) a.minimal
let equal a b = subset a b && subset b a
let size u = List.length u.minimal

let max_norm u =
  List.fold_left
    (fun acc m -> Stdlib.max acc (Intvec.norm_inf (Mset.to_intvec m)))
    0 u.minimal

(* Complement of up(minimal): intersection over the minimal elements m of
   the union over coordinates i with m(i) > 0 of the ω-vector putting
   m(i)-1 at i and ω elsewhere. Distribute the intersection over the
   unions, pruning dominated candidates as we go. *)
let complement u =
  let keep_maximal vs =
    List.filter
      (fun v ->
        not
          (List.exists
             (fun v' -> (not (Omega_vec.equal v v')) && Omega_vec.leq v v')
             vs))
      vs
    |> List.sort_uniq Stdlib.compare
  in
  let single m =
    List.filter_map
      (fun i ->
        let c = Mset.get m i in
        if c > 0 then begin
          let v = Omega_vec.all_omega u.dim in
          let v = Array.copy v in
          v.(i) <- Omega_vec.Fin (c - 1);
          Some v
        end
        else None)
      (List.init u.dim Fun.id)
  in
  let start = [ Omega_vec.all_omega u.dim ] in
  List.fold_left
    (fun acc m ->
      let choices = single m in
      List.concat_map (fun v -> List.map (Omega_vec.meet v) choices) acc
      |> keep_maximal)
    start u.minimal

let pp ?names fmt u =
  match u.minimal with
  | [] -> Format.pp_print_string fmt "∅"
  | ms ->
    Format.fprintf fmt "@[<v>up{";
    List.iteri
      (fun i m ->
        if i > 0 then Format.fprintf fmt ",@ ";
        Mset.pp ?names fmt m)
      ms;
    Format.fprintf fmt "}@]"
