type fault = Drop | Duplicate | Delay | Truncate | Bitflip

type profile = {
  name : string;
  faults : fault list;
  rate : float;
  budget : int;
}

type spec = { profile : profile; seed : int }

let profiles =
  [
    { name = "none"; faults = []; rate = 0.0; budget = 0 };
    { name = "lossy"; faults = [ Drop; Duplicate; Delay ]; rate = 0.2; budget = 12 };
    { name = "corrupt"; faults = [ Truncate; Bitflip ]; rate = 0.2; budget = 12 };
    {
      name = "wild";
      faults = [ Drop; Duplicate; Delay; Truncate; Bitflip ];
      rate = 0.25;
      budget = 16;
    };
  ]

let parse_spec s =
  let name, seed =
    match String.index_opt s ':' with
    | None -> (s, Ok 1)
    | Some i ->
        let tail = String.sub s (i + 1) (String.length s - i - 1) in
        ( String.sub s 0 i,
          match int_of_string_opt tail with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "bad chaos seed %S" tail) )
  in
  match (List.find_opt (fun p -> p.name = name) profiles, seed) with
  | _, Error e -> Error e
  | None, _ ->
      Error
        (Printf.sprintf "unknown chaos profile %S (try %s)" name
           (String.concat ", " (List.map (fun p -> p.name) profiles)))
  | Some profile, Ok seed -> Ok { profile; seed }

let spec_to_string { profile; seed } = Printf.sprintf "%s:%d" profile.name seed

type t = {
  rng : Splitmix64.t;
  profile : profile;
  mutable injected : int;
  mutable held : string option;  (** a delayed frame, emitted after the next *)
}

(* Connection [k] gets the [k]-th split of the seed stream, so every
   connection's fault schedule is independent of how the others
   consumed theirs. *)
let create { profile; seed } ~conn =
  let g = Splitmix64.create seed in
  let rng = ref (Splitmix64.split g) in
  for _ = 1 to conn do
    rng := Splitmix64.split g
  done;
  { rng = !rng; profile; injected = 0; held = None }

let injected t = t.injected

let fault_name = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Delay -> "delay"
  | Truncate -> "truncate"
  | Bitflip -> "bitflip"

let m_injected = Obs.Metrics.counter "chaos.injected"

let count t f =
  t.injected <- t.injected + 1;
  Obs.Metrics.incr m_injected;
  Obs.Metrics.incr (Obs.Metrics.counter ("chaos." ^ fault_name f))

(* Frames are whole "...\n" lines. Truncation keeps a 4-byte prefix and
   the trailing newline, and bit-flips land past the "#3 " framing
   prefix: the damage stays confined to one wire line, which is what
   the CRC layer is built to catch (a fault that glued two frames
   together would damage its neighbour too — real, but it would make
   the budget's blast radius fuzzy). *)
let truncate rng frame =
  let n = String.length frame in
  if n < 6 then frame
  else
    let keep = 4 + Splitmix64.int_below rng (n - 5) in
    String.sub frame 0 keep ^ "\n"

let bitflip rng frame =
  let n = String.length frame in
  if n < 5 then frame
  else
    let b = Bytes.of_string frame in
    let i = 3 + Splitmix64.int_below rng (n - 4) in
    let c = Char.code (Bytes.get b i) lxor (1 lsl Splitmix64.int_below rng 8) in
    Bytes.set b i (if c = Char.code '\n' then '\000' else Char.chr c);
    Bytes.unsafe_to_string b

let apply t frame =
  let fault =
    if
      t.injected < t.profile.budget
      && t.profile.faults <> []
      && Splitmix64.float_unit t.rng < t.profile.rate
    then
      Some
        (List.nth t.profile.faults
           (Splitmix64.int_below t.rng (List.length t.profile.faults)))
    else None
  in
  let release out =
    match t.held with
    | None -> out
    | Some d ->
        t.held <- None;
        out @ [ d ]
  in
  match fault with
  | Some Delay when t.held = None ->
      count t Delay;
      t.held <- Some frame;
      []
  | Some Drop ->
      count t Drop;
      release []
  | Some Duplicate ->
      count t Duplicate;
      release [ frame; frame ]
  | Some Truncate ->
      count t Truncate;
      release [ truncate t.rng frame ]
  | Some Bitflip ->
      count t Bitflip;
      release [ bitflip t.rng frame ]
  | Some Delay (* already holding one *) | None -> release [ frame ]
