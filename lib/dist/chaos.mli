(** Deterministic transport fault injection for the distributed scan.

    A chaos {e stream} sits on the send path of one connection and
    mangles outbound wire frames: dropping, duplicating, reordering
    (delay), truncating and bit-flipping them. Both endpoints can carry
    one — faulting a peer's outbound is indistinguishable from faulting
    this side's inbound, so two streams cover every direction.

    Everything is derived from an explicit seed through per-connection
    {!Sim}[.Splitmix64] streams: the same [PROFILE:SEED] spec replays
    the exact same fault schedule against the same message flow, which
    is how a failing chaos run is reproduced from its logged seed.

    Every profile carries a finite {e fault budget} per connection.
    Once a stream has spent its budget it becomes a passthrough, so a
    chaos run always terminates: recovery (CRC skip, lease reclaim,
    reconnect) only has to outlast a bounded number of faults, never an
    adversarial infinite stream. The invariant under any profile and
    seed is that the merged scan output stays byte-identical to the
    fault-free run. *)

type fault = Drop | Duplicate | Delay | Truncate | Bitflip

type profile = {
  name : string;
  faults : fault list;  (** which faults this profile may inject *)
  rate : float;  (** per-frame injection probability, in [0, 1] *)
  budget : int;  (** max faults per connection before passthrough *)
}

type spec = { profile : profile; seed : int }

val profiles : profile list
(** The built-in profiles: [none] (passthrough), [lossy] (drop /
    duplicate / delay — frames vanish, repeat or arrive out of order,
    but arrive intact), [corrupt] (truncate / bit-flip — frames arrive
    damaged, for the CRC layer to catch), [wild] (all five, higher
    rate). *)

val parse_spec : string -> (spec, string) result
(** Parse a [--chaos-net] argument: [PROFILE] or [PROFILE:SEED]
    ([lossy], [wild:42], ...). The seed defaults to 1. *)

val spec_to_string : spec -> string
(** Round-trips {!parse_spec}: ["lossy:42"]. *)

type t
(** One connection's fault stream. *)

val create : spec -> conn:int -> t
(** The stream for connection number [conn]: distinct connections get
    independent Splitmix64 substreams of the same seed, so a fleet's
    fault schedule is reproducible connection by connection. *)

val apply : t -> string -> string list
(** Push one outbound frame through the stream; returns the byte
    strings to actually write, in order. [[]] means the frame was
    dropped or delayed; a delayed frame is emitted {e after} the next
    frame (reordering) and is lost if the stream ends first — exactly
    like a real network. Injections are counted in the [chaos.*]
    metrics. *)

val injected : t -> int
(** Faults injected so far (at most the profile's budget). *)
