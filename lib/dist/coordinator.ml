type stats = {
  chunks_done : int;
  duplicates : int;
  stale_dropped : int;
  reassigned : int;
  workers_seen : int;
  workers_lost : int;
  rejoins : int;
  corrupt_frames : int;
  events_forwarded : int;
  interrupted : bool;
  fleet : Telemetry.summary list;
}

type conn = {
  rd : Wire.reader;
  chaos : Chaos.t option;
  mutable name : string option;  (** set by the worker's [Hello] *)
  mutable corrupt_seen : int;  (** reader corrupt count already tallied *)
}

let m_done = Obs.Metrics.counter "dist.chunks_done"
let m_dup = Obs.Metrics.counter "dist.duplicates"
let m_stale = Obs.Metrics.counter "dist.stale_dropped"
let m_reassigned = Obs.Metrics.counter "dist.reassigned"
let m_lost = Obs.Metrics.counter "dist.workers_lost"
let m_rejoin = Obs.Metrics.counter "dist.rejoins"
let m_expired = Obs.Metrics.counter "dist.lease_expired"
let m_events_fwd = Obs.Metrics.counter "dist.events_forwarded"
let m_unknown = Obs.Metrics.counter "dist.unknown_msgs"
let g_workers = Obs.Metrics.gauge "dist.workers"

let now_s () =
  (* every liveness/lease timestamp in this loop comes from the
     monotonic clock and only ever feeds interval comparisons — a
     wall-clock (NTP) step can never mass-expire healthy leases *)
  Obs.Clock.ns_to_s (Obs.Clock.now_ns ())

let run ?accept ?(fds = []) ?(heartbeat_timeout = 10.0) ?(max_batch = 16)
    ?chaos ?(should_stop = fun () -> false)
    ?(on_grant = fun ~worker:_ ~lo:_ ~hi:_ -> ())
    ?(on_reclaim = fun ~worker:_ ~chunks:_ -> ()) ?telemetry ~config
    ~config_hash ~epoch ~total_chunks ~completed ~on_result () =
  let telemetry =
    match telemetry with
    | Some b -> b
    | None ->
        (* any observability sink being live is the signal that someone
           will look at the fleet view *)
        Obs.Metrics.enabled () || Obs.Events.enabled () || Obs.Export.active ()
  in
  let lease = Lease.create ~max_batch ~total:total_chunks ~completed () in
  let reg = Telemetry.create () in
  let next_conn = ref 0 in
  let mk_conn fd =
    let stream =
      match chaos with
      | None -> None
      | Some spec -> Some (Chaos.create spec ~conn:!next_conn)
    in
    incr next_conn;
    { rd = Wire.reader fd; chaos = stream; name = None; corrupt_seen = 0 }
  in
  let conns = ref (List.map mk_conn fds) in
  let chunks_done = ref 0 in
  let duplicates = ref 0 in
  let stale_dropped = ref 0 in
  let reassigned = ref 0 in
  let workers_seen = ref 0 in
  let workers_lost = ref 0 in
  let rejoins = ref 0 in
  let corrupt_frames = ref 0 in
  let events_forwarded = ref 0 in
  let interrupted = ref false in
  let emit ?severity ev data =
    if Obs.Events.enabled () then Obs.Events.emit ?severity ~data ("dist." ^ ev)
  in
  let send_safe c msg =
    (* a peer that died between select rounds raises EPIPE here; its
       EOF is about to surface on the read side, which owns the
       cleanup — so swallow the write error *)
    try Wire.send ?chaos:c.chaos (Wire.reader_fd c.rd) msg
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
  in
  let grant_to c name =
    match Lease.grant lease ~worker:name ~now:(now_s ()) with
    | None -> ()
    | Some (lo_chunk, hi_chunk) ->
        send_safe c (Wire.Grant { lo_chunk; hi_chunk; epoch });
        Telemetry.add_leased reg ~worker:name ~n:(hi_chunk - lo_chunk)
          ~now:(now_s ());
        on_grant ~worker:name ~lo:lo_chunk ~hi:hi_chunk;
        emit "lease"
          [
            ("worker", Obs.Json.String name);
            ("lo_chunk", Obs.Json.Int lo_chunk);
            ("hi_chunk", Obs.Json.Int hi_chunk);
            ("epoch", Obs.Json.Int epoch);
          ]
  in
  (* re-send Grant frames for every lease [name] already holds, one per
     contiguous run — the rejoin/re-Hello reconciliation: the ledger
     says the work is theirs, the worker just never saw (or lost) the
     order. Cached chunks on the worker side come back as instant
     resends. *)
  let regrant_held c name =
    let rec runs = function
      | [] -> []
      | i :: rest ->
          let j = ref i in
          let rest = ref rest in
          let continue = ref true in
          while !continue do
            match !rest with
            | k :: tl when k = !j + 1 ->
                j := k;
                rest := tl
            | _ -> continue := false
          done;
          (i, !j + 1) :: runs !rest
    in
    List.iter
      (fun (lo_chunk, hi_chunk) ->
        send_safe c (Wire.Grant { lo_chunk; hi_chunk; epoch }))
      (runs (Lease.leases_of lease ~worker:name))
  in
  (* top up every named worker that is out of leased chunks — but only
     workers showing a fresh heartbeat: granting to one that has gone
     silent (dead without an EOF yet) would just park chunks on a
     corpse until the next expiry *)
  let feed_idle () =
    List.iter
      (fun c ->
        match c.name with
        | Some name when Lease.leases_of lease ~worker:name = [] -> (
            match Lease.beat_age lease ~worker:name ~now:(now_s ()) with
            | Some age when age <= heartbeat_timeout -> grant_to c name
            | _ -> ())
        | _ -> ())
      !conns
  in
  let close_conn c =
    (try Unix.close (Wire.reader_fd c.rd) with Unix.Unix_error _ -> ());
    conns := List.filter (fun c' -> c' != c) !conns;
    Obs.Metrics.set g_workers (float_of_int (List.length !conns))
  in
  let drop_conn ?(lost = true) c reason =
    (match c.name with
    | Some name ->
        let reclaimed = Lease.fail_worker lease ~worker:name in
        Telemetry.clear_leased reg ~worker:name;
        if lost then begin
          incr workers_lost;
          Obs.Metrics.incr m_lost;
          emit ~severity:Obs.Events.Warn "worker_lost"
            [
              ("worker", Obs.Json.String name);
              ("reason", Obs.Json.String reason);
              ("leased", Obs.Json.Int (List.length reclaimed));
            ]
        end;
        if reclaimed <> [] then begin
          reassigned := !reassigned + List.length reclaimed;
          Obs.Metrics.add m_reassigned (List.length reclaimed);
          on_reclaim ~worker:name ~chunks:reclaimed;
          emit "reassign"
            [
              ("worker", Obs.Json.String name);
              ("chunks", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) reclaimed));
            ]
        end
    | None -> if lost then incr workers_lost);
    close_conn c
  in
  let note_corrupt c =
    let n = Wire.corrupt_count c.rd in
    if n > c.corrupt_seen then begin
      let fresh = n - c.corrupt_seen in
      c.corrupt_seen <- n;
      corrupt_frames := !corrupt_frames + fresh;
      emit ~severity:Obs.Events.Warn "corrupt_frames"
        [
          ( "worker",
            match c.name with
            | Some w -> Obs.Json.String w
            | None -> Obs.Json.Null );
          ("n", Obs.Json.Int fresh);
        ]
    end
  in
  let handle_msg c = function
    | Wire.Hello { worker; pid; host; sent_s } -> (
        let welcome () =
          send_safe c
            (Wire.Welcome { config; config_hash; epoch; total_chunks; telemetry })
        in
        match c.name with
        | Some prev when prev = worker ->
            (* a Hello retry on the live connection: our Welcome (or
               their view of it) was lost — answer again and re-send
               any standing grants; nothing about the ledger changed *)
            Lease.register lease ~worker ~now:(now_s ());
            welcome ();
            regrant_held c worker;
            if Lease.leases_of lease ~worker = [] then grant_to c worker
        | Some prev ->
            raise
              (Wire.Protocol_error
                 (Printf.sprintf "connection renamed itself %S -> %S" prev worker))
        | None ->
            (* same name arriving on a *new* connection: the worker
               redialled — supersede the old socket without touching
               its leases (same identity, work still theirs) *)
            (match List.find_opt (fun c' -> c' != c && c'.name = Some worker) !conns with
            | Some stale ->
                incr rejoins;
                Obs.Metrics.incr m_rejoin;
                emit "worker_rejoin"
                  [
                    ("worker", Obs.Json.String worker);
                    ("pid", Obs.Json.Int pid);
                  ];
                stale.name <- None;
                close_conn stale
            | None -> ());
            c.name <- Some worker;
            incr workers_seen;
            Lease.register lease ~worker ~now:(now_s ());
            Telemetry.join reg ~worker ~host ~pid ~sent_s ~now:(now_s ());
            Obs.Metrics.set g_workers (float_of_int (List.length !conns));
            emit "worker_join"
              ([ ("worker", Obs.Json.String worker); ("pid", Obs.Json.Int pid) ]
              @ if host = "" then [] else [ ("host", Obs.Json.String host) ]);
            welcome ();
            regrant_held c worker;
            if Lease.leases_of lease ~worker = [] then grant_to c worker)
    | Wire.Heartbeat { worker; sent_s; metrics } ->
        Lease.heartbeat lease ~worker ~now:(now_s ());
        Telemetry.heartbeat reg ~worker ~sent_s ~metrics ~now:(now_s ())
    | Wire.Events { worker; origin_s; lines } ->
        let n = List.length lines in
        events_forwarded := !events_forwarded + n;
        Obs.Metrics.add m_events_fwd n;
        Telemetry.note_events reg ~worker ~n ~now:(now_s ());
        if Obs.Events.enabled () then
          List.iter Obs.Events.inject
            (Telemetry.align_events reg ~worker ~origin_s
               ~sink_origin_s:(Obs.Events.origin_s ())
               lines)
    | Wire.Result { chunk; epoch = e; state } ->
        (match c.name with
        | Some worker ->
            Lease.heartbeat lease ~worker ~now:(now_s ());
            Telemetry.seen reg ~worker ~now:(now_s ())
        | None -> ());
        if e <> epoch then begin
          incr stale_dropped;
          Obs.Metrics.incr m_stale;
          emit ~severity:Obs.Events.Warn "stale_result"
            [
              ("chunk", Obs.Json.Int chunk);
              ("result_epoch", Obs.Json.Int e);
              ("epoch", Obs.Json.Int epoch);
            ]
        end
        else if chunk < 0 || chunk >= total_chunks then
          raise (Wire.Protocol_error (Printf.sprintf "chunk %d out of range" chunk))
        else begin
          match Lease.complete lease ~chunk ~now:(now_s ()) with
          | `Duplicate ->
              incr duplicates;
              Obs.Metrics.incr m_dup
          | `Fresh ->
              on_result ~chunk state;
              incr chunks_done;
              Obs.Metrics.incr m_done;
              (match c.name with
              | Some worker -> Telemetry.chunk_done reg ~worker ~now:(now_s ())
              | None -> ());
              emit "chunk_done"
                [
                  ("chunk", Obs.Json.Int chunk);
                  ( "worker",
                    match c.name with
                    | Some w -> Obs.Json.String w
                    | None -> Obs.Json.Null );
                ]
        end;
        (* stream the next batch as soon as this one is finished *)
        (match c.name with
        | Some name when Lease.leases_of lease ~worker:name = [] -> grant_to c name
        | _ -> ())
    | Wire.Unknown _ ->
        (* a newer worker's message kind: count it and keep going — the
           forward-compat contract is degrade, not desync *)
        Obs.Metrics.incr m_unknown
    | Wire.Welcome _ | Wire.Grant _ | Wire.Shutdown ->
        raise (Wire.Protocol_error "coordinator-bound stream carried a coordinator message")
  in
  let tick_timeout = Stdlib.min 1.0 (heartbeat_timeout /. 2.0) in
  let finished () = Lease.is_complete lease in
  if telemetry then
    Obs.Export.set_fleet (Some (fun () -> Telemetry.fleet reg ~now:(now_s ())));
  Fun.protect
    ~finally:(fun () ->
      (* freeze the final fleet view rather than dropping it: the
         exporter's last write happens after this returns, and a
         post-run [pptop --fleet] should still show who did what *)
      if telemetry then begin
        let final = Telemetry.fleet reg ~now:(now_s ()) in
        Obs.Export.set_fleet (Some (fun () -> final))
      end)
    (fun () ->
      while (not (finished ())) && not !interrupted do
        if should_stop () then interrupted := true
        else if accept = None && !conns = [] then begin
          (* no worker left and none can ever arrive: drain rather than hang *)
          emit ~severity:Obs.Events.Error "orphaned" [];
          interrupted := true
        end
        else begin
          let read_fds =
            (match accept with Some fd -> [ fd ] | None -> [])
            @ List.map (fun c -> Wire.reader_fd c.rd) !conns
          in
          let readable = Wire.select_eintr read_fds tick_timeout in
          (* new TCP workers *)
          (match accept with
          | Some afd when List.memq afd readable ->
              let wfd, _addr = Unix.accept afd in
              conns := mk_conn wfd :: !conns
          | _ -> ());
          (* worker traffic; snapshot the list — handlers mutate it *)
          List.iter
            (fun c ->
              if List.memq (Wire.reader_fd c.rd) readable then
                match Wire.drain c.rd with
                | exception Wire.Protocol_error e ->
                    note_corrupt c;
                    drop_conn c ("protocol error: " ^ e)
                | msgs, eof ->
                    note_corrupt c;
                    (try List.iter (handle_msg c) msgs
                     with Wire.Protocol_error e ->
                       drop_conn c ("protocol error: " ^ e));
                    if eof && List.memq c !conns then drop_conn c "eof")
            !conns;
          (* progress-expiry backup path: a worker sitting on leases
             without completing anything — wedged, or cut off from its
             Grant by a dropped frame — gets its chunks reclaimed but
             keeps its registration and socket: one lost frame is not a
             lost worker, and the moment it shows life it earns grants
             again *)
          List.iter
            (fun (worker, reclaimed) ->
              Obs.Metrics.incr m_expired;
              Telemetry.clear_leased reg ~worker;
              reassigned := !reassigned + List.length reclaimed;
              Obs.Metrics.add m_reassigned (List.length reclaimed);
              on_reclaim ~worker ~chunks:reclaimed;
              emit ~severity:Obs.Events.Warn "lease_expired"
                [
                  ("worker", Obs.Json.String worker);
                  ("leased", Obs.Json.Int (List.length reclaimed));
                ];
              emit "reassign"
                [
                  ("worker", Obs.Json.String worker);
                  ( "chunks",
                    Obs.Json.List (List.map (fun i -> Obs.Json.Int i) reclaimed) );
                ])
            (Lease.expire lease ~now:(now_s ()) ~timeout:heartbeat_timeout);
          (* ...whereas prolonged total silence means the process is
             gone without an EOF (severed link, frozen host): cut it
             loose so an all-dead fleet drains instead of spinning *)
          List.iter
            (fun c ->
              match c.name with
              | Some name -> (
                  match Lease.beat_age lease ~worker:name ~now:(now_s ()) with
                  | Some age when age > 3.0 *. heartbeat_timeout ->
                      drop_conn c "heartbeat timeout"
                  | _ -> ())
              | None -> ())
            !conns;
          (* reclaimed (or newly-arrived) chunks go to whoever is hungry *)
          feed_idle ()
        end
      done;
      List.iter (fun c -> send_safe c Wire.Shutdown) !conns;
      (* give workers a beat to flush their final telemetry before the
         sockets close: their last Events/Heartbeat only races the
         close, never the results *)
      if telemetry && !conns <> [] then begin
        let deadline = now_s () +. 0.5 in
        let rec final_drain () =
          let remaining = deadline -. now_s () in
          if remaining > 0.0 && !conns <> [] then begin
            let read_fds = List.map (fun c -> Wire.reader_fd c.rd) !conns in
            let readable = Wire.select_eintr read_fds remaining in
            if readable <> [] then begin
              List.iter
                (fun c ->
                  if List.memq (Wire.reader_fd c.rd) readable then
                    match Wire.drain c.rd with
                    | exception Wire.Protocol_error _ -> drop_conn ~lost:false c "eof"
                    | msgs, eof ->
                        note_corrupt c;
                        (try
                           List.iter
                             (fun m ->
                               match m with
                               | Wire.Heartbeat _ | Wire.Events _ -> handle_msg c m
                               | _ -> ())
                             msgs
                         with Wire.Protocol_error _ -> ());
                        if eof && List.memq c !conns then
                          drop_conn ~lost:false c "eof")
                !conns;
              final_drain ()
            end
          end
        in
        final_drain ()
      end;
      List.iter
        (fun c -> try Unix.close (Wire.reader_fd c.rd) with Unix.Unix_error _ -> ())
        !conns;
      Obs.Metrics.set g_workers 0.0;
      {
        chunks_done = !chunks_done;
        duplicates = !duplicates;
        stale_dropped = !stale_dropped;
        reassigned = !reassigned;
        workers_seen = !workers_seen;
        workers_lost = !workers_lost;
        rejoins = !rejoins;
        corrupt_frames = !corrupt_frames;
        events_forwarded = !events_forwarded;
        interrupted = !interrupted;
        fleet = Telemetry.summaries reg;
      })
