(** The coordinator side of the distributed scan: a single-threaded
    [select(2)] event loop (EINTR-proof, {!Wire.select_eintr}) that
    welcomes workers, leases them chunk ranges, collects their
    per-chunk accumulators, and reassigns the leases of workers that
    die.

    Worker death is detected in graded steps. The fast path is fd
    EOF — a SIGKILLed worker's socket closes immediately; the worker
    is failed and its leases reclaimed. The backup is {e progress
    expiry}: a worker sitting on leases without completing anything
    for [heartbeat_timeout] seconds has its chunks reclaimed but keeps
    its registration and socket — under fault injection that usually
    means a lost Grant or Result frame, not a dead process, and the
    worker earns grants again the moment it shows life (grants are
    gated on heartbeat freshness, so a silent worker is never fed).
    Only prolonged {e total} silence (3× the timeout without a beat)
    drops the connection as lost. Either way a chunk is only ever
    {e recorded} once, so a resurrection race produces a dropped
    duplicate, never a double count.

    Rejoins: a Hello bearing an already-registered name on a {e new}
    connection supersedes the old socket without touching the ledger —
    same identity, the standing leases are re-sent as Grant frames
    (the worker's cache answers instantly for chunks it already
    computed). A Hello {e retry} on the same connection (the worker
    missed our Welcome) is answered with a fresh Welcome and the same
    re-grant. Corrupt frames skipped by the v3 reader are tallied per
    connection into the stats and [dist.corrupt_frames].

    Every accepted result is handed to [on_result] in arrival order —
    the caller stores it in its per-chunk slot (and typically notes it
    in a {!Obs.Checkpoint.writer}); the index-ordered merge at the end
    is the caller's job, which is what makes the distributed aggregate
    byte-identical to a single-process run.

    Emits [dist.*] events ({!Obs.Events}) — [worker_join], [lease],
    [chunk_done], [worker_lost], [worker_rejoin], [lease_expired],
    [reassign], [stale_result], [corrupt_frames] — and mirrors the
    totals in [dist.*] metrics ({!Obs.Metrics}).

    With telemetry on (see [?telemetry]) it additionally maintains a
    {!Telemetry} registry — per-worker identity, liveness, clock
    offset, accumulated metric deltas — publishes it as the fleet
    section of {!Obs.Export} snapshots, and re-injects workers'
    forwarded event lines (offset-aligned, origin-tagged) into its own
    {!Obs.Events} sink, producing one merged fleet timeline. *)

type stats = {
  chunks_done : int;  (** fresh results recorded this run *)
  duplicates : int;  (** results for already-done chunks, dropped *)
  stale_dropped : int;  (** results stamped with a previous epoch *)
  reassigned : int;  (** chunk leases reclaimed (death or expiry) *)
  workers_seen : int;
  workers_lost : int;  (** EOF, protocol failure, or prolonged silence *)
  rejoins : int;  (** reconnects recognised by worker name *)
  corrupt_frames : int;  (** v3 frames skipped for length/CRC failure *)
  events_forwarded : int;  (** worker event lines ingested (racy) *)
  interrupted : bool;  (** [should_stop] fired before completion *)
  fleet : Telemetry.summary list;  (** per-worker totals, join order *)
}

val run :
  ?accept:Unix.file_descr ->
  ?fds:Unix.file_descr list ->
  ?heartbeat_timeout:float ->
  ?max_batch:int ->
  ?chaos:Chaos.spec ->
  ?should_stop:(unit -> bool) ->
  ?on_grant:(worker:string -> lo:int -> hi:int -> unit) ->
  ?on_reclaim:(worker:string -> chunks:int list -> unit) ->
  ?telemetry:bool ->
  config:Obs.Json.t ->
  config_hash:string ->
  epoch:int ->
  total_chunks:int ->
  completed:(int -> bool) ->
  on_result:(chunk:int -> Obs.Json.t -> unit) ->
  unit ->
  stats
(** Run the ledger to completion. [fds] are already-connected worker
    sockets (the fork topology); [accept] is a listening socket whose
    connections are welcomed as they arrive (the TCP topology) — at
    least one source must eventually produce a worker or the loop
    waits forever. [config]/[config_hash] are what joining workers
    receive in their {!Wire.Welcome}; [epoch] stamps every grant, and
    results carrying any other epoch are dropped as stale.
    [completed] seeds the ledger from a resumed checkpoint.
    [heartbeat_timeout] (default 10s) bounds how long an unproductive
    worker can sit on a lease; [max_batch] (default 16) caps grant
    sizes (see {!Lease}). [chaos] arms deterministic fault injection
    on this side's outbound frames, one {!Chaos} stream per accepted
    connection in accept order. [should_stop] (polled every loop tick,
    with {!Obs.Shutdown.requested} checked alongside by the caller if
    desired) drains the loop early: workers get a {!Wire.Shutdown} and
    [interrupted] is set.

    [telemetry] asks workers (via their Welcome) to stream metric
    deltas and batched event lines; it defaults to whether any local
    observability sink is live ([{!Obs.Metrics.enabled} ||
    {!Obs.Events.enabled} || {!Obs.Export.active}]). While running
    with telemetry, {!Obs.Export.set_fleet} is installed so metric
    snapshots carry the [workers] section; on exit (even on raise) the
    live provider is replaced by a frozen final view, so the
    exporter's last write — and a post-run [pptop --fleet] — still
    shows who did what. After Shutdown the loop lingers briefly
    (≤0.5s) to drain workers' final telemetry flushes.

    [on_grant]/[on_reclaim] mirror every lease movement — this is how
    the caller keeps the {!Obs.Checkpoint} lease table in step with
    the live ledger, so snapshots show who held what at a crash.
    ([mark_done] releases a completed chunk's lease on its own.)

    Returns when every chunk is done (or on early stop); all worker
    fds are closed on exit, [accept] is left open (the caller owns
    it). A worker whose connection raises {!Wire.Protocol_error} is
    dropped like a dead worker. *)
