type chunk_state = Todo | Leased of string | Done

type worker_info = {
  mutable last_beat : float;  (** liveness: any message refreshes it *)
  mutable last_progress : float;
      (** scheduling progress: register / grant / complete-as-holder *)
  mutable held : int;
}

type t = {
  chunks : chunk_state array;
  max_batch : int;
  mutable todo : int;  (** chunks in [Todo] *)
  mutable dones : int;  (** chunks in [Done] *)
  mutable scan_from : int;  (** no [Todo] chunk below this index *)
  workers : (string, worker_info) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

let create ?(max_batch = 16) ~total ~completed () =
  if total < 0 then invalid_arg "Lease.create: negative total";
  let chunks =
    Array.init total (fun i -> if completed i then Done else Todo)
  in
  let dones = Array.fold_left (fun n c -> if c = Done then n + 1 else n) 0 chunks in
  {
    chunks;
    max_batch = Stdlib.max 1 max_batch;
    todo = total - dones;
    dones;
    scan_from = 0;
    workers = Hashtbl.create 8;
    order = [];
  }

let register t ~worker ~now =
  match Hashtbl.find_opt t.workers worker with
  | Some w ->
      w.last_beat <- now;
      w.last_progress <- now
  | None ->
      Hashtbl.add t.workers worker
        { last_beat = now; last_progress = now; held = 0 };
      t.order <- worker :: t.order

let live_workers t =
  Hashtbl.length t.workers

let grant t ~worker ~now =
  let w =
    match Hashtbl.find_opt t.workers worker with
    | Some w -> w
    | None -> invalid_arg (Printf.sprintf "Lease.grant: unknown worker %S" worker)
  in
  if t.todo = 0 then None
  else begin
    let n = Array.length t.chunks in
    (* advance past non-Todo prefix *)
    while t.scan_from < n && t.chunks.(t.scan_from) <> Todo do
      t.scan_from <- t.scan_from + 1
    done;
    if t.scan_from >= n then None
    else begin
      let nw = Stdlib.max 1 (live_workers t) in
      let batch =
        Stdlib.max 1 (Stdlib.min t.max_batch ((t.todo + (2 * nw) - 1) / (2 * nw)))
      in
      let lo = t.scan_from in
      let hi = ref lo in
      while !hi < n && !hi - lo < batch && t.chunks.(!hi) = Todo do
        t.chunks.(!hi) <- Leased worker;
        incr hi
      done;
      let taken = !hi - lo in
      t.todo <- t.todo - taken;
      t.scan_from <- !hi;
      w.held <- w.held + taken;
      w.last_beat <- now;
      w.last_progress <- now;
      Some (lo, !hi)
    end
  end

let complete t ~chunk ~now =
  match t.chunks.(chunk) with
  | Done -> `Duplicate
  | prev ->
      (match prev with
      | Leased holder -> (
          match Hashtbl.find_opt t.workers holder with
          | Some w ->
              w.held <- w.held - 1;
              w.last_progress <- now
          | None -> ())
      | Todo -> t.todo <- t.todo - 1
      | Done -> ());
      t.chunks.(chunk) <- Done;
      t.dones <- t.dones + 1;
      `Fresh

let heartbeat t ~worker ~now =
  match Hashtbl.find_opt t.workers worker with
  | Some w -> w.last_beat <- now
  | None -> ()

let beat_age t ~worker ~now =
  match Hashtbl.find_opt t.workers worker with
  | Some w -> Some (now -. w.last_beat)
  | None -> None

let leases_of t ~worker =
  let out = ref [] in
  for i = Array.length t.chunks - 1 downto 0 do
    if t.chunks.(i) = Leased worker then out := i :: !out
  done;
  !out

let reclaim t ~worker =
  let held = leases_of t ~worker in
  List.iter
    (fun i ->
      t.chunks.(i) <- Todo;
      t.todo <- t.todo + 1;
      if i < t.scan_from then t.scan_from <- i)
    held;
  (match Hashtbl.find_opt t.workers worker with
  | Some w -> w.held <- 0
  | None -> ());
  held

let fail_worker t ~worker =
  match Hashtbl.find_opt t.workers worker with
  | None -> []
  | Some _ ->
      let held = reclaim t ~worker in
      Hashtbl.remove t.workers worker;
      t.order <- List.filter (fun w -> w <> worker) t.order;
      held

let expire t ~now ~timeout =
  let stale =
    Hashtbl.fold
      (fun name w acc ->
        if w.held > 0 && now -. w.last_progress > timeout then name :: acc
        else acc)
      t.workers []
  in
  List.filter_map
    (fun name ->
      match reclaim t ~worker:name with
      | [] -> None
      | chunks -> Some (name, chunks))
    (List.sort compare stale)

let workers t = List.rev t.order
let is_complete t = t.dones = Array.length t.chunks
let done_count t = t.dones
let todo_count t = t.todo
