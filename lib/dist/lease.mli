(** The coordinator's in-memory view of the chunk ledger: which chunks
    are done, which are leased to which worker, and which still need an
    owner. Pure bookkeeping — no I/O, no clocks of its own (callers
    pass [now]) — so the reassignment logic is unit- and
    property-testable without processes.

    Grant policy: the lowest-index run of contiguous todo chunks, with
    a {e descending} batch size [max 1 (min max_batch
    (ceil (todo / (2 * workers))))] — the same guided-self-scheduling
    shape as {!Pool.boundaries}, applied at the lease level: early
    grants are big (few round-trips), final grants are single chunks
    (a straggler holds back one chunk, not a batch).

    Reassignment: a worker that disconnects, or whose heartbeat is
    older than the timeout {e while holding leases}, gets its leased
    chunks returned to the todo pool; idle workers are never expired
    (they have nothing to reclaim and may simply be waiting). *)

type t

val create : ?max_batch:int -> total:int -> completed:(int -> bool) -> unit -> t
(** [total] chunks; [completed i] marks chunks a resumed checkpoint
    already recorded (they are born done). [max_batch] (default 16)
    caps grant sizes. *)

val register : t -> worker:string -> now:float -> unit
(** Add a worker (idempotent; re-registering refreshes its
    heartbeat). *)

val grant : t -> worker:string -> (int * int) option
(** Lease the next batch to [worker]: [Some (lo_chunk, hi_chunk)]
    covering chunks [lo_chunk .. hi_chunk - 1], or [None] when no todo
    chunk remains (everything is done or leased out).
    @raise Invalid_argument when [worker] is not registered. *)

val complete : t -> chunk:int -> [ `Fresh | `Duplicate ]
(** Mark a chunk done (releasing its lease). [`Duplicate] when it was
    already done — a re-run chunk that raced its reassignment; the
    caller drops the duplicate result. *)

val heartbeat : t -> worker:string -> now:float -> unit
(** Refresh a worker's liveness stamp (unknown workers ignored). *)

val fail_worker : t -> worker:string -> int list
(** Remove a worker, returning its leased chunks (index order) to the
    todo pool — the caller re-grants them. Unknown workers yield []. *)

val expire : t -> now:float -> timeout:float -> (string * int list) list
(** Fail every worker whose heartbeat is older than [timeout] seconds
    {e and} that holds at least one lease; returns the reclaimed
    chunks per worker, as {!fail_worker} would. *)

val leases_of : t -> worker:string -> int list
(** Chunks currently leased to [worker], in index order. *)

val workers : t -> string list
(** Registered workers, in registration order. *)

val is_complete : t -> bool
val done_count : t -> int
val todo_count : t -> int
(** Chunks neither done nor leased. *)
