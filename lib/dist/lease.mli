(** The coordinator's in-memory view of the chunk ledger: which chunks
    are done, which are leased to which worker, and which still need an
    owner. Pure bookkeeping — no I/O, no clocks of its own (callers
    pass [now], always from the {e monotonic} {!Obs.Clock}; a wall
    clock here would let an NTP step mass-expire healthy leases) — so
    the reassignment logic is unit- and property-testable without
    processes.

    Grant policy: the lowest-index run of contiguous todo chunks, with
    a {e descending} batch size [max 1 (min max_batch
    (ceil (todo / (2 * workers))))] — the same guided-self-scheduling
    shape as {!Pool.boundaries}, applied at the lease level: early
    grants are big (few round-trips), final grants are single chunks
    (a straggler holds back one chunk, not a batch).

    Two timestamps per worker, deliberately distinct. [last_beat] is
    {e liveness} — refreshed by any message, consulted via {!beat_age}
    when deciding whether a worker is worth granting to. The progress
    stamp is {e scheduling} — refreshed only by register, grant and
    completing a held chunk, consulted by {!expire}. A worker wedged by
    a dropped [Grant] frame keeps heartbeating (live) while making no
    progress (expirable): its leases are reclaimed but the worker stays
    registered with its connection open, ready to be re-granted. Only
    {!fail_worker} — the connection actually died — removes a
    worker. *)

type t

val create : ?max_batch:int -> total:int -> completed:(int -> bool) -> unit -> t
(** [total] chunks; [completed i] marks chunks a resumed checkpoint
    already recorded (they are born done). [max_batch] (default 16)
    caps grant sizes. *)

val register : t -> worker:string -> now:float -> unit
(** Add a worker (idempotent; re-registering refreshes both its
    liveness and progress stamps — a rejoin is progress). *)

val grant : t -> worker:string -> now:float -> (int * int) option
(** Lease the next batch to [worker]: [Some (lo_chunk, hi_chunk)]
    covering chunks [lo_chunk .. hi_chunk - 1], or [None] when no todo
    chunk remains (everything is done or leased out). Stamps the
    worker's progress.
    @raise Invalid_argument when [worker] is not registered. *)

val complete : t -> chunk:int -> now:float -> [ `Fresh | `Duplicate ]
(** Mark a chunk done (releasing its lease and stamping the holder's
    progress). [`Duplicate] when it was already done — a re-run chunk
    that raced its reassignment; the caller drops the duplicate
    result. *)

val heartbeat : t -> worker:string -> now:float -> unit
(** Refresh a worker's liveness stamp (unknown workers ignored).
    Deliberately {e not} progress: a wedged worker heartbeats
    forever. *)

val beat_age : t -> worker:string -> now:float -> float option
(** Seconds since [worker]'s last liveness refresh; [None] when
    unregistered. The coordinator's grant gate: a worker whose beat is
    stale gets no new lease (it may be dead without an EOF yet). *)

val fail_worker : t -> worker:string -> int list
(** Remove a worker — its connection is gone — returning its leased
    chunks (index order) to the todo pool; the caller re-grants them.
    Unknown workers yield []. *)

val expire : t -> now:float -> timeout:float -> (string * int list) list
(** Reclaim the leases of every worker that holds at least one chunk
    but has made no {e progress} for [timeout] seconds, returning the
    reclaimed chunks per worker (worker name order). The workers stay
    registered: under fault injection a reclaim usually means a lost
    frame, not a dead process, and the same worker re-earns grants the
    moment it shows life. Idle workers are never expired. *)

val leases_of : t -> worker:string -> int list
(** Chunks currently leased to [worker], in index order. *)

val workers : t -> string list
(** Registered workers, in registration order. *)

val is_complete : t -> bool
val done_count : t -> int
val todo_count : t -> int
(** Chunks neither done nor leased. *)
