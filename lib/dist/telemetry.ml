(* The coordinator's per-worker telemetry registry. Everything here is
   advisory observability riding on already-racy channels (heartbeat
   timing, event batching) — nothing feeds back into scheduling or
   results, which is what keeps the scan's determinism contract intact
   with telemetry on or off.

   The mutex is real, not ceremony: the coordinator's select loop
   mutates rows while the Obs.Export writer thread snapshots them for
   the fleet view. *)

type worker = {
  w_name : string;
  mutable w_host : string;
  mutable w_pid : int;
  mutable w_last_seen_s : float;  (* coordinator monotonic, absolute *)
  mutable w_offset_s : float;
  mutable w_has_offset : bool;
  mutable w_chunks_done : int;
  mutable w_leased : int;
  mutable w_events : int;
  mutable w_metrics : Obs.Metrics.snapshot;
}

type t = { lock : Mutex.t; mutable rows : worker list (* reverse join order *) }

type summary = {
  s_worker : string;
  s_host : string;
  s_pid : int;
  s_chunks_done : int;
  s_events : int;
  s_offset_s : float;
  s_metrics : Obs.Metrics.snapshot;
}

let create () = { lock = Mutex.create (); rows = [] }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t name = List.find_opt (fun w -> w.w_name = name) t.rows

let get t name ~now =
  match find t name with
  | Some w -> w
  | None ->
    let w =
      {
        w_name = name;
        w_host = "";
        w_pid = 0;
        w_last_seen_s = now;
        w_offset_s = 0.0;
        w_has_offset = false;
        w_chunks_done = 0;
        w_leased = 0;
        w_events = 0;
        w_metrics = [];
      }
    in
    t.rows <- w :: t.rows;
    w

(* One-way delay estimation: every stamped message gives a sample
   [recv - sent = true_offset + delivery_delay] with delay >= 0, so the
   minimum over samples converges on the true offset from above. On one
   machine (fork workers share CLOCK_MONOTONIC) the true offset is 0
   and the estimate is just the smallest observed delivery delay. *)
let sample w ~sent_s ~now =
  let est = now -. sent_s in
  if (not w.w_has_offset) || est < w.w_offset_s then begin
    w.w_offset_s <- est;
    w.w_has_offset <- true
  end

let join t ~worker ~host ~pid ~sent_s ~now =
  with_lock t (fun () ->
      let w = get t worker ~now in
      if host <> "" then w.w_host <- host;
      if pid <> 0 then w.w_pid <- pid;
      w.w_last_seen_s <- now;
      match sent_s with Some s -> sample w ~sent_s:s ~now | None -> ())

let seen t ~worker ~now =
  with_lock t (fun () -> (get t worker ~now).w_last_seen_s <- now)

let heartbeat t ~worker ~sent_s ~metrics ~now =
  with_lock t (fun () ->
      let w = get t worker ~now in
      w.w_last_seen_s <- now;
      (match sent_s with Some s -> sample w ~sent_s:s ~now | None -> ());
      match metrics with
      | None -> ()
      | Some j -> (
          match Obs.Metrics.of_json_value j with
          | Ok delta -> w.w_metrics <- Obs.Metrics.merge w.w_metrics delta
          | Error _ -> () (* malformed telemetry is dropped, never fatal *)))

let chunk_done t ~worker ~now =
  with_lock t (fun () ->
      let w = get t worker ~now in
      w.w_last_seen_s <- now;
      w.w_chunks_done <- w.w_chunks_done + 1;
      if w.w_leased > 0 then w.w_leased <- w.w_leased - 1)

let add_leased t ~worker ~n ~now =
  with_lock t (fun () ->
      let w = get t worker ~now in
      w.w_leased <- w.w_leased + n)

let clear_leased t ~worker =
  with_lock t (fun () ->
      match find t worker with Some w -> w.w_leased <- 0 | None -> ())

let note_events t ~worker ~n ~now =
  with_lock t (fun () ->
      let w = get t worker ~now in
      w.w_last_seen_s <- now;
      w.w_events <- w.w_events + n)

let offset t ~worker =
  with_lock t (fun () ->
      match find t worker with
      | Some w when w.w_has_offset -> w.w_offset_s
      | _ -> 0.0)

(* ------------------------------------------------- event realignment *)

let number = function
  | Some (Obs.Json.Float f) -> Some f
  | Some (Obs.Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* Rewrite one forwarded ppevents line into the receiving sink's time
   basis and tag it with its origin. [offset_s]/[origin_s] come from
   the sender ([worker absolute ts = origin_s + ts_s], then + offset to
   land on the receiver's clock); [sink_origin_s] is the receiving
   sink's own origin, subtracted so the injected [ts_s] is relative
   like every locally-emitted record. Header lines (they carry
   "schema") and unparseable lines yield [None]. *)
let align_line ~offset_s ~origin_s ~sink_origin_s ~tags line =
  match Obs.Json.parse line with
  | Error _ -> None
  | Ok (Obs.Json.Obj fields) ->
    if List.mem_assoc "schema" fields then None
    else
      let ts = Option.value ~default:0.0 (number (List.assoc_opt "ts_s" fields)) in
      let ts' = ts +. origin_s +. offset_s -. sink_origin_s in
      let fields =
        List.map
          (fun (k, v) -> if k = "ts_s" then (k, Obs.Json.Float ts') else (k, v))
          fields
      in
      let fresh = List.filter (fun (k, _) -> not (List.mem_assoc k fields)) tags in
      Some (Obs.Json.Obj (fields @ fresh))
  | Ok _ -> None

let align_events t ~worker ~origin_s ~sink_origin_s lines =
  let offset_s, host, pid =
    with_lock t (fun () ->
        match find t worker with
        | Some w -> ((if w.w_has_offset then w.w_offset_s else 0.0), w.w_host, w.w_pid)
        | None -> (0.0, "", 0))
  in
  let tags =
    [ ("worker", Obs.Json.String worker) ]
    @ (if host = "" then [] else [ ("host", Obs.Json.String host) ])
    @ if pid = 0 then [] else [ ("wpid", Obs.Json.Int pid) ]
  in
  List.filter_map (align_line ~offset_s ~origin_s ~sink_origin_s ~tags) lines

(* ------------------------------------------------------------ views *)

let fleet t ~now =
  with_lock t (fun () ->
      List.rev_map
        (fun w ->
          {
            Obs.Export.fw_worker = w.w_name;
            fw_host = w.w_host;
            fw_pid = w.w_pid;
            fw_last_seen_s = Float.max 0.0 (now -. w.w_last_seen_s);
            fw_offset_s = (if w.w_has_offset then w.w_offset_s else 0.0);
            fw_chunks_done = w.w_chunks_done;
            fw_leased = w.w_leased;
            fw_events = w.w_events;
            fw_metrics = w.w_metrics;
          })
        t.rows)

let summaries t =
  with_lock t (fun () ->
      List.rev_map
        (fun w ->
          {
            s_worker = w.w_name;
            s_host = w.w_host;
            s_pid = w.w_pid;
            s_chunks_done = w.w_chunks_done;
            s_events = w.w_events;
            s_offset_s = (if w.w_has_offset then w.w_offset_s else 0.0);
            s_metrics = w.w_metrics;
          })
        t.rows)
