(** The coordinator's per-worker telemetry registry: who is connected
    from where, when each worker was last heard, its estimated
    monotonic clock offset, its accumulated metric deltas, and counts
    of chunks/events it produced. Pure observability — nothing here
    feeds scheduling or results, so the scan's determinism contract
    holds with telemetry on or off.

    Thread-safety: mutated by the coordinator's select loop, read by
    the {!Obs.Export} writer thread through {!fleet}; every operation
    takes the registry mutex. *)

type t

type summary = {
  s_worker : string;
  s_host : string;
  s_pid : int;
  s_chunks_done : int;
  s_events : int;  (** forwarded event lines ingested *)
  s_offset_s : float;  (** clock-offset estimate; 0 when never sampled *)
  s_metrics : Obs.Metrics.snapshot;  (** accumulated heartbeat deltas *)
}
(** One worker's totals, as surfaced in {!Coordinator.stats}. *)

val create : unit -> t

val join :
  t ->
  worker:string ->
  host:string ->
  pid:int ->
  sent_s:float option ->
  now:float ->
  unit
(** Record a {!Wire.Hello}: identity plus (when the Hello was stamped)
    the first clock-offset sample. Re-joining updates in place. *)

val seen : t -> worker:string -> now:float -> unit

val heartbeat :
  t ->
  worker:string ->
  sent_s:float option ->
  metrics:Obs.Json.t option ->
  now:float ->
  unit
(** Record a beat: liveness, an offset sample, and the metric delta
    merged into the worker's accumulated snapshot
    ({!Obs.Metrics.merge}). Malformed metric payloads are dropped. *)

val chunk_done : t -> worker:string -> now:float -> unit
val add_leased : t -> worker:string -> n:int -> now:float -> unit
val clear_leased : t -> worker:string -> unit
val note_events : t -> worker:string -> n:int -> now:float -> unit

val offset : t -> worker:string -> float
(** Min-filtered offset estimate: every stamped message samples
    [recv - sent = offset + delay] with [delay >= 0], so the minimum
    converges on the true offset from above (0 for same-host workers
    sharing CLOCK_MONOTONIC, modulo one delivery delay). 0 when never
    sampled. *)

val align_line :
  offset_s:float ->
  origin_s:float ->
  sink_origin_s:float ->
  tags:(string * Obs.Json.t) list ->
  string ->
  Obs.Json.t option
(** Pure helper behind {!align_events} (exposed for the clock-skew
    property tests): rewrite one forwarded record line's [ts_s] from
    the sender's basis ([origin_s + ts_s] absolute, [+ offset_s] onto
    the receiver's clock, [- sink_origin_s] back to sink-relative) and
    append [tags] (existing fields win). [None] for header lines and
    non-record lines. *)

val align_events :
  t ->
  worker:string ->
  origin_s:float ->
  sink_origin_s:float ->
  string list ->
  Obs.Json.t list
(** Realign a {!Wire.Events} batch with [worker]'s current offset
    estimate, tagging each record with [worker]/[host]/[wpid] —
    ready for {!Obs.Events.inject} into the merged log. *)

val fleet : t -> now:float -> Obs.Export.fleet_worker list
(** The rows for {!Obs.Export.set_fleet}, join order, with
    [fw_last_seen_s] rendered as staleness ([now - last message]). *)

val summaries : t -> summary list
(** Join-order totals for {!Coordinator.stats}. *)
