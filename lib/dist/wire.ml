type msg =
  | Hello of { worker : string; pid : int; host : string; sent_s : float option }
  | Welcome of {
      config : Obs.Json.t;
      config_hash : string;
      epoch : int;
      total_chunks : int;
      telemetry : bool;
    }
  | Grant of { lo_chunk : int; hi_chunk : int; epoch : int }
  | Result of { chunk : int; epoch : int; state : Obs.Json.t }
  | Heartbeat of {
      worker : string;
      sent_s : float option;
      metrics : Obs.Json.t option;
    }
  | Events of { worker : string; origin_s : float; lines : string list }
  | Shutdown
  | Unknown of string

exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some (Printf.sprintf "Dist.Wire.Protocol_error: %s" m)
    | _ -> None)

let to_json msg =
  let open Obs.Json in
  match msg with
  | Hello { worker; pid; host; sent_s } ->
      Obj
        ([ ("msg", String "hello"); ("worker", String worker); ("pid", Int pid) ]
        @ (if host = "" then [] else [ ("host", String host) ])
        @ match sent_s with None -> [] | Some t -> [ ("sent_s", Float t) ])
  | Welcome { config; config_hash; epoch; total_chunks; telemetry } ->
      Obj
        ([
           ("msg", String "welcome");
           ("config", config);
           ("config_hash", String config_hash);
           ("epoch", Int epoch);
           ("total_chunks", Int total_chunks);
         ]
        @ if telemetry then [ ("telemetry", Bool true) ] else [])
  | Grant { lo_chunk; hi_chunk; epoch } ->
      Obj
        [
          ("msg", String "grant");
          ("lo_chunk", Int lo_chunk);
          ("hi_chunk", Int hi_chunk);
          ("epoch", Int epoch);
        ]
  | Result { chunk; epoch; state } ->
      Obj
        [
          ("msg", String "result");
          ("chunk", Int chunk);
          ("epoch", Int epoch);
          ("state", state);
        ]
  | Heartbeat { worker; sent_s; metrics } ->
      Obj
        ([ ("msg", String "heartbeat"); ("worker", String worker) ]
        @ (match sent_s with None -> [] | Some t -> [ ("sent_s", Float t) ])
        @ match metrics with None -> [] | Some m -> [ ("metrics", m) ])
  | Events { worker; origin_s; lines } ->
      Obj
        [
          ("msg", String "events");
          ("worker", String worker);
          ("origin_s", Float origin_s);
          ("lines", List (Stdlib.List.map (fun l -> String l) lines));
        ]
  | Shutdown -> Obj [ ("msg", String "shutdown") ]
  | Unknown kind -> Obj [ ("msg", String kind) ]

let of_json j =
  let open Obs.Json in
  let field name fields = List.assoc_opt name fields in
  let str name fields =
    match field name fields with
    | Some (String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let int name fields =
    match field name fields with
    | Some (Int i) -> Ok i
    | _ -> Error (Printf.sprintf "missing int field %S" name)
  in
  let json name fields =
    match field name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  (* v2 additions decode leniently: absent (a v1 peer) or oddly-typed
     fields fall back to a default instead of failing, so mixed-version
     fleets degrade to the v1 behaviour rather than desync *)
  let str_default name ~default fields =
    match field name fields with Some (String s) -> s | _ -> default
  in
  let float_opt name fields =
    match field name fields with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let bool_default name ~default fields =
    match field name fields with Some (Bool b) -> b | _ -> default
  in
  let ( let* ) = Result.bind in
  match j with
  | Obj fields -> (
      let* kind = str "msg" fields in
      match kind with
      | "hello" ->
          let* worker = str "worker" fields in
          let* pid = int "pid" fields in
          Ok
            (Hello
               {
                 worker;
                 pid;
                 host = str_default "host" ~default:"" fields;
                 sent_s = float_opt "sent_s" fields;
               })
      | "welcome" ->
          let* config = json "config" fields in
          let* config_hash = str "config_hash" fields in
          let* epoch = int "epoch" fields in
          let* total_chunks = int "total_chunks" fields in
          Ok
            (Welcome
               {
                 config;
                 config_hash;
                 epoch;
                 total_chunks;
                 telemetry = bool_default "telemetry" ~default:false fields;
               })
      | "grant" ->
          let* lo_chunk = int "lo_chunk" fields in
          let* hi_chunk = int "hi_chunk" fields in
          let* epoch = int "epoch" fields in
          Ok (Grant { lo_chunk; hi_chunk; epoch })
      | "result" ->
          let* chunk = int "chunk" fields in
          let* epoch = int "epoch" fields in
          let* state = json "state" fields in
          Ok (Result { chunk; epoch; state })
      | "heartbeat" ->
          let* worker = str "worker" fields in
          Ok
            (Heartbeat
               {
                 worker;
                 sent_s = float_opt "sent_s" fields;
                 metrics = field "metrics" fields;
               })
      | "events" ->
          let* worker = str "worker" fields in
          let lines =
            match field "lines" fields with
            | Some (List items) ->
                Stdlib.List.filter_map
                  (function String s -> Some s | _ -> None)
                  items
            | _ -> []
          in
          Ok
            (Events
               {
                 worker;
                 origin_s =
                   Option.value ~default:0.0 (float_opt "origin_s" fields);
                 lines;
               })
      | "shutdown" -> Ok Shutdown
      (* a kind this decoder does not know is a *newer* peer's message,
         not corruption: surface it as Unknown so the loops can count
         and skip it instead of dropping the connection *)
      | k -> Ok (Unknown k))
  | _ -> Error "message is not a JSON object"

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the frame
   checksum of ppdist/v3. Table-driven; crc32 "123456789" = 0xCBF43926. *)
let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ppdist/v3 framing: "#3 <payload-bytes> <crc32-hex> <payload>\n".
   '#' cannot open a JSON value, so a v1/v2 decoder could never have
   produced a line like this and a bare JSON line is unambiguously
   v1/v2 — both generations parse from the same stream. *)
let frame payload =
  Printf.sprintf "#3 %d %08x %s\n" (String.length payload) (crc32 payload)
    payload

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let n =
      try Unix.write fd b !pos (len - !pos)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    pos := !pos + n
  done

let send ?chaos fd msg =
  let line = frame (Obs.Json.to_string (to_json msg)) in
  match chaos with
  | None -> write_all fd line
  | Some c -> List.iter (write_all fd) (Chaos.apply c line)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received but not yet cut into lines *)
  scratch : Bytes.t;
  mutable pending : msg list;  (** parsed but not yet handed out *)
  mutable corrupt : int;  (** frames skipped for failing the v3 checks *)
  mutable v3_seen : bool;  (** peer has proven itself a v3 sender *)
}

let reader fd =
  {
    fd;
    buf = Buffer.create 4096;
    scratch = Bytes.create 65536;
    pending = [];
    corrupt = 0;
    v3_seen = false;
  }

let reader_fd r = r.fd
let corrupt_count r = r.corrupt
let m_corrupt = Obs.Metrics.counter "dist.corrupt_frames"

let parse_line line =
  match Obs.Json.parse line with
  | Error e -> raise (Protocol_error (Printf.sprintf "bad JSON line: %s" e))
  | Ok j -> (
      match of_json j with
      | Ok m -> m
      | Error e ->
          raise (Protocol_error (Printf.sprintf "bad message: %s in %s" e line)))

(* A "#3 "-prefixed line whose length and CRC both check out; None is a
   corrupt (truncated / bit-flipped) frame. *)
let unframe_v3 line =
  let n = String.length line in
  match String.index_from_opt line 3 ' ' with
  | None -> None
  | Some sp1 -> (
      match String.index_from_opt line (sp1 + 1) ' ' with
      | None -> None
      | Some sp2 -> (
          let len = int_of_string_opt (String.sub line 3 (sp1 - 3)) in
          let crc =
            int_of_string_opt ("0x" ^ String.sub line (sp1 + 1) (sp2 - sp1 - 1))
          in
          match (len, crc) with
          | Some len, Some crc when n - sp2 - 1 = len ->
              let payload = String.sub line (sp2 + 1) len in
              if crc32 payload = crc then Some payload else None
          | _ -> None))

let mark_corrupt r =
  r.corrupt <- r.corrupt + 1;
  Obs.Metrics.incr m_corrupt

(* Classify one complete line. Corrupt v3 frames are counted and
   skipped — never fatal; the sender's recovery machinery (lease
   reclaim, duplicate resend) replaces whatever they carried. Bare
   lines are v1/v2 messages and keep the strict Protocol_error
   contract — except on a connection that has already proven itself v3,
   where an unparseable bare line can only be a mangled frame (e.g. a
   bit flip inside the "#3 " prefix) and is counted as corrupt too. *)
let classify r line =
  if String.length line >= 3 && String.sub line 0 3 = "#3 " then
    match unframe_v3 line with
    | Some payload ->
        r.v3_seen <- true;
        (* the CRC vouched for the payload: a parse failure here is a
           sender bug, not line noise — keep it loud *)
        Some (parse_line payload)
    | None ->
        mark_corrupt r;
        None
  else
    match parse_line line with
    | m -> Some m
    | exception Protocol_error _ when r.v3_seen ->
        mark_corrupt r;
        None

(* Move every complete line of [r.buf] onto [r.pending], keeping the
   trailing partial line (if any) buffered. *)
let cut_lines r =
  let s = Buffer.contents r.buf in
  let n = String.length s in
  let msgs = ref [] in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from s !start '\n' in
       let line = String.sub s !start (nl - !start) in
       (if String.length line > 0 then
          match classify r line with
          | Some m -> msgs := m :: !msgs
          | None -> ());
       start := nl + 1
     done
   with Not_found -> ());
  Buffer.clear r.buf;
  if !start < n then Buffer.add_substring r.buf s !start (n - !start);
  r.pending <- r.pending @ List.rev !msgs

(* One read(2); -1 encodes EINTR (retryable, not EOF). *)
let read_once r =
  try Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> -1
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0

let drain r =
  let n = read_once r in
  if n > 0 then Buffer.add_subbytes r.buf r.scratch 0 n;
  cut_lines r;
  let msgs = r.pending in
  r.pending <- [];
  (msgs, n = 0)

let rec recv r =
  match r.pending with
  | m :: rest ->
      r.pending <- rest;
      Some m
  | [] -> (
      match read_once r with
      | 0 -> None
      | n ->
          if n > 0 then Buffer.add_subbytes r.buf r.scratch 0 n;
          cut_lines r;
          recv r)

(* select(2) that survives signals: EINTR retries with the remaining
   time recomputed on the monotonic clock, so a SIGALRM/SIGCHLD storm
   neither tears the loop down nor stretches the timeout. A negative
   timeout blocks indefinitely, as in [Unix.select]. *)
let select_eintr fds timeout_s =
  let t0 = Obs.Clock.now_ns () in
  let rec go remaining =
    match Unix.select fds [] [] remaining with
    | ready, _, _ -> ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        go
          (if timeout_s < 0.0 then timeout_s
           else Float.max 0.0 (timeout_s -. Obs.Clock.elapsed_s t0))
  in
  go timeout_s

let recv_within r ~timeout_s =
  let t0 = Obs.Clock.now_ns () in
  let rec go () =
    match r.pending with
    | m :: rest ->
        r.pending <- rest;
        `Msg m
    | [] -> (
        let remaining = timeout_s -. Obs.Clock.elapsed_s t0 in
        if remaining < 0.0 then `Timeout
        else
          match select_eintr [ r.fd ] remaining with
          | [] -> `Timeout
          | _ -> (
              match read_once r with
              | 0 -> `Eof
              | n ->
                  if n > 0 then Buffer.add_subbytes r.buf r.scratch 0 n;
                  cut_lines r;
                  go ()))
  in
  go ()
