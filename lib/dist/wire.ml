type msg =
  | Hello of { worker : string; pid : int; host : string; sent_s : float option }
  | Welcome of {
      config : Obs.Json.t;
      config_hash : string;
      epoch : int;
      total_chunks : int;
      telemetry : bool;
    }
  | Grant of { lo_chunk : int; hi_chunk : int; epoch : int }
  | Result of { chunk : int; epoch : int; state : Obs.Json.t }
  | Heartbeat of {
      worker : string;
      sent_s : float option;
      metrics : Obs.Json.t option;
    }
  | Events of { worker : string; origin_s : float; lines : string list }
  | Shutdown
  | Unknown of string

exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some (Printf.sprintf "Dist.Wire.Protocol_error: %s" m)
    | _ -> None)

let to_json msg =
  let open Obs.Json in
  match msg with
  | Hello { worker; pid; host; sent_s } ->
      Obj
        ([ ("msg", String "hello"); ("worker", String worker); ("pid", Int pid) ]
        @ (if host = "" then [] else [ ("host", String host) ])
        @ match sent_s with None -> [] | Some t -> [ ("sent_s", Float t) ])
  | Welcome { config; config_hash; epoch; total_chunks; telemetry } ->
      Obj
        ([
           ("msg", String "welcome");
           ("config", config);
           ("config_hash", String config_hash);
           ("epoch", Int epoch);
           ("total_chunks", Int total_chunks);
         ]
        @ if telemetry then [ ("telemetry", Bool true) ] else [])
  | Grant { lo_chunk; hi_chunk; epoch } ->
      Obj
        [
          ("msg", String "grant");
          ("lo_chunk", Int lo_chunk);
          ("hi_chunk", Int hi_chunk);
          ("epoch", Int epoch);
        ]
  | Result { chunk; epoch; state } ->
      Obj
        [
          ("msg", String "result");
          ("chunk", Int chunk);
          ("epoch", Int epoch);
          ("state", state);
        ]
  | Heartbeat { worker; sent_s; metrics } ->
      Obj
        ([ ("msg", String "heartbeat"); ("worker", String worker) ]
        @ (match sent_s with None -> [] | Some t -> [ ("sent_s", Float t) ])
        @ match metrics with None -> [] | Some m -> [ ("metrics", m) ])
  | Events { worker; origin_s; lines } ->
      Obj
        [
          ("msg", String "events");
          ("worker", String worker);
          ("origin_s", Float origin_s);
          ("lines", List (Stdlib.List.map (fun l -> String l) lines));
        ]
  | Shutdown -> Obj [ ("msg", String "shutdown") ]
  | Unknown kind -> Obj [ ("msg", String kind) ]

let of_json j =
  let open Obs.Json in
  let field name fields = List.assoc_opt name fields in
  let str name fields =
    match field name fields with
    | Some (String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let int name fields =
    match field name fields with
    | Some (Int i) -> Ok i
    | _ -> Error (Printf.sprintf "missing int field %S" name)
  in
  let json name fields =
    match field name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  (* v2 additions decode leniently: absent (a v1 peer) or oddly-typed
     fields fall back to a default instead of failing, so mixed-version
     fleets degrade to the v1 behaviour rather than desync *)
  let str_default name ~default fields =
    match field name fields with Some (String s) -> s | _ -> default
  in
  let float_opt name fields =
    match field name fields with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let bool_default name ~default fields =
    match field name fields with Some (Bool b) -> b | _ -> default
  in
  let ( let* ) = Result.bind in
  match j with
  | Obj fields -> (
      let* kind = str "msg" fields in
      match kind with
      | "hello" ->
          let* worker = str "worker" fields in
          let* pid = int "pid" fields in
          Ok
            (Hello
               {
                 worker;
                 pid;
                 host = str_default "host" ~default:"" fields;
                 sent_s = float_opt "sent_s" fields;
               })
      | "welcome" ->
          let* config = json "config" fields in
          let* config_hash = str "config_hash" fields in
          let* epoch = int "epoch" fields in
          let* total_chunks = int "total_chunks" fields in
          Ok
            (Welcome
               {
                 config;
                 config_hash;
                 epoch;
                 total_chunks;
                 telemetry = bool_default "telemetry" ~default:false fields;
               })
      | "grant" ->
          let* lo_chunk = int "lo_chunk" fields in
          let* hi_chunk = int "hi_chunk" fields in
          let* epoch = int "epoch" fields in
          Ok (Grant { lo_chunk; hi_chunk; epoch })
      | "result" ->
          let* chunk = int "chunk" fields in
          let* epoch = int "epoch" fields in
          let* state = json "state" fields in
          Ok (Result { chunk; epoch; state })
      | "heartbeat" ->
          let* worker = str "worker" fields in
          Ok
            (Heartbeat
               {
                 worker;
                 sent_s = float_opt "sent_s" fields;
                 metrics = field "metrics" fields;
               })
      | "events" ->
          let* worker = str "worker" fields in
          let lines =
            match field "lines" fields with
            | Some (List items) ->
                Stdlib.List.filter_map
                  (function String s -> Some s | _ -> None)
                  items
            | _ -> []
          in
          Ok
            (Events
               {
                 worker;
                 origin_s =
                   Option.value ~default:0.0 (float_opt "origin_s" fields);
                 lines;
               })
      | "shutdown" -> Ok Shutdown
      (* a kind this decoder does not know is a *newer* peer's message,
         not corruption: surface it as Unknown so the loops can count
         and skip it instead of dropping the connection *)
      | k -> Ok (Unknown k))
  | _ -> Error "message is not a JSON object"

let send fd msg =
  let line = Obs.Json.to_string (to_json msg) ^ "\n" in
  let b = Bytes.unsafe_of_string line in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let n =
      try Unix.write fd b !pos (len - !pos)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    pos := !pos + n
  done

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received but not yet cut into lines *)
  scratch : Bytes.t;
  mutable pending : msg list;  (** parsed but not yet handed out *)
}

let reader fd =
  { fd; buf = Buffer.create 4096; scratch = Bytes.create 65536; pending = [] }

let reader_fd r = r.fd

let parse_line line =
  match Obs.Json.parse line with
  | Error e -> raise (Protocol_error (Printf.sprintf "bad JSON line: %s" e))
  | Ok j -> (
      match of_json j with
      | Ok m -> m
      | Error e ->
          raise (Protocol_error (Printf.sprintf "bad message: %s in %s" e line)))

(* Move every complete line of [r.buf] onto [r.pending], keeping the
   trailing partial line (if any) buffered. *)
let cut_lines r =
  let s = Buffer.contents r.buf in
  let n = String.length s in
  let msgs = ref [] in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from s !start '\n' in
       let line = String.sub s !start (nl - !start) in
       if String.length line > 0 then msgs := parse_line line :: !msgs;
       start := nl + 1
     done
   with Not_found -> ());
  Buffer.clear r.buf;
  if !start < n then Buffer.add_substring r.buf s !start (n - !start);
  r.pending <- r.pending @ List.rev !msgs

(* One read(2); -1 encodes EINTR (retryable, not EOF). *)
let read_once r =
  try Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> -1
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0

let drain r =
  let n = read_once r in
  if n > 0 then Buffer.add_subbytes r.buf r.scratch 0 n;
  cut_lines r;
  let msgs = r.pending in
  r.pending <- [];
  (msgs, n = 0)

let rec recv r =
  match r.pending with
  | m :: rest ->
      r.pending <- rest;
      Some m
  | [] -> (
      match read_once r with
      | 0 -> None
      | n ->
          if n > 0 then Buffer.add_subbytes r.buf r.scratch 0 n;
          cut_lines r;
          recv r)
