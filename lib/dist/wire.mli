(** The distributed scan's wire protocol: one [ppdist/v2] JSON object
    per newline-terminated line, over any stream file descriptor — a
    socketpair to a forked worker or a TCP connection to a remote one.
    Reusing {!Obs.Json} keeps the whole protocol dependency-free.

    The conversation is deliberately small:

    - worker opens with {!Hello};
    - coordinator replies {!Welcome}, carrying the {e complete} scan
      configuration — the worker derives its whole plan (sample codes
      included) from it, so the two processes cannot disagree on what a
      chunk index means;
    - coordinator sends {!Grant} ranges; worker streams back one
      {!Result} per chunk, interleaved with {!Heartbeat}s (and, when
      the Welcome asked for telemetry, batched {!Events});
    - coordinator closes the scan with {!Shutdown}.

    Every [Grant]/[Result] carries the coordinator's ledger {e epoch}:
    results stamped with a previous life's epoch are recognisably stale
    and dropped (see {!Obs.Checkpoint}).

    {b Version compatibility} is field- and kind-lenient in both
    directions, so mixed-version fleets degrade instead of desync:
    decoders skip unknown fields inside known messages (a v2 frame
    parses on a v1-era decoder path), the v2 additions are optional
    with v1 defaults ([host = ""], [sent_s]/[metrics] absent,
    [telemetry = false] — so a v2 worker behind a v1 coordinator stays
    silent), and an unknown message {e kind} decodes to {!Unknown}
    for the event loops to count and skip rather than drop the
    connection. *)

type msg =
  | Hello of { worker : string; pid : int; host : string; sent_s : float option }
      (** [host]/[sent_s] are v2: the worker's hostname and its
          absolute monotonic-clock send time, the first clock-offset
          sample. A v1 Hello decodes with [host = ""], [sent_s =
          None]. *)
  | Welcome of {
      config : Obs.Json.t;  (** the full scan configuration object *)
      config_hash : string;
      epoch : int;
      total_chunks : int;
      telemetry : bool;
          (** v2: the coordinator wants metric deltas on heartbeats and
              batched {!Events}. Encoded only when true, so a false
              Welcome is byte-identical to v1. *)
    }
  | Grant of { lo_chunk : int; hi_chunk : int; epoch : int }
      (** work order: run chunks [lo_chunk .. hi_chunk - 1] *)
  | Result of { chunk : int; epoch : int; state : Obs.Json.t }
      (** one chunk's serialised accumulator *)
  | Heartbeat of {
      worker : string;
      sent_s : float option;
          (** v2: absolute monotonic send time — one clock-offset
              sample per beat *)
      metrics : Obs.Json.t option;
          (** v2: the {!Obs.Metrics.diff} since the worker's previous
              beat, as {!Obs.Metrics.to_json_value} — compact because
              unchanged entries are dropped *)
    }
  | Events of { worker : string; origin_s : float; lines : string list }
      (** v2: a batch of the worker's ppevents record lines, verbatim.
          [origin_s] is the worker's sink origin on its absolute
          monotonic clock ({!Obs.Events.origin_s}), so the coordinator
          can realign each line's [ts_s] with its clock-offset
          estimate. *)
  | Shutdown
  | Unknown of string
      (** a message kind this build does not know — a newer peer.
          Loops count and ignore it. *)

exception Protocol_error of string
(** A line that is not valid JSON, or valid JSON missing a known
    message's required fields. Raised by {!drain}/{!recv}; the peer is
    beyond repair at that point — drop the connection. (An unknown
    message {e kind} is {!Unknown}, not an error.) *)

val to_json : msg -> Obs.Json.t
val of_json : Obs.Json.t -> (msg, string) result

val send : Unix.file_descr -> msg -> unit
(** Write one message line, looping over partial writes.
    @raise Unix.Unix_error ([EPIPE] when the peer is gone — the caller
    treats that as a dead worker, not a crash). *)

(** {2 Buffered reading}

    A [reader] owns the receive buffer of one fd and cuts it into
    complete lines; partial lines wait for the next read. *)

type reader

val reader : Unix.file_descr -> reader
val reader_fd : reader -> Unix.file_descr

val drain : reader -> msg list * bool
(** One non-blocking-ish step for a select loop: a single [Unix.read]
    (the caller knows the fd is readable, so it will not block),
    returning every message completed by it plus [true] when the peer
    closed the connection (EOF — a SIGKILLed worker's socket reads as
    EOF, which is exactly how worker death is detected).
    @raise Protocol_error on an unparseable line. *)

val recv : reader -> msg option
(** Blocking receive of the next single message; [None] on EOF. The
    worker side's main loop.
    @raise Protocol_error on an unparseable line. *)
