(** The distributed scan's wire protocol: one [ppdist/v3] frame per
    newline-terminated line, over any stream file descriptor — a
    socketpair to a forked worker or a TCP connection to a remote one.
    Reusing {!Obs.Json} keeps the whole protocol dependency-free.

    The conversation is deliberately small:

    - worker opens with {!Hello};
    - coordinator replies {!Welcome}, carrying the {e complete} scan
      configuration — the worker derives its whole plan (sample codes
      included) from it, so the two processes cannot disagree on what a
      chunk index means;
    - coordinator sends {!Grant} ranges; worker streams back one
      {!Result} per chunk, interleaved with {!Heartbeat}s (and, when
      the Welcome asked for telemetry, batched {!Events});
    - coordinator closes the scan with {!Shutdown}.

    Every [Grant]/[Result] carries the coordinator's ledger {e epoch}:
    results stamped with a previous life's epoch are recognisably stale
    and dropped (see {!Obs.Checkpoint}).

    {b v3 framing.} Each line is ["#3 <len> <crc32-hex> <payload>\n"]
    where [payload] is the v2 JSON object, [len] its byte length and
    the checksum CRC-32 (IEEE 802.3, {!crc32}). A frame that fails
    either check — truncated mid-line, bit-flipped in transit — is
    {e counted} ([dist.corrupt_frames], {!corrupt_count}) and skipped,
    never fatal: whatever it carried is replaced by the recovery
    machinery above the wire (lease reclaim for a lost [Grant]/
    [Result], the next beat for a lost [Heartbeat]).

    {b Version compatibility} is two-way. Readers accept bare v1/v2
    JSON lines alongside v3 frames (['#'] cannot open a JSON value, so
    the two are unambiguous) with the same field- and kind-lenient
    decoding as before: unknown fields skipped, v2 additions defaulted,
    unknown kinds surfaced as {!Unknown}. An unparseable {e bare} line
    keeps the strict {!Protocol_error} contract on a v1/v2-only
    connection, but on a connection that has already produced a valid
    v3 frame it is demoted to a corrupt-frame count — a mangled frame
    prefix, not a broken peer. *)

type msg =
  | Hello of { worker : string; pid : int; host : string; sent_s : float option }
      (** [host]/[sent_s] are v2: the worker's hostname and its
          absolute monotonic-clock send time, the first clock-offset
          sample. A v1 Hello decodes with [host = ""], [sent_s =
          None]. *)
  | Welcome of {
      config : Obs.Json.t;  (** the full scan configuration object *)
      config_hash : string;
      epoch : int;
      total_chunks : int;
      telemetry : bool;
          (** v2: the coordinator wants metric deltas on heartbeats and
              batched {!Events}. Encoded only when true, so a false
              Welcome is byte-identical to v1. *)
    }
  | Grant of { lo_chunk : int; hi_chunk : int; epoch : int }
      (** work order: run chunks [lo_chunk .. hi_chunk - 1] *)
  | Result of { chunk : int; epoch : int; state : Obs.Json.t }
      (** one chunk's serialised accumulator *)
  | Heartbeat of {
      worker : string;
      sent_s : float option;
          (** v2: absolute monotonic send time — one clock-offset
              sample per beat *)
      metrics : Obs.Json.t option;
          (** v2: the {!Obs.Metrics.diff} since the worker's previous
              beat, as {!Obs.Metrics.to_json_value} — compact because
              unchanged entries are dropped *)
    }
  | Events of { worker : string; origin_s : float; lines : string list }
      (** v2: a batch of the worker's ppevents record lines, verbatim.
          [origin_s] is the worker's sink origin on its absolute
          monotonic clock ({!Obs.Events.origin_s}), so the coordinator
          can realign each line's [ts_s] with its clock-offset
          estimate. *)
  | Shutdown
  | Unknown of string
      (** a message kind this build does not know — a newer peer.
          Loops count and ignore it. *)

exception Protocol_error of string
(** A bare line that is not valid JSON (on a pre-v3 connection), or a
    CRC-valid frame missing a known message's required fields — the
    peer is genuinely broken, not merely noisy; drop the connection.
    (An unknown message {e kind} is {!Unknown}; a corrupt v3 frame is
    a {!corrupt_count} tick. Neither raises.) *)

val to_json : msg -> Obs.Json.t
val of_json : Obs.Json.t -> (msg, string) result

val crc32 : string -> int
(** CRC-32 of a byte string (IEEE 802.3, polynomial [0xEDB88320],
    reflected): [crc32 "" = 0], [crc32 "123456789" = 0xCBF43926]. *)

val send : ?chaos:Chaos.t -> Unix.file_descr -> msg -> unit
(** Write one v3 frame, looping over partial writes. [chaos] routes
    the frame through a fault-injection stream first — the frame may
    be dropped, duplicated, reordered or damaged ({!Chaos.apply});
    production sends pass no [chaos] and pay nothing.
    @raise Unix.Unix_error ([EPIPE] when the peer is gone — the caller
    treats that as a dead worker, not a crash). *)

(** {2 Buffered reading}

    A [reader] owns the receive buffer of one fd and cuts it into
    complete lines; partial lines wait for the next read. *)

type reader

val reader : Unix.file_descr -> reader
val reader_fd : reader -> Unix.file_descr

val corrupt_count : reader -> int
(** Frames this reader skipped for failing the v3 length/CRC checks
    (also accumulated in the [dist.corrupt_frames] metric). *)

val drain : reader -> msg list * bool
(** One non-blocking-ish step for a select loop: a single [Unix.read]
    (the caller knows the fd is readable, so it will not block),
    returning every message completed by it plus [true] when the peer
    closed the connection (EOF — a SIGKILLed worker's socket reads as
    EOF, which is exactly how worker death is detected).
    @raise Protocol_error on an unparseable bare line (pre-v3 peers). *)

val recv : reader -> msg option
(** Blocking receive of the next single message; [None] on EOF. The
    worker side's main loop.
    @raise Protocol_error on an unparseable bare line (pre-v3 peers). *)

val recv_within :
  reader -> timeout_s:float -> [ `Msg of msg | `Eof | `Timeout ]
(** {!recv} with a monotonic-clock deadline: waits at most [timeout_s]
    seconds (0 polls) for a complete message. [`Timeout] is how an
    idle worker discovers it has been silent too long and owes the
    coordinator a heartbeat — under chaos, a dropped [Grant] would
    otherwise leave it blocked and indistinguishable from dead. *)

val select_eintr : Unix.file_descr list -> float -> Unix.file_descr list
(** [Unix.select fds [] [] timeout] that retries [EINTR] with the
    remaining time recomputed on the monotonic clock — a signal (timer,
    [SIGCHLD]) neither tears down the event loop nor stretches its
    deadline. Negative timeout blocks indefinitely. *)
