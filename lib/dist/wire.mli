(** The distributed scan's wire protocol: one [ppdist/v1] JSON object
    per newline-terminated line, over any stream file descriptor — a
    socketpair to a forked worker or a TCP connection to a remote one.
    Reusing {!Obs.Json} keeps the whole protocol dependency-free.

    The conversation is deliberately small:

    - worker opens with {!Hello};
    - coordinator replies {!Welcome}, carrying the {e complete} scan
      configuration — the worker derives its whole plan (sample codes
      included) from it, so the two processes cannot disagree on what a
      chunk index means;
    - coordinator sends {!Grant} ranges; worker streams back one
      {!Result} per chunk, interleaved with {!Heartbeat}s;
    - coordinator closes the scan with {!Shutdown}.

    Every [Grant]/[Result] carries the coordinator's ledger {e epoch}:
    results stamped with a previous life's epoch are recognisably stale
    and dropped (see {!Obs.Checkpoint}). *)

type msg =
  | Hello of { worker : string; pid : int }
  | Welcome of {
      config : Obs.Json.t;  (** the full scan configuration object *)
      config_hash : string;
      epoch : int;
      total_chunks : int;
    }
  | Grant of { lo_chunk : int; hi_chunk : int; epoch : int }
      (** work order: run chunks [lo_chunk .. hi_chunk - 1] *)
  | Result of { chunk : int; epoch : int; state : Obs.Json.t }
      (** one chunk's serialised accumulator *)
  | Heartbeat of { worker : string }
  | Shutdown

exception Protocol_error of string
(** A line that is not valid JSON, or valid JSON that is not a known
    message. Raised by {!drain}/{!recv}; the peer is beyond repair at
    that point — drop the connection. *)

val to_json : msg -> Obs.Json.t
val of_json : Obs.Json.t -> (msg, string) result

val send : Unix.file_descr -> msg -> unit
(** Write one message line, looping over partial writes.
    @raise Unix.Unix_error ([EPIPE] when the peer is gone — the caller
    treats that as a dead worker, not a crash). *)

(** {2 Buffered reading}

    A [reader] owns the receive buffer of one fd and cuts it into
    complete lines; partial lines wait for the next read. *)

type reader

val reader : Unix.file_descr -> reader
val reader_fd : reader -> Unix.file_descr

val drain : reader -> msg list * bool
(** One non-blocking-ish step for a select loop: a single [Unix.read]
    (the caller knows the fd is readable, so it will not block),
    returning every message completed by it plus [true] when the peer
    closed the connection (EOF — a SIGKILLed worker's socket reads as
    EOF, which is exactly how worker death is detected).
    @raise Protocol_error on an unparseable line. *)

val recv : reader -> msg option
(** Blocking receive of the next single message; [None] on EOF. The
    worker side's main loop.
    @raise Protocol_error on an unparseable line. *)
