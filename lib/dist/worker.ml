let now_s () = Obs.Clock.ns_to_s (Obs.Clock.now_ns ())

type chunk_runner = {
  scan : int -> Obs.Json.t;
  range : (int -> int * int) option;
}

(* Telemetry state, alive between the Welcome that requested it and
   Shutdown: the pending event-line batch and the metric snapshot the
   next heartbeat will diff against. *)
type tele = {
  pending : string Queue.t;
  last_snap : Obs.Metrics.snapshot ref;
}

(* Completed-but-possibly-unacked chunk states. Under chaos a Result
   frame can vanish; the coordinator reclaims the lease and re-grants
   the chunk — to us or to a peer. Keeping the last few computed states
   lets a re-granted chunk be *resent* instead of *redone*: the
   in-flight lease reconciliation of the rejoin handshake. The cache
   survives reconnects (run_reconnect threads one through every
   session) because the unacked work predates the disconnect. *)
type cache = {
  states : (int, Obs.Json.t) Hashtbl.t;
  fifo : int Queue.t;
  cap : int;
}

let cache_create ?(cap = 128) () =
  { states = Hashtbl.create 32; fifo = Queue.create (); cap }

let cache_add c chunk state =
  if not (Hashtbl.mem c.states chunk) then begin
    Hashtbl.replace c.states chunk state;
    Queue.add chunk c.fifo;
    if Queue.length c.fifo > c.cap then
      Hashtbl.remove c.states (Queue.pop c.fifo)
  end

let m_resends = Obs.Metrics.counter "dist.cache_resends"

let run ?(heartbeat_every = 2.0) ?(welcome_timeout = 5.0) ?(hello_retries = 3)
    ?chaos ?cache:(store = cache_create ()) ?(on_welcome = fun ~config_hash:_ -> ())
    ?(on_chunk_done = fun _ -> ()) ?(events_batch = 64) ~name ~fd ~runner () =
  let rd = Wire.reader fd in
  let last_sent = ref (now_s ()) in
  let send msg =
    Wire.send ?chaos fd msg;
    last_sent := now_s ()
  in
  let tele = ref None in
  let flush_events () =
    match !tele with
    | Some t when not (Queue.is_empty t.pending) ->
        let lines = List.of_seq (Queue.to_seq t.pending) in
        Queue.clear t.pending;
        send
          (Wire.Events { worker = name; origin_s = Obs.Events.origin_s (); lines })
    | _ -> ()
  in
  let metrics_delta () =
    match !tele with
    | None -> None
    | Some t ->
        let cur = Obs.Metrics.snapshot () in
        let d = Obs.Metrics.diff ~before:!(t.last_snap) ~after:cur in
        t.last_snap := cur;
        if d = [] then None else Some (Obs.Metrics.to_json_value d)
  in
  let beat ?(force = false) () =
    let overdue = now_s () -. !last_sent >= heartbeat_every in
    let batch_full =
      match !tele with Some t -> Queue.length t.pending >= events_batch | None -> false
    in
    if force || overdue || batch_full then begin
      flush_events ();
      send
        (Wire.Heartbeat
           { worker = name; sent_s = Some (now_s ()); metrics = metrics_delta () })
    end
  in
  let start_telemetry () =
    Obs.Metrics.set_enabled true;
    let pending = Queue.create () in
    let capture line = Queue.add line pending in
    (* keep a local --events file if the worker has one (tee), else
       install a capture-only sink; either way every record line of
       this process also lands in the coordinator's merged log *)
    if Obs.Events.enabled () then Obs.Events.set_tee (Some capture)
    else Obs.Events.start_sink capture;
    tele := Some { pending; last_snap = ref (Obs.Metrics.snapshot ()) }
  in
  let hello () =
    Wire.Hello
      {
        worker = name;
        pid = Unix.getpid ();
        host = Unix.gethostname ();
        sent_s = Some (now_s ());
      }
  in
  (* The opening handshake under chaos: either our Hello or the
     coordinator's Welcome can be a dropped frame, and on a socketpair
     there is no reconnect to fall back on — so missing the Welcome for
     a while means "say Hello again on the same fd" (the coordinator
     re-Welcomes a name it already knows). *)
  let rec await_welcome retries =
    match Wire.recv_within rd ~timeout_s:welcome_timeout with
    | `Eof -> Error "coordinator closed the connection before Welcome"
    | `Msg (Wire.Welcome { config; config_hash; telemetry; _ }) ->
        Ok (config, config_hash, telemetry)
    | `Msg Wire.Shutdown -> Error "coordinator shut down before Welcome"
    | `Msg (Wire.Unknown _ | Wire.Grant _ | Wire.Heartbeat _ | Wire.Events _) ->
        (* traffic before the Welcome means the Welcome frame itself
           was lost — keep waiting; the timeout path re-Hellos and the
           coordinator re-Welcomes *)
        await_welcome retries
    | `Msg (Wire.Hello _ | Wire.Result _) ->
        Error "expected Welcome as the first coordinator message"
    | `Timeout ->
        if retries <= 0 then Error "no Welcome from coordinator (timed out)"
        else begin
          send (hello ());
          await_welcome (retries - 1)
        end
  in
  try
    send (hello ());
    match await_welcome hello_retries with
    | Error e -> Error e
    | Ok (config, config_hash, telemetry) -> (
        on_welcome ~config_hash;
        if telemetry then start_telemetry ();
        match runner config with
        | Error e -> Error (Printf.sprintf "rejected coordinator config: %s" e)
        | Ok cr ->
            let rec loop () =
              (* waking every half-beat keeps heartbeats flowing while
                 idle: a worker whose Grant frame was dropped would
                 otherwise block silently, indistinguishable from dead *)
              match Wire.recv_within rd ~timeout_s:(heartbeat_every /. 2.0) with
              | `Eof -> Error "coordinator vanished (EOF before Shutdown)"
              | `Timeout ->
                  beat ();
                  loop ()
              | `Msg Wire.Shutdown ->
                  (* the final flush races the coordinator closing our
                     fd after its last Result arrived — losing it only
                     loses telemetry, never results *)
                  (try beat ~force:true ()
                   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
                  Ok ()
              | `Msg (Wire.Grant { lo_chunk; hi_chunk; epoch }) ->
                  for chunk = lo_chunk to hi_chunk - 1 do
                    beat ();
                    let state =
                      match Hashtbl.find_opt store.states chunk with
                      | Some state ->
                          (* computed in a previous life, Result lost in
                             transit: resend, don't redo *)
                          Obs.Metrics.incr m_resends;
                          state
                      | None ->
                          let t0 = now_s () in
                          let state = cr.scan chunk in
                          if !tele <> None && Obs.Events.enabled () then begin
                            let data =
                              [
                                ("chunk", Obs.Json.Int chunk);
                                ("dur_s", Obs.Json.Float (now_s () -. t0));
                              ]
                              @
                              match cr.range with
                              | Some range ->
                                  (* hi is inclusive, the Trace_stats
                                     lo/hi convention, so chunk-size
                                     normalisation works on the merged
                                     log *)
                                  let lo, hi = range chunk in
                                  [
                                    ("lo", Obs.Json.Int lo);
                                    ("hi", Obs.Json.Int (hi - 1));
                                  ]
                              | None -> []
                            in
                            Obs.Events.emit "worker.chunk" ~data
                          end;
                          cache_add store chunk state;
                          state
                    in
                    flush_events ();
                    send (Wire.Result { chunk; epoch; state });
                    on_chunk_done chunk
                  done;
                  loop ()
              | `Msg (Wire.Welcome _) ->
                  (* a duplicated Welcome frame, or the answer to a
                     Hello retry that crossed the first Welcome on the
                     wire: the config is identical, carry on *)
                  loop ()
              | `Msg (Wire.Heartbeat _ | Wire.Events _ | Wire.Unknown _) ->
                  (* Unknown: a newer coordinator's extra traffic —
                     skipping it is the forward-compat contract *)
                  loop ()
              | `Msg (Wire.Hello _ | Wire.Result _) ->
                  Error "worker-bound stream carried a worker message"
            in
            loop ())
  with
  | Wire.Protocol_error e -> Error e
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Error "coordinator vanished (broken pipe)"

let m_reconnects = Obs.Metrics.counter "dist.reconnects"

let run_reconnect ?heartbeat_every ?welcome_timeout ?hello_retries
    ?(max_attempts = 6) ?(backoff_base = 0.4) ?(backoff_cap = 5.0)
    ?(jitter_seed = 0) ?chaos_for ?on_chunk_done ?events_batch ~name ~connect
    ~runner () =
  let store = cache_create () in
  let rng = Splitmix64.create (jitter_seed lxor Hashtbl.hash name) in
  let first_hash = ref None in
  let hash_conflict = ref None in
  let welcomed = ref false in
  let on_welcome ~config_hash =
    welcomed := true;
    match !first_hash with
    | None -> first_hash := Some config_hash
    | Some h when h = config_hash -> ()
    | Some h ->
        (* a different scan took over the endpoint: resending cached
           states would poison it — refuse to proceed *)
        hash_conflict :=
          Some
            (Printf.sprintf "config hash changed across reconnect (%s -> %s)" h
               config_hash)
  in
  let rec attempt session failures =
    welcomed := false;
    let outcome =
      match connect () with
      | Error e -> Error e
      | Ok fd ->
          let chaos = match chaos_for with None -> None | Some f -> f session in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              run ?heartbeat_every ?welcome_timeout ?hello_retries ?chaos
                ~cache:store ~on_welcome ?on_chunk_done ?events_batch ~name ~fd
                ~runner ())
    in
    match (outcome, !hash_conflict) with
    | _, Some e -> Error e
    | Ok (), None -> Ok ()
    | Error e, None ->
        (* a session that got as far as Welcome proves the coordinator
           was alive: its loss resets the failure streak, so only
           *consecutive* dead ends count against max_attempts *)
        let failures = if !welcomed then 1 else failures + 1 in
        if failures > max_attempts then
          Error (Printf.sprintf "%s (after %d reconnect attempts)" e max_attempts)
        else begin
          Obs.Metrics.incr m_reconnects;
          if Obs.Events.enabled () then
            Obs.Events.emit "dist.reconnect"
              ~data:
                [
                  ("worker", Obs.Json.String name);
                  ("attempt", Obs.Json.Int failures);
                  ("error", Obs.Json.String e);
                ];
          let backoff =
            Float.min backoff_cap
              (backoff_base *. (2.0 ** float_of_int (failures - 1)))
          in
          (* deterministic jitter in [0.75, 1.25): de-synchronises a
             fleet reconnect stampede without an RNG the replay cannot
             reproduce *)
          Unix.sleepf (backoff *. (0.75 +. (0.5 *. Splitmix64.float_unit rng)));
          attempt (session + 1) failures
        end
  in
  attempt 0 0
