let now_s () = Obs.Clock.ns_to_s (Obs.Clock.now_ns ())

type chunk_runner = {
  scan : int -> Obs.Json.t;
  range : (int -> int * int) option;
}

(* Telemetry state, alive between the Welcome that requested it and
   Shutdown: the pending event-line batch and the metric snapshot the
   next heartbeat will diff against. *)
type tele = {
  pending : string Queue.t;
  last_snap : Obs.Metrics.snapshot ref;
}

let run ?(heartbeat_every = 2.0) ?(on_chunk_done = fun _ -> ())
    ?(events_batch = 64) ~name ~fd ~runner () =
  let rd = Wire.reader fd in
  let last_sent = ref (now_s ()) in
  let send msg =
    Wire.send fd msg;
    last_sent := now_s ()
  in
  let tele = ref None in
  let flush_events () =
    match !tele with
    | Some t when not (Queue.is_empty t.pending) ->
        let lines = List.of_seq (Queue.to_seq t.pending) in
        Queue.clear t.pending;
        send
          (Wire.Events { worker = name; origin_s = Obs.Events.origin_s (); lines })
    | _ -> ()
  in
  let metrics_delta () =
    match !tele with
    | None -> None
    | Some t ->
        let cur = Obs.Metrics.snapshot () in
        let d = Obs.Metrics.diff ~before:!(t.last_snap) ~after:cur in
        t.last_snap := cur;
        if d = [] then None else Some (Obs.Metrics.to_json_value d)
  in
  let beat ?(force = false) () =
    let overdue = now_s () -. !last_sent >= heartbeat_every in
    let batch_full =
      match !tele with Some t -> Queue.length t.pending >= events_batch | None -> false
    in
    if force || overdue || batch_full then begin
      flush_events ();
      send
        (Wire.Heartbeat
           { worker = name; sent_s = Some (now_s ()); metrics = metrics_delta () })
    end
  in
  let start_telemetry () =
    Obs.Metrics.set_enabled true;
    let pending = Queue.create () in
    let capture line = Queue.add line pending in
    (* keep a local --events file if the worker has one (tee), else
       install a capture-only sink; either way every record line of
       this process also lands in the coordinator's merged log *)
    if Obs.Events.enabled () then Obs.Events.set_tee (Some capture)
    else Obs.Events.start_sink capture;
    tele := Some { pending; last_snap = ref (Obs.Metrics.snapshot ()) }
  in
  try
    send
      (Wire.Hello
         {
           worker = name;
           pid = Unix.getpid ();
           host = Unix.gethostname ();
           sent_s = Some (now_s ());
         });
    match Wire.recv rd with
    | None -> Error "coordinator closed the connection before Welcome"
    | Some (Wire.Welcome { config; telemetry; _ }) -> (
        if telemetry then start_telemetry ();
        match runner config with
        | Error e -> Error (Printf.sprintf "rejected coordinator config: %s" e)
        | Ok cr ->
            let rec loop () =
              match Wire.recv rd with
              | None -> Error "coordinator vanished (EOF before Shutdown)"
              | Some Wire.Shutdown ->
                  (* the final flush races the coordinator closing our
                     fd after its last Result arrived — losing it only
                     loses telemetry, never results *)
                  (try beat ~force:true ()
                   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
                  Ok ()
              | Some (Wire.Grant { lo_chunk; hi_chunk; epoch }) ->
                  for chunk = lo_chunk to hi_chunk - 1 do
                    beat ();
                    let t0 = now_s () in
                    let state = cr.scan chunk in
                    if !tele <> None && Obs.Events.enabled () then begin
                      let data =
                        [
                          ("chunk", Obs.Json.Int chunk);
                          ("dur_s", Obs.Json.Float (now_s () -. t0));
                        ]
                        @
                        match cr.range with
                        | Some range ->
                            (* hi is inclusive, the Trace_stats lo/hi
                               convention, so chunk-size normalisation
                               works on the merged log *)
                            let lo, hi = range chunk in
                            [
                              ("lo", Obs.Json.Int lo);
                              ("hi", Obs.Json.Int (hi - 1));
                            ]
                        | None -> []
                      in
                      Obs.Events.emit "worker.chunk" ~data
                    end;
                    flush_events ();
                    send (Wire.Result { chunk; epoch; state });
                    on_chunk_done chunk
                  done;
                  loop ()
              | Some (Wire.Heartbeat _ | Wire.Events _ | Wire.Unknown _) ->
                  (* Unknown: a newer coordinator's extra traffic —
                     skipping it is the forward-compat contract *)
                  loop ()
              | Some (Wire.Hello _ | Wire.Welcome _ | Wire.Result _) ->
                  Error "worker-bound stream carried a worker message"
            in
            loop ())
    | Some (Wire.Unknown _) ->
        Error "expected Welcome as the first coordinator message"
    | Some _ -> Error "expected Welcome as the first coordinator message"
  with
  | Wire.Protocol_error e -> Error e
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Error "coordinator vanished (broken pipe)"
