let now_s () = Obs.Clock.ns_to_s (Obs.Clock.now_ns ())

let run ?(heartbeat_every = 2.0) ?(on_chunk_done = fun _ -> ()) ~name ~fd
    ~runner () =
  let rd = Wire.reader fd in
  let last_sent = ref (now_s ()) in
  let send msg =
    Wire.send fd msg;
    last_sent := now_s ()
  in
  let beat () =
    if now_s () -. !last_sent >= heartbeat_every then
      send (Wire.Heartbeat { worker = name })
  in
  try
    send (Wire.Hello { worker = name; pid = Unix.getpid () });
    match Wire.recv rd with
    | None -> Error "coordinator closed the connection before Welcome"
    | Some (Wire.Welcome { config; config_hash = _; epoch = _; total_chunks = _ })
      -> (
        match runner config with
        | Error e -> Error (Printf.sprintf "rejected coordinator config: %s" e)
        | Ok scan_chunk ->
            let rec loop () =
              match Wire.recv rd with
              | None -> Error "coordinator vanished (EOF before Shutdown)"
              | Some Wire.Shutdown -> Ok ()
              | Some (Wire.Grant { lo_chunk; hi_chunk; epoch }) ->
                  for chunk = lo_chunk to hi_chunk - 1 do
                    beat ();
                    let state = scan_chunk chunk in
                    send (Wire.Result { chunk; epoch; state });
                    on_chunk_done chunk
                  done;
                  loop ()
              | Some (Wire.Heartbeat _) -> loop ()
              | Some (Wire.Hello _ | Wire.Welcome _ | Wire.Result _) ->
                  Error "worker-bound stream carried a worker message"
            in
            loop ())
    | Some _ -> Error "expected Welcome as the first coordinator message"
  with
  | Wire.Protocol_error e -> Error e
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Error "coordinator vanished (broken pipe)"
