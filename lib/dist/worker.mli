(** The worker side of the distributed scan: connect, learn the scan
    from the coordinator's {!Wire.Welcome}, run granted chunks, stream
    results back.

    The worker carries {e no} scan configuration of its own — it hands
    the Welcome's config object to the [runner] factory and scans
    whatever comes back. That is the protocol's defence against flag
    drift: a [--connect] worker launched with different CLI flags still
    computes exactly the coordinator's chunks, because its entire plan
    (sample codes included) is derived from the coordinator's bytes.

    When the Welcome sets [telemetry] the worker additionally turns on
    {!Obs.Metrics}, captures its own ppevents stream (teeing a local
    [--events] sink when one exists, else a capture-only sink), emits a
    [worker.chunk] record per chunk, and ships both upward: batched
    {!Wire.Events} plus an {!Obs.Metrics.diff} on every heartbeat.
    Telemetry rides the same racy channels as heartbeats and never
    gates a Result, so scan output is byte-identical either way.

    {b Fault tolerance.} Three mechanisms keep a worker useful on a
    lossy transport: a missed Welcome is answered by re-sending Hello
    on the same fd (the handshake frames are as droppable as any
    other); an {e idle} worker still heartbeats (so a dropped Grant
    leaves it visibly alive while the coordinator's progress-expiry
    reclaims the lease); and a bounded {!cache} of computed chunk
    states lets a chunk whose Result vanished be {e resent} rather
    than recomputed when it is granted again — to this worker in this
    or a later session. {!run_reconnect} adds the session layer: TCP
    redial with exponential backoff and deterministic jitter, the
    cache threaded through every session. *)

type chunk_runner = {
  scan : int -> Obs.Json.t;  (** chunk index -> serialised accumulator *)
  range : (int -> int * int) option;
      (** chunk index -> its [lo, hi) code range, used only to size
          [worker.chunk] telemetry records; [None] drops the lo/hi
          fields (chunk-normalised straggler stats degrade to
          unsized). *)
}

type cache
(** Completed chunk states awaiting (possible) re-grant, bounded FIFO.
    Resends are counted in [dist.cache_resends]. *)

val cache_create : ?cap:int -> unit -> cache
(** [cap] (default 128) bounds retained states; the oldest entry is
    evicted first. *)

val run :
  ?heartbeat_every:float ->
  ?welcome_timeout:float ->
  ?hello_retries:int ->
  ?chaos:Chaos.t ->
  ?cache:cache ->
  ?on_welcome:(config_hash:string -> unit) ->
  ?on_chunk_done:(int -> unit) ->
  ?events_batch:int ->
  name:string ->
  fd:Unix.file_descr ->
  runner:(Obs.Json.t -> (chunk_runner, string) result) ->
  unit ->
  (unit, string) result
(** [run ~name ~fd ~runner ()] speaks the {!Wire} protocol on [fd]
    until the coordinator's {!Wire.Shutdown} ([Ok ()]) or a protocol
    failure ([Error _]: EOF before shutdown, a bad message, or the
    [runner] factory rejecting the coordinator's config).

    [runner config] is called once, on the Welcome; the returned
    {!chunk_runner}'s [scan] is called once per granted chunk, in
    grant order — except chunks still in [cache], whose stored state
    is resent as-is. A {!Wire.Heartbeat} is sent whenever
    [heartbeat_every] (default 2s) has elapsed since the last send —
    between chunks {e and} while idle (the receive loop wakes every
    half-interval); with telemetry on, each beat first flushes pending
    event lines and carries the metric delta since the previous beat.
    [events_batch] (default 64) forces an early flush when that many
    lines are pending. If no Welcome arrives within [welcome_timeout]
    (default 5s) the Hello is re-sent, up to [hello_retries] (default
    3) times. [chaos] mangles this side's outbound frames
    ({!Wire.send}); [on_welcome] reports each accepted Welcome's
    config hash; [on_chunk_done] fires after each chunk's Result is on
    the wire — the chaos-kill test hook ([Unix.kill] yourself there to
    simulate a crash at an exact chunk count). *)

val run_reconnect :
  ?heartbeat_every:float ->
  ?welcome_timeout:float ->
  ?hello_retries:int ->
  ?max_attempts:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?jitter_seed:int ->
  ?chaos_for:(int -> Chaos.t option) ->
  ?on_chunk_done:(int -> unit) ->
  ?events_batch:int ->
  name:string ->
  connect:(unit -> (Unix.file_descr, string) result) ->
  runner:(Obs.Json.t -> (chunk_runner, string) result) ->
  unit ->
  (unit, string) result
(** {!run} in a redial loop, for TCP workers: each session calls
    [connect] for a fresh fd (closed when the session ends), keeps the
    same worker identity [name], and threads one {!cache} through —
    so a Result completed just before a disconnect is resent, not
    redone, when the rejoined session is re-granted the chunk. The
    coordinator recognises the returning name, supersedes the dead
    connection and re-registers the worker (its rejoin handshake);
    results always carry their {e Grant's} epoch, so work from before
    a coordinator restart is recognisably stale.

    A failed session sleeps [min backoff_cap (backoff_base * 2^(k-1))]
    seconds (defaults 0.4s doubling to 5s) scaled by a deterministic
    jitter in [0.75, 1.25) drawn from a Splitmix64 stream seeded by
    [jitter_seed] and the worker name, then redials. [k] counts
    {e consecutive} failures — a session that reached its Welcome
    proves the coordinator was alive and resets the streak — and
    [max_attempts] (default 6) of them end the loop with the last
    error. A config-hash change across sessions is fatal (the cache
    would poison a different scan). [chaos_for session] supplies each
    session's outbound fault stream. Reconnects are counted in
    [dist.reconnects] and logged as [dist.reconnect] events. *)
