(** The worker side of the distributed scan: connect, learn the scan
    from the coordinator's {!Wire.Welcome}, run granted chunks, stream
    results back.

    The worker carries {e no} scan configuration of its own — it hands
    the Welcome's config object to the [runner] factory and scans
    whatever comes back. That is the protocol's defence against flag
    drift: a [--connect] worker launched with different CLI flags still
    computes exactly the coordinator's chunks, because its entire plan
    (sample codes included) is derived from the coordinator's bytes. *)

val run :
  ?heartbeat_every:float ->
  ?on_chunk_done:(int -> unit) ->
  name:string ->
  fd:Unix.file_descr ->
  runner:(Obs.Json.t -> (int -> Obs.Json.t, string) result) ->
  unit ->
  (unit, string) result
(** [run ~name ~fd ~runner ()] speaks the {!Wire} protocol on [fd]
    until the coordinator's {!Wire.Shutdown} ([Ok ()]) or a protocol
    failure ([Error _]: EOF before shutdown, a bad message, or the
    [runner] factory rejecting the coordinator's config).

    [runner config] is called once, on the Welcome; the returned
    function maps a chunk index to its serialised accumulator and is
    called once per granted chunk, in grant order. A {!Wire.Heartbeat}
    is sent before any chunk whenever [heartbeat_every] (default 2s)
    has elapsed since the last send, so long chunk streaks keep the
    lease alive. [on_chunk_done] fires after each chunk's Result is on
    the wire — the chaos-kill test hook ([Unix.kill] yourself there to
    simulate a crash at an exact chunk count). *)
