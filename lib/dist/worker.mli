(** The worker side of the distributed scan: connect, learn the scan
    from the coordinator's {!Wire.Welcome}, run granted chunks, stream
    results back.

    The worker carries {e no} scan configuration of its own — it hands
    the Welcome's config object to the [runner] factory and scans
    whatever comes back. That is the protocol's defence against flag
    drift: a [--connect] worker launched with different CLI flags still
    computes exactly the coordinator's chunks, because its entire plan
    (sample codes included) is derived from the coordinator's bytes.

    When the Welcome sets [telemetry] the worker additionally turns on
    {!Obs.Metrics}, captures its own ppevents stream (teeing a local
    [--events] sink when one exists, else a capture-only sink), emits a
    [worker.chunk] record per chunk, and ships both upward: batched
    {!Wire.Events} plus an {!Obs.Metrics.diff} on every heartbeat.
    Telemetry rides the same racy channels as heartbeats and never
    gates a Result, so scan output is byte-identical either way. *)

type chunk_runner = {
  scan : int -> Obs.Json.t;  (** chunk index -> serialised accumulator *)
  range : (int -> int * int) option;
      (** chunk index -> its [lo, hi) code range, used only to size
          [worker.chunk] telemetry records; [None] drops the lo/hi
          fields (chunk-normalised straggler stats degrade to
          unsized). *)
}

val run :
  ?heartbeat_every:float ->
  ?on_chunk_done:(int -> unit) ->
  ?events_batch:int ->
  name:string ->
  fd:Unix.file_descr ->
  runner:(Obs.Json.t -> (chunk_runner, string) result) ->
  unit ->
  (unit, string) result
(** [run ~name ~fd ~runner ()] speaks the {!Wire} protocol on [fd]
    until the coordinator's {!Wire.Shutdown} ([Ok ()]) or a protocol
    failure ([Error _]: EOF before shutdown, a bad message, or the
    [runner] factory rejecting the coordinator's config).

    [runner config] is called once, on the Welcome; the returned
    {!chunk_runner}'s [scan] is called once per granted chunk, in
    grant order. A {!Wire.Heartbeat} is sent before any chunk whenever
    [heartbeat_every] (default 2s) has elapsed since the last send, so
    long chunk streaks keep the lease alive; with telemetry on, each
    beat first flushes pending event lines and carries the metric
    delta since the previous beat. [events_batch] (default 64) forces
    an early flush when that many lines are pending. [on_chunk_done]
    fires after each chunk's Result is on the wire — the chaos-kill
    test hook ([Unix.kill] yourself there to simulate a crash at an
    exact chunk count). *)
