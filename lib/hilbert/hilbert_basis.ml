let dot (u : int array) (v : int array) =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * v.(i))) u;
  !acc

let vec_leq (u : int array) (v : int array) =
  let n = Array.length u in
  let rec go i = i >= n || (u.(i) <= v.(i) && go (i + 1)) in
  go 0

let is_zero (u : int array) = Array.for_all (fun x -> x = 0) u

(* Keep only the pointwise-minimal vectors. *)
let minimize vectors =
  List.filter
    (fun y ->
      not (List.exists (fun y' -> y' <> y && vec_leq y' y) vectors))
    vectors
  |> List.sort_uniq Stdlib.compare

type Obs.Budget.partial += Partial_basis of int array list

let m_solves = Obs.Metrics.counter "hilbert.solves"
let m_candidates = Obs.Metrics.counter "hilbert.candidates"
let m_pruned_scalar = Obs.Metrics.counter "hilbert.pruned_scalar"
let m_pruned_dominated = Obs.Metrics.counter "hilbert.pruned_dominated"
let m_pruned_duplicate = Obs.Metrics.counter "hilbert.pruned_duplicate"
let m_basis = Obs.Metrics.counter "hilbert.basis_elements"

(* One criterion-passing extension, as computed by the parallel phase:
   either already dominated by a basis element harvested at this level's
   start (its defect is never needed), or a live candidate carrying its
   defect. The duplicate classification cannot be decided in parallel —
   it depends on the order extensions are admitted — so it happens in
   the sequential reduction. *)
type extension =
  | Dominated of int array
  | Live of int array * int array

let solve_eq ?(jobs = 1) ?(chunk = 16) ?(max_candidates = 5_000_000)
    ?(scalar_criterion = true) sys =
  let v = sys.Diophantine.num_vars in
  let columns =
    Array.init v (fun j ->
        Array.map (fun row -> row.(j)) sys.Diophantine.rows)
  in
  let unit j =
    let y = Array.make v 0 in
    y.(j) <- 1;
    y
  in
  let basis = ref [] in
  (* The domination scan is the completion's hot loop. Each basis
     element is stored with a support bitmask (coordinates >= 62 lumped
     into the top bit): [b <= y] requires [support b ⊆ support y], so a
     one-word mask test rejects most basis elements without touching
     the arrays. A pure filter — the scan's outcome is unchanged. *)
  let support_mask (y : int array) =
    let n = Array.length y in
    let m = ref 0 in
    for j = 0 to n - 1 do
      if y.(j) > 0 then m := !m lor (1 lsl (if j < 62 then j else 62))
    done;
    !m
  in
  let masked_basis = ref [] in
  let candidates = ref 0 in
  (* Contejean–Devie completion accounting: extensions vetoed by the
     scalar-product criterion vs. dropped as duplicates of this level
     vs. dominated by an already-harvested basis element. Local refs;
     published once at the end. *)
  let pruned_scalar = ref 0 in
  let pruned_duplicate = ref 0 in
  let pruned_dominated = ref 0 in
  let levels = ref 0 in
  let progress = Obs.Progress.create "hilbert.solve" in
  let dominated y =
    let my = support_mask y in
    List.exists
      (fun (mb, b) -> mb land lnot my = 0 && vec_leq b y)
      !masked_basis
  in
  let harvest y =
    basis := y :: !basis;
    masked_basis := (support_mask y, y) :: !masked_basis
  in
  let frontier = ref (List.init v (fun j -> (unit j, columns.(j)))) in
  (* Each completion round fans the extension work — the scalar
     criterion and, above all, the domination scan over the harvested
     basis — out over the pool; the per-task slots are then reduced
     sequentially in (task, j) order, which is exactly the sequential
     path's iteration order. The basis is only extended during the
     harvest (driver-side, before the round opens), so the domination
     set the workers read is the same one the sequential path uses, and
     every counter, the frontier order, the seen-duplicate
     classification and the budget trip point are byte-identical for
     any [jobs]/[chunk]. *)
  let tasks = ref [||] in
  let slots = ref [||] in
  let pending = ref false in
  let budget_trip () =
    raise
      (Obs.Budget.exceeded
         ~partial:(Partial_basis (minimize !basis))
         ~source:"hilbert.solve_eq" ~resource:"candidates"
         ~limit:(float_of_int max_candidates)
         ~consumed:
           [
             ("candidates", float_of_int !candidates);
             ("levels", float_of_int !levels);
             ("basis", float_of_int (List.length !basis));
           ]
         ())
  in
  let next () =
    if !pending then begin
      pending := false;
      let seen = Hashtbl.create 256 in
      let next_frontier = ref [] in
      Array.iter
        (fun (vetoes, exts) ->
          pruned_scalar := !pruned_scalar + vetoes;
          List.iter
            (fun ext ->
              match ext with
              | Dominated y' ->
                if Hashtbl.mem seen y' then incr pruned_duplicate
                else incr pruned_dominated
              | Live (y', defect') ->
                if Hashtbl.mem seen y' then incr pruned_duplicate
                else begin
                  Hashtbl.add seen y' ();
                  incr candidates;
                  if !candidates > max_candidates then budget_trip ();
                  next_frontier := (y', defect') :: !next_frontier
                end)
            exts)
        !slots;
      (* no reversal: the sequential path also accumulates the next
         level by consing, so its frontier order is the reverse of
         admission order *)
      frontier := !next_frontier
    end;
    match !frontier with
    | [] -> None
    | fr ->
      incr levels;
      Obs.Progress.tick progress (fun () ->
          Printf.sprintf "level %d: frontier %d, %d candidates, basis %d"
            !levels (List.length fr) !candidates (List.length !basis));
      (* First harvest this level's solutions, then extend the rest: a
         solution at the current level must prune its level-mates'
         extensions. *)
      let solutions, others = List.partition (fun (_, defect) -> is_zero defect) fr in
      List.iter (fun (y, _) -> if not (dominated y) then harvest y) solutions;
      tasks := Array.of_list others;
      let n = Array.length !tasks in
      if n = 0 then None
      else begin
        slots := Array.make n (0, []);
        pending := true;
        Some n
      end
  in
  (* publish even on the exceptional exit (candidate budget exceeded),
     so ablations can read how far a diverging search got *)
  Fun.protect
    ~finally:(fun () ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_solves;
        Obs.Metrics.add m_candidates !candidates;
        Obs.Metrics.add m_pruned_scalar !pruned_scalar;
        Obs.Metrics.add m_pruned_dominated !pruned_dominated;
        Obs.Metrics.add m_pruned_duplicate !pruned_duplicate
      end)
    (fun () ->
      Obs.Trace.with_span "hilbert.solve_eq" ~cat:"hilbert"
        ~args:
          [
            ("num_vars", string_of_int v);
            ("scalar_criterion", string_of_bool scalar_criterion);
          ]
        (fun () ->
          ignore
            (Pool.run_rounds ~jobs ~chunk ~name:"hilbert" ~next
               (fun ~round:_ ~lo ~hi ->
                 let tasks = !tasks and slots = !slots in
                 for i = lo to hi - 1 do
                   let y, defect = tasks.(i) in
                   let vetoes = ref 0 in
                   let exts = ref [] in
                   for j = v - 1 downto 0 do
                     if (not scalar_criterion) || dot defect columns.(j) < 0
                     then begin
                       let y' = Array.copy y in
                       y'.(j) <- y'.(j) + 1;
                       if dominated y' then exts := Dominated y' :: !exts
                       else
                         let defect' =
                           Array.mapi (fun i d -> d + columns.(j).(i)) defect
                         in
                         exts := Live (y', defect') :: !exts
                     end
                     else incr vetoes
                   done;
                   slots.(i) <- (!vetoes, !exts)
                 done))));
  Obs.Progress.finish progress (fun () ->
      Printf.sprintf "%d levels, %d candidates, basis %d" !levels !candidates
        (List.length !basis));
  let result = minimize !basis in
  if Obs.Metrics.enabled () then Obs.Metrics.add m_basis (List.length result);
  result

(* Lift [A·y >= 0] to the equality system [A·y - s = 0]. *)
let lift sys =
  let e = Diophantine.num_constraints sys in
  let v = sys.Diophantine.num_vars in
  let rows =
    Array.mapi
      (fun i row ->
        Array.init (v + e) (fun j ->
            if j < v then row.(j) else if j = v + i then -1 else 0))
      sys.Diophantine.rows
  in
  Diophantine.make rows ~num_vars:(v + e)

let solve_geq ?jobs ?chunk ?max_candidates ?scalar_criterion sys =
  let v = sys.Diophantine.num_vars in
  solve_eq ?jobs ?chunk ?max_candidates ?scalar_criterion (lift sys)
  |> List.map (fun y -> Array.sub y 0 v)
  |> List.sort_uniq Stdlib.compare

let decompose_with ~elements y =
  (* Greedy subtraction over any system closed under truncated
     subtraction of dominated elements. *)
  let rec go y acc =
    if is_zero y then Some (List.rev acc)
    else
      match List.find_opt (fun b -> (not (is_zero b)) && vec_leq b y) elements with
      | None -> None
      | Some b ->
        let y' = Array.mapi (fun i x -> x - b.(i)) y in
        go y' (b :: acc)
  in
  go y []

let decompose_eq sys ~basis y =
  if not (Diophantine.is_solution_eq sys y) then None
  else decompose_with ~elements:basis y

let decompose_geq sys ~basis y =
  if not (Diophantine.is_solution_geq sys y) then None
  else begin
    let lift_vec b = Array.append b (Diophantine.eval sys b) in
    let lifted_basis = List.map lift_vec basis in
    let v = sys.Diophantine.num_vars in
    match decompose_with ~elements:lifted_basis (lift_vec y) with
    | None -> None
    | Some parts -> Some (List.map (fun b -> Array.sub b 0 v) parts)
  end

let verify_minimal sys ~eq elements =
  let solution =
    if eq then Diophantine.is_solution_eq sys else Diophantine.is_solution_geq sys
  in
  (* Indecomposable elements of an inequality system may be pointwise
     comparable; incomparability must be checked on the slack lift. *)
  let reps =
    if eq then elements
    else List.map (fun b -> Array.append b (Diophantine.eval sys b)) elements
  in
  List.for_all (fun y -> (not (is_zero y)) && solution y) elements
  && List.for_all
       (fun y -> List.for_all (fun y' -> y == y' || not (vec_leq y' y)) reps)
       reps
