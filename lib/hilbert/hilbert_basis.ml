let dot (u : int array) (v : int array) =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * v.(i))) u;
  !acc

let vec_leq (u : int array) (v : int array) =
  let n = Array.length u in
  let rec go i = i >= n || (u.(i) <= v.(i) && go (i + 1)) in
  go 0

let is_zero (u : int array) = Array.for_all (fun x -> x = 0) u

(* Keep only the pointwise-minimal vectors. *)
let minimize vectors =
  List.filter
    (fun y ->
      not (List.exists (fun y' -> y' <> y && vec_leq y' y) vectors))
    vectors
  |> List.sort_uniq Stdlib.compare

type Obs.Budget.partial += Partial_basis of int array list

let m_solves = Obs.Metrics.counter "hilbert.solves"
let m_candidates = Obs.Metrics.counter "hilbert.candidates"
let m_pruned_scalar = Obs.Metrics.counter "hilbert.pruned_scalar"
let m_pruned_dominated = Obs.Metrics.counter "hilbert.pruned_dominated"
let m_pruned_duplicate = Obs.Metrics.counter "hilbert.pruned_duplicate"
let m_basis = Obs.Metrics.counter "hilbert.basis_elements"

let solve_eq ?(max_candidates = 5_000_000) ?(scalar_criterion = true) sys =
  let v = sys.Diophantine.num_vars in
  let columns =
    Array.init v (fun j ->
        Array.map (fun row -> row.(j)) sys.Diophantine.rows)
  in
  let unit j =
    let y = Array.make v 0 in
    y.(j) <- 1;
    y
  in
  let basis = ref [] in
  let candidates = ref 0 in
  (* Contejean–Devie completion accounting: extensions vetoed by the
     scalar-product criterion vs. dropped as duplicates of this level
     vs. dominated by an already-harvested basis element. Local refs;
     published once at the end. *)
  let pruned_scalar = ref 0 in
  let pruned_duplicate = ref 0 in
  let pruned_dominated = ref 0 in
  let levels = ref 0 in
  let progress = Obs.Progress.create "hilbert.solve" in
  let dominated y = List.exists (fun b -> vec_leq b y) !basis in
  let frontier = ref (List.init v (fun j -> (unit j, columns.(j)))) in
  (* publish even on the exceptional exit (candidate budget exceeded),
     so ablations can read how far a diverging search got *)
  Fun.protect
    ~finally:(fun () ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_solves;
        Obs.Metrics.add m_candidates !candidates;
        Obs.Metrics.add m_pruned_scalar !pruned_scalar;
        Obs.Metrics.add m_pruned_dominated !pruned_dominated;
        Obs.Metrics.add m_pruned_duplicate !pruned_duplicate
      end)
    (fun () ->
      Obs.Trace.with_span "hilbert.solve_eq" ~cat:"hilbert"
        ~args:
          [
            ("num_vars", string_of_int v);
            ("scalar_criterion", string_of_bool scalar_criterion);
          ]
        (fun () ->
          while !frontier <> [] do
            incr levels;
            Obs.Progress.tick progress (fun () ->
                Printf.sprintf "level %d: frontier %d, %d candidates, basis %d"
                  !levels (List.length !frontier) !candidates (List.length !basis));
            (* First harvest this level's solutions, then extend the rest: a
               solution at the current level must prune its level-mates'
               extensions. *)
            let solutions, others =
              List.partition (fun (_, defect) -> is_zero defect) !frontier
            in
            List.iter
              (fun (y, _) -> if not (dominated y) then basis := y :: !basis)
              solutions;
            let seen = Hashtbl.create 256 in
            let next = ref [] in
            List.iter
              (fun (y, defect) ->
                for j = 0 to v - 1 do
                  if (not scalar_criterion) || dot defect columns.(j) < 0 then begin
                    let y' = Array.copy y in
                    y'.(j) <- y'.(j) + 1;
                    if Hashtbl.mem seen y' then incr pruned_duplicate
                    else if dominated y' then incr pruned_dominated
                    else begin
                      Hashtbl.add seen y' ();
                      incr candidates;
                      if !candidates > max_candidates then
                        raise
                          (Obs.Budget.exceeded
                             ~partial:(Partial_basis (minimize !basis))
                             ~source:"hilbert.solve_eq" ~resource:"candidates"
                             ~limit:(float_of_int max_candidates)
                             ~consumed:
                               [
                                 ("candidates", float_of_int !candidates);
                                 ("levels", float_of_int !levels);
                                 ("basis", float_of_int (List.length !basis));
                               ]
                             ());
                      let defect' =
                        Array.mapi (fun i d -> d + columns.(j).(i)) defect
                      in
                      next := (y', defect') :: !next
                    end
                  end
                  else incr pruned_scalar
                done)
              others;
            frontier := !next
          done));
  Obs.Progress.finish progress (fun () ->
      Printf.sprintf "%d levels, %d candidates, basis %d" !levels !candidates
        (List.length !basis));
  let result = minimize !basis in
  if Obs.Metrics.enabled () then Obs.Metrics.add m_basis (List.length result);
  result

(* Lift [A·y >= 0] to the equality system [A·y - s = 0]. *)
let lift sys =
  let e = Diophantine.num_constraints sys in
  let v = sys.Diophantine.num_vars in
  let rows =
    Array.mapi
      (fun i row ->
        Array.init (v + e) (fun j ->
            if j < v then row.(j) else if j = v + i then -1 else 0))
      sys.Diophantine.rows
  in
  Diophantine.make rows ~num_vars:(v + e)

let solve_geq ?max_candidates ?scalar_criterion sys =
  let v = sys.Diophantine.num_vars in
  solve_eq ?max_candidates ?scalar_criterion (lift sys)
  |> List.map (fun y -> Array.sub y 0 v)
  |> List.sort_uniq Stdlib.compare

let decompose_with ~elements y =
  (* Greedy subtraction over any system closed under truncated
     subtraction of dominated elements. *)
  let rec go y acc =
    if is_zero y then Some (List.rev acc)
    else
      match List.find_opt (fun b -> (not (is_zero b)) && vec_leq b y) elements with
      | None -> None
      | Some b ->
        let y' = Array.mapi (fun i x -> x - b.(i)) y in
        go y' (b :: acc)
  in
  go y []

let decompose_eq sys ~basis y =
  if not (Diophantine.is_solution_eq sys y) then None
  else decompose_with ~elements:basis y

let decompose_geq sys ~basis y =
  if not (Diophantine.is_solution_geq sys y) then None
  else begin
    let lift_vec b = Array.append b (Diophantine.eval sys b) in
    let lifted_basis = List.map lift_vec basis in
    let v = sys.Diophantine.num_vars in
    match decompose_with ~elements:lifted_basis (lift_vec y) with
    | None -> None
    | Some parts -> Some (List.map (fun b -> Array.sub b 0 v) parts)
  end

let verify_minimal sys ~eq elements =
  let solution =
    if eq then Diophantine.is_solution_eq sys else Diophantine.is_solution_geq sys
  in
  (* Indecomposable elements of an inequality system may be pointwise
     comparable; incomparability must be checked on the slack lift. *)
  let reps =
    if eq then elements
    else List.map (fun b -> Array.append b (Diophantine.eval sys b)) elements
  in
  List.for_all (fun y -> (not (is_zero y)) && solution y) elements
  && List.for_all
       (fun y -> List.for_all (fun y' -> y == y' || not (vec_leq y' y)) reps)
       reps
