(** Hilbert bases of homogeneous linear Diophantine systems by the
    Contejean–Devie completion procedure.

    The basis of [A·y = 0] is the set of pointwise-minimal non-zero
    solutions; the basis of [A·y >= 0] is obtained by adding one slack
    variable per constraint ([A·y - s = 0]) and projecting — the
    projections are exactly the indecomposable solutions of the
    inequality system. Corollary 5.7 of the paper instantiates this for
    the potentially-realisable transition multisets of a protocol. *)

type Obs.Budget.partial += Partial_basis of int array list
(** The minimized basis elements harvested before a candidate budget
    ran out — a sound under-approximation of the full basis, carried by
    {!Obs.Budget.Exceeded}. *)

val solve_eq :
  ?jobs:int -> ?chunk:int -> ?max_candidates:int -> ?scalar_criterion:bool ->
  Diophantine.t -> int array list
(** Minimal non-zero solutions of [A·y = 0]. Breadth-first completion
    from the unit vectors; each frontier vector is extended by [e_j]
    only when column [j] of [A] has negative scalar product with the
    current defect [A·y] (the Contejean–Devie criterion, which is both
    complete and terminating). Passing [~scalar_criterion:false]
    disables the criterion — the search stays complete but may diverge
    (the benchmark harness uses this as an ablation; rely on
    [max_candidates]).

    [jobs] (default 1) domains compute each completion round's
    extensions — criterion, domination scan, defect update — in chunks
    of [chunk] (default 16) frontier vectors over a {!Pool.run_rounds}
    pool; admission (duplicate detection, budget accounting) is reduced
    sequentially in the sequential path's own order, so the returned
    basis, all published counters and the budget trip point are
    byte-identical for any [jobs]/[chunk].
    @raise Obs.Budget.Exceeded if the completion exceeds
    [max_candidates] (default 5_000_000) candidate vectors — a safety
    valve only. The exception carries {!Partial_basis} and the
    candidates/levels/basis counts consumed — the same payload for any
    [jobs], raised after every domain is joined. (The round in which
    the budget trips is still expanded in full before the sequential
    reduction detects the overrun, so a diverging search may briefly
    materialise one level past the budget.) *)

val solve_geq :
  ?jobs:int -> ?chunk:int -> ?max_candidates:int -> ?scalar_criterion:bool ->
  Diophantine.t -> int array list
(** Hilbert basis (indecomposable solutions) of [A·y >= 0]. *)

val decompose_eq :
  Diophantine.t -> basis:int array list -> int array -> int array list option
(** [decompose_eq sys ~basis y] writes the solution [y] as a multiset of
    basis elements (returned with multiplicity); [None] if [y] is not a
    solution or the basis is not generating. Greedy subtraction — any
    basis element pointwise below a solution of an equality system can
    be subtracted, so greediness is complete. *)

val decompose_geq :
  Diophantine.t -> basis:int array list -> int array -> int array list option
(** Same for inequality systems, via the slack-variable lift. *)

val verify_minimal : Diophantine.t -> eq:bool -> int array list -> bool
(** All elements are non-zero solutions and pairwise incomparable. *)
