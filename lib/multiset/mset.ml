type t = int array

let of_array a =
  if not (Array.for_all (fun x -> x >= 0) a) then
    invalid_arg "Mset.of_array: negative coordinate";
  Array.copy a

let unsafe_of_array a = a
let to_intvec (c : t) : Intvec.t = c
let zero d = Array.make d 0

let singleton d i =
  if i < 0 || i >= d then invalid_arg "Mset.singleton: index out of range";
  let a = Array.make d 0 in
  a.(i) <- 1;
  a

let of_list d assoc =
  let a = Array.make d 0 in
  List.iter
    (fun (i, k) ->
      if i < 0 || i >= d then invalid_arg "Mset.of_list: index out of range";
      if k < 0 then invalid_arg "Mset.of_list: negative count";
      a.(i) <- a.(i) + k)
    assoc;
  a

let dim = Array.length
let get (c : t) i = c.(i)
let size (c : t) = Array.fold_left ( + ) 0 c
let count_on (c : t) s = List.fold_left (fun acc i -> acc + c.(i)) 0 s
let support = Intvec.support
let is_zero (c : t) = Array.for_all (fun x -> x = 0) c
let equal = Intvec.equal
let compare = Intvec.compare_lex
let leq = Intvec.leq
let lt = Intvec.lt
let add (a : t) (b : t) : t = Intvec.add a b

let sub_opt (a : t) (b : t) : t option =
  let r = Intvec.sub a b in
  if Intvec.is_nonnegative r then Some r else None

let sub a b =
  match sub_opt a b with
  | Some r -> r
  | None -> invalid_arg "Mset.sub: negative result"

let scale k (c : t) : t =
  if k < 0 then invalid_arg "Mset.scale: negative factor";
  Intvec.scale k c

let pointwise_min = Intvec.pointwise_min
let pointwise_max = Intvec.pointwise_max

let add_delta (c : t) (delta : Intvec.t) : t option =
  let r = Intvec.add c delta in
  if Intvec.is_nonnegative r then Some r else None

let hash = Intvec.hash
let pp = Intvec.pp

let max_packed_dim = 7
let max_packed_count = 255

let packable (c : t) =
  Array.length c <= max_packed_dim
  && Array.for_all (fun x -> x <= max_packed_count) c

let pack (c : t) =
  if not (packable c) then invalid_arg "Mset.pack: not packable";
  let acc = ref 0 in
  for i = Array.length c - 1 downto 0 do
    acc := (!acc lsl 8) lor c.(i)
  done;
  !acc

let unpack ~dim packed : t =
  Array.init dim (fun i -> (packed lsr (8 * i)) land 0xff)

let pack_delta (d : Intvec.t) =
  let acc = ref 0 in
  for i = Array.length d - 1 downto 0 do
    acc := (!acc lsl 8) + d.(i)
  done;
  !acc
