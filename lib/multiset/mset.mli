(** Multisets over a fixed finite domain: elements of [N^d].

    A configuration of a population protocol (Section 2.2) is a multiset
    over its states; this module provides the multiset algebra the paper
    uses — size, support, pointwise order, and monotone arithmetic — on
    top of {!Intvec}'s representation.

    Values are [int array]s with non-negative coordinates, treated as
    immutable. Constructors enforce non-negativity. *)

type t = private int array

val of_array : int array -> t
(** Validates non-negativity (the array is copied).
    @raise Invalid_argument on a negative coordinate. *)

val unsafe_of_array : int array -> t
(** No copy, no check; the caller must guarantee non-negative coordinates
    and renounce mutation. For hot loops only. *)

val to_intvec : t -> Intvec.t
val zero : int -> t
val singleton : int -> int -> t
(** [singleton d i] has one element on coordinate [i]. *)

val of_list : int -> (int * int) list -> t
(** [of_list d assoc] sums [count] elements on each [(index, count)] pair. *)

val dim : t -> int
val get : t -> int -> int
val size : t -> int
(** Total number of elements, [|C|] in the paper. *)

val count_on : t -> int list -> int
(** [count_on c s] is [C(S) = sum_{q in S} C(q)]. *)

val support : t -> int list
val is_zero : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic; a total order for containers. *)

val leq : t -> t -> bool
(** Pointwise order. *)

val lt : t -> t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val sub_opt : t -> t -> t option
val scale : int -> t -> t
val pointwise_min : t -> t -> t
val pointwise_max : t -> t -> t

val add_delta : t -> Intvec.t -> t option
(** [add_delta c delta] is [Some (c + delta)] when non-negative — firing a
    displacement. *)

val hash : t -> int
val pp : ?names:string array -> Format.formatter -> t -> unit

(** {1 Packed configurations}

    A multiset whose dimension is at most {!max_packed_dim} and whose
    coordinates are all at most {!max_packed_count} fits in one
    immediate [int]: coordinate [i] occupies bits [8i..8i+7], so the
    packed value is the base-256 number whose digits are the counts.
    Because machine addition is exact, adding the (possibly negative)
    integer [sum_i delta_i * 256^i] to a packed value yields the packed
    form of the displaced multiset whenever every resulting coordinate
    stays within [0..255] — which interaction firing guarantees after an
    enabledness check, since the population size is conserved. This is
    the representation behind the allocation-free configuration-graph
    fast path. *)

val max_packed_dim : int
(** 7: the largest dimension a 63-bit [int] accommodates at 8 bits per
    coordinate. *)

val max_packed_count : int
(** 255: the largest per-coordinate count (hence the largest population
    size that is safe under displacement arithmetic). *)

val packable : t -> bool
(** Can this multiset be represented as a packed [int]? *)

val pack : t -> int
(** @raise Invalid_argument when not {!packable}. *)

val unpack : dim:int -> int -> t
(** Inverse of {!pack} for values built from a multiset of dimension
    [dim]. *)

val pack_delta : Intvec.t -> int
(** The signed integer whose base-256 digits are the displacement's
    coordinates; adding it to a packed value fires the displacement
    (see above for the safety condition). *)
