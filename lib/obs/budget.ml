type partial = ..
type partial += No_partial

type info = {
  source : string;
  resource : string;
  limit : float;
  consumed : (string * float) list;
  partial : partial;
}

exception Exceeded of info

let m_exceeded = Metrics.counter "budget.exceeded"

let exceeded ?(partial = No_partial) ~source ~resource ~limit ~consumed () =
  if Metrics.enabled () then Metrics.incr m_exceeded;
  if Events.enabled () then
    Events.emit ~severity:Warn "budget.exceeded"
      ~data:
        ([
           ("source", Json.String source);
           ("resource", Json.String resource);
           ("limit", Json.Float limit);
         ]
         @ List.map (fun (k, v) -> ("consumed_" ^ k, Json.Float v)) consumed);
  Exceeded { source; resource; limit; consumed; partial }

(* Budgets are almost always integral counts; print them without the
   float noise, falling back to %g for genuine fractions. *)
let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let describe i =
  Printf.sprintf "%s: %s budget exceeded (limit %s%s)" i.source i.resource
    (number i.limit)
    (match i.consumed with
     | [] -> ""
     | l ->
       "; consumed "
       ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ number v) l))

let pp fmt i = Format.pp_print_string fmt (describe i)

let () =
  Printexc.register_printer (function
    | Exceeded i -> Some ("Obs.Budget.Exceeded: " ^ describe i)
    | _ -> None)

type deadline = { at_ns : int64; budget_s : float; source : string }

let deadline_in ~source budget_s =
  {
    at_ns = Int64.add (Clock.now_ns ()) (Int64.of_float (budget_s *. 1e9));
    budget_s;
    source;
  }

let expired d = Int64.compare (Clock.now_ns ()) d.at_ns > 0

let raise_if_expired ?partial ~consumed d =
  if expired d then
    raise
      (exceeded ?partial ~source:d.source ~resource:"wall_s" ~limit:d.budget_s
         ~consumed ())
