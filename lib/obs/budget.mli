(** Typed resource budgets with graceful degradation.

    Long-running searches (Hilbert-basis completion, Karp–Miller
    clovers, configuration-graph exploration) take explicit resource
    budgets. When a budget runs out they raise {!Exceeded} instead of a
    string [Failure]: the exception carries the budget's identity, the
    resources consumed so far and — through the extensible {!partial}
    type — whatever partial result the search had accumulated, so
    callers can degrade to an [Unknown(budget)] verdict instead of
    dying. *)

type partial = ..
(** Open type of partial results. Each budgeted engine extends it with
    its own constructor (e.g. [Hilbert_basis.Partial_basis]); a caller
    that recognises the constructor can salvage the partial result,
    everyone else still gets the typed exception and the stats. *)

type partial += No_partial

type info = {
  source : string;  (** the budgeted engine, e.g. ["hilbert.solve_eq"] *)
  resource : string;  (** what ran out: ["candidates"], ["nodes"], ["wall_s"] *)
  limit : float;  (** the configured budget *)
  consumed : (string * float) list;  (** resources spent when the budget hit *)
  partial : partial;
}

exception Exceeded of info

val exceeded :
  ?partial:partial ->
  source:string ->
  resource:string ->
  limit:float ->
  consumed:(string * float) list ->
  unit ->
  exn
(** Build an {!Exceeded} (and bump the ["budget.exceeded"] counter when
    metrics are on). Raise it with [raise (Budget.exceeded ... ())]. *)

val describe : info -> string
(** One line: source, resource, limit and the consumed stats. *)

val pp : Format.formatter -> info -> unit

(** A wall-clock budget as an absolute deadline on the monotonic clock,
    so one budget can span nested calls (e.g. every configuration-graph
    exploration of one [Eta_search.find]). *)
type deadline = { at_ns : int64; budget_s : float; source : string }

val deadline_in : source:string -> float -> deadline
(** [deadline_in ~source s] expires [s] seconds from now. *)

val expired : deadline -> bool

val raise_if_expired :
  ?partial:partial -> consumed:(string * float) list -> deadline -> unit
(** Raise {!Exceeded} (resource ["wall_s"], limit the deadline's
    budget) if the deadline has passed. *)
