type t = {
  config_hash : string;
  config : Json.t;
  total_chunks : int;
  state : Json.t option array;
}

let schema = "ppcheckpoint/v1"
let hash_config config = Digest.to_hex (Digest.string (Json.to_string config))

let create ~config ~total_chunks =
  if total_chunks < 0 then invalid_arg "Checkpoint.create: total_chunks >= 0";
  {
    config_hash = hash_config config;
    config;
    total_chunks;
    state = Array.make total_chunks None;
  }

let check_index who t i =
  if i < 0 || i >= t.total_chunks then
    invalid_arg (Printf.sprintf "Checkpoint.%s: chunk %d of %d" who i t.total_chunks)

let mark_done t i state =
  check_index "mark_done" t i;
  t.state.(i) <- Some state

let is_done t i =
  check_index "is_done" t i;
  t.state.(i) <> None

let chunk_state t i =
  check_index "chunk_state" t i;
  t.state.(i)

let num_done t =
  Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.state

(* ----------------------------------------------------------------- JSON *)

let to_json t =
  let chunks =
    Array.to_list t.state
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           Option.map
             (fun state ->
               Json.Obj [ ("index", Json.Int i); ("state", state) ])
             s)
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("config_hash", Json.String t.config_hash);
      ("config", t.config);
      ("total_chunks", Json.Int t.total_chunks);
      ("chunks", Json.List chunks);
    ]

let of_json = function
  | Json.Obj fields ->
    let ( let* ) = Result.bind in
    let* () =
      match List.assoc_opt "schema" fields with
      | Some (Json.String s) when s = schema -> Ok ()
      | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
      | _ -> Error "missing \"schema\" field"
    in
    let* config_hash =
      match List.assoc_opt "config_hash" fields with
      | Some (Json.String h) -> Ok h
      | _ -> Error "missing \"config_hash\" field"
    in
    let* config =
      match List.assoc_opt "config" fields with
      | Some j -> Ok j
      | None -> Error "missing \"config\" field"
    in
    let* total_chunks =
      match List.assoc_opt "total_chunks" fields with
      | Some (Json.Int n) when n >= 0 -> Ok n
      | _ -> Error "missing \"total_chunks\" field"
    in
    let state = Array.make total_chunks None in
    let* () =
      match List.assoc_opt "chunks" fields with
      | Some (Json.List l) ->
        let rec go = function
          | [] -> Ok ()
          | Json.Obj cf :: rest ->
            (match (List.assoc_opt "index" cf, List.assoc_opt "state" cf) with
             | Some (Json.Int i), Some s when i >= 0 && i < total_chunks ->
               state.(i) <- Some s;
               go rest
             | Some (Json.Int i), Some _ ->
               Error (Printf.sprintf "chunk index %d out of range" i)
             | _ -> Error "chunk entry needs \"index\" and \"state\"")
          | _ :: _ -> Error "chunk entry must be an object"
        in
        go l
      | _ -> Error "missing \"chunks\" list"
    in
    Ok { config_hash; config; total_chunks; state }
  | _ -> Error "checkpoint must be a JSON object"

(* ----------------------------------------------------------------- file *)

(* tmp + rename in the destination directory (the Export pattern): a
   crash mid-write leaves the previous snapshot intact, and a reader
   never sees a torn file *)
let save ~path t =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Json.parse contents with
     | Error e -> Error e
     | Ok j -> of_json j)

(* --------------------------------------------------------------- writer *)

type writer = {
  t : t;
  path : string;
  every_chunks : int;
  every_s : float;
  lock : Mutex.t;
  mutable pending : int;
  mutable last_write_ns : int64;
}

let writer ?(every_chunks = 64) ?(every_s = 30.0) ~path t =
  {
    t;
    path;
    every_chunks = Stdlib.max 1 every_chunks;
    every_s = Float.max 0.05 every_s;
    lock = Mutex.create ();
    pending = 0;
    last_write_ns = Clock.now_ns ();
  }

let locked w f =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) f

let snapshot_event w =
  if Events.enabled () then
    Events.emit "checkpoint.snapshot"
      ~data:
        [
          ("path", Json.String w.path);
          ("done", Json.Int (num_done w.t));
          ("total", Json.Int w.t.total_chunks);
        ]

let note_done w i state =
  locked w (fun () ->
      mark_done w.t i state;
      w.pending <- w.pending + 1;
      let now = Clock.now_ns () in
      if
        w.pending >= w.every_chunks
        || Clock.ns_to_s (Int64.sub now w.last_write_ns) >= w.every_s
      then begin
        (* a full disk must not kill the scan; the data survives in the
           accumulators and the next flush can still succeed *)
        (try
           save ~path:w.path w.t;
           snapshot_event w
         with Sys_error _ -> ());
        w.pending <- 0;
        w.last_write_ns <- now
      end)

let flush w =
  locked w (fun () ->
      save ~path:w.path w.t;
      snapshot_event w;
      w.pending <- 0;
      w.last_write_ns <- Clock.now_ns ())
