type lease = { holder : string; lease_epoch : int }

type t = {
  config_hash : string;
  config : Json.t;
  total_chunks : int;
  state : Json.t option array;
  mutable epoch : int;
  leases : lease option array;
}

let schema = "ppcheckpoint/v2"
let schema_v1 = "ppcheckpoint/v1"
let hash_config config = Digest.to_hex (Digest.string (Json.to_string config))

let create ~config ~total_chunks =
  if total_chunks < 0 then invalid_arg "Checkpoint.create: total_chunks >= 0";
  {
    config_hash = hash_config config;
    config;
    total_chunks;
    state = Array.make total_chunks None;
    epoch = 0;
    leases = Array.make total_chunks None;
  }

let check_index who t i =
  if i < 0 || i >= t.total_chunks then
    invalid_arg (Printf.sprintf "Checkpoint.%s: chunk %d of %d" who i t.total_chunks)

let mark_done t i state =
  check_index "mark_done" t i;
  t.state.(i) <- Some state;
  t.leases.(i) <- None

let is_done t i =
  check_index "is_done" t i;
  t.state.(i) <> None

let chunk_state t i =
  check_index "chunk_state" t i;
  t.state.(i)

let num_done t =
  Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.state

(* ---------------------------------------------------------------- leases *)

let epoch t = t.epoch

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch

let set_lease t i ~holder =
  check_index "set_lease" t i;
  t.leases.(i) <- Some { holder; lease_epoch = t.epoch }

let clear_lease t i =
  check_index "clear_lease" t i;
  t.leases.(i) <- None

let lease t i =
  check_index "lease" t i;
  t.leases.(i)

let leased_to t ~holder =
  let acc = ref [] in
  for i = t.total_chunks - 1 downto 0 do
    match t.leases.(i) with
    | Some l when l.holder = holder -> acc := i :: !acc
    | _ -> ()
  done;
  !acc

(* ------------------------------------------------------- config mismatch *)

type field_diff = {
  field : string;
  expected : string option;  (** in the running scan's configuration *)
  found : string option;  (** in the snapshot on disk *)
}

exception Mismatch of { path : string; diff : field_diff list }

(* Field-by-field diff of two configuration objects, rendered as JSON
   snippets. Non-object configurations degrade to a single whole-value
   entry; equal fields are omitted. *)
let config_diff ~expected ~found =
  match (expected, found) with
  | Json.Obj evs, Json.Obj fvs ->
    let keys =
      List.map fst evs @ List.filter (fun k -> not (List.mem_assoc k evs)) (List.map fst fvs)
    in
    List.filter_map
      (fun k ->
        let e = List.assoc_opt k evs and f = List.assoc_opt k fvs in
        if e = f then None
        else
          Some
            {
              field = k;
              expected = Option.map Json.to_string e;
              found = Option.map Json.to_string f;
            })
      keys
  | e, f ->
    if e = f then []
    else
      [
        {
          field = "config";
          expected = Some (Json.to_string e);
          found = Some (Json.to_string f);
        };
      ]

let mismatch_message ~path diff =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "checkpoint %s was written by a different scan configuration:" path);
  if diff = [] then
    Buffer.add_string b " (configurations hash differently but no field-level \
                         diff is available)"
  else
    List.iter
      (fun d ->
        Buffer.add_string b
          (Printf.sprintf "\n  %-16s run has %s, snapshot has %s" d.field
             (Option.value ~default:"(absent)" d.expected)
             (Option.value ~default:"(absent)" d.found)))
      diff;
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Mismatch { path; diff } -> Some (mismatch_message ~path diff)
    | _ -> None)

(* ----------------------------------------------------------------- JSON *)

let to_json t =
  let chunks =
    Array.to_list t.state
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           Option.map
             (fun state ->
               Json.Obj [ ("index", Json.Int i); ("state", state) ])
             s)
  in
  let leases =
    Array.to_list t.leases
    |> List.mapi (fun i l -> (i, l))
    |> List.filter_map (fun (i, l) ->
           Option.map
             (fun { holder; lease_epoch } ->
               Json.Obj
                 [
                   ("chunk", Json.Int i);
                   ("holder", Json.String holder);
                   ("epoch", Json.Int lease_epoch);
                 ])
             l)
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("config_hash", Json.String t.config_hash);
      ("config", t.config);
      ("total_chunks", Json.Int t.total_chunks);
      ("epoch", Json.Int t.epoch);
      ("chunks", Json.List chunks);
      ("leases", Json.List leases);
    ]

let of_json = function
  | Json.Obj fields ->
    let ( let* ) = Result.bind in
    (* v1 snapshots (no epoch, no lease table) read as epoch-0 ledgers
       with every lease free — a resumed coordinator reassigns anything
       not marked done anyway, so nothing is lost *)
    let* () =
      match List.assoc_opt "schema" fields with
      | Some (Json.String s) when s = schema || s = schema_v1 -> Ok ()
      | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
      | _ -> Error "missing \"schema\" field"
    in
    let* config_hash =
      match List.assoc_opt "config_hash" fields with
      | Some (Json.String h) -> Ok h
      | _ -> Error "missing \"config_hash\" field"
    in
    let* config =
      match List.assoc_opt "config" fields with
      | Some j -> Ok j
      | None -> Error "missing \"config\" field"
    in
    let* total_chunks =
      match List.assoc_opt "total_chunks" fields with
      | Some (Json.Int n) when n >= 0 -> Ok n
      | _ -> Error "missing \"total_chunks\" field"
    in
    let state = Array.make total_chunks None in
    let* () =
      match List.assoc_opt "chunks" fields with
      | Some (Json.List l) ->
        let rec go = function
          | [] -> Ok ()
          | Json.Obj cf :: rest ->
            (match (List.assoc_opt "index" cf, List.assoc_opt "state" cf) with
             | Some (Json.Int i), Some s when i >= 0 && i < total_chunks ->
               state.(i) <- Some s;
               go rest
             | Some (Json.Int i), Some _ ->
               Error (Printf.sprintf "chunk index %d out of range" i)
             | _ -> Error "chunk entry needs \"index\" and \"state\"")
          | _ :: _ -> Error "chunk entry must be an object"
        in
        go l
      | _ -> Error "missing \"chunks\" list"
    in
    let epoch =
      match List.assoc_opt "epoch" fields with
      | Some (Json.Int e) when e >= 0 -> e
      | _ -> 0
    in
    let leases = Array.make total_chunks None in
    let* () =
      match List.assoc_opt "leases" fields with
      | None -> Ok ()  (* v1 *)
      | Some (Json.List l) ->
        let rec go = function
          | [] -> Ok ()
          | Json.Obj lf :: rest ->
            (match
               ( List.assoc_opt "chunk" lf,
                 List.assoc_opt "holder" lf,
                 List.assoc_opt "epoch" lf )
             with
             | Some (Json.Int i), Some (Json.String holder), Some (Json.Int e)
               when i >= 0 && i < total_chunks ->
               leases.(i) <- Some { holder; lease_epoch = e };
               go rest
             | Some (Json.Int i), _, _ when i < 0 || i >= total_chunks ->
               Error (Printf.sprintf "lease chunk %d out of range" i)
             | _ -> Error "lease entry needs \"chunk\", \"holder\", \"epoch\"")
          | _ :: _ -> Error "lease entry must be an object"
        in
        go l
      | Some _ -> Error "malformed \"leases\" list"
    in
    Ok { config_hash; config; total_chunks; state; epoch; leases }
  | _ -> Error "checkpoint must be a JSON object"

(* ----------------------------------------------------------------- file *)

(* tmp + rename in the destination directory (the Export pattern): a
   crash mid-write leaves the previous snapshot intact, and a reader
   never sees a torn file *)
let save ~path t =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Json.parse contents with
     | Error e -> Error e
     | Ok j -> of_json j)

(* --------------------------------------------------------------- writer *)

type writer = {
  t : t;
  path : string;
  every_chunks : int;
  every_s : float;
  lock : Mutex.t;
  mutable pending : int;
  mutable last_write_ns : int64;
}

let writer ?(every_chunks = 64) ?(every_s = 30.0) ~path t =
  {
    t;
    path;
    every_chunks = Stdlib.max 1 every_chunks;
    every_s = Float.max 0.05 every_s;
    lock = Mutex.create ();
    pending = 0;
    last_write_ns = Clock.now_ns ();
  }

let locked w f =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) f

let snapshot_event w =
  if Events.enabled () then
    Events.emit "checkpoint.snapshot"
      ~data:
        [
          ("path", Json.String w.path);
          ("done", Json.Int (num_done w.t));
          ("total", Json.Int w.t.total_chunks);
        ]

let note_done w i state =
  locked w (fun () ->
      mark_done w.t i state;
      w.pending <- w.pending + 1;
      let now = Clock.now_ns () in
      if
        w.pending >= w.every_chunks
        || Clock.ns_to_s (Int64.sub now w.last_write_ns) >= w.every_s
      then begin
        (* a full disk must not kill the scan; the data survives in the
           accumulators and the next flush can still succeed *)
        (try
           save ~path:w.path w.t;
           snapshot_event w
         with Sys_error _ -> ());
        w.pending <- 0;
        w.last_write_ns <- now
      end)

let flush w =
  locked w (fun () ->
      save ~path:w.path w.t;
      snapshot_event w;
      w.pending <- 0;
      w.last_write_ns <- Clock.now_ns ())
