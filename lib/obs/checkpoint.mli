(** Crash-safe checkpoint/resume snapshots for chunked scans.

    A checkpoint records, for one fixed chunk partition of a scan's
    task space, which chunks have completed and an opaque JSON blob of
    accumulator state per completed chunk, plus a hash of the scan
    configuration (everything that affects the partition or the
    per-chunk content — including the RNG scheme for sampled scans).
    Snapshots are written with the tmp+rename pattern, so a crash
    mid-write can never corrupt the previous snapshot; a resumed scan
    skips the completed chunks, restores their accumulators and — when
    per-chunk work is index-deterministic — reproduces the
    uninterrupted aggregate byte for byte.

    File format: one [ppcheckpoint/v1] JSON object per file. *)

type t = {
  config_hash : string;
  config : Json.t;  (** the hashed configuration, kept readable *)
  total_chunks : int;
  state : Json.t option array;  (** slot per chunk; [Some] = completed *)
}

val schema : string
(** ["ppcheckpoint/v1"]. *)

val hash_config : Json.t -> string
(** Hex digest of the canonical rendering of a configuration object. *)

val create : config:Json.t -> total_chunks:int -> t
(** A fresh checkpoint with no completed chunks. *)

val mark_done : t -> int -> Json.t -> unit
(** Record chunk [i] as completed with the given accumulator state. *)

val is_done : t -> int -> bool
val chunk_state : t -> int -> Json.t option
val num_done : t -> int

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : path:string -> t -> unit
(** Atomic tmp+rename write of the snapshot.
    @raise Sys_error when the write fails. *)

val load : string -> (t, string) result

(** A throttled, thread-safe writer: workers report completed chunks
    from any domain; a snapshot is written every [every_chunks]
    completions or [every_s] seconds, whichever comes first, and on
    {!flush}. Write failures (full disk, yanked directory) are swallowed
    in {!note_done} — a failing checkpoint must not kill the scan — and
    surface only in {!flush}. *)
type writer

val writer : ?every_chunks:int -> ?every_s:float -> path:string -> t -> writer
(** Defaults: [every_chunks = 64], [every_s = 30.0]. *)

val note_done : writer -> int -> Json.t -> unit
(** [note_done w i state] marks chunk [i] completed and snapshots the
    file if a threshold was crossed. Safe to call concurrently. *)

val flush : writer -> unit
(** Write a snapshot now (the final bitmap after a drain). *)
