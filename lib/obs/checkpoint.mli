(** Crash-safe checkpoint/resume snapshots for chunked scans — and,
    since v2, the shared ledger the distributed scan coordinates over.

    A checkpoint records, for one fixed chunk partition of a scan's
    task space, which chunks have completed and an opaque JSON blob of
    accumulator state per completed chunk, plus a hash of the scan
    configuration (everything that affects the partition or the
    per-chunk content — including the RNG scheme for sampled scans).
    Snapshots are written with the tmp+rename pattern, so a crash
    mid-write can never corrupt the previous snapshot; a resumed scan
    skips the completed chunks, restores their accumulators and — when
    per-chunk work is index-deterministic — reproduces the
    uninterrupted aggregate byte for byte.

    v2 adds the coordination substrate: a {e lease table} (which worker
    currently holds each incomplete chunk) and an {e epoch} counter
    bumped every time a coordinator takes the ledger over, so results
    from workers granted in a previous life are recognisably stale.
    Leases on disk are advisory — a chunk not marked done is reassigned
    by the next coordinator regardless — but they let tooling show who
    was working on what at the moment of a crash.

    File format: one [ppcheckpoint/v2] JSON object per file; v1 files
    ([ppcheckpoint/v1], no epoch or lease table) still load. *)

type lease = { holder : string; lease_epoch : int }

type t = {
  config_hash : string;
  config : Json.t;  (** the hashed configuration, kept readable *)
  total_chunks : int;
  state : Json.t option array;  (** slot per chunk; [Some] = completed *)
  mutable epoch : int;  (** coordinator take-over counter *)
  leases : lease option array;  (** slot per chunk; [Some] = leased out *)
}

val schema : string
(** ["ppcheckpoint/v2"]. *)

val schema_v1 : string
(** ["ppcheckpoint/v1"] — still accepted by {!of_json}/{!load}. *)

val hash_config : Json.t -> string
(** Hex digest of the canonical rendering of a configuration object. *)

val create : config:Json.t -> total_chunks:int -> t
(** A fresh checkpoint with no completed chunks. *)

val mark_done : t -> int -> Json.t -> unit
(** Record chunk [i] as completed with the given accumulator state (and
    release any lease on it). *)

val is_done : t -> int -> bool
val chunk_state : t -> int -> Json.t option
val num_done : t -> int

(** {2 Leases and epochs (v2)} *)

val epoch : t -> int

val bump_epoch : t -> int
(** Increment the epoch — a coordinator does this once when it adopts
    the ledger — and return the new value. *)

val set_lease : t -> int -> holder:string -> unit
(** Record chunk [i] as leased to [holder] at the current epoch. *)

val clear_lease : t -> int -> unit

val lease : t -> int -> lease option

val leased_to : t -> holder:string -> int list
(** Chunks currently leased to [holder], in index order. *)

(** {2 Configuration mismatch}

    A snapshot only resumes the scan configuration that wrote it. When
    the fingerprints differ, callers raise {!Mismatch} carrying a
    field-by-field diff so the user learns {e which} flag changed
    instead of staring at two hashes. *)

type field_diff = {
  field : string;
  expected : string option;  (** in the running scan's configuration *)
  found : string option;  (** in the snapshot on disk *)
}

exception Mismatch of { path : string; diff : field_diff list }

val config_diff : expected:Json.t -> found:Json.t -> field_diff list
(** Top-level field diff of two configuration objects (equal fields
    omitted; non-object configurations degrade to one whole-value
    entry). Empty means the objects are equal — or differ only in ways
    invisible at the top level. *)

val mismatch_message : path:string -> field_diff list -> string
(** Human-readable rendering, one line per differing field. Also
    installed as the [Printexc] printer for {!Mismatch}. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : path:string -> t -> unit
(** Atomic tmp+rename write of the snapshot.
    @raise Sys_error when the write fails. *)

val load : string -> (t, string) result

(** A throttled, thread-safe writer: workers report completed chunks
    from any domain; a snapshot is written every [every_chunks]
    completions or [every_s] seconds, whichever comes first, and on
    {!flush}. Write failures (full disk, yanked directory) are swallowed
    in {!note_done} — a failing checkpoint must not kill the scan — and
    surface only in {!flush}. *)
type writer

val writer : ?every_chunks:int -> ?every_s:float -> path:string -> t -> writer
(** Defaults: [every_chunks = 64], [every_s = 30.0]. *)

val note_done : writer -> int -> Json.t -> unit
(** [note_done w i state] marks chunk [i] completed and snapshots the
    file if a threshold was crossed. Safe to call concurrently. *)

val flush : writer -> unit
(** Write a snapshot now (the final bitmap after a drain). *)
