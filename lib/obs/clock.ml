let now_ns () : int64 = Monotonic_clock.now ()
let ns_to_s ns = Int64.to_float ns /. 1e9
let elapsed_s t0 = ns_to_s (Int64.sub (now_ns ()) t0)
