(** Monotonic wall-clock, the one timing source of the repository.

    Backed by the same [CLOCK_MONOTONIC] stub bechamel uses for its
    micro-benchmarks, so wall-clock and speedup numbers cannot go
    negative or jump under NTP adjustment the way
    [Unix.gettimeofday]-based intervals can. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are
    meaningful; the origin is unspecified. *)

val ns_to_s : int64 -> float
(** Convert a nanosecond interval to seconds. *)

val elapsed_s : int64 -> float
(** [elapsed_s t0] is the seconds elapsed since the earlier
    [now_ns ()] stamp [t0]. *)
