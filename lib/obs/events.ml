type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let schema = "ppevents/v1"

type sink = { oc : out_channel; t0_ns : int64; lock : Mutex.t }

(* Same start/stop discipline as the Trace and Metrics globals: the
   sink is installed from the main domain around the instrumented work;
   a racy read at the boundary drops an event, never corrupts one. *)
let current : sink option ref = ref None

let enabled () = !current <> None

let utc_string t =
  let tm = Unix.gmtime t in
  let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

let write_line s line =
  Mutex.lock s.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.lock)
    (fun () ->
      (* a full disk or closed channel must not kill the run; each line
         is flushed so [tail -f] and a crash both see complete records *)
      try
        output_string s.oc line;
        output_char s.oc '\n';
        flush s.oc
      with Sys_error _ -> ())

let emit ?(severity = Info) ?(data = []) name =
  match !current with
  | None -> ()
  | Some s ->
    let ts_s = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) s.t0_ns) in
    let fields =
      [
        ("ts_s", Json.Float ts_s);
        ("utc", Json.String (utc_string (Unix.gettimeofday ())));
        ("sev", Json.String (severity_to_string severity));
        ("dom", Json.Int (Domain.self () :> int));
      ]
      @ (match Trace.current_span_id () with
         | 0 -> []
         | sid -> [ ("span", Json.Int sid) ])
      @ [ ("ev", Json.String name) ]
      @ (match data with [] -> [] | d -> [ ("data", Json.Obj d) ])
    in
    write_line s (Json.to_string (Json.Obj fields))

let stop () =
  match !current with
  | None -> ()
  | Some s ->
    emit "events.stop";
    current := None;
    Trace.untrack_stacks ();
    (try close_out s.oc with Sys_error _ -> ())

let start_channel oc =
  stop ();
  let s = { oc; t0_ns = Clock.now_ns (); lock = Mutex.create () } in
  write_line s
    (Json.to_string
       (Json.Obj
          [
            ("schema", Json.String schema);
            ("t0_utc", Json.String (utc_string (Unix.gettimeofday ())));
          ]));
  Trace.track_stacks ();
  current := Some s

let start_file path = start_channel (open_out path)
