type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let schema = "ppevents/v1"

(* A sink writes records to a channel (the normal --events file) or
   hands each serialised line to a callback (a worker batching lines
   for its coordinator); an optional tee mirrors every line to a
   second callback so a worker with its own --events file can keep it
   AND stream upward. *)
type out = Chan of out_channel | Fn of (string -> unit)

type sink = {
  out : out;
  t0_ns : int64;  (** 0 for callback sinks: [ts_s] is then absolute *)
  lock : Mutex.t;
  mutable tee : (string -> unit) option;
}

(* Same start/stop discipline as the Trace and Metrics globals: the
   sink is installed from the main domain around the instrumented work;
   a racy read at the boundary drops an event, never corrupts one. *)
let current : sink option ref = ref None

let enabled () = !current <> None
let origin_s () =
  match !current with Some s -> Clock.ns_to_s s.t0_ns | None -> 0.0

let utc_string t =
  let tm = Unix.gmtime t in
  let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

let write_line s line =
  Mutex.lock s.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.lock)
    (fun () ->
      (* a full disk or closed channel must not kill the run; each line
         is flushed so [tail -f] and a crash both see complete records *)
      (try
         match s.out with
         | Chan oc ->
           output_string oc line;
           output_char oc '\n';
           flush oc
         | Fn f -> f line
       with Sys_error _ -> ());
      match s.tee with None -> () | Some f -> ( try f line with _ -> ()))

let emit ?(severity = Info) ?(data = []) name =
  match !current with
  | None -> ()
  | Some s ->
    let ts_s = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) s.t0_ns) in
    let fields =
      [
        ("ts_s", Json.Float ts_s);
        ("utc", Json.String (utc_string (Unix.gettimeofday ())));
        ("sev", Json.String (severity_to_string severity));
        ("dom", Json.Int (Domain.self () :> int));
      ]
      @ (match Trace.current_span_id () with
         | 0 -> []
         | sid -> [ ("span", Json.Int sid) ])
      @ [ ("ev", Json.String name) ]
      @ (match data with [] -> [] | d -> [ ("data", Json.Obj d) ])
    in
    write_line s (Json.to_string (Json.Obj fields))

let inject j =
  match !current with
  | None -> ()
  | Some s -> write_line s (Json.to_string j)

let set_tee f =
  match !current with None -> () | Some s -> s.tee <- f

let stop () =
  match !current with
  | None -> ()
  | Some s ->
    emit "events.stop";
    current := None;
    Trace.untrack_stacks ();
    (match s.out with
     | Chan oc -> ( try close_out oc with Sys_error _ -> ())
     | Fn _ -> ())

let detach () = current := None

let start_channel oc =
  stop ();
  let s =
    { out = Chan oc; t0_ns = Clock.now_ns (); lock = Mutex.create (); tee = None }
  in
  write_line s
    (Json.to_string
       (Json.Obj
          [
            ("schema", Json.String schema);
            ("t0_utc", Json.String (utc_string (Unix.gettimeofday ())));
          ]));
  Trace.track_stacks ();
  current := Some s

let start_file path = start_channel (open_out path)

let start_sink f =
  stop ();
  (* t0 = 0: ts_s is absolute monotonic time, so a coordinator holding
     a clock-offset estimate can realign the lines it receives; no
     header line either — the receiving sink already wrote its own *)
  let s = { out = Fn f; t0_ns = 0L; lock = Mutex.create (); tee = None } in
  Trace.track_stacks ();
  current := Some s
