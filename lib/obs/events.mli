(** Structured JSONL event log ([ppevents/v1]) — the one channel for
    everything that previously went to ad-hoc side channels: progress
    lines, checkpoint snapshots, shutdown signals, budget trips, pool
    task errors and chunk lease/complete/retry events.

    The file starts with a header line
    [{"schema":"ppevents/v1","t0_utc":...}] followed by one JSON object
    per line:

    {v
    {"ts_s":1.23,"utc":"2026-08-07T12:00:00.123Z","sev":"info",
     "dom":4,"span":812,"ev":"pool.lease","data":{...}}
    v}

    [ts_s] is monotonic-clock seconds since the sink started (use it
    for ordering and latency math), [utc] wall-clock for correlating
    with the outside world, [dom] the emitting domain, and [span] the
    innermost open {!Trace} span of that domain — the correlation id
    tying an event to the trace file recorded alongside. Lines are
    mutex-serialised and flushed individually, so [tail -f] works and a
    crash loses at most the line being written.

    Off by default; {!emit} with no sink is one load and a branch.
    Binaries enable it with [--events FILE] ({!Obs_cli}). *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val schema : string

val enabled : unit -> bool

val start_file : string -> unit
(** Open the file, write the header line and start logging. Replaces
    any active sink (stopping it first). Also acquires
    {!Trace.track_stacks} so events carry span correlation ids even
    when no trace sink is recording. *)

val start_channel : out_channel -> unit
(** As {!start_file} on an already-open channel (tests). *)

val start_sink : (string -> unit) -> unit
(** Capture mode: each serialised record line goes to the callback
    instead of a file, with {e no} header line and an absolute [ts_s]
    basis ([t0 = 0], i.e. raw monotonic-clock seconds) — the shape a
    distributed worker needs to batch its events up to a coordinator
    that will realign them with a clock-offset estimate. *)

val set_tee : (string -> unit) option -> unit
(** Mirror every record line of the {e current} sink to a secondary
    callback (or stop mirroring with [None]); no-op when no sink is
    active. Lets a worker that already logs to its own [--events] file
    stream the same lines upward. The tee sees lines in the sink's own
    [ts_s] basis — ship {!origin_s} alongside so the receiver can
    convert to absolute time. *)

val origin_s : unit -> float
(** The current sink's [t0] on the absolute monotonic clock, in
    seconds ([absolute ts = origin_s () +. ts_s]); [0] for capture
    sinks ({!start_sink}) and when no sink is active. *)

val inject : Json.t -> unit
(** Append one pre-built record verbatim (serialised under the sink
    lock, no re-stamping) — how a coordinator writes realigned worker
    records into its merged log. No-op without a sink. *)

val stop : unit -> unit
(** Emit a final ["events.stop"] record, close the sink (when it owns
    a file) and release stack tracking. No-op when nothing is
    active. *)

val detach : unit -> unit
(** Forget the active sink without emitting or closing anything — for
    a forked child whose inherited sink (file descriptor and lock
    included) belongs to the parent. *)

val emit : ?severity:severity -> ?data:(string * Json.t) list -> string -> unit
(** [emit name ~data] appends one event record. [data] becomes the
    ["data"] object (omitted when empty). Severity defaults to
    [Info]. Callers on hot paths should guard with {!enabled} before
    building [data]. *)
