(* ------------------------------------------------- Prometheus text *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text escaping per the exposition format: backslash and newline
   only (quotes are not special outside label values) *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* ------------------------------------------------------- fleet view *)

type fleet_worker = {
  fw_worker : string;
  fw_host : string;
  fw_pid : int;
  fw_last_seen_s : float;
  fw_offset_s : float;
  fw_chunks_done : int;
  fw_leased : int;
  fw_events : int;
  fw_metrics : Metrics.snapshot;
}

(* Identity labels ({role,worker,host,...}) and the fleet provider are
   plain refs written from the main thread before the writer starts
   (or from the coordinator loop, which the snapshot read races with
   benignly: a torn read sees the previous provider, never a torn
   closure). *)
let identity_ref : (string * string) list ref = ref []
let set_identity kvs = identity_ref := kvs
let identity () = !identity_ref

let fleet_ref : (unit -> fleet_worker list) option ref = ref None
let set_fleet f = fleet_ref := f

let labels kvs =
  match kvs with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
           kvs)
    ^ "}"

let prometheus_of_snapshot ?meta ?(identity = []) ?(fleet = []) s =
  let buf = Buffer.create 1024 in
  let help pname orig =
    Printf.bprintf buf "# HELP %s Registry metric %s.\n" pname
      (escape_help orig)
  in
  let identity_suffix =
    String.concat ""
      (List.map
         (fun (k, v) ->
           Printf.sprintf ",%s=\"%s\"" (sanitize k) (escape_label v))
         identity)
  in
  (match (meta, identity) with
   | None, [] -> ()
   | Some m, _ ->
     Printf.bprintf buf
       "# HELP pp_build_info Build and run provenance (value is always 1).\n";
     Printf.bprintf buf "# TYPE pp_build_info gauge\n";
     Printf.bprintf buf
       "pp_build_info{git_rev=\"%s\",hostname=\"%s\",ocaml_version=\"%s\",jobs=\"%d\"%s} 1\n"
       (escape_label m.Run_meta.git_rev)
       (escape_label m.Run_meta.hostname)
       (escape_label m.Run_meta.ocaml_version)
       m.Run_meta.jobs identity_suffix
   | None, _ :: _ ->
     (* no collected meta (a bare worker, a test): the identity labels
        still deserve a provenance series *)
     Printf.bprintf buf
       "# HELP pp_build_info Build and run provenance (value is always 1).\n";
     Printf.bprintf buf "# TYPE pp_build_info gauge\n";
     Printf.bprintf buf "pp_build_info{%s} 1\n"
       (String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             identity)));
  List.iter
    (fun (name, v) ->
      let pname = "pp_" ^ sanitize name in
      match v with
      | Metrics.Counter n ->
        help pname name;
        Printf.bprintf buf "# TYPE %s counter\n%s %d\n" pname pname n
      | Metrics.Gauge f ->
        help pname name;
        Printf.bprintf buf "# TYPE %s gauge\n%s %.17g\n" pname pname f
      | Metrics.Histogram { bounds; counts; sum; count } ->
        help pname name;
        Printf.bprintf buf "# TYPE %s histogram\n" pname;
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length bounds then Printf.sprintf "%.17g" bounds.(i)
              else "+Inf"
            in
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" pname le !cum)
          counts;
        Printf.bprintf buf "%s_sum %.17g\n" pname sum;
        Printf.bprintf buf "%s_count %d\n" pname count)
    s;
  (* fleet: one labelled series per worker inside each family, HELP and
     TYPE once per family as the exposition format requires *)
  if fleet <> [] then begin
    let wl w = [ ("worker", w.fw_worker); ("host", w.fw_host) ] in
    Printf.bprintf buf
      "# HELP pp_fleet_worker_info Distributed-scan worker identity (value is always 1).\n\
       # TYPE pp_fleet_worker_info gauge\n";
    List.iter
      (fun w ->
        Printf.bprintf buf "pp_fleet_worker_info%s 1\n"
          (labels (wl w @ [ ("pid", string_of_int w.fw_pid) ])))
      fleet;
    let family name typ help_text value =
      Printf.bprintf buf "# HELP %s %s\n# TYPE %s %s\n" name
        (escape_help help_text) name typ;
      List.iter
        (fun w -> Printf.bprintf buf "%s%s %s\n" name (labels (wl w)) (value w))
        fleet
    in
    family "pp_fleet_last_seen_seconds" "gauge"
      "Seconds since the coordinator last heard from this worker."
      (fun w -> Printf.sprintf "%.17g" w.fw_last_seen_s);
    family "pp_fleet_clock_offset_seconds" "gauge"
      "Estimated worker-to-coordinator monotonic clock offset."
      (fun w -> Printf.sprintf "%.17g" w.fw_offset_s);
    family "pp_fleet_chunks_done" "counter"
      "Fresh chunk results recorded from this worker."
      (fun w -> string_of_int w.fw_chunks_done);
    family "pp_fleet_leased" "gauge"
      "Chunks currently leased to this worker."
      (fun w -> string_of_int w.fw_leased);
    family "pp_fleet_events_forwarded" "counter"
      "Event-log lines forwarded by this worker."
      (fun w -> string_of_int w.fw_events);
    (* every metric the workers reported, one family per name with a
       {worker,host} series per reporter *)
    let names =
      List.concat_map (fun w -> List.map fst w.fw_metrics) fleet
      |> List.sort_uniq String.compare
    in
    List.iter
      (fun name ->
        let pname = "pp_worker_" ^ sanitize name in
        let rows =
          List.filter_map
            (fun w ->
              Option.map (fun v -> (w, v)) (List.assoc_opt name w.fw_metrics))
            fleet
        in
        match rows with
        | [] -> ()
        | (_, v0) :: _ ->
          let typ =
            match v0 with
            | Metrics.Counter _ -> "counter"
            | Metrics.Gauge _ -> "gauge"
            | Metrics.Histogram _ -> "histogram"
          in
          Printf.bprintf buf
            "# HELP %s Worker-reported registry metric %s.\n# TYPE %s %s\n"
            pname (escape_help name) pname typ;
          List.iter
            (fun (w, v) ->
              match v with
              | Metrics.Counter n ->
                Printf.bprintf buf "%s%s %d\n" pname (labels (wl w)) n
              | Metrics.Gauge f ->
                Printf.bprintf buf "%s%s %.17g\n" pname (labels (wl w)) f
              | Metrics.Histogram { bounds; counts; sum; count } ->
                let cum = ref 0 in
                Array.iteri
                  (fun i c ->
                    cum := !cum + c;
                    let le =
                      if i < Array.length bounds then
                        Printf.sprintf "%.17g" bounds.(i)
                      else "+Inf"
                    in
                    Printf.bprintf buf "%s_bucket%s %d\n" pname
                      (labels (wl w @ [ ("le", le) ]))
                      !cum)
                  counts;
                Printf.bprintf buf "%s_sum%s %.17g\n" pname (labels (wl w)) sum;
                Printf.bprintf buf "%s_count%s %d\n" pname (labels (wl w)) count)
            rows)
      names
  end;
  Buffer.contents buf

(* ------------------------------------------------------ JSON snapshot *)

let fleet_worker_json w =
  Json.Obj
    [
      ("worker", Json.String w.fw_worker);
      ("host", Json.String w.fw_host);
      ("pid", Json.Int w.fw_pid);
      ("last_seen_s", Json.Float w.fw_last_seen_s);
      ("offset_s", Json.Float w.fw_offset_s);
      ("chunks_done", Json.Int w.fw_chunks_done);
      ("leased", Json.Int w.fw_leased);
      ("events", Json.Int w.fw_events);
      ("metrics", Metrics.to_json_value w.fw_metrics);
    ]

let snapshot_json ?meta ?fleet ~elapsed_s s =
  let meta_fields =
    match meta with None -> [] | Some m -> [ ("meta", Run_meta.to_json m) ]
  in
  (* schema stays ppmetrics/v1 for a single-process export; the fleet
     section (even an empty one: telemetry on, no worker yet) bumps it
     to /v2 — old readers that only look at "metrics" keep working *)
  let schema, fleet_fields =
    match fleet with
    | None -> ("ppmetrics/v1", [])
    | Some rows ->
      ("ppmetrics/v2", [ ("workers", Json.List (List.map fleet_worker_json rows)) ])
  in
  Json.Obj
    (("schema", Json.String schema)
     :: meta_fields
    @ [
        ("elapsed_s", Json.Float elapsed_s);
        ("metrics", Metrics.to_json_value s);
      ]
    @ fleet_fields)

(* -------------------------------------------------------- file output *)

let prom_path path =
  if Filename.check_suffix path ".json" then
    Filename.chop_suffix path ".json" ^ ".prom"
  else path ^ ".prom"

(* tmp + rename in the destination directory, so a concurrent reader
   (tail, a Prometheus scrape relay, ...) never sees a torn file *)
let atomic_write path contents =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
  Sys.rename tmp path

let write_now ?meta ~t0 ~path () =
  let s = Metrics.snapshot () in
  let elapsed_s = Clock.elapsed_s t0 in
  let identity = !identity_ref in
  let fleet = Option.map (fun f -> f ()) !fleet_ref in
  atomic_write path
    (Json.to_string (snapshot_json ?meta ?fleet ~elapsed_s s) ^ "\n");
  atomic_write (prom_path path)
    (prometheus_of_snapshot ?meta ~identity
       ~fleet:(Option.value ~default:[] fleet)
       s)

(* ---------------------------------------------------- periodic export *)

type exporter = {
  stop_requested : bool Atomic.t;
  writer : Thread.t;
  write : unit -> unit;
}

let current : exporter option ref = ref None

let stop () =
  match !current with
  | None -> ()
  | Some ex ->
    current := None;
    Atomic.set ex.stop_requested true;
    Thread.join ex.writer;
    ex.write ()

let detach () = current := None

let start ?meta ?(every_s = 5.0) ~path () =
  stop ();
  let every_s = Float.max 0.05 every_s in
  let stop_requested = Atomic.make false in
  let t0 = Clock.now_ns () in
  let write () =
    (* a full disk or a yanked directory must not kill the scan *)
    try write_now ?meta ~t0 ~path ()
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  write ();
  let writer =
    (* a systhread, NOT a domain: it shares domain 0 (near-free on
       single-core machines where a background domain costs 20-30% in
       cross-domain GC coordination), and — decisive for the
       distributed scan — OCaml 5 forbids Unix.fork once any domain
       was ever spawned, so the exporter must not be the reason a
       coordinator cannot fork its workers *)
    Thread.create
      (fun () ->
        let rec run () =
          (* sleep in short slices so [stop] returns promptly *)
          let deadline =
            Int64.add (Clock.now_ns ()) (Int64.of_float (every_s *. 1e9))
          in
          let rec nap () =
            if (not (Atomic.get stop_requested))
               && Int64.compare (Clock.now_ns ()) deadline < 0
            then begin
              Thread.delay 0.05;
              nap ()
            end
          in
          nap ();
          if not (Atomic.get stop_requested) then begin
            write ();
            run ()
          end
        in
        run ())
      ()
  in
  current := Some { stop_requested; writer; write }

let active () = !current <> None
