(* ------------------------------------------------- Prometheus text *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text escaping per the exposition format: backslash and newline
   only (quotes are not special outside label values) *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prometheus_of_snapshot ?meta s =
  let buf = Buffer.create 1024 in
  let help pname orig =
    Printf.bprintf buf "# HELP %s Registry metric %s.\n" pname
      (escape_help orig)
  in
  (match meta with
   | None -> ()
   | Some m ->
     Printf.bprintf buf
       "# HELP pp_build_info Build and run provenance (value is always 1).\n";
     Printf.bprintf buf "# TYPE pp_build_info gauge\n";
     Printf.bprintf buf
       "pp_build_info{git_rev=\"%s\",hostname=\"%s\",ocaml_version=\"%s\",jobs=\"%d\"} 1\n"
       (escape_label m.Run_meta.git_rev)
       (escape_label m.Run_meta.hostname)
       (escape_label m.Run_meta.ocaml_version)
       m.Run_meta.jobs);
  List.iter
    (fun (name, v) ->
      let pname = "pp_" ^ sanitize name in
      match v with
      | Metrics.Counter n ->
        help pname name;
        Printf.bprintf buf "# TYPE %s counter\n%s %d\n" pname pname n
      | Metrics.Gauge f ->
        help pname name;
        Printf.bprintf buf "# TYPE %s gauge\n%s %.17g\n" pname pname f
      | Metrics.Histogram { bounds; counts; sum; count } ->
        help pname name;
        Printf.bprintf buf "# TYPE %s histogram\n" pname;
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length bounds then Printf.sprintf "%.17g" bounds.(i)
              else "+Inf"
            in
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" pname le !cum)
          counts;
        Printf.bprintf buf "%s_sum %.17g\n" pname sum;
        Printf.bprintf buf "%s_count %d\n" pname count)
    s;
  Buffer.contents buf

(* ------------------------------------------------------ JSON snapshot *)

let snapshot_json ?meta ~elapsed_s s =
  let meta_fields =
    match meta with None -> [] | Some m -> [ ("meta", Run_meta.to_json m) ]
  in
  Json.Obj
    (("schema", Json.String "ppmetrics/v1")
     :: meta_fields
    @ [
        ("elapsed_s", Json.Float elapsed_s);
        ("metrics", Metrics.to_json_value s);
      ])

(* -------------------------------------------------------- file output *)

let prom_path path =
  if Filename.check_suffix path ".json" then
    Filename.chop_suffix path ".json" ^ ".prom"
  else path ^ ".prom"

(* tmp + rename in the destination directory, so a concurrent reader
   (tail, a Prometheus scrape relay, ...) never sees a torn file *)
let atomic_write path contents =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
  Sys.rename tmp path

let write_now ?meta ~t0 ~path () =
  let s = Metrics.snapshot () in
  let elapsed_s = Clock.elapsed_s t0 in
  atomic_write path (Json.to_string (snapshot_json ?meta ~elapsed_s s) ^ "\n");
  atomic_write (prom_path path) (prometheus_of_snapshot ?meta s)

(* ---------------------------------------------------- periodic export *)

type exporter = {
  stop_requested : bool Atomic.t;
  writer : unit Domain.t;
  write : unit -> unit;
}

let current : exporter option ref = ref None

let stop () =
  match !current with
  | None -> ()
  | Some ex ->
    current := None;
    Atomic.set ex.stop_requested true;
    Domain.join ex.writer;
    ex.write ()

let start ?meta ?(every_s = 5.0) ~path () =
  stop ();
  let every_s = Float.max 0.05 every_s in
  let stop_requested = Atomic.make false in
  let t0 = Clock.now_ns () in
  let write () =
    (* a full disk or a yanked directory must not kill the scan *)
    try write_now ?meta ~t0 ~path ()
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  write ();
  let writer =
    Domain.spawn (fun () ->
        let rec run () =
          (* sleep in short slices so [stop] returns promptly *)
          let deadline =
            Int64.add (Clock.now_ns ()) (Int64.of_float (every_s *. 1e9))
          in
          let rec nap () =
            if (not (Atomic.get stop_requested))
               && Int64.compare (Clock.now_ns ()) deadline < 0
            then begin
              Unix.sleepf 0.05;
              nap ()
            end
          in
          nap ();
          if not (Atomic.get stop_requested) then begin
            write ();
            run ()
          end
        in
        run ())
  in
  current := Some { stop_requested; writer; write }

let active () = !current <> None
