(** Live export of the metric registry, for watching or scraping an
    hours-long scan mid-flight.

    Two renderings are kept side by side at every write: an atomic
    (tmp + rename, never torn) JSON snapshot at [path] — schema
    [ppmetrics/v1] (or [ppmetrics/v2] when a {!set_fleet} provider is
    installed: same fields plus a ["workers"] section, one row per
    distributed worker) — and the Prometheus text format at
    {!prom_path}[ path], ready for a node-exporter-style textfile
    collector.

    The periodic writer runs on a {e systhread} (not a domain: threads
    neither perturb the worker pool on single-core machines nor — the
    property the distributed scan depends on — poison the process for
    [Unix.fork]) and sleeps between writes; recording must be enabled
    ({!Metrics.set_enabled}) for the snapshots to move. *)

type fleet_worker = {
  fw_worker : string;
  fw_host : string;
  fw_pid : int;
  fw_last_seen_s : float;  (** seconds since the last message arrived *)
  fw_offset_s : float;  (** estimated monotonic clock offset, worker to coordinator *)
  fw_chunks_done : int;
  fw_leased : int;
  fw_events : int;  (** event-log lines forwarded so far *)
  fw_metrics : Metrics.snapshot;  (** accumulated heartbeat deltas *)
}
(** One distributed worker's row in the fleet view. *)

val set_fleet : (unit -> fleet_worker list) option -> unit
(** Install (or clear) the fleet provider the writer calls at every
    snapshot. With a provider active the JSON schema is [ppmetrics/v2]
    with a ["workers"] array, and the Prometheus rendering gains
    [pp_fleet_*] families plus per-worker [pp_worker_<metric>] series
    labelled [{worker,host}]. The provider runs on the writer thread —
    it must be thread-safe (the coordinator's registry is
    mutex-guarded). *)

val set_identity : (string * string) list -> unit
(** Extra [pp_build_info] labels identifying this process in a scraped
    fleet — e.g. [[("role", "coordinator")]] or
    [[("role", "worker"); ("worker", name)]]. Empty (the default)
    leaves the exposition byte-identical to the pre-fleet format. *)

val identity : unit -> (string * string) list

val prometheus_of_snapshot :
  ?meta:Run_meta.t ->
  ?identity:(string * string) list ->
  ?fleet:fleet_worker list ->
  Metrics.snapshot ->
  string
(** Prometheus exposition text: names are prefixed [pp_] and
    sanitized ([.] becomes [_]), every family gets [# HELP] and
    [# TYPE] lines, histograms render cumulative [_bucket{le="..."}]
    series (ending in [le="+Inf"], equal to [_count]) plus
    [_sum]/[_count], and [meta] becomes a [pp_build_info] gauge with
    escaped label values ([identity] appends further labels to it).
    [fleet] rows append the [pp_fleet_*] and [pp_worker_*] families
    described at {!set_fleet}. *)

val snapshot_json :
  ?meta:Run_meta.t ->
  ?fleet:fleet_worker list ->
  elapsed_s:float ->
  Metrics.snapshot ->
  Json.t
(** [fleet = None] emits [ppmetrics/v1]; [Some rows] (even empty —
    telemetry on, nobody joined yet) emits [ppmetrics/v2] with the
    ["workers"] array. *)

val prom_path : string -> string
(** The sibling Prometheus file: [x.json] maps to [x.prom], anything
    else gets [".prom"] appended. *)

val write_now : ?meta:Run_meta.t -> t0:int64 -> path:string -> unit -> unit
(** One atomic write of both files; [t0] is the {!Clock.now_ns} origin
    for [elapsed_s]. Reads the current {!set_identity} labels and
    {!set_fleet} provider. *)

val start : ?meta:Run_meta.t -> ?every_s:float -> path:string -> unit -> unit
(** Write once now, then every [every_s] seconds (default 5, floored
    at 0.05) from a background systhread. Restarts any exporter
    already running. Write errors are swallowed: losing a snapshot
    must not kill the computation being observed. *)

val stop : unit -> unit
(** Stop the writer thread, join it, and write a final snapshot.
    No-op when nothing is running. *)

val detach : unit -> unit
(** Forget the running exporter without joining or writing — for a
    forked child, where the writer thread does not exist and the
    output path belongs to the parent. *)

val active : unit -> bool
