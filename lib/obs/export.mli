(** Live export of the metric registry, for watching or scraping an
    hours-long scan mid-flight.

    Two renderings are kept side by side at every write: an atomic
    (tmp + rename, never torn) JSON snapshot at [path] — schema
    [ppmetrics/v1]: optional {!Run_meta.t}, seconds since export
    start, and the {!Metrics.to_json_value} of the registry — and the
    Prometheus text format at {!prom_path}[ path], ready for a
    node-exporter-style textfile collector.

    The periodic writer runs on its own domain and sleeps between
    writes, so it does not perturb the worker pool; recording must be
    enabled ({!Metrics.set_enabled}) for the snapshots to move. *)

val prometheus_of_snapshot : ?meta:Run_meta.t -> Metrics.snapshot -> string
(** Prometheus exposition text: names are prefixed [pp_] and
    sanitized ([.] becomes [_]), every family gets [# HELP] and
    [# TYPE] lines, histograms render cumulative [_bucket{le="..."}]
    series (ending in [le="+Inf"], equal to [_count]) plus
    [_sum]/[_count], and [meta] becomes a [pp_build_info] gauge with
    escaped label values. *)

val snapshot_json : ?meta:Run_meta.t -> elapsed_s:float -> Metrics.snapshot -> Json.t

val prom_path : string -> string
(** The sibling Prometheus file: [x.json] maps to [x.prom], anything
    else gets [".prom"] appended. *)

val write_now : ?meta:Run_meta.t -> t0:int64 -> path:string -> unit -> unit
(** One atomic write of both files; [t0] is the {!Clock.now_ns} origin
    for [elapsed_s]. *)

val start : ?meta:Run_meta.t -> ?every_s:float -> path:string -> unit -> unit
(** Write once now, then every [every_s] seconds (default 5, floored
    at 0.05) from a fresh background domain. Restarts any exporter
    already running. Write errors are swallowed: losing a snapshot
    must not kill the computation being observed. *)

val stop : unit -> unit
(** Stop the writer domain, join it, and write a final snapshot.
    No-op when nothing is running. *)

val active : unit -> bool
