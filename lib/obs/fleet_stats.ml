(* Offline analytics over a *merged* ppevents log — the file a
   coordinator writes when workers stream their telemetry up: its own
   dist.* records interleaved with forwarded, offset-aligned,
   worker-tagged records. One pass groups everything by worker, then
   the existing Trace_stats machinery (fed synthetic spans built from
   worker.chunk records, one tid per worker) does the utilization
   timelines and chunk-normalised straggler detection. *)

type worker_row = {
  w_name : string;
  w_host : string;
  w_pid : int;
  w_chunks : int;  (** worker.chunk records attributed to it *)
  w_busy_s : float;
  w_util : float;
  w_timeline : float list;
  w_lease_count : int;  (** chunk_done records matched to a lease *)
  w_lease_median_s : float;
  w_lease_p99_s : float;
  w_lease_max_s : float;
  w_lost : int;  (** dist.worker_lost records naming it *)
}

type entry = { c_ts_s : float; c_ev : string; c_detail : string }

type report = {
  source : string;
  wall_s : float;
  total_events : int;
  skipped : int;
  rejoins : int;  (** dist.worker_rejoin records *)
  expired_leases : int;  (** dist.lease_expired records *)
  corrupt_frames : int;  (** frames tallied by dist.corrupt_frames *)
  reconnects : int;  (** worker-side dist.reconnect records *)
  restarts : int;  (** coordinator lives minus one (dist.recovery) *)
  workers : worker_row list;
  chronology : entry list;
  fanout : Trace_stats.chunk_group list;
}

let schema = "ppfleet-report/v1"

(* ------------------------------------------------------- tiny helpers *)

let jstr = function Json.String s -> Some s | _ -> None

let jnum = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let jint = function Json.Int i -> Some i | _ -> None

let fget fields k = List.assoc_opt k fields

let percentile sorted q =
  (* linear interpolation on an already-sorted array *)
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

(* ------------------------------------------------------------ parsing *)

type acc = {
  mutable order : string list;  (** first-seen order, reversed *)
  hosts : (string, string * int) Hashtbl.t;  (** worker -> host, pid *)
  chunks : (string, int) Hashtbl.t;
  lost : (string, int) Hashtbl.t;
  grants : (int, float * string) Hashtbl.t;  (** chunk -> grant ts, worker *)
  lease_lat : (string, float list ref) Hashtbl.t;
  mutable spans : Trace_stats.span list;
  mutable chron : entry list;
  mutable t_min : float;
  mutable t_max : float;
  mutable total : int;
  mutable skipped : int;
  mutable next_sid : int;
  mutable rejoins : int;
  mutable expired : int;
  mutable corrupt : int;
  mutable reconnects : int;
  mutable restarts : int;
}

let note_worker a name =
  if not (List.mem name a.order) then a.order <- name :: a.order

let worker_tid a name =
  (* tid = position in first-seen order; stable across the pass *)
  let rec idx i = function
    | [] -> 0
    | n :: _ when n = name -> i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 (List.rev a.order)

let bump tbl k n =
  Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let span_time a ts =
  if ts < a.t_min then a.t_min <- ts;
  if ts > a.t_max then a.t_max <- ts

(* The worker a record belongs to: forwarded records carry a top-level
   ["worker"] tag (added by the coordinator's realignment); the
   coordinator's own dist.* records name the subject worker inside
   [data]. *)
let record_worker fields data =
  match Option.bind (fget fields "worker") jstr with
  | Some w -> Some w
  | None -> Option.bind (Option.bind data (fun d -> fget d "worker")) jstr

let chron a ~ts ~ev detail =
  a.chron <- { c_ts_s = ts; c_ev = ev; c_detail = detail } :: a.chron

let ingest_record a fields =
  let data =
    match fget fields "data" with Some (Json.Obj d) -> Some d | _ -> None
  in
  let dfield k = Option.bind data (fun d -> fget d k) in
  let ts = Option.value ~default:0.0 (Option.bind (fget fields "ts_s") jnum) in
  span_time a ts;
  let ev =
    Option.value ~default:"" (Option.bind (fget fields "ev") jstr)
  in
  let worker = record_worker fields data in
  (match worker with Some w -> note_worker a w | None -> ());
  match ev with
  | "dist.worker_join" -> (
      match worker with
      | None -> ()
      | Some w ->
          let host =
            Option.value ~default:"" (Option.bind (dfield "host") jstr)
          in
          let pid = Option.value ~default:0 (Option.bind (dfield "pid") jint) in
          Hashtbl.replace a.hosts w (host, pid);
          chron a ~ts ~ev:"join"
            (if host = "" then w else Printf.sprintf "%s @ %s" w host))
  | "dist.lease" -> (
      match
        ( worker,
          Option.bind (dfield "lo_chunk") jint,
          Option.bind (dfield "hi_chunk") jint )
      with
      | Some w, Some lo, Some hi ->
          for chunk = lo to hi - 1 do
            Hashtbl.replace a.grants chunk (ts, w)
          done
      | _ -> ())
  | "dist.chunk_done" -> (
      match (worker, Option.bind (dfield "chunk") jint) with
      | Some w, Some chunk -> (
          match Hashtbl.find_opt a.grants chunk with
          | Some (t_grant, holder) when holder = w && ts >= t_grant ->
              let r =
                match Hashtbl.find_opt a.lease_lat w with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.replace a.lease_lat w r;
                    r
              in
              r := (ts -. t_grant) :: !r
          | _ -> ())
      | _ -> ())
  | "dist.worker_lost" ->
      (match worker with
      | Some w ->
          bump a.lost w 1;
          chron a ~ts ~ev:"lost"
            (Printf.sprintf "%s (%s, %d chunks leased)" w
               (Option.value ~default:"?" (Option.bind (dfield "reason") jstr))
               (Option.value ~default:0 (Option.bind (dfield "leased") jint)))
      | None -> ())
  | "dist.reassign" ->
      let n =
        match dfield "chunks" with
        | Some (Json.List l) -> List.length l
        | _ -> 0
      in
      chron a ~ts ~ev:"reassign"
        (Printf.sprintf "%d chunks from %s back to the pool" n
           (Option.value ~default:"?" worker))
  | "dist.stale_result" ->
      chron a ~ts ~ev:"stale"
        (Printf.sprintf "chunk %d from epoch %d dropped"
           (Option.value ~default:(-1) (Option.bind (dfield "chunk") jint))
           (Option.value ~default:(-1) (Option.bind (dfield "result_epoch") jint)))
  | "dist.worker_rejoin" ->
      a.rejoins <- a.rejoins + 1;
      chron a ~ts ~ev:"rejoin"
        (Printf.sprintf "%s back on a new connection, leases kept"
           (Option.value ~default:"?" worker))
  | "dist.lease_expired" ->
      a.expired <- a.expired + 1;
      chron a ~ts ~ev:"expired"
        (Printf.sprintf "%s silent on %d chunks, reclaimed (still registered)"
           (Option.value ~default:"?" worker)
           (Option.value ~default:0 (Option.bind (dfield "leased") jint)))
  | "dist.corrupt_frames" ->
      let n = Option.value ~default:0 (Option.bind (dfield "n") jint) in
      a.corrupt <- a.corrupt + n;
      chron a ~ts ~ev:"corrupt"
        (Printf.sprintf "%d mangled frame%s from %s skipped by CRC" n
           (if n = 1 then "" else "s")
           (Option.value ~default:"?" worker))
  | "dist.reconnect" ->
      a.reconnects <- a.reconnects + 1;
      chron a ~ts ~ev:"reconnect"
        (Printf.sprintf "%s redialing (attempt %d): %s"
           (Option.value ~default:"?" worker)
           (Option.value ~default:0 (Option.bind (dfield "attempt") jint))
           (Option.value ~default:"?" (Option.bind (dfield "error") jstr)))
  | "dist.recovery" ->
      let epoch = Option.value ~default:1 (Option.bind (dfield "epoch") jint) in
      a.restarts <- a.restarts + Stdlib.max 0 (epoch - 1);
      chron a ~ts ~ev:"recover"
        (Printf.sprintf
           "ledger adopted at epoch %d: %d/%d chunks done, %d stale leases \
            cleared"
           epoch
           (Option.value ~default:0 (Option.bind (dfield "done_chunks") jint))
           (Option.value ~default:0 (Option.bind (dfield "total_chunks") jint))
           (Option.value ~default:0
              (Option.bind (dfield "stale_leases_cleared") jint)))
  | "worker.chunk" -> (
      match (worker, Option.bind (dfield "chunk") jint) with
      | Some w, Some chunk ->
          bump a.chunks w 1;
          let dur =
            Option.value ~default:0.0 (Option.bind (dfield "dur_s") jnum)
          in
          span_time a (ts -. dur);
          a.next_sid <- a.next_sid + 1;
          let args =
            [ ("chunk", string_of_int chunk) ]
            @
            match (Option.bind (dfield "lo") jint, Option.bind (dfield "hi") jint)
            with
            | Some lo, Some hi ->
                [ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
            | _ -> []
          in
          a.spans <-
            {
              Trace_stats.name = "worker.chunk";
              cat = "fleet";
              (* worker.chunk is emitted when the chunk finishes, so
                 the span starts dur earlier *)
              ts_us = (ts -. dur) *. 1e6;
              dur_us = dur *. 1e6;
              tid = worker_tid a w;
              sid = a.next_sid;
              parent = 0;
              args;
            }
            :: a.spans
      | _ -> ())
  | _ -> ()

let analyse ?(source = "<fleet>") lines =
  let a =
    {
      order = [];
      hosts = Hashtbl.create 8;
      chunks = Hashtbl.create 8;
      lost = Hashtbl.create 8;
      grants = Hashtbl.create 256;
      lease_lat = Hashtbl.create 8;
      spans = [];
      chron = [];
      t_min = Float.infinity;
      t_max = Float.neg_infinity;
      total = 0;
      skipped = 0;
      next_sid = 0;
      rejoins = 0;
      expired = 0;
      corrupt = 0;
      reconnects = 0;
      restarts = 0;
    }
  in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Json.parse line with
        | Ok (Json.Obj fields) when not (List.mem_assoc "schema" fields) ->
            a.total <- a.total + 1;
            ingest_record a fields
        | Ok (Json.Obj _) -> () (* header *)
        | Ok _ | Error _ -> a.skipped <- a.skipped + 1)
    lines;
  let wall_s =
    if a.t_max > a.t_min then a.t_max -. a.t_min else 0.0
  in
  let trace = Trace_stats.analyse ~source (List.rev a.spans, 0) in
  let domain_of tid =
    List.find_opt (fun d -> d.Trace_stats.d_tid = tid) trace.Trace_stats.domains
  in
  let workers =
    List.mapi
      (fun tid name ->
        let host, pid =
          Option.value ~default:("", 0) (Hashtbl.find_opt a.hosts name)
        in
        let lat =
          match Hashtbl.find_opt a.lease_lat name with
          | Some r -> Array.of_list !r
          | None -> [||]
        in
        Array.sort compare lat;
        let d = domain_of tid in
        {
          w_name = name;
          w_host = host;
          w_pid = pid;
          w_chunks = Option.value ~default:0 (Hashtbl.find_opt a.chunks name);
          w_busy_s =
            (match d with Some d -> d.Trace_stats.d_busy_s | None -> 0.0);
          w_util = (match d with Some d -> d.Trace_stats.d_util | None -> 0.0);
          w_timeline =
            (match d with Some d -> d.Trace_stats.d_timeline | None -> []);
          w_lease_count = Array.length lat;
          w_lease_median_s = percentile lat 0.5;
          w_lease_p99_s = percentile lat 0.99;
          w_lease_max_s = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
          w_lost = Option.value ~default:0 (Hashtbl.find_opt a.lost name);
        })
      (List.rev a.order)
  in
  {
    source;
    wall_s;
    total_events = a.total;
    skipped = a.skipped;
    rejoins = a.rejoins;
    expired_leases = a.expired;
    corrupt_frames = a.corrupt;
    reconnects = a.reconnects;
    restarts = a.restarts;
    workers;
    chronology =
      List.sort (fun x y -> compare x.c_ts_s y.c_ts_s) (List.rev a.chron);
    fanout = trace.Trace_stats.chunk_groups;
  }

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Ok (analyse ~source:path (List.rev !lines))

(* ---------------------------------------------------------- rendering *)

let fmt_s v =
  if v = 0.0 then "-"
  else if v < 0.001 then Printf.sprintf "%.0fus" (v *. 1e6)
  else if v < 1.0 then Printf.sprintf "%.1fms" (v *. 1e3)
  else Printf.sprintf "%.2fs" v

let to_markdown r =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "# Fleet report — %s\n\n" r.source);
  Buffer.add_string b
    (Printf.sprintf "%d events over %s wall; %d workers%s\n\n" r.total_events
       (fmt_s r.wall_s) (List.length r.workers)
       (if r.skipped = 0 then ""
        else Printf.sprintf " (%d unparseable lines skipped)" r.skipped));
  if
    r.rejoins + r.expired_leases + r.corrupt_frames + r.reconnects + r.restarts
    > 0
  then
    Buffer.add_string b
      (Printf.sprintf
         "Recovery: %d coordinator restart%s, %d worker rejoin%s, %d \
          reconnect attempt%s, %d expired lease%s, %d corrupt frame%s \
          skipped.\n\n"
         r.restarts
         (if r.restarts = 1 then "" else "s")
         r.rejoins
         (if r.rejoins = 1 then "" else "s")
         r.reconnects
         (if r.reconnects = 1 then "" else "s")
         r.expired_leases
         (if r.expired_leases = 1 then "" else "s")
         r.corrupt_frames
         (if r.corrupt_frames = 1 then "" else "s"));
  if r.workers <> [] then begin
    Buffer.add_string b "## Workers\n\n";
    Buffer.add_string b
      "| worker | host | chunks | busy | util | timeline | lease med | \
       lease p99 | lease max | lost |\n";
    Buffer.add_string b "|---|---|---:|---:|---:|---|---:|---:|---:|---:|\n";
    List.iter
      (fun w ->
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %d | %s | %.0f%% | `%s` | %s | %s | %s | %d |\n"
             w.w_name
             (if w.w_host = "" then "-" else w.w_host)
             w.w_chunks (fmt_s w.w_busy_s) (w.w_util *. 100.0)
             (History.sparkline w.w_timeline)
             (fmt_s w.w_lease_median_s) (fmt_s w.w_lease_p99_s)
             (fmt_s w.w_lease_max_s) w.w_lost))
      r.workers;
    Buffer.add_char b '\n'
  end;
  if r.fanout <> [] then begin
    Buffer.add_string b "## Chunk fan-out\n\n";
    Buffer.add_string b
      "| section | count | median | p99 | max | straggler | per-task \
       straggler |\n";
    Buffer.add_string b "|---|---:|---:|---:|---:|---|---|\n";
    List.iter
      (fun g ->
        Buffer.add_string b
          (Printf.sprintf "| %s | %d | %s | %s | %s | %s | %s |\n"
             g.Trace_stats.g_section g.Trace_stats.g_count
             (fmt_s g.Trace_stats.g_median_s) (fmt_s g.Trace_stats.g_p99_s)
             (fmt_s g.Trace_stats.g_max_s)
             (if g.Trace_stats.g_straggler then "yes" else "no")
             (if not g.Trace_stats.g_sized then "unsized"
              else if g.Trace_stats.g_task_straggler then "yes"
              else "no")))
      r.fanout;
    Buffer.add_char b '\n'
  end;
  if r.chronology <> [] then begin
    Buffer.add_string b "## Chronology\n\n";
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf "- `%8.3fs` **%s** %s\n" e.c_ts_s e.c_ev e.c_detail))
      r.chronology;
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

let to_json r =
  let worker_json w =
    Json.Obj
      [
        ("worker", Json.String w.w_name);
        ("host", Json.String w.w_host);
        ("pid", Json.Int w.w_pid);
        ("chunks", Json.Int w.w_chunks);
        ("busy_s", Json.Float w.w_busy_s);
        ("util", Json.Float w.w_util);
        ("lease_count", Json.Int w.w_lease_count);
        ("lease_median_s", Json.Float w.w_lease_median_s);
        ("lease_p99_s", Json.Float w.w_lease_p99_s);
        ("lease_max_s", Json.Float w.w_lease_max_s);
        ("lost", Json.Int w.w_lost);
      ]
  in
  let entry_json e =
    Json.Obj
      [
        ("ts_s", Json.Float e.c_ts_s);
        ("ev", Json.String e.c_ev);
        ("detail", Json.String e.c_detail);
      ]
  in
  let group_json g =
    Json.Obj
      [
        ("section", Json.String g.Trace_stats.g_section);
        ("count", Json.Int g.Trace_stats.g_count);
        ("median_s", Json.Float g.Trace_stats.g_median_s);
        ("p99_s", Json.Float g.Trace_stats.g_p99_s);
        ("max_s", Json.Float g.Trace_stats.g_max_s);
        ("straggler", Json.Bool g.Trace_stats.g_straggler);
        ("sized", Json.Bool g.Trace_stats.g_sized);
        ("task_straggler", Json.Bool g.Trace_stats.g_task_straggler);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("source", Json.String r.source);
      ("wall_s", Json.Float r.wall_s);
      ("total_events", Json.Int r.total_events);
      ("skipped", Json.Int r.skipped);
      ("rejoins", Json.Int r.rejoins);
      ("expired_leases", Json.Int r.expired_leases);
      ("corrupt_frames", Json.Int r.corrupt_frames);
      ("reconnects", Json.Int r.reconnects);
      ("restarts", Json.Int r.restarts);
      ("workers", Json.List (List.map worker_json r.workers));
      ("chronology", Json.List (List.map entry_json r.chronology));
      ("fanout", Json.List (List.map group_json r.fanout));
    ]
