(** Offline fleet analytics over a {e merged} ppevents log — the file
    a telemetry-on coordinator writes: its own [dist.*] records
    interleaved with the workers' forwarded, offset-aligned,
    worker-tagged records ([worker.chunk] and friends).

    One pass attributes every record to a worker (the top-level
    [worker] tag on forwarded lines, or [data.worker] on [dist.*]
    records), builds synthetic spans from [worker.chunk] records (one
    {!Trace_stats} tid per worker, in first-seen order), and reuses
    {!Trace_stats.analyse} for the utilization timelines and the
    chunk-size-normalised straggler columns. On top of that it matches
    [dist.chunk_done] records back to the [dist.lease] that granted
    each chunk, giving a per-worker lease-latency distribution, and
    extracts a human chronology (joins, losses, reassignments, stale
    results).

    Deterministic for a given input; rendered by [ppreport fleet]. *)

type worker_row = {
  w_name : string;
  w_host : string;  (** from [dist.worker_join]; [""] when unknown *)
  w_pid : int;
  w_chunks : int;  (** [worker.chunk] records attributed to it *)
  w_busy_s : float;  (** summed chunk durations *)
  w_util : float;  (** busy / wall *)
  w_timeline : float list;  (** bucketed utilization in [0, 1] *)
  w_lease_count : int;  (** completions matched to their grant *)
  w_lease_median_s : float;  (** grant-to-completion latency *)
  w_lease_p99_s : float;
  w_lease_max_s : float;
  w_lost : int;  (** [dist.worker_lost] records naming it *)
}

type entry = { c_ts_s : float; c_ev : string; c_detail : string }
(** One chronology line: join / lost / reassign / stale / rejoin /
    expired / corrupt / reconnect / recover. *)

type report = {
  source : string;
  wall_s : float;  (** span of record timestamps *)
  total_events : int;  (** record lines ingested *)
  skipped : int;  (** unparseable lines (never fatal) *)
  rejoins : int;  (** [dist.worker_rejoin] — reconnects by name *)
  expired_leases : int;  (** [dist.lease_expired] — progress expiry *)
  corrupt_frames : int;  (** frames skipped by CRC, summed over
                             [dist.corrupt_frames] records *)
  reconnects : int;  (** worker-side [dist.reconnect] redials *)
  restarts : int;  (** coordinator lives beyond the first, from
                       [dist.recovery] epochs *)
  workers : worker_row list;  (** first-seen order *)
  chronology : entry list;  (** time-sorted *)
  fanout : Trace_stats.chunk_group list;
      (** straggler stats over the synthetic [worker.chunk] spans *)
}

val analyse : ?source:string -> string list -> report
(** Pure analysis of raw JSONL lines (header and blank lines are
    skipped silently; malformed lines are counted in [skipped]). *)

val load : string -> (report, string) result
(** Read and analyse a merged events file. *)

val to_markdown : report -> string
(** GitHub-flavoured markdown tables; timelines use
    {!History.sparkline}. Deterministic. *)

val to_json : report -> Json.t
(** Machine-readable rendering ([ppfleet-report/v1]). *)
