type section = { wall_s : float; metrics : Metrics.snapshot }

type run = {
  meta : Run_meta.t option;
  sections : (string * section) list;
  timings : (string * float) list;
}

let schema = "ppbench/v2"

(* --------------------------------------------------------------- JSON *)

let run_to_json r =
  let meta = match r.meta with None -> [] | Some m -> [ ("meta", Run_meta.to_json m) ] in
  Json.Obj
    (("schema", Json.String schema)
     :: meta
    @ [
        ( "sections",
          Json.List
            (List.map
               (fun (id, s) ->
                 Json.Obj
                   [
                     ("id", Json.String id);
                     ("wall_s", Json.Float s.wall_s);
                     ("metrics", Metrics.to_json_value s.metrics);
                   ])
               r.sections) );
        ( "timings",
          Json.List
            (List.map
               (fun (name, ns) ->
                 Json.Obj
                   [ ("name", Json.String name); ("ns_per_run", Json.Float ns) ])
               r.timings) );
      ])

let float_field fields k =
  match List.assoc_opt k fields with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int n) -> Ok (float_of_int n)
  | _ -> Error (Printf.sprintf "missing float field %S" k)

let section_of_json = function
  | Json.Obj fields ->
    let ( let* ) = Result.bind in
    let* id =
      match List.assoc_opt "id" fields with
      | Some (Json.String id) -> Ok id
      | _ -> Error "section: missing string field \"id\""
    in
    let* wall_s = float_field fields "wall_s" in
    let* metrics =
      match List.assoc_opt "metrics" fields with
      | Some j -> Metrics.of_json_value j
      | None -> Error (Printf.sprintf "section %s: missing \"metrics\"" id)
    in
    Ok (id, { wall_s; metrics })
  | _ -> Error "section must be a JSON object"

let timing_of_json = function
  | Json.Obj fields ->
    let ( let* ) = Result.bind in
    let* name =
      match List.assoc_opt "name" fields with
      | Some (Json.String s) -> Ok s
      | _ -> Error "timing: missing string field \"name\""
    in
    let* ns = float_field fields "ns_per_run" in
    Ok (name, ns)
  | _ -> Error "timing must be a JSON object"

let rec result_map f = function
  | [] -> Ok []
  | x :: rest ->
    (match f x with
     | Error _ as e -> e
     | Ok y ->
       (match result_map f rest with Ok ys -> Ok (y :: ys) | Error _ as e -> e))

let run_of_json = function
  | Json.Obj fields ->
    let ( let* ) = Result.bind in
    let* () =
      match List.assoc_opt "schema" fields with
      | Some (Json.String ("ppbench/v1" | "ppbench/v2")) -> Ok ()
      | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
      | _ -> Error "missing \"schema\" field"
    in
    let* meta =
      match List.assoc_opt "meta" fields with
      | None -> Ok None
      | Some j -> Result.map Option.some (Run_meta.of_json j)
    in
    let* sections =
      match List.assoc_opt "sections" fields with
      | Some (Json.List l) -> result_map section_of_json l
      | _ -> Error "missing \"sections\" list"
    in
    let* timings =
      match List.assoc_opt "timings" fields with
      | Some (Json.List l) -> result_map timing_of_json l
      | None -> Ok []
      | Some _ -> Error "\"timings\" must be a list"
    in
    Ok { meta; sections; timings }
  | _ -> Error "run must be a JSON object"

let parse_run s =
  match Json.parse s with Error e -> Error e | Ok j -> run_of_json j

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse_run contents
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------- ledger *)

let ledger_file dir = Filename.concat dir "runs.jsonl"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ~dir run =
  mkdir_p dir;
  let path = ledger_file dir in
  let oc =
    Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> Out_channel.close oc)
    (fun () ->
      Out_channel.output_string oc (Json.to_string (run_to_json run));
      Out_channel.output_char oc '\n')

let load_ledger dir =
  let path = ledger_file dir in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
    in
    (* A malformed line — typically the tail of an append truncated by a
       crash or a full disk — is skipped and counted, never fatal: the
       ledger's good runs must stay readable after a bad shutdown. *)
    let rec go acc skipped = function
      | [] -> Ok (List.rev acc, skipped)
      | line :: rest ->
        (match parse_run line with
         | Ok r -> go (r :: acc) skipped rest
         | Error _ -> go acc (skipped + 1) rest)
    in
    go [] 0 lines

(* ------------------------------------------------------------ medians *)

(* The lower median of actually-observed values: for counters this
   keeps the oracle an integer a run really produced, never an average
   of two. *)
let lower_median compare xs =
  match List.sort compare xs with
  | [] -> None
  | sorted -> List.nth_opt sorted ((List.length sorted - 1) / 2)

let median_v name runs_vs =
  match runs_vs with
  | [] -> None
  | Metrics.Counter _ :: _ ->
    let ints =
      List.filter_map (function Metrics.Counter n -> Some n | _ -> None) runs_vs
    in
    Option.map (fun n -> (name, Metrics.Counter n)) (lower_median Int.compare ints)
  | Metrics.Gauge _ :: _ ->
    let fs =
      List.filter_map (function Metrics.Gauge f -> Some f | _ -> None) runs_vs
    in
    Option.map (fun f -> (name, Metrics.Gauge f)) (lower_median Float.compare fs)
  | Metrics.Histogram { bounds; _ } :: _ ->
    (* elementwise lower medians over same-shaped histograms: exact
       when the runs agree, which is the deterministic case the
       regression oracle relies on *)
    let hs =
      List.filter_map
        (function
          | Metrics.Histogram { bounds = b; counts; sum; count } when b = bounds ->
            Some (counts, sum, count)
          | _ -> None)
        runs_vs
    in
    (match hs with
     | [] -> None
     | (first_counts, _, _) :: _ ->
       let nth_counts i = List.map (fun (counts, _, _) -> counts.(i)) hs in
       let counts =
         Array.init (Array.length first_counts) (fun i ->
             Option.value ~default:0 (lower_median Int.compare (nth_counts i)))
       in
       let sum =
         Option.value ~default:0.0
           (lower_median Float.compare (List.map (fun (_, s, _) -> s) hs))
       in
       let count =
         Option.value ~default:0
           (lower_median Int.compare (List.map (fun (_, _, c) -> c) hs))
       in
       Some (name, Metrics.Histogram { bounds; counts; sum; count }))

let median_run runs =
  match runs with
  | [] -> Error "median of an empty ledger"
  | _ ->
    let last = List.nth runs (List.length runs - 1) in
    let sections =
      List.map
        (fun (id, last_sec) ->
          let secs =
            List.filter_map (fun r -> List.assoc_opt id r.sections) runs
          in
          let wall_s =
            Option.value ~default:last_sec.wall_s
              (lower_median Float.compare (List.map (fun s -> s.wall_s) secs))
          in
          let metrics =
            List.filter_map
              (fun (name, _) ->
                median_v name
                  (List.filter_map
                     (fun s -> List.assoc_opt name s.metrics)
                     secs))
              last_sec.metrics
          in
          (id, { wall_s; metrics }))
        last.sections
    in
    let timings =
      List.map
        (fun (name, last_ns) ->
          let ns =
            Option.value ~default:last_ns
              (lower_median Float.compare
                 (List.filter_map (fun r -> List.assoc_opt name r.timings) runs))
          in
          (name, ns))
        last.timings
    in
    Ok { meta = None; sections; timings }

(* ---------------------------------------------------------- rendering *)

let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline xs =
  match xs with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min infinity xs in
    let hi = List.fold_left Float.max neg_infinity xs in
    let span = hi -. lo in
    String.concat ""
      (List.map
         (fun x ->
           let level =
             if span <= 0.0 then 3
             else
               Stdlib.min 7
                 (int_of_float (Float.of_int 8 *. ((x -. lo) /. span)))
           in
           spark_levels.(level))
         xs)

let series_of runs ~section ~metric =
  List.filter_map
    (fun r ->
      match List.assoc_opt section r.sections with
      | None -> None
      | Some s ->
        (match metric with
         | None -> Some s.wall_s
         | Some name ->
           (match List.assoc_opt name s.metrics with
            | Some (Metrics.Counter n) -> Some (float_of_int n)
            | Some (Metrics.Gauge f) -> Some f
            | Some (Metrics.Histogram { count; _ }) -> Some (float_of_int count)
            | None -> None)))
    runs

let stats xs =
  let med = Option.value ~default:nan (lower_median Float.compare xs) in
  let last = match List.rev xs with [] -> nan | x :: _ -> x in
  (med, last)

let drifting_counters runs id =
  let last_sec = List.rev runs |> List.find_map (fun r -> List.assoc_opt id r.sections) in
  match last_sec with
  | None -> ([], 0)
  | Some sec ->
    let counters =
      List.filter_map
        (fun (name, v) ->
          match v with Metrics.Counter _ -> Some name | _ -> None)
        sec.metrics
    in
    let drifting =
      List.filter
        (fun name ->
          let series = series_of runs ~section:id ~metric:(Some name) in
          match series with
          | [] | [ _ ] -> false
          | x :: rest -> List.exists (fun y -> y <> x) rest)
        counters
    in
    (drifting, List.length counters)

let render_history ?(markdown = false) ?sections runs =
  let buf = Buffer.create 1024 in
  let ids =
    let all =
      List.concat_map (fun r -> List.map fst r.sections) runs
      |> List.sort_uniq String.compare
    in
    match sections with
    | None -> all
    | Some wanted -> List.filter (fun id -> List.mem id wanted) all
  in
  let n_runs = List.length runs in
  if markdown then begin
    Buffer.add_string buf
      "| section | runs | wall_s (median) | trend | drifting counters |\n";
    Buffer.add_string buf "|---|---|---|---|---|\n";
    List.iter
      (fun id ->
        let walls = series_of runs ~section:id ~metric:None in
        let med, _ = stats walls in
        let drifting, total = drifting_counters runs id in
        Printf.bprintf buf "| %s | %d | %.3f | %s | %s |\n" id
          (List.length walls) med (sparkline walls)
          (if drifting = [] then Printf.sprintf "none of %d" total
           else String.concat ", " drifting))
      ids
  end
  else begin
    Printf.bprintf buf "ledger: %d run%s\n" n_runs (if n_runs = 1 then "" else "s");
    List.iter
      (fun id ->
        let walls = series_of runs ~section:id ~metric:None in
        let med, last = stats walls in
        let drifting, total = drifting_counters runs id in
        Printf.bprintf buf "== %s == (%d run%s)\n" id (List.length walls)
          (if List.length walls = 1 then "" else "s");
        Printf.bprintf buf "  wall_s  %s  median %.3f  last %.3f\n"
          (sparkline walls) med last;
        if total > 0 then
          if drifting = [] then
            Printf.bprintf buf "  counters: all %d deterministic across runs\n"
              total
          else
            List.iter
              (fun name ->
                let series = series_of runs ~section:id ~metric:(Some name) in
                Printf.bprintf buf "  counter %s DRIFTS  %s  last %.0f\n" name
                  (sparkline series)
                  (match List.rev series with [] -> nan | x :: _ -> x))
              drifting)
      ids
  end;
  Buffer.contents buf
