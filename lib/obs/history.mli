(** Run records ([ppbench/v2]) and the append-only JSONL ledger they
    accumulate in, plus the cross-run series helpers [ppreport] renders.

    A {!run} is what [bench/main.exe --json] writes: optional
    provenance {!Run_meta.t}, per-section wall-clock and metric diffs,
    and the bechamel timing table. The ledger is one run per line in
    [<dir>/runs.jsonl]; appending never rewrites earlier lines, so a
    crashed run cannot corrupt history. *)

type section = { wall_s : float; metrics : Metrics.snapshot }

type run = {
  meta : Run_meta.t option;  (** absent in legacy [ppbench/v1] files *)
  sections : (string * section) list;
  timings : (string * float) list;  (** bechamel name, ns/run *)
}

val schema : string
(** ["ppbench/v2"]. *)

val run_to_json : run -> Json.t
val run_of_json : Json.t -> (run, string) result
(** Accepts both [ppbench/v1] (no meta) and [ppbench/v2]. *)

val parse_run : string -> (run, string) result
val load_file : string -> (run, string) result

val ledger_file : string -> string
(** [ledger_file dir] is [dir ^ "/runs.jsonl"]. *)

val append : dir:string -> run -> unit
(** Append one JSONL line to [ledger_file dir], creating [dir] first. *)

val load_ledger : string -> (run list * int, string) result
(** All parseable runs in the ledger, oldest first, plus the number of
    malformed lines skipped. Blank lines are ignored silently; a
    truncated or corrupted line (e.g. from a crash mid-append) is
    skipped and counted, so one bad shutdown can never make the whole
    history unreadable. [Error] only when the file itself cannot be
    read. *)

val median_run : run list -> (run, string) result
(** A synthetic baseline: per section and metric, the lower median of
    the observed values (so counters stay integers a run really
    produced). Sections and metric names are taken from the newest
    run. [Error] on an empty list. *)

val sparkline : float list -> string
(** Eight-level Unicode block rendering, scaled to the series range. *)

val render_history : ?markdown:bool -> ?sections:string list -> run list -> string
(** Per-section wall-clock series with sparklines, plus which counters
    drift across runs (the deterministic ones are summarized). With
    [markdown], a table ready for EXPERIMENTS.md. *)
