type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ printer *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------- parser *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* the printer only emits \u for control characters, so a
                  one-byte decode covers everything we round-trip *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else fail "\\u escape beyond ASCII unsupported"
             | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad float literal"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad int literal"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items := parse_value () :: !items; more ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        more ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let fields = ref [ field () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields := field () :: !fields; more ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        more ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
