(** A minimal JSON tree, printer and parser — just enough for metric
    snapshots, trace events and the bench result file, so the
    observability layer needs no external JSON dependency.

    Printing and parsing round-trip: [parse (to_string j) = Ok j] for
    every tree free of non-finite floats (which JSON cannot represent;
    they are printed as [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats with integral values keep a
    [".0"] suffix so the integer/float distinction survives a
    round-trip; other floats print with 17 significant digits. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict parser for the subset [to_string] emits plus insignificant
    whitespace. Numbers containing [.], [e] or [E] parse as [Float],
    all others as [Int]. *)
