(* The enabled flag is a plain ref: mutations only ever read it, and a
   racy (stale) read merely records or skips one event around the
   moment the flag flips. Immediate values make the race benign under
   the OCaml memory model. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type counter = { cname : string; ccell : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

type histogram = {
  hname : string;
  bounds : float array;          (* strictly increasing upper bounds *)
  buckets : int Atomic.t array;  (* length (bounds) + 1; last = +inf *)
  hsum : float Atomic.t;
  hcount : int Atomic.t;
}

type metric =
  | Counter_m of counter
  | Gauge_m of gauge
  | Histogram_m of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered with a different kind" name)

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter_m c) -> c
      | Some _ -> kind_error name
      | None ->
        let c = { cname = name; ccell = Atomic.make 0 } in
        Hashtbl.add registry name (Counter_m c);
        c)

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge_m g) -> g
      | Some _ -> kind_error name
      | None ->
        let g = { gname = name; gcell = Atomic.make 0.0 } in
        Hashtbl.add registry name (Gauge_m g);
        g)

let default_bounds =
  [| 1.0; 10.0; 100.0; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let histogram ?(bounds = default_bounds) name =
  let increasing =
    Array.for_all Fun.id
      (Array.init
         (Stdlib.max 0 (Array.length bounds - 1))
         (fun i -> bounds.(i) < bounds.(i + 1)))
  in
  if not increasing then
    invalid_arg "Obs.Metrics.histogram: bounds must be strictly increasing";
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram_m h) -> if h.bounds = bounds then h else kind_error name
      | Some _ -> kind_error name
      | None ->
        let h =
          {
            hname = name;
            bounds = Array.copy bounds;
            buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            hsum = Atomic.make 0.0;
            hcount = Atomic.make 0;
          }
        in
        Hashtbl.add registry name (Histogram_m h);
        h)

let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c.ccell 1)
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.ccell n)
let set g x = if !enabled_flag then Atomic.set g.gcell x
let value c = Atomic.get c.ccell
let gauge_value g = Atomic.get g.gcell

(* fetch_and_add exists only for int atomics; floats take a CAS loop *)
let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_add_float cell x

let observe h x =
  if !enabled_flag then begin
    let n = Array.length h.bounds in
    let rec bucket i = if i >= n || x <= h.bounds.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add h.buckets.(bucket 0) 1);
    ignore (Atomic.fetch_and_add h.hcount 1);
    atomic_add_float h.hsum x
  end

(* ------------------------------------------------- process telemetry *)

(* GC and memory gauges, published lazily at snapshot time so the hot
   paths never touch them. They describe the environment rather than
   the computation, so the regression gate skips them by default (see
   Regress.default_ignores). *)
let g_minor = gauge "gc.minor_collections"
let g_major = gauge "gc.major_collections"
let g_heap = gauge "gc.heap_words"
let g_rss = gauge "process.max_rss_kb"

let max_rss_kb () =
  (* VmHWM ("high water mark") from /proc/self/status; 0.0 when the
     file is absent (non-Linux) or the line is missing *)
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | contents ->
    let lines = String.split_on_char '\n' contents in
    List.fold_left
      (fun acc line ->
        match String.index_opt line ':' with
        | Some i when String.sub line 0 i = "VmHWM" ->
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          let digits =
            String.to_seq rest
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          (match float_of_string_opt digits with Some f -> f | None -> acc)
        | _ -> acc)
      0.0 lines
  | exception Sys_error _ -> 0.0

let publish_process_stats () =
  if !enabled_flag then begin
    let st = Gc.quick_stat () in
    set g_minor (float_of_int st.Gc.minor_collections);
    set g_major (float_of_int st.Gc.major_collections);
    set g_heap (float_of_int st.Gc.heap_words);
    set g_rss (max_rss_kb ())
  end

(* ---------------------------------------------------------- snapshots *)

type v =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }

type snapshot = (string * v) list

let value_of = function
  | Counter_m c -> Counter (Atomic.get c.ccell)
  | Gauge_m g -> Gauge (Atomic.get g.gcell)
  | Histogram_m h ->
    Histogram
      {
        bounds = Array.copy h.bounds;
        counts = Array.map Atomic.get h.buckets;
        sum = Atomic.get h.hsum;
        count = Atomic.get h.hcount;
      }

let snapshot ?(process = true) () =
  if process then publish_process_stats ();
  with_lock (fun () ->
      Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------------------------------------------------------- quantiles *)

(* Linear interpolation within the bucket holding the target rank: the
   estimate is exact when observations are uniform inside each bucket
   and deterministic either way, so rendering quantiles into JSON keeps
   [of_json]/[to_json] byte-stable. *)
let quantile_of ~bounds ~counts ~count q =
  if count <= 0 then None
  else if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Obs.Metrics.quantile: q must be in [0,1]"
  else begin
    let target = q *. float_of_int count in
    let nb = Array.length bounds in
    let rec go i cum =
      if i >= Array.length counts then None
      else
        let c = counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then
          let lo =
            if i = 0 then Float.min 0.0 (if nb > 0 then bounds.(0) else 0.0)
            else bounds.(i - 1)
          in
          if i >= nb then Some lo (* the +inf bucket: report its lower edge *)
          else
            let hi = bounds.(i) in
            let frac =
              Float.max 0.0
                (Float.min 1.0 ((target -. float_of_int cum) /. float_of_int c))
            in
            Some (lo +. (frac *. (hi -. lo)))
        else go (i + 1) cum'
    in
    go 0 0
  end

let quantile v q =
  match v with
  | Histogram { bounds; counts; count; _ } -> quantile_of ~bounds ~counts ~count q
  | Counter _ | Gauge _ -> None

let diff ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      match (List.assoc_opt name before, v_after) with
      | None, v -> Some (name, v)
      | Some (Counter b), Counter a ->
        if a = b then None else Some (name, Counter (a - b))
      | Some (Gauge b), Gauge a -> if a = b then None else Some (name, Gauge a)
      | Some (Histogram b), Histogram a when b.bounds = a.bounds ->
        if a.count = b.count && a.sum = b.sum then None
        else
          Some
            ( name,
              Histogram
                {
                  bounds = a.bounds;
                  counts = Array.mapi (fun i c -> c - b.counts.(i)) a.counts;
                  sum = a.sum -. b.sum;
                  count = a.count - b.count;
                } )
      | Some _, v -> Some (name, v))
    after

(* The inverse of [diff] for telemetry accumulation: a coordinator
   folds each worker's heartbeat delta into its running view of that
   worker. Counters and histogram cells add; gauges (and any
   kind/bounds mismatch, e.g. a worker that re-registered a histogram
   with new bounds) take the delta's value — last writer wins, exactly
   as a live registry would behave. *)
let merge base delta =
  let tbl = Hashtbl.create (List.length base + List.length delta) in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) base;
  List.iter
    (fun (name, dv) ->
      let v =
        match (Hashtbl.find_opt tbl name, dv) with
        | Some (Counter b), Counter d -> Counter (b + d)
        | Some (Histogram b), Histogram d
          when b.bounds = d.bounds
               && Array.length b.counts = Array.length d.counts ->
          Histogram
            {
              bounds = b.bounds;
              counts = Array.mapi (fun i c -> c + d.counts.(i)) b.counts;
              sum = b.sum +. d.sum;
              count = b.count + d.count;
            }
        | _, v -> v
      in
      Hashtbl.replace tbl name v)
    delta;
  Hashtbl.fold (fun n v acc -> (n, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter_m c -> Atomic.set c.ccell 0
          | Gauge_m g -> Atomic.set g.gcell 0.0
          | Histogram_m h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.hsum 0.0;
            Atomic.set h.hcount 0)
        registry)

(* ---------------------------------------------------------- rendering *)

let to_text s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== metrics snapshot ==\n";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Printf.bprintf buf "%-44s counter   %d\n" name n
      | Gauge f -> Printf.bprintf buf "%-44s gauge     %g\n" name f
      | Histogram h ->
        Printf.bprintf buf "%-44s histogram count=%d sum=%g" name h.count h.sum;
        List.iter
          (fun (label, q) ->
            match quantile_of ~bounds:h.bounds ~counts:h.counts ~count:h.count q with
            | Some est -> Printf.bprintf buf " %s=%g" label est
            | None -> ())
          [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ];
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length h.bounds then
                Printf.bprintf buf " le%g=%d" h.bounds.(i) c
              else Printf.bprintf buf " inf=%d" c)
          h.counts;
        Buffer.add_char buf '\n')
    s;
  Buffer.contents buf

let json_of_v = function
  | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge f -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float f) ]
  | Histogram h ->
    (* quantiles are derived from bounds/counts, so [v_of_json] ignores
       them and re-rendering recomputes identical values — the
       JSON round-trip stays byte-stable *)
    let quantiles =
      if h.count <= 0 then []
      else
        [
          ( "quantiles",
            Json.Obj
              (List.filter_map
                 (fun (label, q) ->
                   Option.map
                     (fun est -> (label, Json.Float est))
                     (quantile_of ~bounds:h.bounds ~counts:h.counts
                        ~count:h.count q))
                 [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]) );
        ]
    in
    Json.Obj
      ([
         ("type", Json.String "histogram");
         ("bounds", Json.List (Array.to_list h.bounds |> List.map (fun b -> Json.Float b)));
         ("counts", Json.List (Array.to_list h.counts |> List.map (fun c -> Json.Int c)));
         ("sum", Json.Float h.sum);
         ("count", Json.Int h.count);
       ]
      @ quantiles)

let to_json_value s = Json.Obj (List.map (fun (n, v) -> (n, json_of_v v)) s)
let to_json s = Json.to_string (to_json_value s)

let v_of_json = function
  | Json.Obj fields ->
    let field k = List.assoc_opt k fields in
    (match field "type" with
     | Some (Json.String "counter") ->
       (match field "value" with Some (Json.Int n) -> Ok (Counter n) | _ -> Error "counter value")
     | Some (Json.String "gauge") ->
       (match field "value" with
        | Some (Json.Float f) -> Ok (Gauge f)
        | Some (Json.Int n) -> Ok (Gauge (float_of_int n))
        | _ -> Error "gauge value")
     | Some (Json.String "histogram") ->
       (match (field "bounds", field "counts", field "sum", field "count") with
        | Some (Json.List bs), Some (Json.List cs), Some sum, Some (Json.Int count) ->
          let float_of = function
            | Json.Float f -> Some f
            | Json.Int n -> Some (float_of_int n)
            | _ -> None
          in
          let int_of = function Json.Int n -> Some n | _ -> None in
          let bounds = List.map float_of bs and counts = List.map int_of cs in
          if List.for_all Option.is_some bounds
             && List.for_all Option.is_some counts
             && Option.is_some (float_of sum)
          then
            Ok
              (Histogram
                 {
                   bounds = Array.of_list (List.filter_map Fun.id bounds);
                   counts = Array.of_list (List.filter_map Fun.id counts);
                   sum = Option.get (float_of sum);
                   count;
                 })
          else Error "histogram fields"
        | _ -> Error "histogram fields")
     | _ -> Error "unknown metric type")
  | _ -> Error "metric must be an object"

let of_json_value = function
  | Json.Obj fields ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, jv) :: rest ->
        (match v_of_json jv with
         | Ok v -> go ((name, v) :: acc) rest
         | Error e -> Error (Printf.sprintf "%s: %s" name e))
    in
    go [] fields
  | _ -> Error "snapshot must be a JSON object"

let of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> of_json_value j
