(** A process-wide registry of named counters, gauges and histograms.

    Cells are backed by [Atomic.t] so ensemble domains can increment
    concurrently without locks; registration (by name, idempotent) takes
    a mutex but happens off the hot paths, typically at module
    initialisation.

    {b Off by default, near-free when disabled.} Every mutation is
    guarded by a single global flag: when recording is disabled (the
    default) [incr]/[add]/[set]/[observe] are a load and a branch, so
    instrumented hot loops pay no measurable cost, and instrumentation
    never perturbs simulation determinism — metrics touch no RNG
    stream.

    {b Naming scheme:} [<subsystem>.<metric>], lowercase with
    underscores, e.g. [sim.null_interactions], [backward.pruned],
    [ensemble.domain0.busy_s]. Durations are suffixed [_s] (seconds). *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Turn recording on or off (default: off). Flip before spawning
    worker domains; the flag is a plain word read racily by design. *)

val enabled : unit -> bool

(** {2 Registration}

    Re-registering a name returns the existing cell.
    @raise Invalid_argument when the name is already registered with a
    different kind (or, for histograms, different bounds). *)

val counter : string -> counter
val gauge : string -> gauge

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are strictly increasing bucket upper bounds (an implicit
    [+inf] bucket is appended). Default: powers of ten from 1 to 1e9. *)

(** {2 Mutation (guarded by the global flag)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val value : counter -> int
(** Current count, regardless of the flag. *)

val gauge_value : gauge -> float

(** {2 Snapshots} *)

type v =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }

type snapshot = (string * v) list
(** Sorted by name. *)

val snapshot : ?process:bool -> unit -> snapshot
(** [process] (default [true]) first publishes GC/memory telemetry —
    the gauges [gc.minor_collections], [gc.major_collections],
    [gc.heap_words] and [process.max_rss_kb] (peak RSS from
    [/proc/self/status], 0 off-Linux) — so long as recording is
    enabled. These describe the environment, not the computation:
    the regression gate skips them by default. *)

val quantile : v -> float -> float option
(** [quantile v q] estimates the [q]-quantile ([0 <= q <= 1]) of a
    [Histogram] by linear interpolation within the bucket holding the
    target rank (the first bucket's lower edge is [min 0 bounds.(0)];
    the overflow bucket reports its lower edge). [None] on empty
    histograms, counters and gauges.
    @raise Invalid_argument when [q] is outside [0,1]. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-name deltas of counters and histogram counts/sums; gauges keep
    the [after] value. Entries that did not change between the two
    snapshots are dropped, so a diff over a quiet subsystem is empty. *)

val merge : snapshot -> snapshot -> snapshot
(** [merge base delta] applies a {!diff}-shaped delta to [base]:
    counters and matching-bounds histograms add cell-wise, gauges (and
    any kind or bounds mismatch) take the delta's value, names only in
    one side pass through. Inverse of {!diff} over a growing registry:
    [merge before (diff ~before ~after) = after]. This is how a
    coordinator accumulates the per-heartbeat metric deltas each
    worker streams up into one fleet view. *)

val reset : unit -> unit
(** Zero every registered cell (kept registered). Test/bench helper. *)

(** {2 Rendering} *)

val to_text : snapshot -> string
(** Multi-line human-readable table, one metric per line. Histograms
    carry p50/p90/p99 estimates (see {!quantile}). *)

val to_json_value : snapshot -> Json.t
(** Histograms gain a derived ["quantiles"] object (p50/p90/p99) when
    non-empty; {!of_json} ignores it and re-rendering recomputes the
    identical values, so round-trips stay byte-stable. *)

val to_json : snapshot -> string

val of_json_value : Json.t -> (snapshot, string) result
(** As {!of_json}, from an already-parsed tree. *)

val of_json : string -> (snapshot, string) result
(** Inverse of [to_json]: [of_json (to_json s) = Ok s]. *)
