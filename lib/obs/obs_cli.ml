open Cmdliner

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Record engine counters (steps, prunes, expansions, per-domain \
                 utilization, ...) and dump the registry snapshot to stderr on \
                 exit. Stdout is unaffected.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write nested timing spans to $(docv) in the Chrome \
                 trace-event format (open in chrome://tracing or Perfetto).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Periodically export the live metric registry to $(docv): an \
                 atomic (tmp+rename) JSON snapshot, plus the Prometheus text \
                 format in the sibling .prom file. Implies metric recording; \
                 stdout stays byte-identical to an uninstrumented run.")

let metrics_every_arg =
  Arg.(value & opt float 5.0
       & info [ "metrics-every" ] ~docv:"SECONDS"
           ~doc:"Interval between live metric exports (with --metrics-out). \
                 Default 5s.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Force throttled progress lines on stderr (at most one per \
                 second). Default: automatic when stderr is a TTY.")

let no_progress_arg =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Suppress progress lines.")

let setup metrics trace metrics_out metrics_every progress no_progress =
  (* arm clean shutdown in every binary: outside a graceful region a
     SIGINT/SIGTERM exits through Stdlib.exit, running the at_exit
     flushes registered below (metrics export, trace file) *)
  Obs.Shutdown.install ();
  if metrics || metrics_out <> None then Obs.Metrics.set_enabled true;
  if metrics then
    at_exit (fun () ->
        prerr_string (Obs.Metrics.to_text (Obs.Metrics.snapshot ()));
        flush stderr);
  (match metrics_out with
   | Some path ->
     let meta = Obs.Run_meta.collect () in
     Obs.Export.start ~meta ~every_s:metrics_every ~path ();
     at_exit Obs.Export.stop
   | None -> ());
  (match trace with
   | Some file ->
     Obs.Trace.start_file file;
     at_exit (fun () -> ignore (Obs.Trace.stop ()))
   | None -> ());
  let tty = try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false in
  Obs.Progress.set_enabled ((progress || tty) && not no_progress)

let term =
  Term.(const setup $ metrics_arg $ trace_arg $ metrics_out_arg
        $ metrics_every_arg $ progress_arg $ no_progress_arg)
