open Cmdliner

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Record engine counters (steps, prunes, expansions, per-domain \
                 utilization, ...) and dump the registry snapshot to stderr on \
                 exit. Stdout is unaffected.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write nested timing spans to $(docv) in the Chrome \
                 trace-event format (open in chrome://tracing or Perfetto).")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Force throttled progress lines on stderr (at most one per \
                 second). Default: automatic when stderr is a TTY.")

let no_progress_arg =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Suppress progress lines.")

let setup metrics trace progress no_progress =
  if metrics then begin
    Obs.Metrics.set_enabled true;
    at_exit (fun () ->
        prerr_string (Obs.Metrics.to_text (Obs.Metrics.snapshot ()));
        flush stderr)
  end;
  (match trace with
   | Some file ->
     Obs.Trace.start_file file;
     at_exit (fun () -> ignore (Obs.Trace.stop ()))
   | None -> ());
  let tty = try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false in
  Obs.Progress.set_enabled ((progress || tty) && not no_progress)

let term =
  Term.(const setup $ metrics_arg $ trace_arg $ progress_arg $ no_progress_arg)
