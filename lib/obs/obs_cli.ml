open Cmdliner

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Record engine counters (steps, prunes, expansions, per-domain \
                 utilization, ...) and dump the registry snapshot to stderr on \
                 exit. Stdout is unaffected.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write nested timing spans to $(docv) in the Chrome \
                 trace-event format (open in chrome://tracing or Perfetto, \
                 or summarise with ppreport trace).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Periodically export the live metric registry to $(docv): an \
                 atomic (tmp+rename) JSON snapshot, plus the Prometheus text \
                 format in the sibling .prom file. Implies metric recording; \
                 stdout stays byte-identical to an uninstrumented run. Watch \
                 it live with pptop.")

let metrics_every_arg =
  Arg.(value & opt float 5.0
       & info [ "metrics-every" ] ~docv:"SECONDS"
           ~doc:"Interval between live metric exports (with --metrics-out). \
                 Default 5s.")

let events_arg =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Append structured JSONL events (ppevents/v1) to $(docv): \
                 progress lines, checkpoint snapshots, pool chunk \
                 lease/complete/retry and task errors, budget trips and \
                 shutdown signals, each with monotonic+UTC timestamps, \
                 severity, domain and span correlation ids.")

let profile_arg =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Sample every domain's span stack from a background domain \
                 and write folded stacks (flamegraph.pl / speedscope format) \
                 to $(docv) on exit.")

let profile_interval_arg =
  Arg.(value & opt float 0.001
       & info [ "profile-interval" ] ~docv:"SECONDS"
           ~doc:"Sampling interval for --profile. Default 1ms.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Force throttled progress lines on stderr (at most one per \
                 second). Default: automatic when stderr is a TTY.")

let no_progress_arg =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Suppress progress lines.")

let setup metrics trace metrics_out metrics_every events profile
    profile_interval progress no_progress =
  (* arm clean shutdown in every binary: outside a graceful region a
     SIGINT/SIGTERM exits through Stdlib.exit, running the at_exit
     flushes registered below (metrics export, trace file, event log) *)
  Obs.Shutdown.install ();
  if metrics || metrics_out <> None then Obs.Metrics.set_enabled true;
  if metrics then
    at_exit (fun () ->
        prerr_string (Obs.Metrics.to_text (Obs.Metrics.snapshot ()));
        flush stderr);
  (match metrics_out with
   | Some path ->
     let meta = Obs.Run_meta.collect () in
     Obs.Export.start ~meta ~every_s:metrics_every ~path ();
     at_exit Obs.Export.stop
   | None -> ());
  (match trace with
   | Some file ->
     Obs.Trace.start_file file;
     at_exit (fun () -> ignore (Obs.Trace.stop ()))
   | None -> ());
  (match events with
   | Some file ->
     Obs.Events.start_file file;
     (* at_exit runs LIFO: the signal record (if any) lands before the
        sink closes *)
     at_exit Obs.Events.stop;
     at_exit Obs.Shutdown.signal_event;
     Obs.Events.emit "run.start"
       ~data:[ ("argv", Obs.Json.String (String.concat " " (Array.to_list Sys.argv))) ]
   | None -> ());
  (match profile with
   | Some file ->
     Obs.Profile.start ~interval_s:profile_interval ~path:file ();
     at_exit Obs.Profile.stop
   | None -> ());
  if no_progress then Obs.Progress.set_enabled false
  else if progress then Obs.Progress.set_enabled true
  else Obs.Progress.set_auto ()

let term =
  Term.(const setup $ metrics_arg $ trace_arg $ metrics_out_arg
        $ metrics_every_arg $ events_arg $ profile_arg $ profile_interval_arg
        $ progress_arg $ no_progress_arg)
