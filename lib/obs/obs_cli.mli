(** Cmdliner glue shared by every binary: the [--metrics], [--trace],
    [--metrics-out FILE]/[--metrics-every S], [--events FILE],
    [--profile FILE]/[--profile-interval S] and
    [--progress]/[--no-progress] flags and their side effects. *)

val term : unit Cmdliner.Term.t
(** Splice [$ Obs_cli.term] as the last argument of a command's term
    (the handler takes a trailing [unit]). Evaluating it:

    - [--metrics]: enables {!Obs.Metrics} recording and registers an
      [at_exit] dump of the registry snapshot to stderr, so stdout
      stays byte-identical to an uninstrumented run;
    - [--metrics-out FILE]: enables recording and starts the
      {!Obs.Export} periodic writer — atomic JSON snapshots at FILE
      plus Prometheus text in the sibling [.prom] file, every
      [--metrics-every] seconds (default 5), finalised at exit — so a
      long scan can be watched ([pptop FILE]) or scraped mid-flight;
    - [--trace FILE]: starts a {!Obs.Trace} file sink, finalised at
      exit into a Chrome-trace-event JSON file (summarise with
      [ppreport trace FILE]);
    - [--events FILE]: starts the {!Obs.Events} JSONL log
      ([ppevents/v1]) — progress, checkpoint, pool, budget and
      shutdown records with span correlation ids; a
      ["shutdown.signal"] record is appended from an [at_exit] hook
      when a SIGINT/SIGTERM interrupted the run, before the sink
      closes;
    - [--profile FILE]: starts the {!Obs.Profile} sampler (interval
      [--profile-interval], default 1ms), writing folded stacks at
      exit;
    - progress lines ({!Obs.Progress}) default to automatic TTY
      detection; [--progress] forces them on, [--no-progress] off. *)
