type state = {
  stop_requested : bool Atomic.t;
  sampler : Thread.t;
  path : string;
  interval_s : float;
}

let current : state option ref = ref None
let active () = !current <> None

(* Written only by the sampler domain while it runs, read after the
   join — but exposed live (via the atomic counter) so tests can wait
   for samples to land without sleeping a fixed amount. *)
let samples_taken = Atomic.make 0
let samples () = Atomic.get samples_taken

let fold_stack dom names =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "domain";
  Buffer.add_string buf (string_of_int dom);
  List.iter
    (fun n ->
      Buffer.add_char buf ';';
      (* the folded format is line- and [" count"]-delimited; span
         names are dotted identifiers, but sanitise just in case *)
      String.iter
        (fun c -> Buffer.add_char buf (if c = ' ' || c = '\n' then '_' else c))
        n)
    names;
  Buffer.contents buf

let write_folded path counts =
  let entries = Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [] in
  let entries = List.sort compare entries in
  try
    Out_channel.with_open_bin path (fun oc ->
        List.iter
          (fun (k, n) -> Printf.fprintf oc "%s %d\n" k n)
          entries)
  with Sys_error _ -> ()

let stop () =
  match !current with
  | None -> ()
  | Some st ->
    current := None;
    Atomic.set st.stop_requested true;
    Thread.join st.sampler;
    Trace.untrack_stacks ()

let start ?(interval_s = 0.001) ~path () =
  stop ();
  let interval_s = Float.max 0.0002 interval_s in
  Trace.track_stacks ();
  Atomic.set samples_taken 0;
  let stop_requested = Atomic.make false in
  let sampler =
    (* A systhread, NOT a domain: it shares domain 0, so waking it is a
       runtime-lock handoff instead of the cross-domain GC coordination
       that makes a background domain cost 20-30% of a scan on
       single-core machines. While the main thread blocks (a pool
       driver joining its workers) the sampler runs at the requested
       rate; while the main thread is CPU-bound on the same core the
       thread tick throttles sampling to ~20 Hz — a coarser profile on
       hardware that could not afford more anyway. Worker domains are
       sampled through the shared stack registry either way. *)
    Thread.create
      (fun () ->
        let counts = Hashtbl.create 64 in
        while not (Atomic.get stop_requested) do
          Thread.delay interval_s;
          let stacks = Trace.sample_stacks () in
          if stacks <> [] then begin
            List.iter
              (fun (dom, names) ->
                let key = fold_stack dom names in
                let n =
                  match Hashtbl.find_opt counts key with
                  | Some n -> n
                  | None -> 0
                in
                Hashtbl.replace counts key (n + 1))
              stacks;
            Atomic.incr samples_taken
          end
        done;
        write_folded path counts)
      ()
  in
  current := Some { stop_requested; sampler; path; interval_s }
