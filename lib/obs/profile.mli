(** Low-overhead wall-clock sampling profiler over the {!Trace} span
    stacks.

    A background domain wakes every [interval_s] (default 1ms) and
    snapshots every domain's current span stack
    ({!Trace.sample_stacks} — one atomic load per domain, no
    stop-the-world). Aggregated counts are written on {!stop} in the
    folded-stack format consumed by
    {{:https://github.com/brendangregg/FlameGraph}flamegraph.pl} and
    {{:https://www.speedscope.app}speedscope}:

    {v
    domain0;bbsearch.scan;bbsearch.chunk 412
    domain5;bbsearch.chunk 389
    v}

    The cost model: when off, nothing (no domain, no per-span work);
    when on, each worker pays two atomic stores per span (the frame
    push/pop of {!Trace.track_stacks}) regardless of the sampling
    rate, and the sampler's own work is proportional to the number of
    live domains times the rate — bounded, and off the workers'
    critical path. Spans are coarse (chunks, phases), so this is a
    phase profiler, not an instruction profiler: it answers "which
    span names own the wall time", which is what flamegraphs of a
    search need. *)

val start : ?interval_s:float -> path:string -> unit -> unit
(** Start the sampler domain; samples accumulate in memory and the
    folded-stack file is written at {!stop} (atomically replacing
    [path]'s previous content). Replaces any running profiler.
    [interval_s] is clamped to at least 0.2ms. *)

val stop : unit -> unit
(** Stop sampling, join the sampler domain and write the folded-stack
    file. No-op when not running. *)

val active : unit -> bool

val samples : unit -> int
(** Number of sampling ticks so far that observed at least one
    non-empty stack (test helper: poll this instead of sleeping). *)
