let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type t = {
  label : string;
  out : out_channel;
  interval_ns : int64;
  started_ns : int64;
  mutable last_ns : int64;
  mutable printed : int;
}

let create ?(interval_s = 1.0) ?(out = stderr) label =
  let now = Clock.now_ns () in
  {
    label;
    out;
    interval_ns = Int64.of_float (interval_s *. 1e9);
    started_ns = now;
    last_ns = now;
    printed = 0;
  }

let elapsed_s t = Clock.elapsed_s t.started_ns
let lines t = t.printed

let print t msg =
  t.printed <- t.printed + 1;
  Printf.fprintf t.out "[%s %.1fs] %s\n%!" t.label (elapsed_s t) (msg ())

let tick t msg =
  if !enabled_flag then begin
    let now = Clock.now_ns () in
    if Int64.sub now t.last_ns >= t.interval_ns then begin
      t.last_ns <- now;
      print t msg
    end
  end

let finish t msg = if !enabled_flag && t.printed > 0 then print t msg
