(* Auto (the default) defers to a per-reporter TTY check: progress on
   an interactive stderr, silence when redirected — CI logs and piped
   output stay clean with no flag needed. [Forced] comes from
   --progress / --no-progress (or tests). *)
type mode = Auto | Forced of bool

let mode = ref Auto
let set_enabled b = mode := Forced b
let set_auto () = mode := Auto
let enabled () = match !mode with Forced b -> b | Auto -> false

type t = {
  label : string;
  out : out_channel;
  tty : bool;
  interval_ns : int64;
  started_ns : int64;
  mutable last_ns : int64;
  mutable printed : int;
}

let is_tty oc =
  try Unix.isatty (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ -> false

let create ?(interval_s = 1.0) ?(out = stderr) label =
  let now = Clock.now_ns () in
  {
    label;
    out;
    tty = is_tty out;
    interval_ns = Int64.of_float (interval_s *. 1e9);
    started_ns = now;
    last_ns = now;
    printed = 0;
  }

let elapsed_s t = Clock.elapsed_s t.started_ns
let lines t = t.printed
let active t = match !mode with Forced b -> b | Auto -> t.tty

let print t msg =
  let m = msg () in
  (* the event log gets every line that would print, so a redirected
     run instrumented with --events still records its progress *)
  if Events.enabled () then
    Events.emit "progress"
      ~data:
        [
          ("label", Json.String t.label);
          ("msg", Json.String m);
          ("elapsed_s", Json.Float (elapsed_s t));
        ];
  if active t then begin
    t.printed <- t.printed + 1;
    Printf.fprintf t.out "[%s %.1fs] %s\n%!" t.label (elapsed_s t) m
  end

let tick t msg =
  if active t || Events.enabled () then begin
    let now = Clock.now_ns () in
    if Int64.sub now t.last_ns >= t.interval_ns then begin
      t.last_ns <- now;
      print t msg
    end
  end

let finish t msg =
  if (active t || Events.enabled ()) && t.printed > 0 then print t msg
