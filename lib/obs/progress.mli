(** Throttled progress reporting for long-running searches.

    A reporter prints at most one line per [interval_s] (default 1s),
    so a tick can sit inside a tight search loop: when reporting is
    off a tick is a load and a branch, and when on but not yet due it
    is one monotonic-clock read. The message is a thunk, evaluated
    only when a line is actually produced.

    Lines go to stderr (configurable), keeping stdout byte-comparable
    across runs. The default mode is {e automatic}: a reporter prints
    only when its output channel is a TTY, so redirected and CI logs
    stay clean with no flag. [--progress] / [--no-progress] force the
    choice globally. A reporter stays silent until its first interval
    elapses, so fast runs produce no output at all.

    When the {!Events} log is active, every line that falls due is
    also recorded as a ["progress"] event — including on non-TTY runs
    where nothing is printed. *)

val set_enabled : bool -> unit
(** Force progress on or off globally, overriding TTY detection
    ([--progress] / [--no-progress]). *)

val set_auto : unit -> unit
(** Return to the default automatic mode (print iff the reporter's
    channel is a TTY, checked at {!create}). *)

val enabled : unit -> bool
(** [true] iff forced on. In automatic mode this is [false] even
    though TTY-backed reporters will print. *)

type t

val create : ?interval_s:float -> ?out:out_channel -> string -> t
(** [create label] makes a reporter printing
    ["[<label> <elapsed>s] <message>"] lines to [out] (default
    stderr). *)

val tick : t -> (unit -> string) -> unit
(** Print the message if reporting is active for this reporter and at
    least [interval_s] has elapsed since the last line (or since
    {!create}). *)

val finish : t -> (unit -> string) -> unit
(** Print a final line, but only when at least one [tick] line was
    printed — runs short enough to have stayed silent remain silent. *)

val lines : t -> int
(** Lines printed so far (test helper). *)

val elapsed_s : t -> float
(** Seconds since {!create}, on the monotonic clock. *)
