(** Throttled progress reporting for long-running searches.

    A reporter prints at most one line per [interval_s] (default 1s),
    so a tick can sit inside a tight search loop: when reporting is
    disabled (the default) a tick is a load and a branch, and when
    enabled but not yet due it is one monotonic-clock read. The message
    is a thunk, evaluated only when a line is actually printed.

    Lines go to stderr (configurable), keeping stdout byte-comparable
    across runs. A reporter stays silent until its first interval
    elapses, so fast runs produce no output at all. *)

val set_enabled : bool -> unit
(** Global switch, default off. The binaries enable it with
    [--progress] or automatically when stderr is a TTY. *)

val enabled : unit -> bool

type t

val create : ?interval_s:float -> ?out:out_channel -> string -> t
(** [create label] makes a reporter printing
    ["[<label> <elapsed>s] <message>"] lines to [out] (default
    stderr). *)

val tick : t -> (unit -> string) -> unit
(** Print the message if reporting is enabled and at least
    [interval_s] has elapsed since the last line (or since
    {!create}). *)

val finish : t -> (unit -> string) -> unit
(** Print a final line, but only when at least one [tick] line was
    printed — runs short enough to have stayed silent remain silent. *)

val lines : t -> int
(** Lines printed so far (test helper). *)

val elapsed_s : t -> float
(** Seconds since {!create}, on the monotonic clock. *)
