type tolerance = { rel : float; abs : float }

type config = {
  wall_tol : tolerance;
  gauge_tol : tolerance;
  ignore_prefixes : string list;
  ignore_infixes : string list;
  sections : string list option;
}

let default_ignore_prefixes = [ "gc."; "process." ]
let default_ignore_infixes = [ ".domain" ]

let default_config =
  {
    wall_tol = { rel = 0.75; abs = 0.05 };
    gauge_tol = { rel = 0.5; abs = 1.0 };
    ignore_prefixes = default_ignore_prefixes;
    ignore_infixes = default_ignore_infixes;
    sections = None;
  }

type severity = Fail | Info

type finding = {
  section : string;
  metric : string;
  severity : severity;
  detail : string;
}

type verdict = {
  findings : finding list;
  sections_checked : int;
  metrics_checked : int;
}

let failed v = List.exists (fun f -> f.severity = Fail) v.findings

(* ---------------------------------------------------------- helpers *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_infix ~infix s =
  let n = String.length s and m = String.length infix in
  let rec go i = i + m <= n && (String.sub s i m = infix || go (i + 1)) in
  m > 0 && go 0

let ignored cfg name =
  List.exists (fun prefix -> has_prefix ~prefix name) cfg.ignore_prefixes
  || List.exists (fun infix -> has_infix ~infix name) cfg.ignore_infixes

let within tol a b =
  Float.abs (a -. b) <= (tol.rel *. Float.max (Float.abs a) (Float.abs b)) +. tol.abs

(* time-like gauges (duration suffix [_s]) get the wall noise model;
   everything else the gauge one *)
let gauge_tolerance cfg name =
  let n = String.length name in
  if n >= 2 && String.sub name (n - 2) 2 = "_s" then cfg.wall_tol
  else cfg.gauge_tol

let kind_name = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

(* ------------------------------------------------------------- check *)

let check_metric cfg ~section name baseline candidate =
  match (baseline, candidate) with
  | Metrics.Counter b, Metrics.Counter c ->
    if b = c then []
    else
      [
        {
          section;
          metric = name;
          severity = Fail;
          detail =
            Printf.sprintf
              "counter drift: baseline %d, candidate %d (%+d) — deterministic \
               counters must match exactly"
              b c (c - b);
        };
      ]
  | Metrics.Gauge b, Metrics.Gauge c ->
    let tol = gauge_tolerance cfg name in
    if within tol b c then []
    else
      [
        {
          section;
          metric = name;
          severity = Fail;
          detail =
            Printf.sprintf
              "gauge drift: baseline %.6g, candidate %.6g exceeds tolerance \
               (rel %g, abs %g)"
              b c tol.rel tol.abs;
        };
      ]
  | Metrics.Histogram b, Metrics.Histogram c ->
    if b.bounds <> c.bounds then
      [
        {
          section;
          metric = name;
          severity = Fail;
          detail = "histogram bucket bounds differ";
        };
      ]
    else if b.counts <> c.counts || b.count <> c.count then
      [
        {
          section;
          metric = name;
          severity = Fail;
          detail =
            Printf.sprintf
              "histogram count drift: baseline count %d, candidate %d (bucket \
               counts are deterministic)"
              b.count c.count;
        };
      ]
    else if not (within cfg.gauge_tol b.sum c.sum) then
      [
        {
          section;
          metric = name;
          severity = Fail;
          detail =
            Printf.sprintf "histogram sum drift: baseline %.6g, candidate %.6g"
              b.sum c.sum;
        };
      ]
    else []
  | b, c ->
    [
      {
        section;
        metric = name;
        severity = Fail;
        detail =
          Printf.sprintf "kind mismatch: baseline %s, candidate %s"
            (kind_name b) (kind_name c);
      };
    ]

let check_section cfg id (b : History.section) (c : History.section) =
  let wall =
    if within cfg.wall_tol b.History.wall_s c.History.wall_s then []
    else
      [
        {
          section = id;
          metric = "wall_s";
          severity = Fail;
          detail =
            Printf.sprintf
              "wall-clock drift: baseline %.4gs, candidate %.4gs exceeds \
               tolerance (rel %g, abs %g)"
              b.History.wall_s c.History.wall_s cfg.wall_tol.rel
              cfg.wall_tol.abs;
        };
      ]
  in
  let names =
    List.map fst b.History.metrics @ List.map fst c.History.metrics
    |> List.sort_uniq String.compare
    |> List.filter (fun name -> not (ignored cfg name))
  in
  let metric_findings =
    List.concat_map
      (fun name ->
        match
          ( List.assoc_opt name b.History.metrics,
            List.assoc_opt name c.History.metrics )
        with
        | Some bv, Some cv -> check_metric cfg ~section:id name bv cv
        | Some bv, None ->
          [
            {
              section = id;
              metric = name;
              severity = Fail;
              detail =
                Printf.sprintf "missing in candidate (baseline %s present)"
                  (kind_name bv);
            };
          ]
        | None, Some cv ->
          [
            {
              section = id;
              metric = name;
              severity = Fail;
              detail =
                Printf.sprintf "new in candidate (%s absent from baseline)"
                  (kind_name cv);
            };
          ]
        | None, None -> [])
      names
  in
  (wall @ metric_findings, List.length names + 1)

let check ?(config = default_config) ~(baseline : History.run)
    ~(candidate : History.run) () =
  let cfg = config in
  let b_ids = List.map fst baseline.History.sections in
  let c_ids = List.map fst candidate.History.sections in
  let ids, presence_findings =
    match cfg.sections with
    | Some wanted ->
      let missing_of label ids =
        List.filter_map
          (fun id ->
            if List.mem id ids then None
            else
              Some
                {
                  section = id;
                  metric = "<section>";
                  severity = Fail;
                  detail = Printf.sprintf "section missing from %s run" label;
                })
          wanted
      in
      ( List.filter (fun id -> List.mem id b_ids && List.mem id c_ids) wanted,
        missing_of "baseline" b_ids @ missing_of "candidate" c_ids )
    | None ->
      let only label ids other =
        List.filter_map
          (fun id ->
            if List.mem id other then None
            else
              Some
                {
                  section = id;
                  metric = "<section>";
                  severity = Info;
                  detail = Printf.sprintf "only present in %s run; skipped" label;
                })
          ids
      in
      ( List.filter (fun id -> List.mem id c_ids) b_ids,
        only "baseline" b_ids c_ids @ only "candidate" c_ids b_ids )
  in
  let section_findings, metrics_checked =
    List.fold_left
      (fun (acc, n) id ->
        let b = List.assoc id baseline.History.sections in
        let c = List.assoc id candidate.History.sections in
        let findings, checked = check_section cfg id b c in
        (acc @ findings, n + checked))
      ([], 0) ids
  in
  let timing_findings =
    List.concat_map
      (fun (name, b_ns) ->
        match List.assoc_opt name candidate.History.timings with
        | None ->
          [
            {
              section = "timings";
              metric = name;
              severity = Info;
              detail = "missing in candidate; skipped";
            };
          ]
        | Some c_ns ->
          if within cfg.wall_tol b_ns c_ns then []
          else
            [
              {
                section = "timings";
                metric = name;
                severity = Fail;
                detail =
                  Printf.sprintf
                    "timing drift: baseline %.4g ns/run, candidate %.4g ns/run"
                    b_ns c_ns;
              };
            ])
      baseline.History.timings
  in
  let meta_findings =
    match (baseline.History.meta, candidate.History.meta) with
    | Some bm, Some cm
      when bm.Run_meta.hostname <> cm.Run_meta.hostname
           || bm.Run_meta.ocaml_version <> cm.Run_meta.ocaml_version ->
      [
        {
          section = "meta";
          metric = "environment";
          severity = Info;
          detail =
            Printf.sprintf "baseline from [%s], candidate from [%s]"
              (Run_meta.to_text bm) (Run_meta.to_text cm);
        };
      ]
    | _ -> []
  in
  {
    findings =
      presence_findings @ section_findings @ timing_findings @ meta_findings;
    sections_checked = List.length ids;
    metrics_checked;
  }

(* --------------------------------------------------------- rendering *)

let render_verdict v =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Printf.bprintf buf "%s %s %s: %s\n"
        (match f.severity with Fail -> "FAIL" | Info -> "info")
        f.section f.metric f.detail)
    v.findings;
  let fails =
    List.length (List.filter (fun f -> f.severity = Fail) v.findings)
  in
  Printf.bprintf buf
    "regression gate: %d section%s, %d metric%s checked — %s\n"
    v.sections_checked
    (if v.sections_checked = 1 then "" else "s")
    v.metrics_checked
    (if v.metrics_checked = 1 then "" else "s")
    (if fails = 0 then "PASS" else Printf.sprintf "%d FAILURE%s" fails (if fails = 1 then "" else "S"));
  Buffer.contents buf

(* [ppreport diff]: every drift, informationally — no tolerances, no
   ignores. Counters print exact deltas; everything else relative
   change. *)
let render_diff ~(baseline : History.run) ~(candidate : History.run) =
  let buf = Buffer.create 1024 in
  let pct b c =
    if b = 0.0 then if c = 0.0 then 0.0 else infinity
    else (c -. b) /. Float.abs b *. 100.0
  in
  let ids =
    List.filter
      (fun id -> List.mem_assoc id candidate.History.sections)
      (List.map fst baseline.History.sections)
  in
  List.iter
    (fun id ->
      let b = List.assoc id baseline.History.sections in
      let c = List.assoc id candidate.History.sections in
      Printf.bprintf buf "== %s ==\n" id;
      Printf.bprintf buf "  wall_s  %.6g -> %.6g  (%+.1f%%)\n" b.History.wall_s
        c.History.wall_s
        (pct b.History.wall_s c.History.wall_s);
      let names =
        List.map fst b.History.metrics @ List.map fst c.History.metrics
        |> List.sort_uniq String.compare
      in
      let drifted = ref 0 in
      List.iter
        (fun name ->
          match
            ( List.assoc_opt name b.History.metrics,
              List.assoc_opt name c.History.metrics )
          with
          | Some (Metrics.Counter bn), Some (Metrics.Counter cn) when bn <> cn ->
            incr drifted;
            Printf.bprintf buf "  %s  %d -> %d  (%+d)\n" name bn cn (cn - bn)
          | Some (Metrics.Gauge bg), Some (Metrics.Gauge cg) when bg <> cg ->
            incr drifted;
            Printf.bprintf buf "  %s  %.6g -> %.6g  (%+.1f%%)\n" name bg cg
              (pct bg cg)
          | ( Some (Metrics.Histogram { count = bn; counts = bc; _ }),
              Some (Metrics.Histogram { count = cn; counts = cc; _ }) )
            when bn <> cn || bc <> cc ->
            incr drifted;
            Printf.bprintf buf "  %s  count %d -> %d\n" name bn cn
          | Some _, None ->
            incr drifted;
            Printf.bprintf buf "  %s  removed\n" name
          | None, Some _ ->
            incr drifted;
            Printf.bprintf buf "  %s  added\n" name
          | _ -> ())
        names;
      if !drifted = 0 then Buffer.add_string buf "  (no metric drift)\n")
    ids;
  Buffer.contents buf
