(** The cross-run regression gate.

    The engine counters ([configgraph.*], [fair.*],
    [bbsearch.protocols_scanned], …) are deterministic and
    machine-independent, so they form an {e exact} correctness oracle:
    any drift between a baseline and a candidate run fails the check.
    Wall-clock, bechamel timings and gauges are noisy, so they get a
    configurable relative-tolerance model instead; environment-shaped
    metrics ([gc.*], [process.*], per-domain [*.domainN.*] cells) are
    skipped by default because they vary with the machine, not the
    code. *)

type tolerance = { rel : float; abs : float }
(** [a] and [b] agree when [|a - b| <= rel * max |a| |b| + abs]. *)

type config = {
  wall_tol : tolerance;      (** section wall-clock, timings, [*_s] gauges *)
  gauge_tol : tolerance;     (** other gauges and histogram sums *)
  ignore_prefixes : string list;
  ignore_infixes : string list;
  sections : string list option;
      (** restrict to these ids (each must exist in both runs);
          [None] checks the intersection *)
}

val default_ignore_prefixes : string list
(** [["gc."; "process."]]. *)

val default_ignore_infixes : string list
(** [[".domain"]] — per-domain pool cells depend on the job count. *)

val default_config : config
(** Wall tolerance [{rel = 0.75; abs = 0.05}], gauge tolerance
    [{rel = 0.5; abs = 1.0}], default ignores, all shared sections. *)

type severity = Fail | Info

type finding = {
  section : string;
  metric : string;
  severity : severity;
  detail : string;
}

type verdict = {
  findings : finding list;
  sections_checked : int;
  metrics_checked : int;
}

val failed : verdict -> bool
(** Any [Fail]-severity finding. *)

val check :
  ?config:config -> baseline:History.run -> candidate:History.run -> unit -> verdict

val render_verdict : verdict -> string
(** One ["FAIL <section> <metric>: <detail>"] line per finding plus a
    summary line. *)

val render_diff : baseline:History.run -> candidate:History.run -> string
(** The [ppreport diff] view: every wall-clock, counter, gauge and
    histogram drift between two runs, with exact counter deltas — no
    tolerances and no ignores, purely informational. *)
