type t = {
  git_rev : string;
  hostname : string;
  ocaml_version : string;
  jobs : int;
  timestamp : string;
}

(* ------------------------------------------------------------ collect *)

(* Resolve HEAD by reading .git directly (walking up from the cwd):
   no subprocess, works from the dune build sandbox, and degrades to
   "unknown" outside a checkout. *)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> Some (String.trim contents)
  | exception Sys_error _ -> None

let find_git_dir () =
  let rec go dir depth =
    if depth > 16 then None
    else
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else go parent (depth + 1)
  in
  match Sys.getcwd () with
  | cwd -> go cwd 0
  | exception Sys_error _ -> None

let resolve_ref git_dir ref_name =
  match read_file (Filename.concat git_dir ref_name) with
  | Some hash -> Some hash
  | None ->
    (* fall back to packed-refs: "<hash> <refname>" lines *)
    (match read_file (Filename.concat git_dir "packed-refs") with
     | None -> None
     | Some packed ->
       String.split_on_char '\n' packed
       |> List.find_map (fun line ->
              match String.index_opt line ' ' with
              | Some i
                when String.sub line (i + 1) (String.length line - i - 1)
                     = ref_name ->
                Some (String.sub line 0 i)
              | _ -> None))

let git_rev () =
  match find_git_dir () with
  | None -> "unknown"
  | Some git_dir ->
    (match read_file (Filename.concat git_dir "HEAD") with
     | None -> "unknown"
     | Some head ->
       let prefix = "ref: " in
       if String.length head > String.length prefix
          && String.sub head 0 (String.length prefix) = prefix
       then
         let ref_name =
           String.sub head (String.length prefix)
             (String.length head - String.length prefix)
         in
         Option.value ~default:"unknown" (resolve_ref git_dir ref_name)
       else head (* detached HEAD: the hash itself *))

let iso8601_utc t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let collect ?jobs () =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  {
    git_rev = git_rev ();
    hostname =
      (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    ocaml_version = Sys.ocaml_version;
    jobs;
    timestamp = iso8601_utc (Unix.gettimeofday ());
  }

(* --------------------------------------------------------------- JSON *)

let to_json m =
  Json.Obj
    [
      ("git_rev", Json.String m.git_rev);
      ("hostname", Json.String m.hostname);
      ("ocaml_version", Json.String m.ocaml_version);
      ("jobs", Json.Int m.jobs);
      ("timestamp", Json.String m.timestamp);
    ]

let of_json = function
  | Json.Obj fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "meta: missing string field %S" k)
    in
    let ( let* ) = Result.bind in
    let* git_rev = str "git_rev" in
    let* hostname = str "hostname" in
    let* ocaml_version = str "ocaml_version" in
    let* timestamp = str "timestamp" in
    (match List.assoc_opt "jobs" fields with
     | Some (Json.Int jobs) ->
       Ok { git_rev; hostname; ocaml_version; jobs; timestamp }
     | _ -> Error "meta: missing int field \"jobs\"")
  | _ -> Error "meta must be a JSON object"

let to_text m =
  Printf.sprintf "rev %s · %s · OCaml %s · %d jobs · %s" m.git_rev m.hostname
    m.ocaml_version m.jobs m.timestamp
