(** Provenance metadata attached to every recorded run (the ["meta"]
    block of the [ppbench/v2] schema): enough to tell {e which} code on
    {e which} machine produced a ledger entry, so cross-run comparisons
    can distinguish a real regression from a hardware change. *)

type t = {
  git_rev : string;      (** resolved HEAD, or ["unknown"] outside a checkout *)
  hostname : string;
  ocaml_version : string;
  jobs : int;            (** domain count the run was configured for *)
  timestamp : string;    (** ISO-8601 UTC, e.g. ["2026-08-05T12:00:00Z"] *)
}

val collect : ?jobs:int -> unit -> t
(** Snapshot the environment. [jobs] defaults to
    [Domain.recommended_domain_count ()]. The git revision is resolved
    by reading [.git] directly (walking up from the cwd, following
    [HEAD] through loose and packed refs) — no subprocess. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** [of_json (to_json m) = Ok m]. *)

val to_text : t -> string
(** One-line human-readable rendering. *)
