(* OS signal numbers (handlers receive OCaml's internal negative
   encodings; exit codes follow the 128+signum shell convention). *)
let os_number s =
  if s = Sys.sigint then 2 else if s = Sys.sigterm then 15 else 0

(* 0 = no signal yet; first receipt wins so the exit code names the
   signal that actually interrupted the run *)
let received = Atomic.make 0
let graceful_depth = Atomic.make 0

let requested () = Atomic.get received <> 0

let signal_name () =
  match Atomic.get received with
  | 2 -> Some "INT"
  | 15 -> Some "TERM"
  | 0 -> None
  | n -> Some (string_of_int n)

let exit_code () =
  match Atomic.get received with 0 -> None | n -> Some (128 + n)

let handle s =
  let os = os_number s in
  if not (Atomic.compare_and_set received 0 os) then
    (* second signal: the drain is taking too long (or is wedged) —
       exit now, keeping the first signal's code *)
    Stdlib.exit (128 + Atomic.get received)
  else if Atomic.get graceful_depth = 0 then Stdlib.exit (128 + os)

let installed = Atomic.make false

let install () =
  if not (Atomic.exchange installed true) then
    List.iter
      (fun s ->
        (* unsupported on some platforms (e.g. SIGTERM on Windows) *)
        try Sys.set_signal s (Sys.Signal_handle handle)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]

let with_graceful f =
  Atomic.incr graceful_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr graceful_depth) f

(* The event is emitted from observation points (exit paths, at_exit
   hooks), never from the signal handler itself: the event sink takes a
   mutex the interrupted code may already hold. Emitting is idempotent
   so both a graceful drain and the at_exit hook can call it. *)
let event_emitted = Atomic.make false

let signal_event () =
  match signal_name () with
  | None -> ()
  | Some name ->
    if
      Events.enabled ()
      && not (Atomic.exchange event_emitted true)
    then
      Events.emit ~severity:Warn "shutdown.signal"
        ~data:
          [
            ("signal", Json.String name);
            ( "exit_code",
              match exit_code () with Some c -> Json.Int c | None -> Json.Null
            );
          ]

let exit_if_requested () =
  match exit_code () with
  | Some c ->
    signal_event ();
    Stdlib.exit c
  | None -> ()
