(** Signal-driven clean shutdown.

    {!install} arms SIGINT/SIGTERM handlers. Outside a
    {!with_graceful} region the first signal exits immediately through
    [Stdlib.exit] — running the [at_exit] hooks that flush metrics
    exports, trace files and ledger lines — with the conventional
    [128 + signum] code (130 for SIGINT, 143 for SIGTERM). Inside a
    {!with_graceful} region the handler only records the signal;
    long-running drivers poll {!requested} as their cancellation token,
    drain (flushing checkpoints), and exit via {!exit_if_requested}. A
    second signal always exits immediately, as an escape hatch from a
    wedged drain. *)

val install : unit -> unit
(** Idempotent; safe to call from every binary's CLI setup. *)

val requested : unit -> bool
(** True once a signal has been received. The cancellation token:
    workers and scan drivers poll this between chunks. *)

val signal_name : unit -> string option
(** ["INT"] / ["TERM"] once received. *)

val exit_code : unit -> int option
(** [Some (128 + signum)] once received. *)

val with_graceful : (unit -> 'a) -> 'a
(** Run [f] with immediate-exit-on-signal suspended: signals received
    inside only set the flag {!requested} reports. Nests. *)

val exit_if_requested : unit -> unit
(** [Stdlib.exit] with the signal's code if one was received (runs the
    [at_exit] flushes); otherwise a no-op. Records the signal in the
    {!Events} log first (see {!signal_event}). *)

val signal_event : unit -> unit
(** Record a ["shutdown.signal"] event (severity [Warn]) if a signal
    has been received, at most once per process. Called from exit
    paths and [at_exit] hooks — never from the signal handler, whose
    interrupted code may hold the event sink's mutex. *)
