type event = {
  name : string;
  cat : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  sid : int;
  parent : int;
  args : (string * string) list;
}

type sink =
  | Memory of { mutable events : event list (* newest first *) }
  | File of { oc : out_channel; mutable first : bool }

type state = { sink : sink; t0 : int64; lock : Mutex.t }

(* Like the metrics flag, reads are racy by design: sinks are
   started/stopped from the main domain around the instrumented work,
   and a stale read skips or drops a span at the boundary. *)
let current : state option ref = ref None

let enabled () = match !current with None -> false | Some _ -> true

(* --------------------------------------------- per-domain span stacks *)

(* Span identity and nesting are tracked only while some consumer needs
   them (a trace sink for parent ids, the event log for correlation
   ids, the profiler for sampling): [tracking] is a refcount bumped by
   each consumer, and with it at zero a span costs exactly what it did
   before this machinery existed — one load and a branch. *)

type frame = { f_name : string; f_sid : int }

let tracking = Atomic.make 0
let stacks_tracked () = Atomic.get tracking > 0
let track_stacks () = Atomic.incr tracking

let untrack_stacks () =
  let rec go () =
    let n = Atomic.get tracking in
    if n > 0 && not (Atomic.compare_and_set tracking n (n - 1)) then go ()
  in
  go ()

(* Span ids are process-global and never reused; 0 means "no span". *)
let next_sid = Atomic.make 1

(* Each domain owns one stack cell, written only by that domain (a
   single [Atomic.set] per span entry/exit) and read by anyone through
   the registry — that cross-domain read path is what lets the profiler
   domain sample every stack without stopping the world. The DLS key
   caches a domain's own cell so the registry mutex is taken once per
   domain lifetime, not once per span. *)
let stacks_lock = Mutex.create ()
let stacks : (int, frame list Atomic.t) Hashtbl.t = Hashtbl.create 16

let stack_key =
  Domain.DLS.new_key (fun () ->
      let cell = Atomic.make [] in
      let id = (Domain.self () :> int) in
      Mutex.lock stacks_lock;
      Hashtbl.replace stacks id cell;
      Mutex.unlock stacks_lock;
      cell)

let current_span_id () =
  if stacks_tracked () then
    match Atomic.get (Domain.DLS.get stack_key) with
    | [] -> 0
    | f :: _ -> f.f_sid
  else 0

let sample_stacks () =
  Mutex.lock stacks_lock;
  let cells = Hashtbl.fold (fun id c acc -> (id, Atomic.get c) :: acc) stacks [] in
  Mutex.unlock stacks_lock;
  List.filter_map
    (fun (id, frames) ->
      match frames with
      | [] -> None
      | _ -> Some (id, List.rev_map (fun f -> f.f_name) frames))
    cells
  |> List.sort compare

(* ------------------------------------------------------------- events *)

let json_of_event ev =
  let us ns = Int64.to_float ns /. 1e3 in
  let fields =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String (if ev.cat = "" then "pp" else ev.cat));
      ("ph", Json.String (if Int64.equal ev.dur_ns (-1L) then "i" else "X"));
      ("ts", Json.Float (us ev.ts_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.tid);
    ]
    @ (if Int64.equal ev.dur_ns (-1L) then [ ("s", Json.String "t") ]
       else [ ("dur", Json.Float (us ev.dur_ns)) ])
    (* top-level extension fields; Chrome/Perfetto ignore unknown keys *)
    @ (if ev.sid <> 0 then [ ("sid", Json.Int ev.sid) ] else [])
    @ (if ev.parent <> 0 then [ ("parent", Json.Int ev.parent) ] else [])
    @
    match ev.args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ]
  in
  Json.to_string (Json.Obj fields)

let emit st ev =
  Mutex.lock st.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.lock)
    (fun () ->
      match st.sink with
      | Memory m -> m.events <- ev :: m.events
      | File f ->
        (try
           if f.first then f.first <- false else output_string f.oc ",\n";
           output_string f.oc (json_of_event ev)
         with Sys_error _ -> ()))

let finalise st =
  match st.sink with
  | Memory m -> List.rev m.events
  | File f ->
    (try
       (* a final instant event closes the array with valid JSON *)
       if f.first then f.first <- false else output_string f.oc ",\n";
       output_string f.oc
         (json_of_event
            { name = "trace.stop"; cat = "obs"; ts_ns = Int64.sub (Clock.now_ns ()) st.t0;
              dur_ns = -1L; tid = 0; sid = 0; parent = 0; args = [] });
       output_string f.oc "]\n";
       close_out f.oc
     with Sys_error _ -> ());
    []

let stop () =
  match !current with
  | None -> []
  | Some st ->
    current := None;
    untrack_stacks ();
    finalise st

let detach () =
  match !current with
  | None -> ()
  | Some _ ->
    current := None;
    untrack_stacks ()

let start sink =
  ignore (stop ());
  track_stacks ();
  current := Some { sink; t0 = Clock.now_ns (); lock = Mutex.create () }

let start_memory () = start (Memory { events = [] })

let start_file path =
  let oc = open_out path in
  output_string oc "[\n";
  start (File { oc; first = true })

let tid () = (Domain.self () :> int)

let with_span ?(cat = "") ?(args = []) name f =
  let st = !current in
  if st = None then
    if not (stacks_tracked ()) then f ()
    else begin
      (* tracking without a sink (the event log or profiler is on, no
         trace file): maintain the frame stack but skip the clock reads
         and event construction — nothing records the span itself *)
      let cell = Domain.DLS.get stack_key in
      let saved = Atomic.get cell in
      let sid = Atomic.fetch_and_add next_sid 1 in
      Atomic.set cell ({ f_name = name; f_sid = sid } :: saved);
      match f () with
      | r ->
        Atomic.set cell saved;
        r
      | exception e ->
        Atomic.set cell saved;
        raise e
    end
  else begin
    let t0 = Clock.now_ns () in
    (* push the frame (when tracked) before running [f], so the event
       log and profiler see the span from inside it *)
    let cell, sid, parent, saved =
      if stacks_tracked () then begin
        let cell = Domain.DLS.get stack_key in
        let saved = Atomic.get cell in
        let sid = Atomic.fetch_and_add next_sid 1 in
        Atomic.set cell ({ f_name = name; f_sid = sid } :: saved);
        ( Some cell,
          sid,
          (match saved with [] -> 0 | p :: _ -> p.f_sid),
          saved )
      end
      else (None, 0, 0, [])
    in
    Fun.protect
      ~finally:(fun () ->
        (match cell with Some c -> Atomic.set c saved | None -> ());
        match st with
        | None -> ()
        | Some st ->
          let t1 = Clock.now_ns () in
          emit st
            {
              name;
              cat;
              ts_ns = Int64.sub t0 st.t0;
              dur_ns = Int64.sub t1 t0;
              tid = tid ();
              sid;
              parent;
              args;
            })
      f
  end

let instant ?(cat = "") ?(args = []) name =
  match !current with
  | None -> ()
  | Some st ->
    emit st
      {
        name;
        cat;
        ts_ns = Int64.sub (Clock.now_ns ()) st.t0;
        dur_ns = -1L;
        tid = tid ();
        sid = 0;
        parent = current_span_id ();
        args;
      }
