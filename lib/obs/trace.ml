type event = {
  name : string;
  cat : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  args : (string * string) list;
}

type sink =
  | Memory of { mutable events : event list (* newest first *) }
  | File of { oc : out_channel; mutable first : bool }

type state = { sink : sink; t0 : int64; lock : Mutex.t }

(* Like the metrics flag, reads are racy by design: sinks are
   started/stopped from the main domain around the instrumented work,
   and a stale read skips or drops a span at the boundary. *)
let current : state option ref = ref None

let enabled () = match !current with None -> false | Some _ -> true

let json_of_event ev =
  let us ns = Int64.to_float ns /. 1e3 in
  let fields =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String (if ev.cat = "" then "pp" else ev.cat));
      ("ph", Json.String (if Int64.equal ev.dur_ns (-1L) then "i" else "X"));
      ("ts", Json.Float (us ev.ts_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.tid);
    ]
    @ (if Int64.equal ev.dur_ns (-1L) then [ ("s", Json.String "t") ]
       else [ ("dur", Json.Float (us ev.dur_ns)) ])
    @
    match ev.args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ]
  in
  Json.to_string (Json.Obj fields)

let emit st ev =
  Mutex.lock st.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.lock)
    (fun () ->
      match st.sink with
      | Memory m -> m.events <- ev :: m.events
      | File f ->
        (try
           if f.first then f.first <- false else output_string f.oc ",\n";
           output_string f.oc (json_of_event ev)
         with Sys_error _ -> ()))

let finalise st =
  match st.sink with
  | Memory m -> List.rev m.events
  | File f ->
    (try
       (* a final instant event closes the array with valid JSON *)
       if f.first then f.first <- false else output_string f.oc ",\n";
       output_string f.oc
         (json_of_event
            { name = "trace.stop"; cat = "obs"; ts_ns = Int64.sub (Clock.now_ns ()) st.t0;
              dur_ns = -1L; tid = 0; args = [] });
       output_string f.oc "]\n";
       close_out f.oc
     with Sys_error _ -> ());
    []

let stop () =
  match !current with
  | None -> []
  | Some st ->
    current := None;
    finalise st

let start sink =
  ignore (stop ());
  current := Some { sink; t0 = Clock.now_ns (); lock = Mutex.create () }

let start_memory () = start (Memory { events = [] })

let start_file path =
  let oc = open_out path in
  output_string oc "[\n";
  start (File { oc; first = true })

let tid () = (Domain.self () :> int)

let with_span ?(cat = "") ?(args = []) name f =
  match !current with
  | None -> f ()
  | Some st ->
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        emit st
          {
            name;
            cat;
            ts_ns = Int64.sub t0 st.t0;
            dur_ns = Int64.sub t1 t0;
            tid = tid ();
            args;
          })
      f

let instant ?(cat = "") ?(args = []) name =
  match !current with
  | None -> ()
  | Some st ->
    emit st
      {
        name;
        cat;
        ts_ns = Int64.sub (Clock.now_ns ()) st.t0;
        dur_ns = -1L;
        tid = tid ();
        args;
      }
