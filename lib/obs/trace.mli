(** Nested timing spans on the monotonic clock, exported in the Chrome
    trace-event format (load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}).

    Tracing is off by default: [with_span] with no active sink runs its
    thunk directly (one load and a branch). A file sink streams one
    complete event ([ph = "X"]) per line inside a JSON array — valid
    JSON once {!stop} writes the footer, and still loadable by Chrome
    if the process dies mid-trace. Threads of the trace are OCaml
    domains ([tid] = domain id), so an ensemble run shows per-domain
    utilization lanes. Writes are mutex-serialised; an in-memory sink
    is provided for tests. *)

type event = {
  name : string;
  cat : string;                     (** subsystem, e.g. ["verify"] *)
  ts_ns : int64;                    (** start, relative to the sink start *)
  dur_ns : int64;
  tid : int;                        (** domain id *)
  args : (string * string) list;
}

val enabled : unit -> bool

val start_file : string -> unit
(** Open [file] and start recording. Replaces any active sink
    (finalising it first). *)

val start_memory : unit -> unit
(** Start recording into memory (tests). *)

val stop : unit -> event list
(** Stop recording. For a file sink: writes the closing footer, closes
    the channel and returns [[]]. For a memory sink: returns the events
    in emission (i.e. span-completion) order. No-op, returning [[]],
    when nothing is active. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and emits a complete event when a
    sink is active — also on exceptional exit, so spans stay
    well-nested when e.g. a search raises on budget exhaustion. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (e.g. "new best protocol found"). *)
