(** Nested timing spans on the monotonic clock, exported in the Chrome
    trace-event format (load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}).

    Tracing is off by default: [with_span] with no active sink (and no
    stack consumer, see below) runs its thunk directly — one load and a
    branch. A file sink streams one complete event ([ph = "X"]) per
    line inside a JSON array — valid JSON once {!stop} writes the
    footer, and still loadable by Chrome if the process dies mid-trace.
    Threads of the trace are OCaml domains ([tid] = domain id), so an
    ensemble run shows per-domain utilization lanes. Writes are
    mutex-serialised; an in-memory sink is provided for tests.

    Every span carries a process-unique id ([sid]) and the id of its
    enclosing span ([parent], [0] at top level), emitted as top-level
    ["sid"]/["parent"] JSON fields (Chrome and Perfetto ignore unknown
    keys), so {!Trace_stats} can rebuild the span forest — self times,
    critical path — without guessing nesting from timestamps. The
    per-domain span stacks behind those ids are shared infrastructure:
    {!Events} reads {!current_span_id} for correlation ids and
    {!Profile} reads {!sample_stacks} from its sampler domain. *)

type event = {
  name : string;
  cat : string;                     (** subsystem, e.g. ["verify"] *)
  ts_ns : int64;                    (** start, relative to the sink start *)
  dur_ns : int64;
  tid : int;                        (** domain id *)
  sid : int;                        (** unique span id; [0] for instants *)
  parent : int;                     (** enclosing span id; [0] = root *)
  args : (string * string) list;
}

val enabled : unit -> bool

val start_file : string -> unit
(** Open [file] and start recording. Replaces any active sink
    (finalising it first). *)

val start_memory : unit -> unit
(** Start recording into memory (tests). *)

val stop : unit -> event list
(** Stop recording. For a file sink: writes the closing footer, closes
    the channel and returns [[]]. For a memory sink: returns the events
    in emission (i.e. span-completion) order. No-op, returning [[]],
    when nothing is active. *)

val detach : unit -> unit
(** Drop the active sink {e without} flushing or closing it. For forked
    children that inherit the parent's trace channel: the channel (its
    buffer included) still belongs to the parent, so the child must
    neither write spans to it nor flush the inherited buffer copy —
    either corrupts the parent's file. Call this first thing after
    [Unix.fork] in the child. No-op when nothing is active. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and emits a complete event when a
    sink is active — also on exceptional exit, so spans stay
    well-nested when e.g. a search raises on budget exhaustion. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (e.g. "new best protocol found"). *)

(** {2 Span-stack tracking}

    Consumers other than a trace sink (the event log, the profiler)
    can keep the per-domain span stacks alive without recording
    events. The refcount makes enabling idempotent per consumer. *)

val track_stacks : unit -> unit
(** Acquire a reference on span-stack tracking. While held, every
    [with_span] pushes/pops a frame (two [Atomic.set]s per span). *)

val untrack_stacks : unit -> unit
(** Release one reference (never below zero). *)

val stacks_tracked : unit -> bool

val current_span_id : unit -> int
(** The innermost open span of the calling domain, [0] when none (or
    when tracking is off). *)

val sample_stacks : unit -> (int * string list) list
(** Snapshot every domain's current span stack — [(domain id, span
    names outermost first)], domains with an empty stack omitted,
    sorted by domain id. Safe to call from any domain; each stack is
    read with a single atomic load, so a sample observes every stack
    at (close to) one instant without blocking the workers. *)
