type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  sid : int;
  parent : int;
  args : (string * string) list;
}

type phase = {
  ph_name : string;
  ph_count : int;
  ph_total_s : float;
  ph_self_s : float;
  ph_max_s : float;
}

type domain_row = {
  d_tid : int;
  d_spans : int;
  d_busy_s : float;
  d_util : float;
  d_timeline : float list;
}

type path_step = {
  p_name : string;
  p_tid : int;
  p_dur_s : float;
  p_self_s : float;
}

type chunk_group = {
  g_section : string;
  g_count : int;
  g_median_s : float;
  g_p99_s : float;
  g_max_s : float;
  g_straggler : bool;
  g_worst : (string * float) list;
  g_sized : bool;
  g_size_spread : float;
  g_task_median_s : float;
  g_task_max_s : float;
  g_task_straggler : bool;
}

type report = {
  source : string;
  wall_s : float;
  span_count : int;
  instant_count : int;
  domain_count : int;
  total_busy_s : float;
  parallelism : float;
  has_parents : bool;
  phases : phase list;
  domains : domain_row list;
  critical_path : path_step list;
  chunk_groups : chunk_group list;
}

(* ------------------------------------------------------------- parsing *)

let field name fields = List.assoc_opt name fields

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let int_field name fields =
  match field name fields with Some (Json.Int i) -> i | _ -> 0

let string_field name fields =
  match field name fields with Some (Json.String s) -> s | _ -> ""

let span_of_fields fields =
  let args =
    match field "args" fields with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with Json.String s -> Some (k, s) | _ -> None)
        kvs
    | _ -> []
  in
  {
    name = string_field "name" fields;
    cat = string_field "cat" fields;
    ts_us = Option.value ~default:0.0 (number (field "ts" fields));
    dur_us = Option.value ~default:0.0 (number (field "dur" fields));
    tid = int_field "tid" fields;
    sid = int_field "sid" fields;
    parent = int_field "parent" fields;
    args;
  }

let spans_of_json = function
  | Json.List items ->
    let spans = ref [] and instants = ref 0 in
    List.iter
      (fun item ->
        match item with
        | Json.Obj fields ->
          (match field "ph" fields with
           | Some (Json.String "X") -> spans := span_of_fields fields :: !spans
           | Some (Json.String "i") -> incr instants
           | _ -> ())
        | _ -> ())
      items;
    Ok (List.rev !spans, !instants)
  | _ -> Error "trace must be a JSON array of events"

(* ------------------------------------------------------------ analysis *)

let s_of_us us = us /. 1e6

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
  end

let section_of_name name =
  match String.rindex_opt name '.' with
  | Some i when Filename.check_suffix name ".chunk" -> String.sub name 0 i
  | _ -> name

(* pool chunk spans record their task range as args lo/hi, hi
   inclusive — the task count normalises chunk durations when the
   schedule makes chunk sizes uneven (guided self-scheduling) *)
let span_tasks sp =
  match (List.assoc_opt "lo" sp.args, List.assoc_opt "hi" sp.args) with
  | Some lo, Some hi ->
    (match (int_of_string_opt lo, int_of_string_opt hi) with
     | Some lo, Some hi when hi >= lo -> Some (hi - lo + 1)
     | _ -> None)
  | _ -> None

let chunk_label sp =
  match List.assoc_opt "chunk" sp.args with
  | Some c ->
    let round =
      match List.assoc_opt "round" sp.args with
      | Some r -> Printf.sprintf " (round %s)" r
      | None -> ""
    in
    "chunk " ^ c ^ round
  | None ->
    (match (List.assoc_opt "lo" sp.args, List.assoc_opt "hi" sp.args) with
     | Some lo, Some hi -> Printf.sprintf "tasks %s..%s" lo hi
     | _ -> if sp.sid <> 0 then Printf.sprintf "span %d" sp.sid else "span")

let analyse ?(source = "") ?(timeline_buckets = 48)
    ?(straggler_factor = 2.0) (spans, instant_count) =
  let span_count = List.length spans in
  let by_sid = Hashtbl.create (2 * span_count + 1) in
  List.iter (fun sp -> if sp.sid <> 0 then Hashtbl.replace by_sid sp.sid sp) spans;
  let has_parents = List.exists (fun sp -> sp.parent <> 0) spans in
  (* a span is a root when it has no enclosing span in this trace —
     parent 0, or a parent id the file does not contain (truncated
     trace); roots are what busy time and timelines are built from *)
  let is_root sp = sp.parent = 0 || not (Hashtbl.mem by_sid sp.parent) in
  let t_min, t_max =
    List.fold_left
      (fun (lo, hi) sp ->
        (Float.min lo sp.ts_us, Float.max hi (sp.ts_us +. sp.dur_us)))
      (infinity, 0.0) spans
  in
  let t_min = if span_count = 0 then 0.0 else t_min in
  let wall_us = Float.max 0.0 (t_max -. t_min) in
  (* self time: duration minus the duration of direct children, linked
     by parent ids (clamped at zero against clock jitter); without
     parent ids (a pre-v7 trace) self degrades to total *)
  let child_us = Hashtbl.create (2 * span_count + 1) in
  List.iter
    (fun sp ->
      if sp.parent <> 0 && Hashtbl.mem by_sid sp.parent then
        Hashtbl.replace child_us sp.parent
          (sp.dur_us
           +. Option.value ~default:0.0 (Hashtbl.find_opt child_us sp.parent)))
    spans;
  let self_us sp =
    Float.max 0.0
      (sp.dur_us -. Option.value ~default:0.0 (Hashtbl.find_opt child_us sp.sid))
  in
  (* phases: per span name *)
  let phase_tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let c, tot, slf, mx =
        Option.value ~default:(0, 0.0, 0.0, 0.0)
          (Hashtbl.find_opt phase_tbl sp.name)
      in
      Hashtbl.replace phase_tbl sp.name
        ( c + 1,
          tot +. sp.dur_us,
          slf +. self_us sp,
          Float.max mx sp.dur_us ))
    spans;
  let phases =
    Hashtbl.fold
      (fun name (c, tot, slf, mx) acc ->
        {
          ph_name = name;
          ph_count = c;
          ph_total_s = s_of_us tot;
          ph_self_s = s_of_us slf;
          ph_max_s = s_of_us mx;
        }
        :: acc)
      phase_tbl []
    |> List.sort (fun a b ->
           match compare b.ph_self_s a.ph_self_s with
           | 0 -> compare a.ph_name b.ph_name
           | c -> c)
  in
  (* domains: busy time and a bucketed utilization timeline over roots *)
  let dom_tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let spans_n, busy, buckets =
        match Hashtbl.find_opt dom_tbl sp.tid with
        | Some v -> v
        | None -> (0, 0.0, Array.make timeline_buckets 0.0)
      in
      let busy = if is_root sp then busy +. sp.dur_us else busy in
      if is_root sp && wall_us > 0.0 then begin
        let bw = wall_us /. float_of_int timeline_buckets in
        let b0 = (sp.ts_us -. t_min) /. bw in
        let b1 = (sp.ts_us +. sp.dur_us -. t_min) /. bw in
        let i0 = Stdlib.max 0 (int_of_float b0) in
        let i1 =
          Stdlib.min (timeline_buckets - 1) (int_of_float (Float.ceil b1) - 1)
        in
        for i = i0 to i1 do
          let lo = Float.max b0 (float_of_int i) in
          let hi = Float.min b1 (float_of_int (i + 1)) in
          if hi > lo then buckets.(i) <- Float.min 1.0 (buckets.(i) +. (hi -. lo))
        done
      end;
      Hashtbl.replace dom_tbl sp.tid (spans_n + 1, busy, buckets))
    spans;
  let wall_s = s_of_us wall_us in
  let domains =
    Hashtbl.fold
      (fun tid (spans_n, busy, buckets) acc ->
        {
          d_tid = tid;
          d_spans = spans_n;
          d_busy_s = s_of_us busy;
          d_util = (if wall_s > 0.0 then s_of_us busy /. wall_s else 0.0);
          d_timeline = Array.to_list buckets;
        }
        :: acc)
      dom_tbl []
    |> List.sort (fun a b -> compare a.d_tid b.d_tid)
  in
  let total_busy_s = List.fold_left (fun a d -> a +. d.d_busy_s) 0.0 domains in
  let parallelism = if wall_s > 0.0 then total_busy_s /. wall_s else 0.0 in
  (* critical path: the longest root, then repeatedly the longest
     direct child — the chain an optimiser has to shorten *)
  let children = Hashtbl.create (2 * span_count + 1) in
  List.iter
    (fun sp ->
      if not (is_root sp) then
        Hashtbl.replace children sp.parent
          (sp :: Option.value ~default:[] (Hashtbl.find_opt children sp.parent)))
    spans;
  let longest l =
    List.fold_left
      (fun best sp ->
        match best with
        | Some b when b.dur_us >= sp.dur_us -> best
        | _ -> Some sp)
      None l
  in
  let critical_path =
    let rec descend acc sp =
      let acc =
        {
          p_name = sp.name;
          p_tid = sp.tid;
          p_dur_s = s_of_us sp.dur_us;
          p_self_s = s_of_us (self_us sp);
        }
        :: acc
      in
      match
        longest (Option.value ~default:[] (Hashtbl.find_opt children sp.sid))
      with
      | Some child -> descend acc child
      | None -> List.rev acc
    in
    match longest (List.filter is_root spans) with
    | Some root -> descend [] root
    | None -> []
  in
  (* chunk groups: every span name occurring >= 4 times is a fan-out
     section; compare its duration distribution and name the worst
     members so a straggling pool chunk is one lookup away *)
  let groups =
    Hashtbl.fold
      (fun name (c, _, _, _) acc -> if c >= 4 then name :: acc else acc)
      phase_tbl []
    |> List.sort compare
  in
  let chunk_groups =
    List.map
      (fun name ->
        let members = List.filter (fun sp -> sp.name = name) spans in
        let durs =
          Array.of_list (List.sort compare (List.map (fun sp -> sp.dur_us) members))
        in
        let median = percentile durs 0.5 in
        let p99 = percentile durs 0.99 in
        let mx = durs.(Array.length durs - 1) in
        let worst =
          List.sort (fun a b -> compare b.dur_us a.dur_us) members
          |> List.filteri (fun i _ -> i < 3)
          |> List.map (fun sp -> (chunk_label sp, s_of_us sp.dur_us))
        in
        (* size-normalised view: with every member carrying a task
           range, per-task times separate "this chunk was bigger"
           (schedule imbalance, what the guided schedule removes) from
           "this chunk was slow" (a genuine straggler) *)
        let tasked = List.filter_map (fun sp -> Option.map (fun t -> (sp, t)) (span_tasks sp)) members in
        let sized = List.length tasked = List.length members && members <> [] in
        let size_spread, task_median, task_mx =
          if not sized then (1.0, 0.0, 0.0)
          else begin
            let counts = List.map snd tasked in
            let mn = List.fold_left Stdlib.min max_int counts in
            let mx_c = List.fold_left Stdlib.max 0 counts in
            let per_task =
              Array.of_list
                (List.sort compare
                   (List.map
                      (fun (sp, t) -> sp.dur_us /. float_of_int t)
                      tasked))
            in
            ( (if mn > 0 then float_of_int mx_c /. float_of_int mn else 1.0),
              percentile per_task 0.5,
              per_task.(Array.length per_task - 1) )
          end
        in
        {
          g_section = section_of_name name;
          g_count = List.length members;
          g_median_s = s_of_us median;
          g_p99_s = s_of_us p99;
          g_max_s = s_of_us mx;
          g_straggler = median > 0.0 && mx > straggler_factor *. median;
          g_worst = worst;
          g_sized = sized;
          g_size_spread = size_spread;
          g_task_median_s = s_of_us task_median;
          g_task_max_s = s_of_us task_mx;
          g_task_straggler =
            sized && task_median > 0.0 && task_mx > straggler_factor *. task_median;
        })
      groups
  in
  {
    source;
    wall_s;
    span_count;
    instant_count;
    domain_count = List.length domains;
    total_busy_s;
    parallelism;
    has_parents;
    phases;
    domains;
    critical_path;
    chunk_groups;
  }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Json.parse contents with
     | Error e -> Error (Printf.sprintf "%s: %s" path e)
     | Ok j ->
       Result.map
         (fun parsed -> analyse ~source:path parsed)
         (spans_of_json j))

(* ----------------------------------------------------------- rendering *)

let pct f = 100.0 *. f

let to_markdown r =
  let buf = Buffer.create 2048 in
  let self_sum = List.fold_left (fun a p -> a +. p.ph_self_s) 0.0 r.phases in
  Printf.bprintf buf "# Trace report%s\n\n"
    (if r.source = "" then "" else Printf.sprintf " — %s" r.source);
  Printf.bprintf buf
    "- wall %.3f s, %d spans (+%d instants) across %d domain%s\n" r.wall_s
    r.span_count r.instant_count r.domain_count
    (if r.domain_count = 1 then "" else "s");
  Printf.bprintf buf
    "- busy %.3f s -> parallelism %.2fx; per-phase self times sum to %.3f s (%.1f%% of busy)\n"
    r.total_busy_s r.parallelism self_sum
    (if r.total_busy_s > 0.0 then pct (self_sum /. r.total_busy_s) else 0.0);
  if not r.has_parents then
    Printf.bprintf buf
      "- no parent ids in this trace (pre-v7 recording): self time degrades to total time\n";
  Printf.bprintf buf "\n## Phases (by self time)\n\n";
  Printf.bprintf buf
    "| span | count | total s | self s | self %% | max s |\n|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun p ->
      Printf.bprintf buf "| %s | %d | %.3f | %.3f | %.1f | %.3f |\n" p.ph_name
        p.ph_count p.ph_total_s p.ph_self_s
        (if r.total_busy_s > 0.0 then pct (p.ph_self_s /. r.total_busy_s)
         else 0.0)
        p.ph_max_s)
    r.phases;
  if r.critical_path <> [] then begin
    Printf.bprintf buf "\n## Critical path\n\n";
    Printf.bprintf buf "| depth | span | domain | total s | self s |\n|---:|---|---:|---:|---:|\n";
    List.iteri
      (fun i st ->
        Printf.bprintf buf "| %d | %s | %d | %.3f | %.3f |\n" i st.p_name
          st.p_tid st.p_dur_s st.p_self_s)
      r.critical_path
  end;
  if r.domains <> [] then begin
    Printf.bprintf buf "\n## Domains\n\n";
    Printf.bprintf buf
      "| domain | spans | busy s | util %% | timeline |\n|---:|---:|---:|---:|---|\n";
    List.iter
      (fun d ->
        Printf.bprintf buf "| %d | %d | %.3f | %.1f | %s |\n" d.d_tid d.d_spans
          d.d_busy_s (pct d.d_util)
          (History.sparkline d.d_timeline))
      r.domains
  end;
  if r.chunk_groups <> [] then begin
    Printf.bprintf buf "\n## Fan-out sections (chunk duration spread)\n\n";
    Printf.bprintf buf
      "| section | chunks | median s | p99 s | max s | max/med | µs/task med | µs/task max | stragglers |\n|---|---:|---:|---:|---:|---:|---:|---:|---|\n";
    List.iter
      (fun g ->
        let ratio = if g.g_median_s > 0.0 then g.g_max_s /. g.g_median_s else 0.0 in
        let worst =
          if g.g_straggler || g.g_task_straggler then
            String.concat ", "
              (List.map
                 (fun (label, d) -> Printf.sprintf "%s (%.3f s)" label d)
                 g.g_worst)
          else "-"
        in
        let task_med, task_max =
          if g.g_sized then
            ( Printf.sprintf "%.2f" (g.g_task_median_s *. 1e6),
              Printf.sprintf "%.2f" (g.g_task_max_s *. 1e6) )
          else ("-", "-")
        in
        Printf.bprintf buf
          "| %s | %d | %.4f | %.4f | %.4f | %.1fx | %s | %s | %s |\n"
          g.g_section g.g_count g.g_median_s g.g_p99_s g.g_max_s ratio task_med
          task_max worst)
      r.chunk_groups;
    if List.exists (fun g -> g.g_size_spread > 1.0) r.chunk_groups then
      Printf.bprintf buf
        "\nChunk sizes vary (descending-size schedule): the µs/task columns \
         normalise the spread — a section whose raw max/med is high but \
         whose per-task times are flat is schedule imbalance (what a guided \
         schedule trims), not slow work.\n"
  end;
  Buffer.contents buf

let to_json r =
  let self_sum = List.fold_left (fun a p -> a +. p.ph_self_s) 0.0 r.phases in
  Json.Obj
    [
      ("schema", Json.String "pptrace-report/v1");
      ("source", Json.String r.source);
      ("wall_s", Json.Float r.wall_s);
      ("spans", Json.Int r.span_count);
      ("instants", Json.Int r.instant_count);
      ("domains", Json.Int r.domain_count);
      ("busy_s", Json.Float r.total_busy_s);
      ("self_sum_s", Json.Float self_sum);
      ("parallelism", Json.Float r.parallelism);
      ("has_parents", Json.Bool r.has_parents);
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("span", Json.String p.ph_name);
                   ("count", Json.Int p.ph_count);
                   ("total_s", Json.Float p.ph_total_s);
                   ("self_s", Json.Float p.ph_self_s);
                   ("max_s", Json.Float p.ph_max_s);
                 ])
             r.phases) );
      ( "critical_path",
        Json.List
          (List.map
             (fun st ->
               Json.Obj
                 [
                   ("span", Json.String st.p_name);
                   ("domain", Json.Int st.p_tid);
                   ("total_s", Json.Float st.p_dur_s);
                   ("self_s", Json.Float st.p_self_s);
                 ])
             r.critical_path) );
      ( "domain_rows",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("domain", Json.Int d.d_tid);
                   ("spans", Json.Int d.d_spans);
                   ("busy_s", Json.Float d.d_busy_s);
                   ("utilization", Json.Float d.d_util);
                   ( "timeline",
                     Json.List (List.map (fun f -> Json.Float f) d.d_timeline)
                   );
                 ])
             r.domains) );
      ( "fanout_sections",
        Json.List
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("section", Json.String g.g_section);
                   ("chunks", Json.Int g.g_count);
                   ("median_s", Json.Float g.g_median_s);
                   ("p99_s", Json.Float g.g_p99_s);
                   ("max_s", Json.Float g.g_max_s);
                   ("straggler", Json.Bool g.g_straggler);
                   ("sized", Json.Bool g.g_sized);
                   ("size_spread", Json.Float g.g_size_spread);
                   ("task_median_s", Json.Float g.g_task_median_s);
                   ("task_max_s", Json.Float g.g_task_max_s);
                   ("task_straggler", Json.Bool g.g_task_straggler);
                   ( "worst",
                     Json.List
                       (List.map
                          (fun (label, d) ->
                            Json.Obj
                              [
                                ("label", Json.String label);
                                ("dur_s", Json.Float d);
                              ])
                          g.g_worst) );
                 ])
             r.chunk_groups) );
    ]
