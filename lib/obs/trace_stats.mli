(** Offline analytics over a recorded {!Trace} file: per-phase
    self/total time, per-domain utilization timelines, the critical
    path through the span forest, and fan-out (pool chunk) straggler
    detection. This is the half of observability that *interprets* —
    [ppreport trace FILE] renders a report without loading the trace
    into an external viewer.

    Span nesting comes from the [sid]/[parent] ids recorded since
    trace v7; on an older trace (no parent ids) self time degrades to
    total time and the report says so. *)

type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  sid : int;
  parent : int;
  args : (string * string) list;
}

type phase = {
  ph_name : string;
  ph_count : int;
  ph_total_s : float;
  ph_self_s : float;   (** total minus direct children, clamped at 0 *)
  ph_max_s : float;
}

type domain_row = {
  d_tid : int;
  d_spans : int;
  d_busy_s : float;    (** sum of root-span durations on this domain *)
  d_util : float;      (** busy / wall *)
  d_timeline : float list;  (** bucketed utilization in [0,1] *)
}

type path_step = {
  p_name : string;
  p_tid : int;
  p_dur_s : float;
  p_self_s : float;
}

type chunk_group = {
  g_section : string;  (** span name, [".chunk"] suffix stripped *)
  g_count : int;
  g_median_s : float;
  g_p99_s : float;
  g_max_s : float;
  g_straggler : bool;  (** max exceeds [straggler_factor] x median *)
  g_worst : (string * float) list;
      (** up to 3 slowest members, labelled by chunk index (or task
          range) and duration *)
  g_sized : bool;
      (** every member span carries a task range ([lo]/[hi] args), so
          the per-task columns below are meaningful *)
  g_size_spread : float;
      (** largest member task count over smallest — 1.0 under a fixed
          chunk schedule, > 1 under guided self-scheduling *)
  g_task_median_s : float;  (** median of duration / task count *)
  g_task_max_s : float;
  g_task_straggler : bool;
      (** straggler {e after} normalising by chunk size: per-task max
          exceeds [straggler_factor] x per-task median. A section
          straggling raw but not per-task is schedule imbalance (big
          chunks), which a descending-size schedule trims; straggling
          per-task is genuinely slow work *)
}

type report = {
  source : string;
  wall_s : float;
  span_count : int;
  instant_count : int;
  domain_count : int;
  total_busy_s : float;
  parallelism : float;     (** busy / wall *)
  has_parents : bool;
  phases : phase list;     (** sorted by self time, descending *)
  domains : domain_row list;
  critical_path : path_step list;  (** outermost first *)
  chunk_groups : chunk_group list;
}

val spans_of_json : Json.t -> (span list * int, string) result
(** Extract complete spans (and count instants) from a Chrome
    trace-event array; unknown event kinds are skipped. *)

val analyse :
  ?source:string ->
  ?timeline_buckets:int ->
  ?straggler_factor:float ->
  span list * int ->
  report
(** Pure analysis (deterministic for a given trace). Defaults: 48
    timeline buckets, straggler factor 2.0. *)

val load : string -> (report, string) result
(** Read, parse and analyse a trace file. *)

val to_markdown : report -> string
(** Render the report as GitHub-flavoured markdown tables; timelines
    use the {!History.sparkline} glyphs. Deterministic. *)

val to_json : report -> Json.t
(** Machine-readable rendering ([pptrace-report/v1]) so CI can archive
    the report next to the bench ledger. *)
