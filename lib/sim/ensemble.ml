let m_batches = Obs.Metrics.counter "ensemble.batches"
let m_trials = Obs.Metrics.counter "ensemble.trials"
let m_trial_steps = Obs.Metrics.histogram "ensemble.trial_steps"

type backend =
  | Uniform of { max_steps : int; quiet_window : float }
  | Gillespie of { max_steps : int; quiet_time : float; rate : float }

let uniform ?(max_steps = 50_000_000) ?(quiet_window = 64.0) () =
  Uniform { max_steps; quiet_window }

let gillespie ?(max_steps = 5_000_000) ?(quiet_time = 64.0) ?(rate = 1.0) () =
  Gillespie { max_steps; quiet_time; rate }

type trial = {
  index : int;
  steps : int;
  parallel_time : float;
  output : bool option;
  converged : bool;
}

type t = {
  backend : backend;
  population : int;
  jobs : int;
  trials : trial array;
  wall : float;
}

(* Trial [i] runs on the [i]-th split of the master generator. The
   master is advanced sequentially up front, so the stream of trial [i]
   depends only on [seed] and [i] — not on the number of trials, the
   number of domains, or scheduling order. *)
let trial_rngs ~seed n =
  let master = Splitmix64.create seed in
  let a = Array.make n master in
  for i = 0 to n - 1 do
    a.(i) <- Splitmix64.split master
  done;
  a

let rng_for_trial ~seed i =
  if i < 0 then invalid_arg "Ensemble.rng_for_trial: i >= 0 required";
  let master = Splitmix64.create seed in
  let rec go k = if k = 0 then Splitmix64.split master
    else (ignore (Splitmix64.split master); go (k - 1))
  in
  go i

let run_trial backend p c0 ~population index rng =
  match backend with
  | Uniform { max_steps; quiet_window } ->
    let r = Simulator.run ~max_steps ~quiet_window ~rng p c0 in
    {
      index;
      steps = r.Simulator.steps;
      parallel_time = Simulator.parallel_time r ~population;
      output = r.Simulator.output;
      converged = r.Simulator.converged;
    }
  | Gillespie { max_steps; quiet_time; rate } ->
    let r = Gillespie.run ~max_steps ~quiet_time ~rate ~rng p c0 in
    {
      index;
      steps = r.Gillespie.steps;
      parallel_time = r.Gillespie.last_change;
      output = r.Gillespie.output;
      converged = r.Gillespie.converged;
    }

let run ?(jobs = 1) ?(chunk = 1) ?(backend = uniform ()) ?should_stop
    ?on_task_error ~seed ~trials p c0 =
  if trials < 0 then invalid_arg "Ensemble.run: trials >= 0 required";
  let population = Mset.size c0 in
  if trials > 0 && population < 2 then
    invalid_arg "Ensemble.run: population size >= 2 required";
  let rngs = trial_rngs ~seed trials in
  let results = Array.make trials None in
  (* Slot [i] of [results] is written by exactly one domain; the joins
     inside [Pool.run] publish the writes to this driver. *)
  let stats =
    Pool.run ~jobs ~chunk ~name:"ensemble" ?should_stop ?on_task_error
      ~tasks:trials (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          let t = run_trial backend p c0 ~population i rngs.(i) in
          Obs.Metrics.observe m_trial_steps (float_of_int t.steps);
          results.(i) <- Some t
        done)
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_batches;
    Obs.Metrics.add m_trials trials
  end;
  (* cancelled or skipped chunks leave empty slots; the completed
     trials keep their per-index streams, so they match the slots an
     uninterrupted run would produce at the same indices *)
  let trials =
    Array.to_list results |> List.filter_map Fun.id |> Array.of_list
  in
  { backend; population; jobs = stats.Pool.jobs; trials; wall = stats.Pool.wall_s }

let run_input ?jobs ?chunk ?backend ?should_stop ?on_task_error ~seed ~trials
    p v =
  run ?jobs ?chunk ?backend ?should_stop ?on_task_error ~seed ~trials p
    (Population.initial_config p v)

let parallel_times e =
  Array.to_list e.trials
  |> List.filter_map (fun t -> if t.converged then Some t.parallel_time else None)

let outputs e =
  Array.fold_left
    (fun (acc, rej, und) t ->
      match t.output with
      | Some true -> (acc + 1, rej, und)
      | Some false -> (acc, rej + 1, und)
      | None -> (acc, rej, und + 1))
    (0, 0, 0) e.trials

let majority_output e =
  let acc, rej, _ = outputs e in
  if acc > rej then Some true else if rej > acc then Some false else None

let summary e =
  let n = Array.length e.trials in
  let converged =
    Array.fold_left (fun c t -> if t.converged then c + 1 else c) 0 e.trials
  in
  let acc, rej, und = outputs e in
  let ts = parallel_times e in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "trials=%d converged=%d accept=%d reject=%d undecided=%d\n"
    n converged acc rej und;
  Printf.bprintf buf "parallel time: %s\n" (Stats.summary ts);
  List.iter
    (fun (lo, hi, count) ->
      let bar = String.make (Stdlib.min 50 count) '#' in
      Printf.bprintf buf "  [%10.2f, %10.2f) %4d %s\n" lo hi count bar)
    (Stats.histogram ~bins:8 ts);
  Buffer.contents buf
