let m_batches = Obs.Metrics.counter "ensemble.batches"
let m_trials = Obs.Metrics.counter "ensemble.trials"
let m_chunks = Obs.Metrics.counter "ensemble.chunks"
let m_trial_steps = Obs.Metrics.histogram "ensemble.trial_steps"
let g_utilization = Obs.Metrics.gauge "ensemble.utilization"

type backend =
  | Uniform of { max_steps : int; quiet_window : float }
  | Gillespie of { max_steps : int; quiet_time : float; rate : float }

let uniform ?(max_steps = 50_000_000) ?(quiet_window = 64.0) () =
  Uniform { max_steps; quiet_window }

let gillespie ?(max_steps = 5_000_000) ?(quiet_time = 64.0) ?(rate = 1.0) () =
  Gillespie { max_steps; quiet_time; rate }

type trial = {
  index : int;
  steps : int;
  parallel_time : float;
  output : bool option;
  converged : bool;
}

type t = {
  backend : backend;
  population : int;
  jobs : int;
  trials : trial array;
  wall : float;
}

(* Trial [i] runs on the [i]-th split of the master generator. The
   master is advanced sequentially up front, so the stream of trial [i]
   depends only on [seed] and [i] — not on the number of trials, the
   number of domains, or scheduling order. *)
let trial_rngs ~seed n =
  let master = Splitmix64.create seed in
  let a = Array.make n master in
  for i = 0 to n - 1 do
    a.(i) <- Splitmix64.split master
  done;
  a

let rng_for_trial ~seed i =
  if i < 0 then invalid_arg "Ensemble.rng_for_trial: i >= 0 required";
  let master = Splitmix64.create seed in
  let rec go k = if k = 0 then Splitmix64.split master
    else (ignore (Splitmix64.split master); go (k - 1))
  in
  go i

let run_trial backend p c0 ~population index rng =
  match backend with
  | Uniform { max_steps; quiet_window } ->
    let r = Simulator.run ~max_steps ~quiet_window ~rng p c0 in
    {
      index;
      steps = r.Simulator.steps;
      parallel_time = Simulator.parallel_time r ~population;
      output = r.Simulator.output;
      converged = r.Simulator.converged;
    }
  | Gillespie { max_steps; quiet_time; rate } ->
    let r = Gillespie.run ~max_steps ~quiet_time ~rate ~rng p c0 in
    {
      index;
      steps = r.Gillespie.steps;
      parallel_time = r.Gillespie.last_change;
      output = r.Gillespie.output;
      converged = r.Gillespie.converged;
    }

let run ?(jobs = 1) ?(chunk = 1) ?(backend = uniform ()) ~seed ~trials p c0 =
  if trials < 0 then invalid_arg "Ensemble.run: trials >= 0 required";
  let population = Mset.size c0 in
  if trials > 0 && population < 2 then
    invalid_arg "Ensemble.run: population size >= 2 required";
  let jobs = Stdlib.max 1 (Stdlib.min jobs trials) in
  let chunk = Stdlib.max 1 chunk in
  let rngs = trial_rngs ~seed trials in
  let results = Array.make trials None in
  let next = Atomic.make 0 in
  (* Per-worker accounting: slot [w] is written only by worker [w] and
     read after the joins, so plain arrays suffice. Busy time is the
     monotonic-clock time spent inside claimed chunks; the gap to the
     batch wall-clock is scheduling idleness. *)
  let chunks_claimed = Array.make jobs 0 in
  let busy_ns = Array.make jobs 0L in
  (* Dynamic self-scheduling off a shared counter: each domain claims
     [chunk] consecutive trial indices at a time, so long trials don't
     leave the other domains idle. Slot [i] of [results] is written by
     exactly one domain; [Domain.join] publishes the writes. *)
  let worker w =
    let rec loop () =
      let lo = Atomic.fetch_and_add next chunk in
      if lo < trials then begin
        let hi = Stdlib.min trials (lo + chunk) in
        let c0_ns = Obs.Clock.now_ns () in
        Obs.Trace.with_span "ensemble.chunk" ~cat:"sim"
          ~args:[ ("lo", string_of_int lo); ("hi", string_of_int (hi - 1)) ]
          (fun () ->
            for i = lo to hi - 1 do
              let t = run_trial backend p c0 ~population i rngs.(i) in
              Obs.Metrics.observe m_trial_steps (float_of_int t.steps);
              results.(i) <- Some t
            done);
        chunks_claimed.(w) <- chunks_claimed.(w) + 1;
        busy_ns.(w) <-
          Int64.add busy_ns.(w) (Int64.sub (Obs.Clock.now_ns ()) c0_ns);
        loop ()
      end
    in
    loop ()
  in
  let t0 = Obs.Clock.now_ns () in
  let pool = List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  worker 0;
  List.iter Domain.join pool;
  let wall = Obs.Clock.elapsed_s t0 in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_batches;
    Obs.Metrics.add m_trials trials;
    let total_busy = ref 0.0 in
    Array.iteri
      (fun w n ->
        let busy_s = Obs.Clock.ns_to_s busy_ns.(w) in
        total_busy := !total_busy +. busy_s;
        Obs.Metrics.add m_chunks n;
        Obs.Metrics.add
          (Obs.Metrics.counter (Printf.sprintf "ensemble.domain%d.chunks" w))
          n;
        Obs.Metrics.set
          (Obs.Metrics.gauge (Printf.sprintf "ensemble.domain%d.busy_s" w))
          busy_s)
      chunks_claimed;
    if wall > 0.0 then
      Obs.Metrics.set g_utilization (!total_busy /. (float_of_int jobs *. wall))
  end;
  let trials =
    Array.map (function Some t -> t | None -> assert false) results
  in
  { backend; population; jobs; trials; wall }

let run_input ?jobs ?chunk ?backend ~seed ~trials p v =
  run ?jobs ?chunk ?backend ~seed ~trials p (Population.initial_config p v)

let parallel_times e =
  Array.to_list e.trials
  |> List.filter_map (fun t -> if t.converged then Some t.parallel_time else None)

let outputs e =
  Array.fold_left
    (fun (acc, rej, und) t ->
      match t.output with
      | Some true -> (acc + 1, rej, und)
      | Some false -> (acc, rej + 1, und)
      | None -> (acc, rej, und + 1))
    (0, 0, 0) e.trials

let majority_output e =
  let acc, rej, _ = outputs e in
  if acc > rej then Some true else if rej > acc then Some false else None

let summary e =
  let n = Array.length e.trials in
  let converged =
    Array.fold_left (fun c t -> if t.converged then c + 1 else c) 0 e.trials
  in
  let acc, rej, und = outputs e in
  let ts = parallel_times e in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "trials=%d converged=%d accept=%d reject=%d undecided=%d\n"
    n converged acc rej und;
  Printf.bprintf buf "parallel time: %s\n" (Stats.summary ts);
  List.iter
    (fun (lo, hi, count) ->
      let bar = String.make (Stdlib.min 50 count) '#' in
      Printf.bprintf buf "  [%10.2f, %10.2f) %4d %s\n" lo hi count bar)
    (Stats.histogram ~bins:8 ts);
  Buffer.contents buf
