(** Multicore Monte-Carlo simulation ensembles.

    Fans a batch of independent simulation trials across a fixed pool of
    OCaml 5 [Domain]s, with a deterministic seeding model: trial [i]
    always runs on the [i]-th {!Splitmix64.split} of a master generator
    [Splitmix64.create seed]. Trials are handed to domains in chunks off
    a shared atomic counter (work-stealing style self-scheduling, so
    uneven trial lengths don't idle domains), and every per-trial record
    is written back into slot [i] of the result array. Consequently the
    per-trial records — and every aggregate derived from them — are
    bit-identical regardless of [jobs] and of how the OS schedules the
    domains; only {!t.wall} varies.

    Both simulation backends share the trial-spec interface: the
    discrete uniform-scheduler {!Simulator} and the continuous-time
    {!Gillespie} SSA. *)

type backend =
  | Uniform of { max_steps : int; quiet_window : float }
      (** {!Simulator.run}; parallel time is [last_change / population]. *)
  | Gillespie of { max_steps : int; quiet_time : float; rate : float }
      (** {!Gillespie.run}; parallel time is the continuous
          [last_change]. *)

val uniform : ?max_steps:int -> ?quiet_window:float -> unit -> backend
(** Defaults match {!Simulator.run}: [max_steps = 50_000_000],
    [quiet_window = 64.0]. *)

val gillespie : ?max_steps:int -> ?quiet_time:float -> ?rate:float -> unit -> backend
(** Defaults match {!Gillespie.run}: [max_steps = 5_000_000],
    [quiet_time = 64.0], [rate = 1.0]. *)

type trial = {
  index : int;           (** position in the batch; determines the RNG stream *)
  steps : int;           (** interactions (uniform) / reactions (SSA) executed *)
  parallel_time : float; (** convergence estimate of this trial *)
  output : bool option;  (** consensus output when the trial stopped *)
  converged : bool;
}

type t = {
  backend : backend;
  population : int;
  jobs : int;            (** domains actually used (clamped to the batch size) *)
  trials : trial array;  (** in trial-index order, independent of [jobs] *)
  wall : float;          (** wall-clock seconds for the whole batch; the one
                             field outside the determinism guarantee *)
}

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?backend:backend ->
  ?should_stop:(unit -> bool) ->
  ?on_task_error:Pool.error_policy ->
  seed:int ->
  trials:int ->
  Population.t ->
  Mset.t ->
  t
(** [run ~jobs ~seed ~trials p c0] executes [trials] independent
    simulations of [p] from [c0] on [jobs] domains (default 1; clamped
    to [max 1 (min jobs trials)]). [chunk] (default 1) is the number of
    consecutive trial indices a domain claims per scheduling round.
    [backend] defaults to [uniform ()].

    [should_stop] and [on_task_error] are forwarded to {!Pool.run}
    (cancellation token, chunk fault policy). When a batch is cancelled
    or chunks are skipped, [t.trials] holds only the completed trials —
    still in index order, each identical to the same-index trial of an
    uninterrupted run (per-index RNG streams).
    @raise Invalid_argument when [trials < 0], or when [trials > 0] and
    [Mset.size c0 < 2]. *)

val run_input :
  ?jobs:int ->
  ?chunk:int ->
  ?backend:backend ->
  ?should_stop:(unit -> bool) ->
  ?on_task_error:Pool.error_policy ->
  seed:int ->
  trials:int ->
  Population.t ->
  int array ->
  t
(** [run_input ... p v] runs the batch from [IC(v)]. *)

val rng_for_trial : seed:int -> int -> Splitmix64.t
(** The generator trial [i] of a [seed]-ensemble runs on: the [(i+1)]-th
    split of [Splitmix64.create seed]. Exposed so external code (and
    tests) can reproduce any single trial in isolation. *)

(** {2 Aggregates}

    All of these are pure functions of [t.trials] and therefore
    independent of [jobs]. *)

val parallel_times : t -> float list
(** Convergence estimates of the converged trials, in trial order. *)

val outputs : t -> int * int * int
(** [(accept, reject, undecided)] over all trials. *)

val majority_output : t -> bool option
(** [Some b] when strictly more trials output [b] than [not b];
    [None] on a tie (including the all-undecided ensemble). *)

val summary : t -> string
(** A multi-line aggregate: verdict counts, {!Stats.summary} of the
    parallel times, and a {!Stats.histogram} of their distribution.
    Byte-identical across [jobs] for a fixed seed/spec ([wall] and
    [jobs] are deliberately excluded). *)
