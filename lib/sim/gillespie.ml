let m_runs = Obs.Metrics.counter "gillespie.runs"
let m_steps = Obs.Metrics.counter "gillespie.steps"
let m_updates = Obs.Metrics.counter "gillespie.propensity_updates"
let m_resummations = Obs.Metrics.counter "gillespie.resummations"
let m_inert = Obs.Metrics.counter "gillespie.inert_runs"

type run_result = {
  time : float;
  steps : int;
  last_change : float;
  output : bool option;
  final : Mset.t;
  converged : bool;
}

let is_identity p t = Intvec.norm1 (Population.displacement p t) = 0

(* Unscaled mass-action propensity of transition [t]: #a·#b, or
   #a·(#a-1)/2 when the pre-states coincide. The uniform [rate /
   population] factor is applied to the total only — it cancels out of
   reaction selection. *)
let raw_propensity p counts t =
  let { Population.pre = a, b; _ } = p.Population.transitions.(t) in
  if a = b then float_of_int (counts.(a) * (counts.(a) - 1)) /. 2.0
  else float_of_int (counts.(a) * counts.(b))

module Propensity = struct
  type tracker = {
    p : Population.t;
    productive : int array;
    by_state : int array array;
    props : float array;
    mutable total : float;
    mutable updates : int;
  }

  let naive_total p counts =
    let acc = ref 0.0 in
    for t = 0 to Population.num_transitions p - 1 do
      if not (is_identity p t) then acc := !acc +. raw_propensity p counts t
    done;
    !acc

  let create p counts =
    let d = Population.num_states p in
    let productive =
      List.filter
        (fun t -> not (is_identity p t))
        (List.init (Population.num_transitions p) Fun.id)
      |> Array.of_list
    in
    let by = Array.make d [] in
    Array.iter
      (fun t ->
        let { Population.pre = a, b; _ } = p.Population.transitions.(t) in
        by.(a) <- t :: by.(a);
        if b <> a then by.(b) <- t :: by.(b))
      productive;
    let by_state = Array.map (fun l -> Array.of_list (List.rev l)) by in
    let props = Array.make (Population.num_transitions p) 0.0 in
    Array.iter (fun t -> props.(t) <- raw_propensity p counts t) productive;
    let total = Array.fold_left ( +. ) 0.0 props in
    { p; productive; by_state; props; total; updates = 0 }

  let total tr = tr.total
  let get tr t = tr.props.(t)

  (* [counts] must already reflect the firing of [fired]. Only
     transitions whose precondition mentions one of the (at most 4)
     states touched by [fired] can change propensity; recomputation is
     idempotent, so a transition reached via two touched states just
     contributes a zero delta the second time. *)
  let update tr counts ~fired =
    let { Population.pre = a, b; post = a', b' } = tr.p.Population.transitions.(fired) in
    let touch s =
      Array.iter
        (fun t ->
          let v = raw_propensity tr.p counts t in
          tr.total <- tr.total +. (v -. tr.props.(t));
          tr.props.(t) <- v)
        tr.by_state.(s)
    in
    touch a;
    if b <> a then touch b;
    if a' <> a && a' <> b then touch a';
    if b' <> a && b' <> b && b' <> a' then touch b';
    tr.updates <- tr.updates + 1;
    (* periodically resum to keep float drift of the running total bounded *)
    if tr.updates land 2047 = 0 then
      tr.total <- Array.fold_left ( +. ) 0.0 tr.props
end

let status_of ones total : bool option =
  if ones = total then Some true else if ones = 0 then Some false else None

let run ?(max_steps = 5_000_000) ?(quiet_time = 64.0) ?(rate = 1.0) ~rng p c0 =
  let d = Population.num_states p in
  let counts = Array.init d (Mset.get c0) in
  let total = Mset.size c0 in
  if total < 2 then invalid_arg "Gillespie.run: population size >= 2 required";
  let tracker = Propensity.create p counts in
  let scale = rate /. float_of_int total in
  let ones = ref 0 in
  Array.iteri (fun s c -> if p.Population.output.(s) then ones := !ones + c) counts;
  let time = ref 0.0 in
  let last_change = ref 0.0 in
  let status = ref (status_of !ones total) in
  let steps = ref 0 in
  let inert = ref false in
  let quiet () = !status <> None && !time -. !last_change >= quiet_time in
  (* select a reaction proportionally to its propensity; the guard
     [h > 0.0] also protects against the running total drifting above
     the true sum, in which case the last enabled reaction wins *)
  let pick target =
    let chosen = ref (-1) in
    let last_enabled = ref (-1) in
    let acc = ref 0.0 in
    let n = Array.length tracker.Propensity.productive in
    let i = ref 0 in
    while !chosen < 0 && !i < n do
      let t = tracker.Propensity.productive.(!i) in
      let h = Propensity.get tracker t in
      if h > 0.0 then begin
        last_enabled := t;
        acc := !acc +. h;
        if !acc >= target then chosen := t
      end;
      incr i
    done;
    if !chosen >= 0 then !chosen else !last_enabled
  in
  while (not !inert) && (not (quiet ())) && !steps < max_steps do
    let raw_total = Propensity.total tracker in
    if raw_total <= 0.0 then inert := true
    else begin
      let u = Splitmix64.float_unit rng in
      let dt = -.log (1.0 -. u) /. (raw_total *. scale) in
      time := !time +. dt;
      if quiet () then ()
      else begin
        let target = Splitmix64.float_unit rng *. raw_total in
        let t = pick target in
        incr steps;
        let { Population.pre = a, b; post = a', b' } = p.Population.transitions.(t) in
        let adjust s delta =
          counts.(s) <- counts.(s) + delta;
          if p.Population.output.(s) then ones := !ones + delta
        in
        adjust a (-1);
        adjust b (-1);
        adjust a' 1;
        adjust b' 1;
        Propensity.update tracker counts ~fired:t;
        let status' = status_of !ones total in
        if status' <> !status then begin
          status := status';
          last_change := !time
        end
      end
    end
  done;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_steps !steps;
    Obs.Metrics.add m_updates tracker.Propensity.updates;
    (* the running total is resummed whenever [updates] hits a multiple
       of 2048, so the branch was taken [updates / 2048] times *)
    Obs.Metrics.add m_resummations (tracker.Propensity.updates / 2048);
    if !inert then Obs.Metrics.incr m_inert
  end;
  {
    time = !time;
    steps = !steps;
    last_change = !last_change;
    output = !status;
    final = Mset.of_array counts;
    converged = !inert || quiet ();
  }

let run_input ?max_steps ?quiet_time ?rate ~rng p v =
  run ?max_steps ?quiet_time ?rate ~rng p (Population.initial_config p v)
