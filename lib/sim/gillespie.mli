(** Continuous-time simulation by Gillespie's stochastic simulation
    algorithm, reading the protocol as a chemical reaction network (the
    paper's introduction: agents are molecules, transitions are
    bimolecular reactions).

    Each non-identity transition [t] with precondition [{a, b}] has
    propensity [#a·#b] (or [#a·(#a-1)/2] when [a = b]) scaled by
    [rate / population]; with [rate = 1] the expected continuous time
    agrees with the discrete simulator's parallel time up to the usual
    constant. Identity transitions are silent and are skipped — when no
    productive reaction is enabled the mixture is inert and the run
    stops. *)

module Propensity : sig
  (** Incremental propensity bookkeeping: after a transition fires, only
      the propensities of transitions whose precondition mentions one of
      the (at most 4) states it touched are recomputed, instead of all
      [|T|] each step. {!run} uses this internally; it is exposed so
      tests can replay arbitrary traces and check the running total
      against a from-scratch recomputation. Propensities are unscaled
      (#a·#b, or #a·(#a-1)/2 on a diagonal pre). *)

  type tracker

  val create : Population.t -> int array -> tracker
  (** [create p counts] for the per-state agent counts [counts]. The
      tracker keeps no reference to [counts]; pass the current counts to
      {!update}. *)

  val total : tracker -> float
  (** Running total over non-identity transitions (resummed from the
      per-transition table every 2048 updates to bound float drift). *)

  val get : tracker -> int -> float
  (** Current propensity of a transition index. *)

  val update : tracker -> int array -> fired:int -> unit
  (** [update tr counts ~fired]: [counts] must already reflect the
      firing of transition [fired]. *)

  val naive_total : Population.t -> int array -> float
  (** From-scratch total, the reference for {!total}. *)
end

type run_result = {
  time : float;          (** continuous time when the run stopped *)
  steps : int;           (** productive reactions fired *)
  last_change : float;   (** time of the last consensus-status change *)
  output : bool option;
  final : Mset.t;
  converged : bool;      (** quiet for [quiet_time], or inert *)
}

val run :
  ?max_steps:int ->
  ?quiet_time:float ->
  ?rate:float ->
  rng:Splitmix64.t ->
  Population.t ->
  Mset.t ->
  run_result
(** Defaults: [max_steps = 5_000_000], [quiet_time = 64.0],
    [rate = 1.0]. *)

val run_input :
  ?max_steps:int ->
  ?quiet_time:float ->
  ?rate:float ->
  rng:Splitmix64.t ->
  Population.t ->
  int array ->
  run_result
