type error_policy = [ `Fail | `Skip | `Retry of int ]

type failure = {
  chunk_index : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type stats = {
  jobs : int;
  wall_s : float;
  chunks : int array;
  busy_s : float array;
  task_errors : int;
  failures : failure list;
  cancelled : bool;
}

let utilization s =
  let busy = Array.fold_left ( +. ) 0.0 s.busy_s in
  if s.wall_s > 0.0 then busy /. (float_of_int s.jobs *. s.wall_s) else 0.0

let publish name s =
  Array.iteri
    (fun w n ->
      Obs.Metrics.add (Obs.Metrics.counter (name ^ ".chunks")) n;
      Obs.Metrics.add
        (Obs.Metrics.counter (Printf.sprintf "%s.domain%d.chunks" name w))
        n;
      Obs.Metrics.set
        (Obs.Metrics.gauge (Printf.sprintf "%s.domain%d.busy_s" name w))
        s.busy_s.(w))
    s.chunks;
  (* registered lazily so fault-free runs keep their metric snapshots
     byte-identical to earlier releases *)
  if s.task_errors > 0 then
    Obs.Metrics.add (Obs.Metrics.counter (name ^ ".task_errors")) s.task_errors;
  if s.wall_s > 0.0 then
    Obs.Metrics.set (Obs.Metrics.gauge (name ^ ".utilization")) (utilization s)

let run ?(jobs = 1) ?(chunk = 1) ?(name = "pool") ?(on_task_error = `Fail)
    ?should_stop ?skip_chunk ?on_chunk_done ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: tasks >= 0 required";
  let jobs = Stdlib.max 1 (Stdlib.min jobs tasks) in
  let chunk = Stdlib.max 1 chunk in
  let retries = match on_task_error with `Retry n -> Stdlib.max 0 n | _ -> 0 in
  let next = Atomic.make 0 in
  (* Cancellation token: set by the first [`Fail] failure or when the
     caller's [should_stop] fires; every worker stops claiming chunks
     once it is up. In-flight chunks drain normally. *)
  let cancelled = Atomic.make false in
  let task_errors = Atomic.make 0 in
  (* First-failure-wins under [`Fail]: the failure in the lowest-indexed
     chunk that actually ran is the one re-raised, independent of which
     domain observed its failure first. *)
  let first_failure = Atomic.make None in
  let record_first fail =
    let rec go () =
      let cur = Atomic.get first_failure in
      match cur with
      | Some f when f.chunk_index <= fail.chunk_index -> ()
      | _ ->
        if not (Atomic.compare_and_set first_failure cur (Some fail)) then go ()
    in
    go ()
  in
  let failures_lock = Mutex.create () in
  let failures = ref [] in
  (* Per-worker accounting: slot [w] is written only by worker [w] and
     read after the joins, so plain arrays suffice. Busy time is the
     monotonic-clock time spent inside claimed chunks; the gap to the
     batch wall-clock is scheduling idleness. *)
  let chunks_claimed = Array.make jobs 0 in
  let busy_ns = Array.make jobs 0L in
  let span = name ^ ".chunk" in
  let stop_requested () =
    Atomic.get cancelled
    ||
    match should_stop with
    | Some s ->
      if s () then begin
        Atomic.set cancelled true;
        true
      end
      else false
    | None -> false
  in
  (* Dynamic self-scheduling off a shared counter: each domain claims
     [chunk] consecutive task indices at a time, so long tasks don't
     leave the other domains idle. The caller's [f] must confine its
     writes to state owned by the claimed range; [Domain.join] publishes
     them to the driver. Per-chunk exceptions never escape a worker:
     they are recorded and resolved by policy after the joins. *)
  let worker w =
    let rec loop () =
      if not (stop_requested ()) then begin
        let lo = Atomic.fetch_and_add next chunk in
        if lo < tasks then begin
          let hi = Stdlib.min tasks (lo + chunk) in
          let ci = lo / chunk in
          let skip = match skip_chunk with Some g -> g ci | None -> false in
          if not skip then begin
            let c0_ns = Obs.Clock.now_ns () in
            let rec attempt remaining =
              match
                Obs.Trace.with_span span ~cat:"pool"
                  ~args:
                    [ ("lo", string_of_int lo); ("hi", string_of_int (hi - 1)) ]
                  (fun () -> f ~lo ~hi)
              with
              | () -> ( match on_chunk_done with Some g -> g ci | None -> ())
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Atomic.incr task_errors;
                let fail = { chunk_index = ci; error = e; backtrace = bt } in
                (match on_task_error with
                 | `Fail ->
                   record_first fail;
                   Atomic.set cancelled true
                 | `Skip | `Retry _ ->
                   if remaining > 0 then attempt (remaining - 1)
                   else begin
                     Mutex.lock failures_lock;
                     failures := fail :: !failures;
                     Mutex.unlock failures_lock
                   end)
            in
            attempt retries;
            chunks_claimed.(w) <- chunks_claimed.(w) + 1;
            busy_ns.(w) <-
              Int64.add busy_ns.(w) (Int64.sub (Obs.Clock.now_ns ()) c0_ns)
          end;
          loop ()
        end
      end
    in
    loop ()
  in
  let t0 = Obs.Clock.now_ns () in
  let pool =
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  (* Every spawned domain is joined on every path: even if worker 0
     raises (only the caller's [should_stop]/[skip_chunk]/[on_chunk_done]
     callbacks can — task exceptions are caught above), no domain leaks.
     An exception escaping a spawned worker (same callbacks) re-raises
     after the remaining joins. *)
  let join_all () =
    let escaped =
      List.filter_map
        (fun d ->
          try
            Domain.join d;
            None
          with e -> Some (e, Printexc.get_raw_backtrace ()))
        pool
    in
    match escaped with
    | [] -> ()
    | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  in
  Fun.protect ~finally:join_all (fun () -> worker 0);
  let stats =
    {
      jobs;
      wall_s = Obs.Clock.elapsed_s t0;
      chunks = chunks_claimed;
      busy_s = Array.map Obs.Clock.ns_to_s busy_ns;
      task_errors = Atomic.get task_errors;
      failures =
        List.sort
          (fun a b -> Stdlib.compare a.chunk_index b.chunk_index)
          !failures;
      cancelled = Atomic.get cancelled;
    }
  in
  if Obs.Metrics.enabled () then publish name stats;
  match Atomic.get first_failure with
  | Some fail -> Printexc.raise_with_backtrace fail.error fail.backtrace
  | None -> stats
