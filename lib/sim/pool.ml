type stats = {
  jobs : int;
  wall_s : float;
  chunks : int array;
  busy_s : float array;
}

let utilization s =
  let busy = Array.fold_left ( +. ) 0.0 s.busy_s in
  if s.wall_s > 0.0 then busy /. (float_of_int s.jobs *. s.wall_s) else 0.0

let publish name s =
  Array.iteri
    (fun w n ->
      Obs.Metrics.add (Obs.Metrics.counter (name ^ ".chunks")) n;
      Obs.Metrics.add
        (Obs.Metrics.counter (Printf.sprintf "%s.domain%d.chunks" name w))
        n;
      Obs.Metrics.set
        (Obs.Metrics.gauge (Printf.sprintf "%s.domain%d.busy_s" name w))
        s.busy_s.(w))
    s.chunks;
  if s.wall_s > 0.0 then
    Obs.Metrics.set (Obs.Metrics.gauge (name ^ ".utilization")) (utilization s)

let run ?(jobs = 1) ?(chunk = 1) ?(name = "pool") ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: tasks >= 0 required";
  let jobs = Stdlib.max 1 (Stdlib.min jobs tasks) in
  let chunk = Stdlib.max 1 chunk in
  let next = Atomic.make 0 in
  (* Per-worker accounting: slot [w] is written only by worker [w] and
     read after the joins, so plain arrays suffice. Busy time is the
     monotonic-clock time spent inside claimed chunks; the gap to the
     batch wall-clock is scheduling idleness. *)
  let chunks_claimed = Array.make jobs 0 in
  let busy_ns = Array.make jobs 0L in
  let span = name ^ ".chunk" in
  (* Dynamic self-scheduling off a shared counter: each domain claims
     [chunk] consecutive task indices at a time, so long tasks don't
     leave the other domains idle. The caller's [f] must confine its
     writes to state owned by the claimed range; [Domain.join] publishes
     them to the driver. *)
  let worker w =
    let rec loop () =
      let lo = Atomic.fetch_and_add next chunk in
      if lo < tasks then begin
        let hi = Stdlib.min tasks (lo + chunk) in
        let c0_ns = Obs.Clock.now_ns () in
        Obs.Trace.with_span span ~cat:"pool"
          ~args:[ ("lo", string_of_int lo); ("hi", string_of_int (hi - 1)) ]
          (fun () -> f ~lo ~hi);
        chunks_claimed.(w) <- chunks_claimed.(w) + 1;
        busy_ns.(w) <-
          Int64.add busy_ns.(w) (Int64.sub (Obs.Clock.now_ns ()) c0_ns);
        loop ()
      end
    in
    loop ()
  in
  let t0 = Obs.Clock.now_ns () in
  let pool =
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  List.iter Domain.join pool;
  let stats =
    {
      jobs;
      wall_s = Obs.Clock.elapsed_s t0;
      chunks = chunks_claimed;
      busy_s = Array.map Obs.Clock.ns_to_s busy_ns;
    }
  in
  if Obs.Metrics.enabled () then publish name stats;
  stats
