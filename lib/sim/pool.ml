type error_policy = [ `Fail | `Skip | `Retry of int ]
type schedule = [ `Fixed | `Guided ]

(* The chunk partition is precomputed, a pure function of
   (schedule, tasks, jobs, chunk) — never of timing — so the set of
   (chunk index, lo, hi) triples a run emits (lease/done events,
   accumulator slots) is deterministic, and contiguous index-ordered
   reduction over the slots equals the sequential left-to-right fold
   whatever the chunk sizes are.

   [`Fixed]: every chunk has [chunk] indices (the classic partition —
   independent of [jobs], so aggregates AND event sets are
   jobs-invariant). [`Guided]: guided self-scheduling — sizes start at
   [chunk] and decay as [remaining / (2*jobs)] down to 1, so the last
   chunks are tiny and a straggler near the end idles the other workers
   for at most one small chunk, not a full-sized one. Guided boundaries
   depend on [jobs]; aggregates stay jobs-invariant (ordered contiguous
   reduce), but chunk indices/sizes — and thus event sets and
   checkpoint slots — are only invariant per (tasks, jobs, chunk). *)
let boundaries sched ~tasks ~jobs ~chunk =
  let jobs = Stdlib.max 1 (Stdlib.min jobs (Stdlib.max 1 tasks)) in
  let chunk = Stdlib.max 1 chunk in
  match sched with
  | `Fixed ->
    Array.init
      ((tasks + chunk - 1) / chunk)
      (fun ci ->
        let lo = ci * chunk in
        (lo, Stdlib.min tasks (lo + chunk)))
  | `Guided ->
    let rec go lo acc =
      if lo >= tasks then List.rev acc
      else begin
        let remaining = tasks - lo in
        let size =
          Stdlib.max 1
            (Stdlib.min chunk ((remaining + (2 * jobs) - 1) / (2 * jobs)))
        in
        let hi = Stdlib.min tasks (lo + size) in
        go hi ((lo, hi) :: acc)
      end
    in
    Array.of_list (go 0 [])

type failure = {
  chunk_index : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type stats = {
  jobs : int;
  wall_s : float;
  chunks : int array;
  busy_s : float array;
  task_errors : int;
  failures : failure list;
  cancelled : bool;
}

let utilization s =
  let busy = Array.fold_left ( +. ) 0.0 s.busy_s in
  if s.wall_s > 0.0 then busy /. (float_of_int s.jobs *. s.wall_s) else 0.0

let publish name s =
  Array.iteri
    (fun w n ->
      Obs.Metrics.add (Obs.Metrics.counter (name ^ ".chunks")) n;
      Obs.Metrics.add
        (Obs.Metrics.counter (Printf.sprintf "%s.domain%d.chunks" name w))
        n;
      Obs.Metrics.set
        (Obs.Metrics.gauge (Printf.sprintf "%s.domain%d.busy_s" name w))
        s.busy_s.(w))
    s.chunks;
  (* registered lazily so fault-free runs keep their metric snapshots
     byte-identical to earlier releases *)
  if s.task_errors > 0 then
    Obs.Metrics.add (Obs.Metrics.counter (name ^ ".task_errors")) s.task_errors;
  if s.wall_s > 0.0 then
    Obs.Metrics.set (Obs.Metrics.gauge (name ^ ".utilization")) (utilization s)

(* Chunk lifecycle records for the structured event log. The set of
   lease/complete/error events depends only on the fixed chunk
   partition (and the caller's deterministic [f]), so canonicalised
   event streams are jobs-invariant; only interleaving and timestamps
   move. Guarded so an un-instrumented run pays one load per chunk. *)
let lease_event ~name ~round ~ci ~lo ~hi =
  if Obs.Events.enabled () then
    Obs.Events.emit "pool.lease"
      ~data:
        ([ ("pool", Obs.Json.String name); ("chunk", Obs.Json.Int ci) ]
         @ (if round >= 0 then [ ("round", Obs.Json.Int round) ] else [])
         @ [ ("lo", Obs.Json.Int lo); ("hi", Obs.Json.Int (hi - 1)) ])

let done_event ~name ~round ~ci =
  if Obs.Events.enabled () then
    Obs.Events.emit "pool.chunk_done"
      ~data:
        ([ ("pool", Obs.Json.String name); ("chunk", Obs.Json.Int ci) ]
         @ if round >= 0 then [ ("round", Obs.Json.Int round) ] else [])

let error_event ~name ~ci e =
  if Obs.Events.enabled () then
    Obs.Events.emit ~severity:Error "pool.task_error"
      ~data:
        [
          ("pool", Obs.Json.String name);
          ("chunk", Obs.Json.Int ci);
          ("error", Obs.Json.String (Printexc.to_string e));
        ]

let retry_event ~name ~ci ~remaining =
  if Obs.Events.enabled () then
    Obs.Events.emit ~severity:Warn "pool.retry"
      ~data:
        [
          ("pool", Obs.Json.String name);
          ("chunk", Obs.Json.Int ci);
          ("remaining", Obs.Json.Int remaining);
        ]

(* Iterated fan-out over driver-computed rounds: the worker domains
   persist across rounds (no per-generation spawn/join), separated by a
   barrier. The driver alone runs [next] — which reduces the previous
   round's slots and stages the next round's tasks — so callers get the
   same determinism contract as [run]: fixed chunk partition per round,
   index-ordered reduction on the driver, aggregates independent of
   [jobs]. A task exception cancels the batch and re-raises after every
   domain is joined (first failing chunk of the earliest round wins); an
   exception escaping [next] (e.g. a budget raised during reduction)
   likewise joins all domains before propagating. *)
let run_rounds ?(jobs = 1) ?(chunk = 1) ?(name = "pool") ~next f =
  let jobs = Stdlib.max 1 jobs in
  let chunk = Stdlib.max 1 chunk in
  let span = name ^ ".chunk" in
  if jobs = 1 then begin
    (* Sequential driver: same rounds, same chunk partition, no domains. *)
    let t0 = Obs.Clock.now_ns () in
    let chunks = ref 0 in
    let rec go r =
      match next () with
      | None -> ()
      | Some tasks ->
        let lo = ref 0 in
        while !lo < tasks do
          let hi = Stdlib.min tasks (!lo + chunk) in
          let ci = !lo / chunk in
          lease_event ~name ~round:r ~ci ~lo:!lo ~hi;
          Obs.Trace.with_span span ~cat:"pool"
            ~args:
              [ ("round", string_of_int r); ("chunk", string_of_int ci);
                ("lo", string_of_int !lo); ("hi", string_of_int (hi - 1)) ]
            (fun () -> f ~round:r ~lo:!lo ~hi);
          done_event ~name ~round:r ~ci;
          incr chunks;
          lo := hi
        done;
        go (r + 1)
    in
    go 0;
    let wall = Obs.Clock.elapsed_s t0 in
    let stats =
      {
        jobs = 1;
        wall_s = wall;
        chunks = [| !chunks |];
        busy_s = [| wall |];
        task_errors = 0;
        failures = [];
        cancelled = false;
      }
    in
    if Obs.Metrics.enabled () then publish name stats;
    stats
  end
  else begin
    let mutex = Mutex.create () in
    let cond = Condition.create () in
    (* Barrier state, all under [mutex]: [round] is the id of the round
       currently open for claiming (0 = none yet), [finished] counts
       helper domains that exhausted it. *)
    let round = ref 0 in
    let tasks = ref 0 in
    let finished = ref 0 in
    let shutdown = ref false in
    let next_idx = Atomic.make 0 in
    let cancelled = Atomic.make false in
    let task_errors = Atomic.make 0 in
    let first_failure = Atomic.make None in
    let record_first fail =
      let rec go () =
        let cur = Atomic.get first_failure in
        match cur with
        | Some f when f.chunk_index <= fail.chunk_index -> ()
        | _ ->
          if not (Atomic.compare_and_set first_failure cur (Some fail)) then
            go ()
      in
      go ()
    in
    let chunks_claimed = Array.make jobs 0 in
    let busy_ns = Array.make jobs 0L in
    (* Claim chunks of the current round until it drains. Task
       exceptions are confined here, exactly as in [run]; the failing
       chunk index is offset by the round so the earliest round's
       failure wins deterministically. *)
    let work w r r_tasks =
      let rec loop () =
        if not (Atomic.get cancelled) then begin
          let lo = Atomic.fetch_and_add next_idx chunk in
          if lo < r_tasks then begin
            let hi = Stdlib.min r_tasks (lo + chunk) in
            let ci = lo / chunk in
            let c0_ns = Obs.Clock.now_ns () in
            lease_event ~name ~round:r ~ci ~lo ~hi;
            (match
               Obs.Trace.with_span span ~cat:"pool"
                 ~args:
                   [ ("round", string_of_int r); ("chunk", string_of_int ci);
                     ("lo", string_of_int lo); ("hi", string_of_int (hi - 1)) ]
                 (fun () -> f ~round:r ~lo ~hi)
             with
            | () -> done_event ~name ~round:r ~ci
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              Atomic.incr task_errors;
              error_event ~name ~ci e;
              record_first
                { chunk_index = (r * 1_000_000) + ci; error = e; backtrace = bt };
              Atomic.set cancelled true);
            chunks_claimed.(w) <- chunks_claimed.(w) + 1;
            busy_ns.(w) <-
              Int64.add busy_ns.(w) (Int64.sub (Obs.Clock.now_ns ()) c0_ns);
            loop ()
          end
        end
      in
      loop ()
    in
    let helper w =
      let my_round = ref 0 in
      let continue = ref true in
      while !continue do
        Mutex.lock mutex;
        while (not !shutdown) && !round = !my_round do
          Condition.wait cond mutex
        done;
        if !shutdown then begin
          continue := false;
          Mutex.unlock mutex
        end
        else begin
          let r = !round and t = !tasks in
          Mutex.unlock mutex;
          my_round := r;
          work w r t;
          Mutex.lock mutex;
          incr finished;
          Condition.broadcast cond;
          Mutex.unlock mutex
        end
      done
    in
    let t0 = Obs.Clock.now_ns () in
    let pool =
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> helper (i + 1)))
    in
    let join_all () =
      Mutex.lock mutex;
      shutdown := true;
      Condition.broadcast cond;
      Mutex.unlock mutex;
      let escaped =
        List.filter_map
          (fun d ->
            try
              Domain.join d;
              None
            with e -> Some (e, Printexc.get_raw_backtrace ()))
          pool
      in
      match escaped with
      | [] -> ()
      | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
    in
    Fun.protect ~finally:join_all (fun () ->
        let rec go r =
          if not (Atomic.get cancelled) then
            match next () with
            | None -> ()
            | Some 0 -> go r
            | Some t ->
              Mutex.lock mutex;
              Atomic.set next_idx 0;
              tasks := t;
              finished := 0;
              round := r + 1;
              Condition.broadcast cond;
              Mutex.unlock mutex;
              work 0 (r + 1) t;
              Mutex.lock mutex;
              while !finished < jobs - 1 do
                Condition.wait cond mutex
              done;
              Mutex.unlock mutex;
              go (r + 1)
        in
        go 0);
    let stats =
      {
        jobs;
        wall_s = Obs.Clock.elapsed_s t0;
        chunks = chunks_claimed;
        busy_s = Array.map Obs.Clock.ns_to_s busy_ns;
        task_errors = Atomic.get task_errors;
        failures = [];
        cancelled = Atomic.get cancelled;
      }
    in
    if Obs.Metrics.enabled () then publish name stats;
    match Atomic.get first_failure with
    | Some fail -> Printexc.raise_with_backtrace fail.error fail.backtrace
    | None -> stats
  end

let run ?(jobs = 1) ?(chunk = 1) ?(schedule = `Fixed) ?(name = "pool")
    ?(on_task_error = `Fail) ?should_stop ?skip_chunk ?on_chunk_done ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: tasks >= 0 required";
  let jobs = Stdlib.max 1 (Stdlib.min jobs tasks) in
  let chunk = Stdlib.max 1 chunk in
  let bounds = boundaries schedule ~tasks ~jobs ~chunk in
  let num_slots = Array.length bounds in
  let retries = match on_task_error with `Retry n -> Stdlib.max 0 n | _ -> 0 in
  let next = Atomic.make 0 in
  (* Cancellation token: set by the first [`Fail] failure or when the
     caller's [should_stop] fires; every worker stops claiming chunks
     once it is up. In-flight chunks drain normally. *)
  let cancelled = Atomic.make false in
  let task_errors = Atomic.make 0 in
  (* First-failure-wins under [`Fail]: the failure in the lowest-indexed
     chunk that actually ran is the one re-raised, independent of which
     domain observed its failure first. *)
  let first_failure = Atomic.make None in
  let record_first fail =
    let rec go () =
      let cur = Atomic.get first_failure in
      match cur with
      | Some f when f.chunk_index <= fail.chunk_index -> ()
      | _ ->
        if not (Atomic.compare_and_set first_failure cur (Some fail)) then go ()
    in
    go ()
  in
  let failures_lock = Mutex.create () in
  let failures = ref [] in
  (* Per-worker accounting: slot [w] is written only by worker [w] and
     read after the joins, so plain arrays suffice. Busy time is the
     monotonic-clock time spent inside claimed chunks; the gap to the
     batch wall-clock is scheduling idleness. *)
  let chunks_claimed = Array.make jobs 0 in
  let busy_ns = Array.make jobs 0L in
  let span = name ^ ".chunk" in
  let stop_requested () =
    Atomic.get cancelled
    ||
    match should_stop with
    | Some s ->
      if s () then begin
        Atomic.set cancelled true;
        true
      end
      else false
    | None -> false
  in
  (* Dynamic self-scheduling off a shared counter: each domain claims
     [chunk] consecutive task indices at a time, so long tasks don't
     leave the other domains idle. The caller's [f] must confine its
     writes to state owned by the claimed range; [Domain.join] publishes
     them to the driver. Per-chunk exceptions never escape a worker:
     they are recorded and resolved by policy after the joins. *)
  let worker w =
    let rec loop () =
      if not (stop_requested ()) then begin
        let ci = Atomic.fetch_and_add next 1 in
        if ci < num_slots then begin
          let lo, hi = bounds.(ci) in
          let skip = match skip_chunk with Some g -> g ci | None -> false in
          if not skip then begin
            let c0_ns = Obs.Clock.now_ns () in
            lease_event ~name ~round:(-1) ~ci ~lo ~hi;
            let rec attempt remaining =
              match
                Obs.Trace.with_span span ~cat:"pool"
                  ~args:
                    [ ("chunk", string_of_int ci); ("lo", string_of_int lo);
                      ("hi", string_of_int (hi - 1)) ]
                  (fun () -> f ~lo ~hi)
              with
              | () ->
                done_event ~name ~round:(-1) ~ci;
                (match on_chunk_done with Some g -> g ci | None -> ())
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Atomic.incr task_errors;
                error_event ~name ~ci e;
                let fail = { chunk_index = ci; error = e; backtrace = bt } in
                (match on_task_error with
                 | `Fail ->
                   record_first fail;
                   Atomic.set cancelled true
                 | `Skip | `Retry _ ->
                   if remaining > 0 then begin
                     retry_event ~name ~ci ~remaining;
                     attempt (remaining - 1)
                   end
                   else begin
                     Mutex.lock failures_lock;
                     failures := fail :: !failures;
                     Mutex.unlock failures_lock
                   end)
            in
            attempt retries;
            chunks_claimed.(w) <- chunks_claimed.(w) + 1;
            busy_ns.(w) <-
              Int64.add busy_ns.(w) (Int64.sub (Obs.Clock.now_ns ()) c0_ns)
          end;
          loop ()
        end
      end
    in
    loop ()
  in
  let t0 = Obs.Clock.now_ns () in
  let pool =
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  (* Every spawned domain is joined on every path: even if worker 0
     raises (only the caller's [should_stop]/[skip_chunk]/[on_chunk_done]
     callbacks can — task exceptions are caught above), no domain leaks.
     An exception escaping a spawned worker (same callbacks) re-raises
     after the remaining joins. *)
  let join_all () =
    let escaped =
      List.filter_map
        (fun d ->
          try
            Domain.join d;
            None
          with e -> Some (e, Printexc.get_raw_backtrace ()))
        pool
    in
    match escaped with
    | [] -> ()
    | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  in
  Fun.protect ~finally:join_all (fun () -> worker 0);
  let stats =
    {
      jobs;
      wall_s = Obs.Clock.elapsed_s t0;
      chunks = chunks_claimed;
      busy_s = Array.map Obs.Clock.ns_to_s busy_ns;
      task_errors = Atomic.get task_errors;
      failures =
        List.sort
          (fun a b -> Stdlib.compare a.chunk_index b.chunk_index)
          !failures;
      cancelled = Atomic.get cancelled;
    }
  in
  if Obs.Metrics.enabled () then publish name stats;
  match Atomic.get first_failure with
  | Some fail -> Printexc.raise_with_backtrace fail.error fail.backtrace
  | None -> stats
