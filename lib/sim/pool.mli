(** A reusable domain pool for deterministic fan-out.

    [run] partitions the index range [0 .. tasks-1] into fixed chunks of
    [chunk] consecutive indices and lets [jobs] domains claim chunks
    dynamically off a shared counter. The chunk {e partition} is a pure
    function of [tasks] and [chunk] — only the assignment of chunks to
    domains varies with scheduling — so a caller that accumulates one
    result slot per chunk (or per task) and reduces the slots in index
    order obtains aggregates that are byte-identical for every [jobs]
    value. Both the Monte-Carlo ensemble engine ({!Ensemble}) and the
    busy-beaver scan ([Busy_beaver.scan]) are built on this contract. *)

type stats = {
  jobs : int;            (** domains actually used (clamped to [tasks]) *)
  wall_s : float;        (** wall-clock of the whole batch *)
  chunks : int array;    (** chunks claimed, per worker *)
  busy_s : float array;  (** time inside claimed chunks, per worker *)
}

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?name:string ->
  tasks:int ->
  (lo:int -> hi:int -> unit) ->
  stats
(** [run ~jobs ~chunk ~name ~tasks f] calls [f ~lo ~hi] once for every
    chunk [\[lo, hi)] of the task range, across a pool of [jobs] domains
    (worker 0 is the calling domain; defaults: [jobs = 1], [chunk = 1]).
    [f] must confine its writes to state owned by the claimed range.

    When metrics are enabled, publishes ["<name>.chunks"],
    ["<name>.domain<w>.chunks"], ["<name>.domain<w>.busy_s"] and the
    ["<name>.utilization"] gauge; every chunk runs inside a
    ["<name>.chunk"] trace span (default [name]: ["pool"]). *)

val utilization : stats -> float
(** Total busy time over [jobs * wall] — 1.0 is a perfectly packed pool. *)
