(** A reusable domain pool for deterministic, fault-isolated fan-out.

    [run] partitions the index range [0 .. tasks-1] into fixed chunks of
    [chunk] consecutive indices and lets [jobs] domains claim chunks
    dynamically off a shared counter. The chunk {e partition} is a pure
    function of [tasks] and [chunk] — only the assignment of chunks to
    domains varies with scheduling — so a caller that accumulates one
    result slot per chunk (or per task) and reduces the slots in index
    order obtains aggregates that are byte-identical for every [jobs]
    value. Both the Monte-Carlo ensemble engine ({!Ensemble}) and the
    busy-beaver scan ([Busy_beaver.scan]) are built on this contract.

    Fault isolation: a task exception never escapes a worker domain and
    never leaks a domain — all spawned domains are joined on every
    path. What happens next is the caller's [on_task_error] policy. *)

type error_policy =
  [ `Fail  (** cancel the batch; re-raise after all domains joined *)
  | `Skip  (** record the failure, keep going with the other chunks *)
  | `Retry of int  (** re-run the chunk up to [n] more times, then skip *)
  ]

type schedule =
  [ `Fixed  (** every chunk has [chunk] indices (jobs-invariant) *)
  | `Guided
    (** guided self-scheduling: chunk sizes descend from [chunk] as
        [remaining / (2*jobs)] down to 1, cutting the straggler tail —
        the last chunks are tiny, so a slow final chunk idles the other
        workers briefly instead of for a full-sized chunk *)
  ]

val boundaries :
  schedule -> tasks:int -> jobs:int -> chunk:int -> (int * int) array
(** The precomputed chunk partition [run] uses: slot [ci] covers task
    indices [\[lo, hi)]. A pure function of its arguments (with [jobs]
    and [chunk] clamped exactly as [run] clamps them) — callers that
    allocate one accumulator slot per chunk size their arrays with
    this. Under [`Fixed] the partition is independent of [jobs]; under
    [`Guided] it depends on [jobs], but index-ordered reduction over
    any contiguous partition reproduces the sequential fold, so
    {e aggregates} stay jobs-invariant either way. *)

type failure = {
  chunk_index : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type stats = {
  jobs : int;  (** domains actually used (clamped to [tasks]) *)
  wall_s : float;  (** wall-clock of the whole batch *)
  chunks : int array;  (** chunks claimed (run or failed), per worker *)
  busy_s : float array;  (** time inside claimed chunks, per worker *)
  task_errors : int;  (** failed chunk attempts (retries each count) *)
  failures : failure list;
      (** chunks that ultimately failed under [`Skip]/[`Retry], sorted
          by chunk index. Empty under [`Fail] (the failure re-raises). *)
  cancelled : bool;
      (** the batch stopped claiming chunks early — [should_stop] fired
          or a [`Fail] failure occurred *)
}

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?schedule:schedule ->
  ?name:string ->
  ?on_task_error:error_policy ->
  ?should_stop:(unit -> bool) ->
  ?skip_chunk:(int -> bool) ->
  ?on_chunk_done:(int -> unit) ->
  tasks:int ->
  (lo:int -> hi:int -> unit) ->
  stats
(** [run ~jobs ~chunk ~name ~tasks f] calls [f ~lo ~hi] once for every
    chunk [\[lo, hi)] of the task range — the partition given by
    {!boundaries} for [schedule] (default [`Fixed]) — across a pool of
    [jobs] domains (worker 0 is the calling domain; defaults:
    [jobs = 1], [chunk = 1]).
    [f] must confine its writes to state owned by the claimed range.

    [on_task_error] (default [`Fail]) resolves chunks whose [f] raises:
    under [`Fail] the lowest-indexed failure that ran is re-raised with
    its original backtrace — deterministically for a single failing
    chunk — {e after} every domain is joined; under [`Skip]/[`Retry]
    the batch completes and the failures are reported in
    {!stats.failures} (and the ["<name>.task_errors"] counter). For
    [`Retry] to be deterministic, [f] must reset the chunk's
    accumulator state at the start of the chunk.

    [should_stop], polled between chunk claims, is the cancellation
    token for signal-driven shutdown: once it returns true no further
    chunks are claimed, in-flight chunks drain, and {!stats.cancelled}
    is set. [skip_chunk] (resume support) suppresses chunks — by chunk
    index, i.e. the slot position in {!boundaries} ([lo / chunk] under
    [`Fixed]) — that a checkpoint already recorded;
    skipped chunks are neither run nor counted. [on_chunk_done] fires
    in the worker after each successfully completed chunk (its writes
    to the chunk's slot are visible) — checkpoint writers hook here.

    When metrics are enabled, publishes ["<name>.chunks"],
    ["<name>.domain<w>.chunks"], ["<name>.domain<w>.busy_s"], the
    ["<name>.utilization"] gauge and (only when nonzero)
    ["<name>.task_errors"]; every chunk runs inside a ["<name>.chunk"]
    trace span (default [name]: ["pool"]). *)

val run_rounds :
  ?jobs:int ->
  ?chunk:int ->
  ?name:string ->
  next:(unit -> int option) ->
  (round:int -> lo:int -> hi:int -> unit) ->
  stats
(** [run_rounds ~jobs ~chunk ~name ~next f] drives an {e iterated}
    fan-out — a worklist algorithm whose frontier is expanded in
    generations — over a pool of [jobs] persistent domains (spawned
    once, separated by a barrier between rounds; worker 0 is the
    calling domain).

    The driver alone calls [next ()] before each round: it reduces the
    previous round's per-task slots (in index order — this is where
    determinism lives) and stages the next round, returning
    [Some tasks] to fan out [f ~round ~lo ~hi] over the chunked range
    [0 .. tasks-1], or [None] to finish. [Some 0] rounds are skipped
    without waking the pool. As with {!run}, the chunk partition of
    each round is a pure function of its task count and [chunk], so
    slot-per-task accumulation plus index-ordered reduction in [next]
    yields results byte-identical for every [jobs] value; with
    [jobs = 1] the same rounds run inline on the calling domain.

    Writes staged by [next] are visible to the workers of the round it
    opens, and the workers' slot writes are visible to the following
    [next] (the round barrier synchronises both directions).

    Fault contract: a task exception cancels the batch and re-raises
    after {e every} domain is joined — the failure in the earliest
    (round, chunk) wins, independent of scheduling; an exception
    escaping [next] itself (e.g. {!Obs.Budget.Exceeded} raised during
    reduction) likewise joins all domains before propagating. Publishes
    the same ["<name>.*"] metrics as {!run}, accumulated over all
    rounds. *)

val utilization : stats -> float
(** Total busy time over [jobs * wall] — 1.0 is a perfectly packed pool. *)
