(* Engine counters, registered once. Mutations are guarded by the
   global flag inside Obs.Metrics, and the hot loop only touches plain
   local refs — totals are published once per run. *)
let m_runs = Obs.Metrics.counter "sim.runs"
let m_steps = Obs.Metrics.counter "sim.steps"
let m_nulls = Obs.Metrics.counter "sim.null_interactions"
let m_converged = Obs.Metrics.counter "sim.converged_runs"

type run_result = {
  steps : int;
  last_change : int;
  output : bool option;
  final : Mset.t;
  converged : bool;
}

(* Dense lookup from a canonical state pair [(s1, s2)] with [s1 <= s2]
   to the indices of the transitions it enables: slot [s1 * d + s2].
   Direct indexing keeps the hot loop free of hashing and of the [Some]
   allocations a [Hashtbl.find_opt] per interaction would cost — minor
   allocations also force cross-domain GC synchronisation, which is what
   an ensemble's domains contend on. *)
let pair_table p =
  let d = Population.num_states p in
  let table = Array.make (d * d) [] in
  Array.iteri
    (fun i (tr : Population.transition) ->
      let s1, s2 = tr.pre in
      let slot = (s1 * d) + s2 in
      table.(slot) <- i :: table.(slot))
    p.Population.transitions;
  Array.map (fun l -> Array.of_list (List.rev l)) table

(* Sample the states of two distinct agents drawn uniformly from the
   population described by [counts]. *)
let sample_pair rng counts total =
  let pick_index k =
    (* k is a position in 0..total-1 over agents grouped by state *)
    let rec go s acc =
      let acc' = acc + counts.(s) in
      if k < acc' then s else go (s + 1) acc'
    in
    go 0 0
  in
  let k1 = Splitmix64.int_below rng total in
  let s1 = pick_index k1 in
  (* remove agent 1, draw agent 2 from the remaining total-1 *)
  counts.(s1) <- counts.(s1) - 1;
  let k2 = Splitmix64.int_below rng (total - 1) in
  let s2 = pick_index k2 in
  counts.(s1) <- counts.(s1) + 1;
  (s1, s2)

let status_of ones total : bool option =
  if ones = total then Some true else if ones = 0 then Some false else None

let run ?(max_steps = 50_000_000) ?(quiet_window = 64.0) ~rng p c0 =
  let d = Population.num_states p in
  let counts = Array.init d (Mset.get c0) in
  let total = Mset.size c0 in
  if total < 2 then invalid_arg "Simulator.run: population size >= 2 required";
  let table = pair_table p in
  let ones = ref 0 in
  Array.iteri (fun s c -> if p.Population.output.(s) then ones := !ones + c) counts;
  let quiet_steps =
    int_of_float (quiet_window *. float_of_int total) |> Stdlib.max 1
  in
  let last_change = ref 0 in
  let status = ref (status_of !ones total) in
  let step = ref 0 in
  let nulls = ref 0 in
  let finished = ref false in
  (* [sample_pair], inlined to avoid boxing a tuple per interaction;
     the RNG draw sequence is identical *)
  let pick_index k =
    let rec go s acc =
      let acc' = acc + counts.(s) in
      if k < acc' then s else go (s + 1) acc'
    in
    go 0 0
  in
  let adjust s delta =
    counts.(s) <- counts.(s) + delta;
    if p.Population.output.(s) then ones := !ones + delta
  in
  while (not !finished) && !step < max_steps do
    incr step;
    let s1 = pick_index (Splitmix64.int_below rng total) in
    counts.(s1) <- counts.(s1) - 1;
    let s2 = pick_index (Splitmix64.int_below rng (total - 1)) in
    counts.(s1) <- counts.(s1) + 1;
    let slot = if s1 <= s2 then (s1 * d) + s2 else (s2 * d) + s1 in
    let trs = table.(slot) in
    (if Array.length trs > 0 then
       let i =
         if Array.length trs = 1 then trs.(0)
         else trs.(Splitmix64.int_below rng (Array.length trs))
       in
       let { Population.post = p1, p2; _ } = p.Population.transitions.(i) in
       adjust s1 (-1);
       adjust s2 (-1);
       adjust p1 1;
       adjust p2 1
     else incr nulls);
    let status' = status_of !ones total in
    if status' <> !status then begin
      status := status';
      last_change := !step
    end;
    if !step - !last_change >= quiet_steps && !status <> None then finished := true
  done;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_steps !step;
    Obs.Metrics.add m_nulls !nulls;
    if !finished then Obs.Metrics.incr m_converged
  end;
  {
    steps = !step;
    last_change = !last_change;
    output = !status;
    final = Mset.of_array counts;
    converged = !finished;
  }

let run_input ?max_steps ?quiet_window ~rng p v =
  run ?max_steps ?quiet_window ~rng p (Population.initial_config p v)

let parallel_time r ~population =
  float_of_int r.last_change /. float_of_int population

(* A 1-domain ensemble: trial [i] runs on the [i]-th split of [rng], the
   same per-trial stream assignment Ensemble uses, so that this function
   agrees exactly with [Ensemble.parallel_times (Ensemble.run ~jobs:1 ...)]
   when [rng = Splitmix64.create seed]. *)
let sample_parallel_times ?(runs = 10) ?max_steps ?quiet_window ~rng p v =
  let c0 = Population.initial_config p v in
  let population = Mset.size c0 in
  List.init runs (fun _ -> Splitmix64.split rng)
  |> List.map (fun rng -> run ?max_steps ?quiet_window ~rng p c0)
  |> List.filter (fun r -> r.converged)
  |> List.map (fun r -> parallel_time r ~population)
