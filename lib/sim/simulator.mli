(** Stochastic simulation under the uniform random scheduler.

    At each step an (unordered) pair of distinct agents is selected
    uniformly at random and one of the transitions matching their
    states fires (uniformly among them, so nondeterministic protocols
    are supported). Parallel time is the number of interactions
    divided by the number of agents — the standard convention the
    paper's introduction uses when quoting [O(n log n)] convergence.

    Simulation cannot prove stabilisation (that is {!Fair_semantics}'s
    job); {!run} instead stops once the consensus status has been
    quiet for a configurable window and reports the last time the
    status changed as the convergence estimate. *)

type run_result = {
  steps : int;            (** total interactions executed *)
  last_change : int;      (** last step at which the consensus status changed *)
  output : bool option;   (** consensus output of the final configuration *)
  final : Mset.t;
  converged : bool;       (** false iff the step budget ran out while unstable *)
}

val sample_pair : Splitmix64.t -> int array -> int -> int * int
(** [sample_pair rng counts total] draws the states of two distinct
    agents chosen uniformly from the population whose per-state counts
    are [counts] (with [total = sum counts >= 2]). [counts] is mutated
    transiently but restored before returning. Exposed for statistical
    tests of the scheduler's uniformity. *)

val run :
  ?max_steps:int ->
  ?quiet_window:float ->
  rng:Splitmix64.t ->
  Population.t ->
  Mset.t ->
  run_result
(** [run ~rng p c0] simulates from configuration [c0] (size >= 2)
    until the consensus status (output [0], [1] or undefined) has not
    changed for [quiet_window] parallel-time units (default [64.0]),
    or [max_steps] interactions (default [50_000_000]) elapse. *)

val run_input :
  ?max_steps:int ->
  ?quiet_window:float ->
  rng:Splitmix64.t ->
  Population.t ->
  int array ->
  run_result
(** [run_input ~rng p v] simulates from [IC(v)]. *)

val parallel_time : run_result -> population:int -> float
(** Convergence estimate of a run in parallel-time units:
    [last_change / population]. *)

val sample_parallel_times :
  ?runs:int ->
  ?max_steps:int ->
  ?quiet_window:float ->
  rng:Splitmix64.t ->
  Population.t ->
  int array ->
  float list
(** Convergence estimates over several independent runs (default 10)
    from [IC(v)]; runs that fail to converge are dropped.

    A thin sequential wrapper over a 1-domain ensemble: trial [i] runs
    on the [i]-th {!Splitmix64.split} of [rng], the same per-trial
    stream assignment {!Ensemble} uses, so with [rng = Splitmix64.create
    seed] the result equals
    [Ensemble.parallel_times (Ensemble.run ~jobs:1 ~seed ...)]. *)
