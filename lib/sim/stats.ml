let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> invalid_arg "Stats.stddev: empty"
  | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. (n -. 1.0))

let quantile q = function
  | [] -> invalid_arg "Stats.quantile: empty"
  | xs ->
    if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
    let a = Array.of_list xs in
    Array.sort Stdlib.compare a;
    let n = Array.length a in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    let frac = pos -. floor pos in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let median xs = quantile 0.5 xs

let histogram ?(bins = 8) = function
  | [] -> []
  | xs ->
    if bins < 1 then invalid_arg "Stats.histogram: bins >= 1 required";
    let lo = List.fold_left Stdlib.min infinity xs in
    let hi = List.fold_left Stdlib.max neg_infinity xs in
    if lo = hi then [ (lo, hi, List.length xs) ]
    else begin
      let counts = Array.make bins 0 in
      let w = (hi -. lo) /. float_of_int bins in
      List.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. w) in
          let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
          counts.(b) <- counts.(b) + 1)
        xs;
      List.init bins (fun b ->
          (* pin the last edge to the exact maximum: [lo + w*bins] can
             undershoot it by an ulp *)
          let top = if b = bins - 1 then hi else lo +. (w *. float_of_int (b + 1)) in
          (lo +. (w *. float_of_int b), top, counts.(b)))
    end

let summary = function
  | [] -> "n=0"
  | xs ->
    Printf.sprintf "mean=%.2f sd=%.2f med=%.2f n=%d" (mean xs) (stddev xs)
      (median xs) (List.length xs)
