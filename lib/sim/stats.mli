(** Small descriptive-statistics helpers for simulation experiments. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons.
    @raise Invalid_argument on an empty list. *)

val quantile : float -> float list -> float
(** [quantile q xs] for [0 <= q <= 1], by linear interpolation.
    @raise Invalid_argument on an empty list or out-of-range [q]. *)

val median : float list -> float

val histogram : ?bins:int -> float list -> (float * float * int) list
(** [histogram ~bins xs] buckets [xs] into [bins] (default 8) equal-width
    intervals [(lo, hi, count)] spanning [min xs .. max xs]; the last
    interval is closed on the right. Returns [[]] on an empty list and a
    single degenerate bucket when all values coincide.
    @raise Invalid_argument when [bins < 1]. *)

val summary : float list -> string
(** ["mean=… sd=… med=… n=…"], or ["n=0"] when empty. *)
