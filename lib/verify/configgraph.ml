module H = Hashtbl.Make (struct
  type t = Mset.t

  let equal = Mset.equal
  let hash = Mset.hash
end)

type t = {
  protocol : Population.t;
  configs : Mset.t array;
  succ : int array array;
  root : int;
  lookup : Mset.t -> int option;
}

exception Too_many_configs of int

(* A minimal growable array (OCaml 5.1 predates Stdlib.Dynarray). *)
module Grow = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push g x =
    if g.len = Array.length g.data then begin
      let data = Array.make (2 * g.len) g.dummy in
      Array.blit g.data 0 data 0 g.len;
      g.data <- data
    end;
    g.data.(g.len) <- x;
    g.len <- g.len + 1

  let get g i = g.data.(i)
  let set g i x = g.data.(i) <- x
  let to_array g = Array.sub g.data 0 g.len
end

let m_explorations = Obs.Metrics.counter "configgraph.explorations"
let m_configs = Obs.Metrics.counter "configgraph.configs"
let m_edges = Obs.Metrics.counter "configgraph.edges"
let m_packed = Obs.Metrics.counter "configgraph.packed_explorations"
let m_lazy = Obs.Metrics.counter "configgraph.lazy_explorations"

(* -- incremental exploration with on-the-fly SCC detection ------------- *)

exception Stopped

(* Iterative Tarjan where a node's successors are computed the first
   time the DFS enters it ([expand], which interns new nodes as it
   goes), so strongly connected components complete — and bottom ones
   are reported — while the graph is still being discovered. When an
   SCC pops, every successor of its members already has a component
   (its own, or an earlier-popped one), so bottomness is one membership
   scan; [on_bottom] returning [`Stop] abandons the rest of the
   exploration. Node 0 must exist and reach every node ever interned.
   Returns the number of SCCs popped. *)
let lazy_sccs ~expand ~on_bottom =
  (* All bookkeeping lives in flat parallel arrays and int stacks: this
     runs once per configuration of a multi-million-node scan, so the
     only per-node heap allocation is the successor array [expand]
     returns (and a member list per *bottom* component). *)
  let idx = Grow.create (-1) in
  let low = Grow.create 0 in
  let onstk = Grow.create false in
  let comp = Grow.create (-1) in
  let succs = Grow.create [||] in
  let ensure n =
    while idx.Grow.len <= n do
      Grow.push idx (-1);
      Grow.push low 0;
      Grow.push onstk false;
      Grow.push comp (-1);
      Grow.push succs [||]
    done
  in
  let stack = Grow.create 0 in
  (* DFS frames as parallel (node, next-child) int stacks *)
  let fnode = Grow.create 0 in
  let fchild = Grow.create 0 in
  let entries = ref 0 in
  let ncomps = ref 0 in
  let enter v =
    ensure v;
    Grow.set idx v !entries;
    Grow.set low v !entries;
    incr entries;
    Grow.push stack v;
    Grow.set onstk v true;
    Grow.set succs v (expand v);
    Grow.push fnode v;
    Grow.push fchild 0
  in
  let pop_component v =
    let id = !ncomps in
    incr ncomps;
    (* the component is the stack segment from [v]'s slot to the top *)
    let top = stack.Grow.len in
    let base = ref (top - 1) in
    while Grow.get stack !base <> v do
      decr base
    done;
    let base = !base in
    for k = base to top - 1 do
      let w = Grow.get stack k in
      Grow.set onstk w false;
      Grow.set comp w id
    done;
    stack.Grow.len <- base;
    let bottom = ref true in
    let k = ref base in
    while !bottom && !k < top do
      let ss = Grow.get succs (Grow.get stack !k) in
      let j = ref 0 in
      while !bottom && !j < Array.length ss do
        if Grow.get comp ss.(!j) <> id then bottom := false;
        incr j
      done;
      incr k
    done;
    if !bottom then begin
      let members = ref [] in
      for k = top - 1 downto base do
        members := Grow.get stack k :: !members
      done;
      match on_bottom !members with `Stop -> raise Stopped | `Continue -> ()
    end
  in
  let rec loop () =
    if fnode.Grow.len > 0 then begin
      let fi = fnode.Grow.len - 1 in
      let v = Grow.get fnode fi in
      let ss = Grow.get succs v in
      let ci = Grow.get fchild fi in
      if ci < Array.length ss then begin
        Grow.set fchild fi (ci + 1);
        let w = ss.(ci) in
        ensure w;
        if Grow.get idx w = -1 then enter w
        else if Grow.get onstk w then
          Grow.set low v (Stdlib.min (Grow.get low v) (Grow.get idx w))
      end
      else begin
        fnode.Grow.len <- fi;
        fchild.Grow.len <- fi;
        if fi > 0 then begin
          let parent = Grow.get fnode (fi - 1) in
          Grow.set low parent (Stdlib.min (Grow.get low parent) (Grow.get low v))
        end;
        if Grow.get low v = Grow.get idx v then pop_component v
      end;
      loop ()
    end
  in
  (try
     enter 0;
     loop ()
   with Stopped -> ());
  !ncomps

let check_deadline deadline ~configs ~edges =
  match deadline with
  | None -> ()
  | Some d ->
    Obs.Budget.raise_if_expired
      ~consumed:
        [ ("configs", float_of_int configs); ("edges", float_of_int edges) ]
      d

let explore ?(max_configs = 2_000_000) ?deadline p c0 =
  let index = H.create 1024 in
  let configs = Grow.create (Mset.zero 0) in
  let succs = Grow.create [||] in
  let edges = ref 0 in
  let progress = Obs.Progress.create "configgraph.explore" in
  let intern c =
    match H.find_opt index c with
    | Some i -> i
    | None ->
      if configs.Grow.len >= max_configs then
        raise (Too_many_configs max_configs);
      let i = configs.Grow.len in
      H.add index c i;
      Grow.push configs c;
      i
  in
  (* Publish even when [Too_many_configs] aborts the exploration, so an
     over-budget run still reports how far it got. *)
  Fun.protect
    ~finally:(fun () ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_explorations;
        Obs.Metrics.add m_configs configs.Grow.len;
        Obs.Metrics.add m_edges !edges
      end)
    (fun () ->
      Obs.Trace.with_span "configgraph.explore" ~cat:"verify"
        ~args:[ ("protocol", p.Population.name) ]
        (fun () ->
          let root = intern c0 in
          let i = ref 0 in
          while !i < configs.Grow.len do
            if !i land 255 = 0 then
              check_deadline deadline ~configs:configs.Grow.len ~edges:!edges;
            Obs.Progress.tick progress (fun () ->
                Printf.sprintf "%d configs explored, %d discovered, %d edges"
                  !i configs.Grow.len !edges);
            let c = Grow.get configs !i in
            let next = Population.distinct_successors p c in
            let idxs =
              List.sort_uniq Stdlib.compare (List.map intern next)
              |> List.filter (fun j -> j <> !i)
            in
            edges := !edges + List.length idxs;
            Grow.push succs (Array.of_list idxs);
            incr i
          done;
          Obs.Progress.finish progress (fun () ->
              Printf.sprintf "%d configs, %d edges" configs.Grow.len !edges);
          {
            protocol = p;
            configs = Grow.to_array configs;
            succ = Grow.to_array succs;
            root;
            (* the interning table survives as the O(1) lookup index *)
            lookup = (fun c -> H.find_opt index c);
          }))

let num_configs g = Array.length g.configs
let find g c = g.lookup c

let reachable_from g src =
  let n = num_configs g in
  let seen = Array.make n false in
  let stack = ref [ src ] in
  seen.(src) <- true;
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end)
        g.succ.(v);
      loop ()
  in
  loop ();
  seen

let can_reach g ~src pred =
  let seen = reachable_from g src in
  let n = num_configs g in
  let rec go i =
    if i >= n then false
    else if seen.(i) && pred g.configs.(i) then true
    else go (i + 1)
  in
  go 0

let can_reach_config g ~src c =
  match find g c with
  | None -> false
  | Some i -> i = src || (reachable_from g src).(i)

let explore_sccs ?(max_configs = 2_000_000) ?deadline p c0 ~on_bottom =
  let index = H.create 1024 in
  let configs = Grow.create (Mset.zero 0) in
  let edges = ref 0 in
  let sccs = ref 0 in
  let progress = Obs.Progress.create "configgraph.explore_sccs" in
  let intern c =
    match H.find_opt index c with
    | Some i -> i
    | None ->
      if configs.Grow.len >= max_configs then
        raise (Too_many_configs max_configs);
      let i = configs.Grow.len in
      H.add index c i;
      Grow.push configs c;
      i
  in
  let expand v =
    if v land 255 = 0 then
      check_deadline deadline ~configs:configs.Grow.len ~edges:!edges;
    Obs.Progress.tick progress (fun () ->
        Printf.sprintf "%d configs discovered, %d edges, %d sccs"
          configs.Grow.len !edges !sccs);
    let c = Grow.get configs v in
    let idxs =
      List.sort_uniq Stdlib.compare
        (List.map intern (Population.distinct_successors p c))
      |> List.filter (fun j -> j <> v)
    in
    edges := !edges + List.length idxs;
    Array.of_list idxs
  in
  Fun.protect
    ~finally:(fun () ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_explorations;
        Obs.Metrics.incr m_lazy;
        Obs.Metrics.add m_configs configs.Grow.len;
        Obs.Metrics.add m_edges !edges
      end)
    (fun () ->
      Obs.Trace.with_span "configgraph.explore_sccs" ~cat:"verify"
        ~args:[ ("protocol", p.Population.name) ]
        (fun () ->
          ignore (intern c0);
          sccs :=
            lazy_sccs ~expand ~on_bottom:(fun members ->
                on_bottom (List.map (Grow.get configs) members));
          Obs.Progress.finish progress (fun () ->
              Printf.sprintf "%d configs, %d edges, %d sccs" configs.Grow.len
                !edges !sccs);
          !sccs))

(* ---------------------------------------------------------------------- *)
(* The packed fast path: configurations as immediate ints.

   In the busy-beaver regime (<= 7 states, population <= 255) a
   configuration fits one word at 8 bits per state (see {!Mset.pack}),
   so the exploration above can run with int-keyed interning and zero
   allocation per successor: firing transition t on packed c is
   [c + pdelta.(t)] after an enabledness check on two bit fields. The
   node order is identical to the reference exploration — successors
   are generated in transition order and deduplicated keeping first
   occurrences, exactly like [Population.distinct_successors] — so the
   two graphs agree index-for-index (a property the test suite checks
   differentially). *)

module Packed = struct
  type graph = {
    protocol : Population.t;
    configs : int array;
    succ : int array array;
    root : int;
    lookup : int -> int option;
  }

  let applicable p c0 =
    Population.num_states p <= Mset.max_packed_dim
    && Mset.size c0 <= Mset.max_packed_count

  let num_configs g = Array.length g.configs
  let find g c = g.lookup c
  let config g i = Mset.unpack ~dim:(Population.num_states g.protocol) g.configs.(i)

  (* packed configurations are base-256 numbers whose low digits barely
     vary within one graph; mix before bucketing *)
  let hash x =
    let h = x * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land max_int

  let explore ?(max_configs = 2_000_000) ?deadline p c0 =
    if not (applicable p c0) then
      invalid_arg "Configgraph.Packed.explore: protocol/configuration not packable";
    let nt = Population.num_transitions p in
    (* per-transition firing data, unpacked from the protocol once *)
    let pre_a = Array.make nt 0 in
    let pre_b = Array.make nt 0 in
    let pdelta = Array.make nt 0 in
    Array.iteri
      (fun t { Population.pre = a, b; _ } ->
        pre_a.(t) <- 8 * a;
        pre_b.(t) <- 8 * b;
        pdelta.(t) <- Mset.pack_delta (Population.displacement p t))
      p.Population.transitions;
    (* open-addressing intern table (linear probing, load <= 1/2): the
       per-successor membership probe is the scan's hottest operation,
       so it must not allocate. Packed configs are non-negative; -1
       marks an empty slot. *)
    let cap = ref 256 in
    let keys = ref (Array.make !cap (-1)) in
    let ids = ref (Array.make !cap 0) in
    let slot_of keys cap c =
      let mask = cap - 1 in
      let s = ref (hash c land mask) in
      while
        let k = keys.(!s) in
        k <> -1 && k <> c
      do
        s := (!s + 1) land mask
      done;
      !s
    in
    let grow () =
      let cap' = 2 * !cap in
      let keys' = Array.make cap' (-1) in
      let ids' = Array.make cap' 0 in
      for s = 0 to !cap - 1 do
        let k = !keys.(s) in
        if k <> -1 then begin
          let s' = slot_of keys' cap' k in
          keys'.(s') <- k;
          ids'.(s') <- !ids.(s)
        end
      done;
      cap := cap';
      keys := keys';
      ids := ids'
    in
    let configs = Grow.create 0 in
    let succs = Grow.create [||] in
    let edges = ref 0 in
    let progress = Obs.Progress.create "configgraph.explore" in
    let intern c =
      let s = slot_of !keys !cap c in
      if !keys.(s) <> -1 then !ids.(s)
      else begin
        if configs.Grow.len >= max_configs then
          raise (Too_many_configs max_configs);
        let i = configs.Grow.len in
        !keys.(s) <- c;
        !ids.(s) <- i;
        Grow.push configs c;
        if 2 * i >= !cap then grow ();
        i
      end
    in
    (* scratch buffers, reused across nodes: distinct successor values in
       first-occurrence order, then their node indices *)
    let vals = Array.make (Stdlib.max 1 nt) 0 in
    let idxs = Array.make (Stdlib.max 1 nt) 0 in
    Fun.protect
      ~finally:(fun () ->
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.incr m_explorations;
          Obs.Metrics.incr m_packed;
          Obs.Metrics.add m_configs configs.Grow.len;
          Obs.Metrics.add m_edges !edges
        end)
      (fun () ->
        Obs.Trace.with_span "configgraph.explore" ~cat:"verify"
          ~args:[ ("protocol", p.Population.name) ]
          (fun () ->
            let root = intern (Mset.pack c0) in
            let i = ref 0 in
            while !i < configs.Grow.len do
              if !i land 1023 = 0 then begin
                check_deadline deadline ~configs:configs.Grow.len ~edges:!edges;
                Obs.Progress.tick progress (fun () ->
                    Printf.sprintf "%d configs explored, %d discovered, %d edges"
                      !i configs.Grow.len !edges)
              end;
              let c = Grow.get configs !i in
              let nvals = ref 0 in
              for t = 0 to nt - 1 do
                let sa = pre_a.(t) and sb = pre_b.(t) in
                let enabled =
                  if sa = sb then (c lsr sa) land 0xff >= 2
                  else (c lsr sa) land 0xff >= 1 && (c lsr sb) land 0xff >= 1
                in
                if enabled then begin
                  let c' = c + pdelta.(t) in
                  let dup = ref false in
                  for k = 0 to !nvals - 1 do
                    if vals.(k) = c' then dup := true
                  done;
                  if not !dup then begin
                    vals.(!nvals) <- c';
                    incr nvals
                  end
                end
              done;
              (* intern in first-occurrence order (fixes node numbering),
                 then sort / dedupe / drop the self loop — mirroring the
                 reference path's [List.sort_uniq] + self filter *)
              let n = !nvals in
              for k = 0 to n - 1 do
                idxs.(k) <- intern vals.(k)
              done;
              (* insertion sort on the scratch (n <= nt, tiny), then one
                 dedupe-and-drop-self pass into an exact-size array *)
              for k = 1 to n - 1 do
                let x = idxs.(k) in
                let j = ref (k - 1) in
                while !j >= 0 && idxs.(!j) > x do
                  idxs.(!j + 1) <- idxs.(!j);
                  decr j
                done;
                idxs.(!j + 1) <- x
              done;
              let m = ref 0 in
              for k = 0 to n - 1 do
                if idxs.(k) <> !i && (k = 0 || idxs.(k - 1) <> idxs.(k)) then
                  incr m
              done;
              let out = Array.make !m 0 in
              let w = ref 0 in
              for k = 0 to n - 1 do
                if idxs.(k) <> !i && (k = 0 || idxs.(k - 1) <> idxs.(k)) then begin
                  out.(!w) <- idxs.(k);
                  incr w
                end
              done;
              edges := !edges + !m;
              Grow.push succs out;
              incr i
            done;
            Obs.Progress.finish progress (fun () ->
                Printf.sprintf "%d configs, %d edges" configs.Grow.len !edges);
            let lookup c =
              let s = slot_of !keys !cap c in
              if !keys.(s) = -1 then None else Some !ids.(s)
            in
            {
              protocol = p;
              configs = Grow.to_array configs;
              succ = Grow.to_array succs;
              root;
              lookup;
            }))

  let explore_sccs ?(max_configs = 2_000_000) ?deadline p c0 ~on_bottom =
    if not (applicable p c0) then
      invalid_arg
        "Configgraph.Packed.explore_sccs: protocol/configuration not packable";
    let nt = Population.num_transitions p in
    let pre_a = Array.make nt 0 in
    let pre_b = Array.make nt 0 in
    let pdelta = Array.make nt 0 in
    Array.iteri
      (fun t { Population.pre = a, b; _ } ->
        pre_a.(t) <- 8 * a;
        pre_b.(t) <- 8 * b;
        pdelta.(t) <- Mset.pack_delta (Population.displacement p t))
      p.Population.transitions;
    let cap = ref 256 in
    let keys = ref (Array.make !cap (-1)) in
    let ids = ref (Array.make !cap 0) in
    let slot_of keys cap c =
      let mask = cap - 1 in
      let s = ref (hash c land mask) in
      while
        let k = keys.(!s) in
        k <> -1 && k <> c
      do
        s := (!s + 1) land mask
      done;
      !s
    in
    let grow () =
      let cap' = 2 * !cap in
      let keys' = Array.make cap' (-1) in
      let ids' = Array.make cap' 0 in
      for s = 0 to !cap - 1 do
        let k = !keys.(s) in
        if k <> -1 then begin
          let s' = slot_of keys' cap' k in
          keys'.(s') <- k;
          ids'.(s') <- !ids.(s)
        end
      done;
      cap := cap';
      keys := keys';
      ids := ids'
    in
    let configs = Grow.create 0 in
    let edges = ref 0 in
    let sccs = ref 0 in
    let progress = Obs.Progress.create "configgraph.explore_sccs" in
    let intern c =
      let s = slot_of !keys !cap c in
      if !keys.(s) <> -1 then !ids.(s)
      else begin
        if configs.Grow.len >= max_configs then
          raise (Too_many_configs max_configs);
        let i = configs.Grow.len in
        !keys.(s) <- c;
        !ids.(s) <- i;
        Grow.push configs c;
        if 2 * i >= !cap then grow ();
        i
      end
    in
    let vals = Array.make (Stdlib.max 1 nt) 0 in
    let idxs = Array.make (Stdlib.max 1 nt) 0 in
    let expand v =
      if v land 1023 = 0 then begin
        check_deadline deadline ~configs:configs.Grow.len ~edges:!edges;
        Obs.Progress.tick progress (fun () ->
            Printf.sprintf "%d configs discovered, %d edges, %d sccs"
              configs.Grow.len !edges !sccs)
      end;
      let c = Grow.get configs v in
      let nvals = ref 0 in
      for t = 0 to nt - 1 do
        let sa = pre_a.(t) and sb = pre_b.(t) in
        let enabled =
          if sa = sb then (c lsr sa) land 0xff >= 2
          else (c lsr sa) land 0xff >= 1 && (c lsr sb) land 0xff >= 1
        in
        if enabled then begin
          let c' = c + pdelta.(t) in
          let dup = ref false in
          for k = 0 to !nvals - 1 do
            if vals.(k) = c' then dup := true
          done;
          if not !dup then begin
            vals.(!nvals) <- c';
            incr nvals
          end
        end
      done;
      let n = !nvals in
      for k = 0 to n - 1 do
        idxs.(k) <- intern vals.(k)
      done;
      for k = 1 to n - 1 do
        let x = idxs.(k) in
        let j = ref (k - 1) in
        while !j >= 0 && idxs.(!j) > x do
          idxs.(!j + 1) <- idxs.(!j);
          decr j
        done;
        idxs.(!j + 1) <- x
      done;
      let m = ref 0 in
      for k = 0 to n - 1 do
        if idxs.(k) <> v && (k = 0 || idxs.(k - 1) <> idxs.(k)) then incr m
      done;
      let out = Array.make !m 0 in
      let w = ref 0 in
      for k = 0 to n - 1 do
        if idxs.(k) <> v && (k = 0 || idxs.(k - 1) <> idxs.(k)) then begin
          out.(!w) <- idxs.(k);
          incr w
        end
      done;
      edges := !edges + !m;
      out
    in
    Fun.protect
      ~finally:(fun () ->
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.incr m_explorations;
          Obs.Metrics.incr m_packed;
          Obs.Metrics.incr m_lazy;
          Obs.Metrics.add m_configs configs.Grow.len;
          Obs.Metrics.add m_edges !edges
        end)
      (fun () ->
        Obs.Trace.with_span "configgraph.explore_sccs" ~cat:"verify"
          ~args:[ ("protocol", p.Population.name) ]
          (fun () ->
            ignore (intern (Mset.pack c0));
            sccs :=
              lazy_sccs ~expand ~on_bottom:(fun members ->
                  on_bottom (List.map (Grow.get configs) members));
            Obs.Progress.finish progress (fun () ->
                Printf.sprintf "%d configs, %d edges, %d sccs" configs.Grow.len
                  !edges !sccs);
            !sccs))
end
