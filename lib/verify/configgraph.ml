module H = Hashtbl.Make (struct
  type t = Mset.t

  let equal = Mset.equal
  let hash = Mset.hash
end)

type t = {
  protocol : Population.t;
  configs : Mset.t array;
  succ : int array array;
  root : int;
}

exception Too_many_configs of int

(* A minimal growable array (OCaml 5.1 predates Stdlib.Dynarray). *)
module Grow = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push g x =
    if g.len = Array.length g.data then begin
      let data = Array.make (2 * g.len) g.dummy in
      Array.blit g.data 0 data 0 g.len;
      g.data <- data
    end;
    g.data.(g.len) <- x;
    g.len <- g.len + 1

  let get g i = g.data.(i)
  let to_array g = Array.sub g.data 0 g.len
end

let m_explorations = Obs.Metrics.counter "configgraph.explorations"
let m_configs = Obs.Metrics.counter "configgraph.configs"
let m_edges = Obs.Metrics.counter "configgraph.edges"

let explore ?(max_configs = 2_000_000) p c0 =
  let index = H.create 1024 in
  let configs = Grow.create (Mset.zero 0) in
  let succs = Grow.create [||] in
  let edges = ref 0 in
  let progress = Obs.Progress.create "configgraph.explore" in
  let intern c =
    match H.find_opt index c with
    | Some i -> i
    | None ->
      if configs.Grow.len >= max_configs then
        raise (Too_many_configs max_configs);
      let i = configs.Grow.len in
      H.add index c i;
      Grow.push configs c;
      i
  in
  (* Publish even when [Too_many_configs] aborts the exploration, so an
     over-budget run still reports how far it got. *)
  Fun.protect
    ~finally:(fun () ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_explorations;
        Obs.Metrics.add m_configs configs.Grow.len;
        Obs.Metrics.add m_edges !edges
      end)
    (fun () ->
      Obs.Trace.with_span "configgraph.explore" ~cat:"verify"
        ~args:[ ("protocol", p.Population.name) ]
        (fun () ->
          let root = intern c0 in
          let i = ref 0 in
          while !i < configs.Grow.len do
            Obs.Progress.tick progress (fun () ->
                Printf.sprintf "%d configs explored, %d discovered, %d edges"
                  !i configs.Grow.len !edges);
            let c = Grow.get configs !i in
            let next = Population.distinct_successors p c in
            let idxs =
              List.sort_uniq Stdlib.compare (List.map intern next)
              |> List.filter (fun j -> j <> !i)
            in
            edges := !edges + List.length idxs;
            Grow.push succs (Array.of_list idxs);
            incr i
          done;
          Obs.Progress.finish progress (fun () ->
              Printf.sprintf "%d configs, %d edges" configs.Grow.len !edges);
          {
            protocol = p;
            configs = Grow.to_array configs;
            succ = Grow.to_array succs;
            root;
          }))

let num_configs g = Array.length g.configs

let find g c =
  let n = num_configs g in
  let rec go i =
    if i >= n then None
    else if Mset.equal g.configs.(i) c then Some i
    else go (i + 1)
  in
  go 0

let reachable_from g src =
  let n = num_configs g in
  let seen = Array.make n false in
  let stack = ref [ src ] in
  seen.(src) <- true;
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end)
        g.succ.(v);
      loop ()
  in
  loop ();
  seen

let can_reach g ~src pred =
  let seen = reachable_from g src in
  let n = num_configs g in
  let rec go i =
    if i >= n then false
    else if seen.(i) && pred g.configs.(i) then true
    else go (i + 1)
  in
  go 0
