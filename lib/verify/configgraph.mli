(** Explicit-state exploration of the configuration space.

    For a fixed input, the set of configurations reachable from [IC(v)]
    is finite (interactions preserve the number of agents), so the
    reachability graph can be built exhaustively. This graph is the
    ground truth for the semantics of Section 2.2: reachability
    ([C →* C']), fair-execution outcomes, and stability are all decided
    on it. *)

type t = private {
  protocol : Population.t;
  configs : Mset.t array;     (** node index -> configuration *)
  succ : int array array;     (** distinct successor node indices *)
  root : int;                  (** index of the initial configuration *)
  lookup : Mset.t -> int option;
      (** the exploration's interning table, retained so membership
          queries stay O(1) — use {!find} *)
}

exception Too_many_configs of int
(** Raised by {!explore} when the exploration exceeds its node budget. *)

val explore :
  ?max_configs:int -> ?deadline:Obs.Budget.deadline -> Population.t -> Mset.t -> t
(** [explore p c0] builds the graph of configurations reachable from
    [c0]. Default budget: 2_000_000 nodes.
    @raise Too_many_configs if the node budget is exceeded.
    @raise Obs.Budget.Exceeded if [deadline] expires mid-exploration
    (checked every 256 nodes); the exception reports the configs/edges
    consumed so far. *)

val explore_sccs :
  ?max_configs:int -> ?deadline:Obs.Budget.deadline -> Population.t ->
  Mset.t -> on_bottom:(Mset.t list -> [ `Continue | `Stop ]) -> int
(** Incremental exploration with on-the-fly (Tarjan) SCC detection:
    nodes are discovered by DFS and a strongly connected component is
    complete — and, if no edge leaves it, reported to [on_bottom] with
    its member configurations — as soon as it pops, while the rest of
    the graph is still unexplored. [on_bottom] returning [`Stop]
    abandons the exploration immediately; this is how
    {!Fair_semantics.decide} stops at the first decisive bottom SCC
    instead of materialising the whole graph. Returns the number of
    SCCs detected before finishing (or stopping). Same budget/deadline
    behaviour as {!explore}; node numbering is DFS discovery order, not
    {!explore}'s BFS order. *)

val num_configs : t -> int

val find : t -> Mset.t -> int option
(** Index of a configuration in the graph, if reachable. O(1): answered
    from the exploration's own hash index, not by scanning. *)

val reachable_from : t -> int -> bool array
(** Forward closure of a node, as a membership array. *)

val can_reach : t -> src:int -> (Mset.t -> bool) -> bool
(** Does some configuration satisfying the predicate lie in the forward
    closure of [src]? *)

val can_reach_config : t -> src:int -> Mset.t -> bool
(** [can_reach_config g ~src c]: is the {e known} target configuration
    [c] in the forward closure of [src]? One O(1) index probe plus a
    graph traversal — no per-node predicate scan. *)

(** Packed fast path: when the protocol has at most
    [Mset.max_packed_dim] states and the population at most
    [Mset.max_packed_count] agents (always true in the busy-beaver scan
    regime), configurations are interned as immediate ints — no
    per-successor multiset allocation, int-keyed hashing. The node
    numbering is identical to {!explore}'s, so
    [Packed.config g i = (explore p c0).configs.(i)] index-for-index;
    {!Fair_semantics} dispatches to this path automatically. *)
module Packed : sig
  type graph = private {
    protocol : Population.t;
    configs : int array;      (** node index -> packed configuration *)
    succ : int array array;
    root : int;
    lookup : int -> int option;
        (** the exploration's open-addressing intern table — use
            {!find} *)
  }

  val applicable : Population.t -> Mset.t -> bool

  val explore :
    ?max_configs:int -> ?deadline:Obs.Budget.deadline -> Population.t ->
    Mset.t -> graph
  (** @raise Too_many_configs and @raise Obs.Budget.Exceeded as
      {!val:explore} (deadline checked every 1024 nodes).
      @raise Invalid_argument when not {!applicable}. *)

  val explore_sccs :
    ?max_configs:int -> ?deadline:Obs.Budget.deadline -> Population.t ->
    Mset.t -> on_bottom:(int list -> [ `Continue | `Stop ]) -> int
  (** As {!val:explore_sccs}, on packed configurations — [on_bottom]
      receives the bottom component's members as packed ints. *)

  val num_configs : graph -> int
  val find : graph -> int -> int option
  val config : graph -> int -> Mset.t
  (** Unpacked view of node [i]. *)
end
