type result =
  | Eta of int
  | Always_accepts
  | Always_rejects
  | Not_threshold of int array * Fair_semantics.verdict

let pp_result fmt = function
  | Eta eta -> Format.fprintf fmt "eta = %d" eta
  | Always_accepts -> Format.pp_print_string fmt "accepts all checked inputs"
  | Always_rejects -> Format.pp_print_string fmt "rejects all checked inputs"
  | Not_threshold (v, verdict) ->
    Format.fprintf fmt "not a threshold protocol (input %s: %a)"
      (String.concat "," (Array.to_list (Array.map string_of_int v)))
      Fair_semantics.pp_verdict verdict

let m_inputs = Obs.Metrics.counter "eta_search.inputs_checked"
let m_stable_hits = Obs.Metrics.counter "eta_search.stable_hits"

let find ?max_configs ?wall_budget_s ?packed ?incremental ?(jobs = 1)
    ?(stable = `Off) p ~max_input =
  if Array.length p.Population.input_vars <> 1 then
    invalid_arg "Eta_search.find: single-input protocols only";
  (* one deadline spans the whole scan, not one per input: the budget
     bounds the total time spent on this protocol *)
  let deadline =
    Option.map (Obs.Budget.deadline_in ~source:"eta_search.find") wall_budget_s
  in
  (* Stable-set shortcut: the analysis is a property of the protocol,
     not of the input, so [`Memo] pays for the two backward fixpoints
     once and answers every subsequent input from the cache; the
     [`Per_input] strawman recomputes them per input (the tests compare
     the two by counter to certify the memoization saves real work). If
     [IC(i)] already lies in [SC_b], every fair execution from it stays
     in consensus [b] (Definition 2), so the verdict is [Decides b]
     without building the configuration graph. *)
  let analysis =
    match stable with
    | `Off -> None
    | `Per_input -> Some (fun () -> Stable_sets.analyse ~jobs p)
    | `Memo -> Some (fun () -> Stable_sets.analyse_memo ~jobs p)
  in
  let decide_input i =
    let c0 = Population.initial_config p [| i |] in
    let shortcut =
      match analysis with
      | None -> None
      | Some get ->
        let a = get () in
        if Downset.mem c0 a.Stable_sets.stable1 then
          Some (Fair_semantics.Decides true)
        else if Downset.mem c0 a.Stable_sets.stable0 then
          Some (Fair_semantics.Decides false)
        else None
    in
    match shortcut with
    | Some verdict ->
      Obs.Metrics.incr m_stable_hits;
      verdict
    | None ->
      Fair_semantics.decide_config ?max_configs ?deadline ?packed ?incremental p
        c0
  in
  let inputs = Fair_semantics.valid_inputs_single p ~max:max_input in
  let total = List.length inputs in
  let progress = Obs.Progress.create "eta_search.find" in
  (* Scan upwards; record where the output flips to 1 and insist it
     never flips back. *)
  let rec go checked flipped = function
    | [] ->
      (match flipped with
       | Some eta ->
         let first = List.hd inputs in
         if eta = first then Always_accepts else Eta eta
       | None -> Always_rejects)
    | i :: rest ->
      Obs.Progress.tick progress (fun () ->
          Printf.sprintf "input %d (%d/%d checked)" i checked total);
      Obs.Metrics.incr m_inputs;
      (match decide_input i with
       | Fair_semantics.Decides true ->
         let flipped = match flipped with Some _ -> flipped | None -> Some i in
         go (checked + 1) flipped rest
       | Fair_semantics.Decides false ->
         (match flipped with
          | Some _ -> Not_threshold ([| i |], Fair_semantics.Decides false)
          | None -> go (checked + 1) None rest)
       | verdict -> Not_threshold ([| i |], verdict))
  in
  match inputs with
  | [] -> invalid_arg "Eta_search.find: no valid inputs below the cutoff"
  | _ ->
    Obs.Trace.with_span "eta_search.find" ~cat:"verify"
      ~args:[ ("protocol", p.Population.name); ("max_input", string_of_int max_input) ]
      (fun () ->
        let r = go 0 None inputs in
        Obs.Progress.finish progress (fun () ->
            Format.asprintf "%a" pp_result r);
        r)
