(** Exact determination of the threshold of a busy-beaver protocol.

    A protocol computing some [x >= eta] (Section 2.3) rejects all
    inputs below [eta] and accepts all inputs from [eta] on. This
    module finds [eta] by deciding each input exactly (up to a cutoff —
    the configuration graphs grow quickly, so cutoffs are inherent;
    Section 4.1 of the paper explains why certifying thresholds in
    general is as hard as VAS reachability). *)

type result =
  | Eta of int
      (** rejects below, accepts from this input up to the cutoff *)
  | Always_accepts       (** accepts every checked input *)
  | Always_rejects       (** rejects every checked input (eta beyond cutoff, if any) *)
  | Not_threshold of int array * Fair_semantics.verdict
      (** some input breaks the 0*1* threshold pattern, or is undecided *)

val find :
  ?max_configs:int -> ?wall_budget_s:float -> ?packed:bool ->
  ?incremental:bool -> ?jobs:int ->
  ?stable:[ `Off | `Per_input | `Memo ] -> Population.t ->
  max_input:int -> result
(** [find p ~max_input] decides every valid input [<= max_input] of a
    single-input-variable protocol. [?packed] selects the
    configuration-graph representation and [?incremental] the
    exploration strategy (see {!Fair_semantics.decide_config}); the
    result is identical either way — incremental exploration stops as
    soon as a consensus-free bottom component is found, which pays on
    non-threshold protocols, while eager exploration has less
    per-node machinery and is the better fit for decide-heavy
    workloads like the busy-beaver scan. [?wall_budget_s] bounds the {e total} wall-clock time spent on
    this protocol (one deadline spans all its configuration-graph
    explorations); note a wall budget makes aborts machine-dependent, so
    leave it off when byte-identical reruns matter.

    [?stable] (default [`Off]) consults the stable sets of Definition 2
    before exploring: when [IC(i) ∈ SC_b] the input is decided [b]
    outright (counter ["eta_search.stable_hits"]), since a [b]-stable
    initial configuration can only ever reach consensus-[b]
    configurations. [`Memo] computes the analysis once per protocol via
    {!Stable_sets.analyse_memo}; [`Per_input] recomputes it for every
    input (a strawman kept for the differential tests). [?jobs]
    parallelises the analysis' backward fixpoints. The result is
    identical for every [stable]/[jobs] setting.
    @raise Invalid_argument if the protocol has several input variables.
    @raise Obs.Budget.Exceeded when the wall budget expires. *)

val pp_result : Format.formatter -> result -> unit
