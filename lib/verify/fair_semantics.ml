type verdict =
  | Decides of bool
  | No_consensus
  | Conflicting

let pp_verdict fmt = function
  | Decides b -> Format.fprintf fmt "decides %d" (Bool.to_int b)
  | No_consensus -> Format.pp_print_string fmt "no consensus in some bottom SCC"
  | Conflicting -> Format.pp_print_string fmt "conflicting bottom SCCs"

(* Consensus output of a whole component: Some b if every member
   configuration has output b. *)
let component_output p (g : Configgraph.t) members =
  let rec go members acc =
    match members with
    | [] -> acc
    | v :: rest ->
      (match Population.output_of_config p g.Configgraph.configs.(v) with
       | None -> None
       | Some b ->
         (match acc with
          | None -> go rest (Some b)
          | Some b' -> if b = b' then go rest acc else None))
  in
  go members None

let m_decisions = Obs.Metrics.counter "fair.decisions"
let m_sccs = Obs.Metrics.counter "fair.sccs"
let m_bottom_sccs = Obs.Metrics.counter "fair.bottom_sccs"

let decide_config ?max_configs p c0 =
  Obs.Trace.with_span "fair_semantics.decide" ~cat:"verify"
    ~args:[ ("protocol", p.Population.name) ]
    (fun () ->
      let g = Configgraph.explore ?max_configs p c0 in
      let scc = Scc.compute g.Configgraph.succ in
      let bottom = Scc.bottom_components scc in
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_decisions;
        Obs.Metrics.add m_sccs scc.Scc.num_components;
        Obs.Metrics.add m_bottom_sccs (List.length bottom)
      end;
      (* Every node of the graph is reachable from the root by construction,
         so every bottom SCC is relevant; a finite non-empty graph has at
         least one. *)
      let rec go seen = function
        | [] ->
          (match seen with
           | Some b -> Decides b
           | None -> assert false)
        | comp :: rest ->
          (match component_output p g scc.Scc.members.(comp) with
           | None -> No_consensus
           | Some b ->
             (match seen with
              | None -> go (Some b) rest
              | Some b' -> if b = b' then go seen rest else Conflicting))
      in
      go None bottom)

let decide ?max_configs p v =
  decide_config ?max_configs p (Population.initial_config p v)

type check_result =
  | Ok_all of int
  | Mismatch of int array * verdict * bool

let check_predicate ?max_configs p spec ~inputs =
  let rec go n = function
    | [] -> Ok_all n
    | v :: rest ->
      let expected = Predicate.eval spec v in
      (match decide ?max_configs p v with
       | Decides b when b = expected -> go (n + 1) rest
       | verdict -> Mismatch (v, verdict, expected))
  in
  go 0 inputs

let valid_inputs_single p ~max =
  let leaders = Mset.size p.Population.leaders in
  let lo = Stdlib.max 0 (2 - leaders) in
  List.init (Stdlib.max 0 (max - lo + 1)) (fun i -> i + lo)
