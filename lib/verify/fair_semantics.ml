type verdict =
  | Decides of bool
  | No_consensus
  | Conflicting

let pp_verdict fmt = function
  | Decides b -> Format.fprintf fmt "decides %d" (Bool.to_int b)
  | No_consensus -> Format.pp_print_string fmt "no consensus in some bottom SCC"
  | Conflicting -> Format.pp_print_string fmt "conflicting bottom SCCs"

let m_decisions = Obs.Metrics.counter "fair.decisions"
let m_sccs = Obs.Metrics.counter "fair.sccs"
let m_bottom_sccs = Obs.Metrics.counter "fair.bottom_sccs"

(* Consensus output of a whole component: Some b if every member
   configuration has output b. *)
let component_output ~output_of_node members =
  let rec go members acc =
    match members with
    | [] -> acc
    | v :: rest ->
      (match output_of_node v with
       | None -> None
       | Some b ->
         (match acc with
          | None -> go rest (Some b)
          | Some b' -> if b = b' then go rest acc else None))
  in
  go members None

(* Shared bottom-SCC consensus logic, abstracted over the configuration
   representation: [output_of_node] is the consensus output of one
   configuration (None when its agents disagree). Every node of the
   graph is reachable from the root by construction, so every bottom SCC
   is relevant; a finite non-empty graph has at least one.

   The verdict is canonical — No_consensus over Conflicting over
   Decides, independent of the order components are examined — so the
   eager path here and the incremental path (which pops bottom SCCs in
   its own DFS order) always agree. *)
let verdict_of_bottom ~output_of_node (scc : Scc.t) bottom =
  let rec go seen conflict = function
    | [] ->
      if conflict then Conflicting
      else (match seen with Some b -> Decides b | None -> assert false)
    | comp :: rest ->
      (match component_output ~output_of_node scc.Scc.members.(comp) with
       | None -> No_consensus
       | Some b ->
         (match seen with
          | None -> go (Some b) conflict rest
          | Some b' -> go seen (conflict || b <> b') rest))
  in
  go None false bottom

(* The incremental counterpart: fed one bottom component at a time by
   {!Configgraph.explore_sccs}. A component without consensus decides
   the (canonically maximal) verdict No_consensus outright, so the
   exploration can stop there; agreeing components merely accumulate. *)
type incremental = {
  mutable seen : bool option;
  mutable conflict : bool;
  mutable undecided : bool;
  mutable bottoms : int;
}

let incremental_start () =
  { seen = None; conflict = false; undecided = false; bottoms = 0 }

let incremental_step st = function
  | None ->
    st.bottoms <- st.bottoms + 1;
    st.undecided <- true;
    `Stop
  | Some b ->
    st.bottoms <- st.bottoms + 1;
    (match st.seen with
     | None -> st.seen <- Some b
     | Some b' -> if b <> b' then st.conflict <- true);
    `Continue

let incremental_verdict st =
  if st.undecided then No_consensus
  else if st.conflict then Conflicting
  else match st.seen with Some b -> Decides b | None -> assert false

let publish_scc (scc : Scc.t) bottom =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_decisions;
    Obs.Metrics.add m_sccs scc.Scc.num_components;
    Obs.Metrics.add m_bottom_sccs (List.length bottom)
  end

(* The packed path never materialises multisets: a configuration's
   output depends only on its support, so a 2^states table indexed by
   the support bitmask answers [output_of_config] in two shifts. Slots:
   0 = no consensus, 1 = all-reject, 2 = all-accept. *)
let support_output_table p =
  let d = Population.num_states p in
  let tbl = Bytes.make (1 lsl d) '\000' in
  for mask = 1 to (1 lsl d) - 1 do
    let rec go s acc =
      if s >= d then (match acc with Some false -> 1 | Some true -> 2 | None -> 0)
      else if mask land (1 lsl s) = 0 then go (s + 1) acc
      else
        match acc with
        | None -> go (s + 1) (Some p.Population.output.(s))
        | Some b -> if p.Population.output.(s) = b then go (s + 1) acc else 0
    in
    Bytes.set tbl mask (Char.chr (go 0 None))
  done;
  tbl

(* Output of a packed configuration: project its support bitmask and
   index the table. *)
let packed_output ~num_states tbl c =
  let mask = ref 0 in
  for s = 0 to num_states - 1 do
    if (c lsr (8 * s)) land 0xff <> 0 then mask := !mask lor (1 lsl s)
  done;
  match Bytes.get tbl !mask with
  | '\001' -> Some false
  | '\002' -> Some true
  | _ -> None

let decide_config ?max_configs ?deadline ?(packed = true) ?(incremental = true)
    p c0 =
  Obs.Trace.with_span "fair_semantics.decide" ~cat:"verify"
    ~args:[ ("protocol", p.Population.name) ]
    (fun () ->
      if incremental then begin
        (* Lazy path: bottom SCCs are judged as Tarjan pops them, and a
           consensus-free one — canonically the maximal verdict — stops
           the exploration before the rest of the graph is built. *)
        let st = incremental_start () in
        let sccs =
          if packed && Configgraph.Packed.applicable p c0 then begin
            let tbl = support_output_table p in
            let output_of_node =
              packed_output ~num_states:(Population.num_states p) tbl
            in
            Configgraph.Packed.explore_sccs ?max_configs ?deadline p c0
              ~on_bottom:(fun members ->
                incremental_step st (component_output ~output_of_node members))
          end
          else
            let output_of_node = Population.output_of_config p in
            Configgraph.explore_sccs ?max_configs ?deadline p c0
              ~on_bottom:(fun members ->
                incremental_step st (component_output ~output_of_node members))
        in
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.incr m_decisions;
          Obs.Metrics.add m_sccs sccs;
          Obs.Metrics.add m_bottom_sccs st.bottoms
        end;
        incremental_verdict st
      end
      else if packed && Configgraph.Packed.applicable p c0 then begin
        let g = Configgraph.Packed.explore ?max_configs ?deadline p c0 in
        let scc = Scc.compute g.Configgraph.Packed.succ in
        let bottom = Scc.bottom_components scc in
        publish_scc scc bottom;
        let tbl = support_output_table p in
        let configs = g.Configgraph.Packed.configs in
        let output_of_node v =
          packed_output ~num_states:(Population.num_states p) tbl configs.(v)
        in
        verdict_of_bottom ~output_of_node scc bottom
      end
      else begin
        let g = Configgraph.explore ?max_configs ?deadline p c0 in
        let scc = Scc.compute g.Configgraph.succ in
        let bottom = Scc.bottom_components scc in
        publish_scc scc bottom;
        let output_of_node v =
          Population.output_of_config p g.Configgraph.configs.(v)
        in
        verdict_of_bottom ~output_of_node scc bottom
      end)

let decide ?max_configs ?deadline ?packed ?incremental p v =
  decide_config ?max_configs ?deadline ?packed ?incremental p
    (Population.initial_config p v)

type check_result =
  | Ok_all of int
  | Mismatch of int array * verdict * bool

let check_predicate ?max_configs ?packed p spec ~inputs =
  let rec go n = function
    | [] -> Ok_all n
    | v :: rest ->
      let expected = Predicate.eval spec v in
      (match decide ?max_configs ?packed p v with
       | Decides b when b = expected -> go (n + 1) rest
       | verdict -> Mismatch (v, verdict, expected))
  in
  go 0 inputs

let valid_inputs_single p ~max =
  let leaders = Mset.size p.Population.leaders in
  let lo = Stdlib.max 0 (2 - leaders) in
  List.init (Stdlib.max 0 (max - lo + 1)) (fun i -> i + lo)
