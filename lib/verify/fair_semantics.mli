(** The exact semantics of "computing by stable consensus".

    A protocol computes output [b] on input [v] iff every fair
    execution from [IC(v)] stabilises to consensus [b]; on the finite
    reachability graph this holds iff every bottom SCC reachable from
    [IC(v)] consists solely of configurations with consensus output
    [b]. This module decides that, and checks protocols against their
    specification predicate. *)

type verdict =
  | Decides of bool         (** all reachable bottom SCCs agree on this output *)
  | No_consensus            (** some reachable bottom SCC is not a uniform consensus *)
  | Conflicting             (** uniform bottom SCCs with different outputs *)

val decide_config :
  ?max_configs:int -> ?deadline:Obs.Budget.deadline -> ?packed:bool ->
  ?incremental:bool -> Population.t -> Mset.t -> verdict
(** Verdict for a concrete initial configuration. When the instance fits
    the packed representation ({!Configgraph.Packed.applicable}) the
    graph is explored on immediate ints — same graph, same verdict,
    several times faster; [~packed:false] forces the reference multiset
    exploration (the two are compared differentially in the tests).

    [incremental] (default [true]) judges bottom SCCs on the fly as
    Tarjan pops them ({!Configgraph.explore_sccs}) and stops at the
    first consensus-free one; [~incremental:false] materialises the full
    graph first (the eager reference path). The verdict is canonical —
    [No_consensus] if {e any} reachable bottom SCC lacks consensus, else
    [Conflicting] if uniform bottom SCCs disagree, else [Decides b] — so
    the two paths always return the same verdict; only the
    [fair.sccs]/[fair.bottom_sccs] counters reflect how much of the
    graph the lazy path skipped.
    @raise Configgraph.Too_many_configs if the graph exceeds the budget.
    @raise Obs.Budget.Exceeded if [deadline] expires mid-exploration. *)

val decide :
  ?max_configs:int -> ?deadline:Obs.Budget.deadline -> ?packed:bool ->
  ?incremental:bool -> Population.t -> int array -> verdict
(** Verdict for input [v] (starting from [IC(v)]). *)

type check_result =
  | Ok_all of int                       (** number of inputs checked *)
  | Mismatch of int array * verdict * bool  (** input, verdict, expected *)

val check_predicate :
  ?max_configs:int -> ?packed:bool -> Population.t -> Predicate.t ->
  inputs:int array list -> check_result
(** Checks [decide p v = Decides (spec v)] on every listed input. *)

val valid_inputs_single : Population.t -> max:int -> int list
(** For single-variable protocols: inputs [i] in [0..max] for which
    [IC(i)] is a configuration (at least two agents). *)

val pp_verdict : Format.formatter -> verdict -> unit
